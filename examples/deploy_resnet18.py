"""End-to-end deployment: greedy Bit-Flip search on a ResNet18 model.

The scenario the paper's Section III-D describes: given only an Int8
model (no dataset, no retraining), search layer-wise zero-column targets
with Algorithm 1 under a minimum-fidelity constraint, then deploy the
flipped network and report its compression ratio and its modelled
runtime on the BitWave accelerator.

Uses the ``tiny`` ResNet18 preset so the greedy search (which runs one
inference per candidate move) completes in seconds.

Run:  python examples/deploy_resnet18.py
"""

from repro.accelerators.bitwave import BitWave
from repro.core.pipeline import BitWavePipeline
from repro.core.search import greedy_bitflip_search
from repro.models import build_resnet18
from repro.models.fidelity import make_evaluator


def main() -> None:
    model = build_resnet18("tiny")
    inputs = model.sample_inputs(batch=8)
    evaluate = make_evaluator(model, inputs)
    weights = model.weights_int8()

    # Search only the heavy tail (layer4 + classifier), as the paper
    # does for ResNet18; seed the strategy at 3 zero columns.
    heavy = [name for name in weights
             if name.startswith("layer4") or name == "fc"]
    initial = {name: {16: 3} for name in heavy}
    result = greedy_bitflip_search(
        weights,
        evaluate,
        min_accuracy=0.95,        # paper: <0.5% top-1 drop
        initial_strategy=initial,
        group_sizes=(16,),
        layers=heavy,
        max_moves=6,
    )
    print(f"greedy search: {result.n_moves} accepted moves, "
          f"final fidelity {result.accuracy:.3f}")
    for layer, gs, z, accuracy in result.history:
        print(f"  move: {layer} G={gs} -> {z} zero columns "
              f"(fidelity {accuracy:.3f})")

    # Deploy with the found strategy.
    targets = {
        layer: max(per_gs.values())
        for layer, per_gs in result.strategy.items()
        if any(per_gs.values())
    }
    report = BitWavePipeline(
        group_size=16, zero_column_targets=targets).deploy(weights)
    print(f"\ndeployed network CR: {report.compression_ratio:.3f}x")

    # Modelled runtime of full-shape ResNet18 on the BitWave NPU.
    evaluation = BitWave().evaluate_network("resnet18")
    print(f"modelled BitWave runtime (paper-shape ResNet18): "
          f"{evaluation.total_cycles / 1e6:.2f} Mcycles "
          f"({evaluation.runtime_s * 1e3:.2f} ms @ 250 MHz, "
          f"{evaluation.effective_tops:.3f} effective TOPS)")


if __name__ == "__main__":
    main()
