"""Drive the structural BitWave simulator on a small convolution.

Streams a real BCS-compressed weight tensor through the ZCIP -> BCE
datapath, checks the outputs bit-exactly against a reference
convolution, and reports cycles and compression against a dense-mode
run of the same layer -- the zero-column skipping benefit, measured on
the simulated hardware rather than the analytical model.

Run:  python examples/simulate_npu.py
"""

import numpy as np

from repro.nn import functional as F
from repro.sim.npu import BitWaveNPU
from repro.utils.rng import seeded_rng


def main() -> None:
    rng = seeded_rng("simulate-npu")
    weights = np.clip(np.round(rng.laplace(0, 8, (16, 8, 3, 3))),
                      -127, 127).astype(np.int8)
    acts = rng.integers(-64, 64, (1, 8, 12, 12)).astype(np.int32)

    sparse_run = BitWaveNPU(group_size=8).run_conv(
        weights, acts, stride=1, padding=1)
    dense_run = BitWaveNPU(group_size=8, dense_mode_precision=8).run_conv(
        weights, acts, stride=1, padding=1)

    reference = F.conv2d(acts.astype(np.float64), weights.astype(np.float64),
                         stride=1, padding=1).astype(np.int64)
    assert np.array_equal(sparse_run.outputs, reference), "bit-exact"
    assert np.array_equal(dense_run.outputs, reference), "bit-exact"

    print("outputs bit-exact against reference convolution: OK")
    print(f"dense-mode compute cycles:  {dense_run.compute_cycles}")
    print(f"column-skipping cycles:     {sparse_run.compute_cycles} "
          f"({dense_run.compute_cycles / sparse_run.compute_cycles:.2f}x "
          f"speedup)")
    print(f"weight stream compression:  "
          f"{sparse_run.compression_ratio:.2f}x vs dense storage")
    print(f"column operations executed: {sparse_run.column_ops}")


if __name__ == "__main__":
    main()
