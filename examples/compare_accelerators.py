"""Reproduce the paper's accelerator comparison for one network.

Runs the analytical model for all six accelerators (SCNN, Stripes,
Pragmatic, Bitlet, HUAA, BitWave) on a chosen benchmark network and
prints the Fig. 14/15/17-style normalized rows plus BitWave's per-layer
dataflow (SU) selection.

Run:  python examples/compare_accelerators.py [network]
      network in {resnet18, mobilenetv2, cnn_lstm, bert_base}
"""

import sys

from repro.accelerators import SOTA_ACCELERATORS, build_accelerator
from repro.utils.tables import format_table


def main(network: str = "bert_base") -> None:
    evaluations = {
        name: build_accelerator(name).evaluate_network(network)
        for name in SOTA_ACCELERATORS
    }
    scnn_cycles = evaluations["SCNN"].total_cycles
    bitwave_energy = evaluations["BitWave"].total_energy_pj
    scnn_eff = evaluations["SCNN"].efficiency_tops_per_w

    rows = []
    for name, ev in evaluations.items():
        rows.append([
            name,
            ev.total_cycles / 1e6,
            scnn_cycles / ev.total_cycles,
            ev.total_energy_pj / bitwave_energy,
            ev.efficiency_tops_per_w / scnn_eff,
        ])
    print(format_table(
        ["accelerator", "Mcycles", "speedup vs SCNN",
         "energy vs BitWave", "efficiency vs SCNN"],
        rows,
        title=f"SotA comparison on {network}",
    ))

    bitwave = evaluations["BitWave"]
    su_rows = [[layer.layer, layer.su_name,
                layer.counts.utilization,
                layer.cycles / 1e3]
               for layer in bitwave.layers[:12]]
    print()
    print(format_table(
        ["layer", "SU", "utilization", "kcycles"],
        su_rows,
        title="BitWave per-layer dataflow selection (first 12 layers)",
    ))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bert_base")
