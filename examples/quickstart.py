"""Quickstart: compress Int8 weights with BitWave's BCS pipeline.

Demonstrates the core loop of the paper in ~30 lines: take Int8 weight
tensors, optionally Bit-Flip them toward a zero-column target, compress
losslessly with BCS, and inspect the compression ratio and the per-group
cycle counts the accelerator would spend.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BitWavePipeline, bcs_decompress
from repro.utils.rng import seeded_rng


def main() -> None:
    # Two synthetic Int8 layers with realistic (heavy-tailed) weights.
    rng = seeded_rng("quickstart")
    weights = {
        "conv": np.clip(np.round(rng.laplace(0, 9, (64, 288))),
                        -127, 127).astype(np.int8),
        "fc": np.clip(np.round(rng.laplace(0, 12, (100, 512))),
                      -127, 127).astype(np.int8),
    }

    # Lossless deployment: sign-magnitude BCS compression only.
    lossless = BitWavePipeline(group_size=16).deploy(weights)
    print(f"lossless network CR: {lossless.compression_ratio:.3f}x")
    for name, layer in lossless.layers.items():
        restored = bcs_decompress(layer.compressed)
        assert np.array_equal(restored, weights[name]), "BCS is lossless"
        print(f"  {name}: CR={layer.compression_ratio:.3f} "
              f"column sparsity={layer.column_sparsity:.2%} "
              f"mean cycles/group={layer.nonzero_column_counts.mean():.2f}")

    # Lossy deployment: Bit-Flip every group to >= 5 zero columns.
    flipped = BitWavePipeline(
        group_size=16,
        zero_column_targets={"conv": 5, "fc": 5},
    ).deploy(weights)
    print(f"\nBit-Flip (z=5) network CR: {flipped.compression_ratio:.3f}x")
    for name, layer in flipped.layers.items():
        print(f"  {name}: CR={layer.compression_ratio:.3f} "
              f"RMS perturbation={np.sqrt(layer.distortion / layer.weights.size):.3f} "
              f"mean cycles/group={layer.nonzero_column_counts.mean():.2f}")


if __name__ == "__main__":
    main()
