"""Roofline analysis: why Bit-Flip is BERT's lever but not ResNet18's.

Places every layer of ResNet18 and BERT-Base (token size 4) on the
modelled platform's roofline, then shows how BCS compression (CR ~2.3x
after Bit-Flip) shifts the memory-bound BERT layers toward the ridge --
the mechanism behind Fig. 13's 2.67x Bit-Flip gain on BERT-Base versus
its modest gain on ResNet18.

Run:  python examples/roofline_analysis.py
"""

from repro.model.roofline import network_roofline
from repro.utils.tables import format_table
from repro.workloads.nets import bert_base_layers, resnet18_layers


def summarize(label: str, points) -> list:
    memory_bound = [p for p in points if p.memory_bound]
    intensities = sorted(p.arithmetic_intensity for p in points)
    median = intensities[len(intensities) // 2]
    return [label, len(points), len(memory_bound),
            median, points[0].ridge_point]


def main() -> None:
    rows = [
        summarize("ResNet18", network_roofline(resnet18_layers())),
        summarize("BERT-Base @4 tokens",
                  network_roofline(bert_base_layers())),
        summarize("BERT-Base @4, CR=2.3x",
                  network_roofline(bert_base_layers(), weight_cr=2.3)),
        summarize("BERT-Base @256 tokens",
                  network_roofline(bert_base_layers(tokens=256))),
    ]
    print(format_table(
        ["workload", "layers", "memory-bound",
         "median intensity (MAC/B)", "ridge (MAC/B)"],
        rows,
        title="Roofline placement on the modelled BitWave platform",
    ))
    print("\nReading: BERT at token size 4 sits far left of the ridge, so"
          "\ncompression (Bit-Flip's CR) is worth cycles; ResNet18 sits"
          "\nright of it, so only column *skipping* helps.")


if __name__ == "__main__":
    main()
