"""Fig. 4 bench: column sparsity, 2's complement vs sign-magnitude."""

from repro.experiments import fig04_bcs_2c_vs_sm


def test_fig04_sm_multiplies_column_sparsity(benchmark):
    result = benchmark.pedantic(
        fig04_bcs_2c_vs_sm.run, rounds=1, iterations=1)
    print()
    fig04_bcs_2c_vs_sm.main()
    # Paper: 17% (2C) -> 59% (SM), a 3.4x improvement; we assert the
    # multiplicative shape.
    assert result["column_sparsity_sm"] > 2.5 * result["column_sparsity_2c"]
    assert result["column_sparsity_2c"] < 0.25
