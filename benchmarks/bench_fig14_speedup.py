"""Fig. 14 bench: speedup vs SotA accelerators (normalized to SCNN)."""

from repro.experiments import fig14_speedup


def test_fig14_speedup(benchmark, sota_grid):
    results = benchmark.pedantic(fig14_speedup.run, rounds=1, iterations=1)
    print()
    fig14_speedup.main()

    for net, speedups in results.items():
        # BitWave wins on every benchmark.
        assert speedups["BitWave"] == max(speedups.values()), net

    # Paper: 10.1x / 13.25x vs SCNN on the low-value-sparsity nets.
    assert results["cnn_lstm"]["BitWave"] > 8.0
    assert results["bert_base"]["BitWave"] > 8.0

    # Paper: BitWave outperforms Bitlet clearly on every benchmark.
    for net, speedups in results.items():
        assert speedups["BitWave"] / speedups["Bitlet"] > 1.4, net
