"""Throughput microbenchmarks of the core BCS operations.

These use pytest-benchmark's statistical rounds (unlike the one-shot
figure benches) to track the library's own performance: compression,
decompression, column statistics and Bit-Flip on a 1M-weight tensor.
"""

import numpy as np
import pytest

from repro.core.bitcolumn import column_sparsity
from repro.core.bitflip import flip_layer
from repro.core.compression import bcs_compress, bcs_decompress
from repro.sparsity.stats import compute_layer_stats
from repro.utils.rng import seeded_rng


@pytest.fixture(scope="module")
def big_tensor():
    rng = seeded_rng("bench-core")
    w = np.clip(np.round(rng.laplace(0, 9, 1 << 20)), -127, 127)
    return w.astype(np.int8)


def test_bcs_compress_1m(benchmark, big_tensor):
    compressed = benchmark(bcs_compress, big_tensor, 16)
    assert compressed.compression_ratio > 1.0


def test_bcs_decompress_1m(benchmark, big_tensor):
    compressed = bcs_compress(big_tensor, 16)
    restored = benchmark(bcs_decompress, compressed)
    assert np.array_equal(restored, big_tensor)


def test_column_sparsity_1m(benchmark, big_tensor):
    sparsity = benchmark(column_sparsity, big_tensor, 16, "sm")
    assert 0.0 < sparsity < 1.0


def test_layer_stats_1m(benchmark, big_tensor):
    stats = benchmark(compute_layer_stats, big_tensor)
    assert stats.weight_count == big_tensor.size


def test_bitflip_1m(benchmark, big_tensor):
    result = benchmark.pedantic(
        flip_layer, args=(big_tensor, 5, 16), rounds=1, iterations=1)
    assert result.min_zero_columns >= 5
