"""Fig. 6(a)-(d) bench: layer-wise flip sensitivity (tiny presets)."""

from repro.experiments import fig06_sensitivity

#: A weight-light early layer and weight-heavy late layers.
RESNET_LAYERS = ["layer1.0.conv1", "layer4.1.conv2", "fc"]


def test_fig06_sensitivity_resnet18(benchmark):
    curves = benchmark.pedantic(
        fig06_sensitivity.run,
        kwargs=dict(network="resnet18", layers=RESNET_LAYERS,
                    zero_columns=(2, 4, 6), batch=8),
        rounds=1, iterations=1)
    print()
    for layer, scores in curves.items():
        print(layer, {z: round(s, 3) for z, s in scores.items()})
    for layer, scores in curves.items():
        # Fidelity degrades monotonically (weakly) with deeper flips.
        ordered = [scores[z] for z in (2, 4, 6)]
        assert ordered[0] >= ordered[-1] - 0.05, layer
        # Shallow flips are near-lossless (paper: <4 columns negligible).
        assert scores[2] > 0.8, layer


def test_fig06_sensitivity_cnn_lstm(benchmark):
    curves = benchmark.pedantic(
        fig06_sensitivity.run,
        kwargs=dict(network="cnn_lstm", layers=["LSTM.0", "LSTM.1"],
                    zero_columns=(2, 5), batch=4),
        rounds=1, iterations=1)
    print()
    for layer, scores in curves.items():
        print(layer, {z: round(s, 3) for z, s in scores.items()})
        assert scores[2] >= scores[5] - 0.05
        assert scores[2] > 3.5  # PESQ proxy stays high for shallow flips
