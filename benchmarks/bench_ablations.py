"""Ablation benches for the design choices DESIGN.md calls out.

Each bench sweeps one BitWave design parameter and asserts the
directionality the architecture narrative predicts.
"""

from repro.experiments import ablations


def test_ablation_group_size(benchmark):
    results = benchmark.pedantic(
        ablations.group_size_ablation, rounds=1, iterations=1)
    print()
    for g, v in results.items():
        print(f"G={g}: CR={v['cr']:.3f} "
              f"cycles/group={v['mean_cycles_per_group']:.3f}")
    # Larger groups amortize the index but skip fewer columns.
    cycles = [results[g]["mean_cycles_per_group"] for g in (8, 16, 32)]
    assert cycles == sorted(cycles)
    # All supported sizes compress (the layer-wise tunability premise).
    for g in (8, 16, 32):
        assert results[g]["cr"] > 1.0


def test_ablation_sync_domain(benchmark):
    results = benchmark.pedantic(
        ablations.sync_domain_ablation, rounds=1, iterations=1)
    print()
    print({m: round(v, 3) for m, v in results.items()})
    # Effective cycles/group grow monotonically with the lockstep
    # domain and stay within [mean, 8].
    values = [results[m] for m in sorted(results)]
    assert values == sorted(values)
    assert values[-1] <= 8.0


def test_ablation_dram_bandwidth(benchmark):
    results = benchmark.pedantic(
        ablations.dram_bandwidth_ablation, rounds=1, iterations=1)
    print()
    for w, v in results.items():
        print(f"{w} b/c: {v['total_cycles'] / 1e6:.3f} Mcycles, "
              f"DRAM share {v['dram_fraction']:.2f}")
    widths = sorted(results)
    cycles = [results[w]["total_cycles"] for w in widths]
    shares = [results[w]["dram_fraction"] for w in widths]
    # More bandwidth -> fewer cycles, smaller DRAM share: BERT-Base at
    # token size 4 is memory-traffic bound at the paper's design point.
    assert cycles == sorted(cycles, reverse=True)
    assert shares == sorted(shares, reverse=True)
    assert shares[0] > 0.5  # DRAM dominated at 64 b/c


def test_ablation_bitflip_depth(benchmark):
    results = benchmark.pedantic(
        ablations.bitflip_depth_ablation, rounds=1, iterations=1)
    print()
    for z, v in results.items():
        print(f"z={z}: speedup={v['speedup']:.3f} CR={v['cr']:.3f}")
    speedups = [results[z]["speedup"] for z in sorted(results)]
    crs = [results[z]["cr"] for z in sorted(results)]
    assert speedups == sorted(speedups)
    assert crs == sorted(crs)
    # Deep flips triple BERT-Base throughput (the Fig. 13 BF lever).
    assert results[6]["speedup"] > 2.5


def test_ablation_bert_tokens(benchmark):
    results = benchmark.pedantic(
        ablations.bert_token_ablation, rounds=1, iterations=1)
    print()
    for t, v in results.items():
        print(f"tokens={t}: speedup vs HUAA = {v['speedup_vs_huaa']:.3f}")
    # BitWave keeps a consistent advantage across token counts.
    for v in results.values():
        assert v["speedup_vs_huaa"] > 1.5
    # Cycles grow with tokens for both designs.
    bw = [results[t]["bitwave_cycles"] for t in sorted(results)]
    assert bw == sorted(bw)


def test_ablation_dense_precision(benchmark):
    results = benchmark.pedantic(
        ablations.dense_precision_ablation, rounds=1, iterations=1)
    print()
    print({b: round(s, 3) for b, s in results.items()})
    # Dense-mode precision scaling approaches proportional speedup
    # (bounded by the non-compute latency terms).
    assert results[8] == 1.0
    assert results[4] > 1.7
    assert results[2] > results[4] > results[6]
