#!/usr/bin/env python
"""Run the simulator benchmarks and export ``BENCH_sim.json``.

A thin wrapper over ``pytest benchmarks/bench_sim_npu.py`` that
condenses the pytest-benchmark output into a small, diff-friendly JSON
the perf trajectory can track across PRs::

    PYTHONPATH=src python benchmarks/run_sim_bench.py            # full
    PYTHONPATH=src python benchmarks/run_sim_bench.py --quick    # CI smoke

``--quick`` runs only the mid-layer comparison (one statistical group,
no reference pass over the whole suite), which is what the CI workflow
executes on every push.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def collect_obs_phases() -> dict:
    """Phase breakdown of one traced sim-backed evaluation.

    Runs *separately* from the timed benchmark pass (tracing must not
    perturb the numbers the perf trajectory compares), on a mini
    workload: the per-phase table (encode/decode/GEMM/energy/lowering)
    says where sim wall-clock goes, not how much there is of it.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro import obs
    from repro.eval.registry import get_backend
    from repro.eval.request import EvalRequest
    from repro.obs.report import phase_breakdown

    with tempfile.TemporaryDirectory() as tmp:
        obs.configure(tmp)
        try:
            get_backend("sim-vectorized").evaluate(EvalRequest(
                workload="cnn_lstm@frames=2+bins=32+hidden=32",
                accelerator="BitWave",
                backend="sim-vectorized"))
            obs.flush()
            return phase_breakdown(tmp)
        finally:
            obs.configure(None)


def condense(raw: dict) -> dict:
    """Keep the fields future PRs compare: timings + speedups."""
    entries = []
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        entries.append({
            "name": bench["name"],
            "group": bench.get("group"),
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
            "extra_info": bench.get("extra_info", {}),
        })
    speedups = {
        entry["name"]: entry["extra_info"]["speedup"]
        for entry in entries
        if "speedup" in entry["extra_info"]
    }
    headline = (speedups.get("test_validation_suite_speedup")
                or next(iter(speedups.values()), None))
    return {
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine_info": {
            "python": raw.get("machine_info", {}).get("python_version"),
            "cpu_count": os.cpu_count(),
        },
        "headline_speedup": headline,
        "speedups": speedups,
        "benchmarks": entries,
        # Where the sim's time goes (repro.obs spans from a separate
        # traced pass), so the trajectory records the phase mix too.
        "extra_info": {"obs_phases": collect_obs_phases()},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_sim.json"),
                        metavar="FILE", help="condensed output path")
    parser.add_argument("--quick", action="store_true",
                        help="mid-layer smoke only (skip the full-suite "
                             "reference pass)")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "raw.json"
        cmd = [
            sys.executable, "-m", "pytest",
            str(REPO_ROOT / "benchmarks" / "bench_sim_npu.py"),
            "-q", f"--benchmark-json={raw_path}",
        ]
        if args.quick:
            cmd += ["-k", "mid_layer"]
        result = subprocess.run(cmd, env=env, cwd=REPO_ROOT)
        if result.returncode:
            return result.returncode
        raw = json.loads(raw_path.read_text())

    condensed = condense(raw)
    out = Path(args.out)
    out.write_text(json.dumps(condensed, indent=2) + "\n")
    headline = condensed["headline_speedup"]
    print(f"wrote {out}"
          + (f" (headline speedup: {headline:.1f}x)" if headline else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
