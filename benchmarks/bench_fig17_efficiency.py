"""Fig. 17 bench: energy efficiency vs SotA (normalized to SCNN)."""

from repro.experiments import fig17_efficiency


def test_fig17_efficiency(benchmark, sota_grid):
    results = benchmark.pedantic(
        fig17_efficiency.run, rounds=1, iterations=1)
    print()
    fig17_efficiency.main()

    for net, effs in results.items():
        # BitWave is the most efficient on every benchmark.
        assert effs["BitWave"] == max(effs.values()), net

    # Paper: 7.71x vs SCNN and 2.04x vs HUAA on Bert-Base; we assert
    # the winner and the HUAA factor band.
    bert = results["bert_base"]
    assert bert["BitWave"] > 2.0
    assert 1.5 < bert["BitWave"] / bert["HUAA"] < 3.0
