"""Simulator datapath benchmarks: vectorized vs reference backend.

Two granularities:

- ``mid_layer``: one realistic FC layer through both backends -- cheap
  enough for CI smoke (the workflow runs ``-k mid_layer`` with a single
  round and asserts the vectorized backend wins);
- ``validation_suite``: the headline number -- the full (enlarged)
  Section V-B validation suite through the structural simulator, where
  the plane-level rewrite must deliver >= 50x.

``benchmarks/run_sim_bench.py`` exports these results to
``BENCH_sim.json`` for the cross-PR perf trajectory.
"""

import time

import numpy as np
import pytest

from repro.experiments.validation_sim_vs_model import (
    VALIDATION_SUITE,
    simulate_case,
)
from repro.sim.npu import BitWaveNPU

#: Mid-size FC layer (K, C, contexts) for the smoke comparison.
MID_LAYER = (128, 512, 16)

#: Acceptance floor for the suite-level speedup.
SUITE_SPEEDUP_FLOOR = 50.0


def _mid_layer_data():
    k, c, n = MID_LAYER
    rng = np.random.default_rng(42)
    weights = np.clip(np.round(rng.laplace(0, 11, (k, c))),
                      -127, 127).astype(np.int8)
    acts = rng.integers(-128, 128, (n, c)).astype(np.int32)
    return weights, acts


def _run_mid_layer(backend):
    weights, acts = _mid_layer_data()
    return BitWaveNPU(backend=backend).run_fc(weights, acts)


def _simulate_suite(backend):
    return [simulate_case(case, backend=backend)
            for case in VALIDATION_SUITE]


@pytest.mark.benchmark(group="sim-mid-layer")
def test_mid_layer_vectorized_vs_reference(benchmark):
    """CI smoke: the vectorized backend must beat the reference loop."""
    start = time.perf_counter()
    reference = _run_mid_layer("reference")
    reference_s = time.perf_counter() - start

    vectorized = benchmark(_run_mid_layer, "vectorized")

    np.testing.assert_array_equal(reference.outputs, vectorized.outputs)
    assert reference.compute_cycles == vectorized.compute_cycles
    vectorized_s = benchmark.stats.stats.mean
    benchmark.extra_info["reference_s"] = reference_s
    benchmark.extra_info["speedup"] = reference_s / vectorized_s
    assert vectorized_s < reference_s, (
        f"vectorized ({vectorized_s:.3f}s) not faster than reference "
        f"({reference_s:.3f}s)")


@pytest.mark.benchmark(group="sim-validation-suite")
def test_validation_suite_speedup(benchmark):
    """Headline: full validation suite, >= 50x over the reference loop."""
    start = time.perf_counter()
    reference = _simulate_suite("reference")
    reference_s = time.perf_counter() - start

    vectorized = benchmark.pedantic(
        _simulate_suite, args=("vectorized",), rounds=3, iterations=1)

    for ref_run, vec_run in zip(reference, vectorized):
        np.testing.assert_array_equal(ref_run.outputs, vec_run.outputs)
        assert ref_run.compute_cycles == vec_run.compute_cycles
    vectorized_s = benchmark.stats.stats.mean
    speedup = reference_s / vectorized_s
    benchmark.extra_info["reference_s"] = reference_s
    benchmark.extra_info["layers"] = len(VALIDATION_SUITE)
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= SUITE_SPEEDUP_FLOOR, (
        f"suite speedup {speedup:.1f}x below the {SUITE_SPEEDUP_FLOOR:.0f}x "
        f"floor (reference {reference_s:.2f}s, vectorized "
        f"{vectorized_s:.2f}s)")
