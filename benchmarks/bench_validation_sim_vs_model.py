"""Section V-B validation bench: analytical model vs simulator (<6%)."""

from repro.experiments import validation_sim_vs_model


def test_validation_sim_vs_model(benchmark):
    results = benchmark.pedantic(
        validation_sim_vs_model.run, rounds=1, iterations=1)
    print()
    validation_sim_vs_model.main()
    for row in results:
        assert row["deviation"] < 0.06, row["layer"]
