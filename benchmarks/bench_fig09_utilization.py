"""Fig. 9 bench: PE utilization of fixed SUs across layer classes."""

from repro.experiments import fig09_utilization


def test_fig09_utilization(benchmark):
    results = benchmark.pedantic(
        fig09_utilization.run, rounds=1, iterations=1)
    print()
    fig09_utilization.main()
    cases = list(fig09_utilization.CASES)

    # No fixed SU exceeds 80% utilization on every workload class.
    for name, values in results.items():
        assert min(values[c] for c in cases) < 0.8, name

    # The 4096-lane array under-utilizes at least as badly as the
    # 512-PE array for each parallelism style.
    for style in ("XY", "CK", "XFx"):
        big = results[f"{style}-4096"]
        small = results[f"{style}-512"]
        for case in cases:
            assert big[case] <= small[case] + 1e-9, (style, case)
