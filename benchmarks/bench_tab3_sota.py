"""Table III bench: SotA specification comparison."""

import pytest

from repro.experiments import tab3_sota


def test_tab3_sota(benchmark):
    rows = benchmark.pedantic(tab3_sota.run, rounds=1, iterations=1)
    print()
    tab3_sota.main()

    bitwave = rows["BitWave"]
    assert bitwave["tech_nm"] == 16
    assert bitwave["area_mm2"] == pytest.approx(1.138)
    assert bitwave["power_w"] == pytest.approx(0.01756)
    assert bitwave["peak_gops"] == pytest.approx(215.6, rel=0.01)
    assert bitwave["tops_per_w"] == pytest.approx(12.21, rel=0.01)

    # BitWave has the smallest area among the dedicated accelerators
    # at its own node, and the best energy efficiency entry we model.
    assert bitwave["area_mm2"] < rows["SCNN"]["area_mm2"]
    assert bitwave["area_mm2"] < rows["HUAA"]["area_mm2"]
