"""Fig. 18 bench: BitWave area and power breakdown."""

import pytest

from repro.experiments import fig18_area_power


def test_fig18_area_power(benchmark):
    results = benchmark.pedantic(
        fig18_area_power.run, rounds=1, iterations=1)
    print()
    fig18_area_power.main()

    area = results["area_mm2"]
    power = results["power_mw"]
    assert sum(area.values()) == pytest.approx(1.138, rel=1e-6)
    assert sum(power.values()) == pytest.approx(17.56, rel=1e-6)

    # Paper shares: SRAM 55.08% of area; PE array 57.6% of power;
    # dispatcher 10.8% area / 24.4% power.
    assert area["sram"] / 1.138 == pytest.approx(0.5508, abs=1e-3)
    assert power["pe_array"] / 17.56 == pytest.approx(0.576, abs=1e-3)
    assert area["data_dispatcher"] / 1.138 == pytest.approx(0.108, abs=1e-3)
    assert power["data_dispatcher"] / 17.56 == pytest.approx(0.244, abs=1e-3)
