"""Fig. 5 bench: CR vs group size; BCS vs ZRE vs CSR."""

from repro.experiments import fig05_compression


def test_fig05_compression(benchmark):
    results = benchmark.pedantic(
        fig05_compression.run, rounds=1, iterations=1)
    print()
    fig05_compression.main()
    bcs = results["bcs"]
    # Ideal CR monotonically decreases with G.
    ideals = [bcs[g]["ideal"] for g in sorted(bcs)]
    assert ideals == sorted(ideals, reverse=True)
    # G=1's real CR collapses under its index cost.
    assert bcs[1]["real"] < 1.0
    assert bcs[8]["real"] > bcs[1]["real"]
    # BCS (hardware group sizes) beats the value-sparsity formats.
    for g in (8, 16, 32):
        assert bcs[g]["real"] > results["zre"]["real"]
        assert bcs[g]["real"] > results["csr"]["real"]
