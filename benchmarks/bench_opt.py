#!/usr/bin/env python
"""Guided-search smoke: export ``BENCH_opt.json``.

Runs the pinned successive-halving acceptance space
(:func:`repro.opt.halving.smoke_space`) on a cold store and the
accuracy x hardware co-search, asserting the ISSUE's acceptance bar in
the process: the guided run must recover the exhaustive campaign's
(cycles, TOPS/W) Pareto front bit-identically while evaluating at most
40% of the grid, and the co-search must emit a nonempty
accuracy-vs-TOPS/W frontier.  The artifact tracks guided-search cost
(fresh evaluations, probes/s) across PRs the same way
``BENCH_arch.json`` tracks the hardware-description axis::

    PYTHONPATH=src python benchmarks/bench_opt.py
    PYTHONPATH=src python benchmarks/bench_opt.py --out BENCH_opt_ci.json
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The acceptance ceiling on guided cost (fraction of the grid).
MAX_EVAL_FRACTION = 0.40


def run_halving() -> dict:
    from repro.dse.executor import run_campaign
    from repro.dse.store import ResultStore
    from repro.dse.summary import pareto_data
    from repro.opt.halving import smoke_space, successive_halving

    spec = smoke_space()
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        result = successive_halving(spec, ResultStore(Path(tmp) / "sh"))
        elapsed = time.perf_counter() - start

        # The reference: an exhaustive campaign over the same grid.
        reference = ResultStore(Path(tmp) / "full")
        run_campaign(spec, reference)
        exhaustive = pareto_data(spec, reference,
                                 x="cycles", y="tops_per_w")

    guided_keys = [row["key"] for row in result.front]
    exhaustive_keys = [row["key"] for row in exhaustive]
    if guided_keys != exhaustive_keys:
        raise RuntimeError(
            f"guided front {guided_keys} != exhaustive {exhaustive_keys}")
    fraction = result.counts["evaluated"] / result.grid_size
    if fraction > MAX_EVAL_FRACTION:
        raise RuntimeError(
            f"guided run evaluated {fraction:.0%} of the grid "
            f"(> {MAX_EVAL_FRACTION:.0%} ceiling)")
    if result.counts["failed"]:
        raise RuntimeError(f"{result.counts['failed']} probes failed")
    return {
        "spec": spec.name,
        "grid_size": result.grid_size,
        "sampled": len(result.sampled),
        "rounds": len(result.rounds),
        "probes": result.counts["probes"],
        "evaluated": result.counts["evaluated"],
        "eval_fraction": fraction,
        "front_size": len(result.front),
        "front_keys": guided_keys,
        "elapsed_s": elapsed,
        "probes_per_s": result.counts["probes"] / elapsed,
    }


def run_cosearch() -> dict:
    from repro.dse.store import ResultStore
    from repro.opt.cosearch import cosearch

    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        result = cosearch(ResultStore(tmp))
        elapsed = time.perf_counter() - start
    if not result.front:
        raise RuntimeError("co-search produced an empty frontier")
    if result.counts["failed"]:
        raise RuntimeError(f"{result.counts['failed']} probes failed")
    return {
        "network": result.config.network,
        "archs": list(result.config.archs),
        "moves": len(result.history),
        "rows": len(result.rows),
        "front_size": len(result.front),
        "accuracy_span": [result.front[0]["accuracy"],
                          result.front[-1]["accuracy"]],
        "tops_per_w_span": [result.front[-1]["tops_per_w"],
                            result.front[0]["tops_per_w"]],
        "probes": result.counts["probes"],
        "evaluated": result.counts["evaluated"],
        "elapsed_s": elapsed,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_opt.json"),
                        metavar="FILE", help="output path")
    args = parser.parse_args(argv)

    halving = run_halving()
    search = run_cosearch()
    payload = {
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine_info": {"cpu_count": os.cpu_count()},
        "halving": halving,
        "cosearch": search,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out} (halving: {halving['evaluated']}/"
          f"{halving['grid_size']} grid points evaluated, "
          f"front={halving['front_size']}; cosearch: "
          f"{search['front_size']}-point frontier)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
