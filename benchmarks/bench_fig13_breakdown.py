"""Fig. 13 bench: BitWave speedup breakdown (Dense -> DF -> SM -> BF)."""

from repro.experiments import fig13_breakdown


def test_fig13_breakdown(benchmark, sota_grid):
    results = benchmark.pedantic(fig13_breakdown.run, rounds=1, iterations=1)
    print()
    fig13_breakdown.main()

    for net, speedups in results.items():
        # Each added technique is monotone (never slows down).
        assert speedups["Dense"] == 1.0
        assert speedups["+DF"] >= 1.0 - 1e-9
        assert speedups["+DF+SM"] >= speedups["+DF"] - 1e-9
        assert speedups["+DF+SM+BF"] >= speedups["+DF+SM"] - 1e-9

    # Dataflow shines on MobileNetV2 (paper: 2.57x).
    assert results["mobilenetv2"]["+DF"] > 2.0
    # DF barely moves CNN-LSTM / BERT (less diverse layer shapes).
    assert results["cnn_lstm"]["+DF"] < 1.3
    assert results["bert_base"]["+DF"] < 1.3
    # SM alone is marginal on BERT (paper: 1.06x) ...
    sm_gain = results["bert_base"]["+DF+SM"] / results["bert_base"]["+DF"]
    assert 1.0 <= sm_gain < 1.3
    # ... but Bit-Flip unlocks a large further gain (paper: 2.67x).
    bf_gain = results["bert_base"]["+DF+SM+BF"] / results["bert_base"]["+DF+SM"]
    assert bf_gain > 1.6
