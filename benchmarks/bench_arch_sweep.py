#!/usr/bin/env python
"""Arch-sweep throughput smoke: export ``BENCH_arch.json``.

Runs a small technology-sensitivity campaign -- two archs x two
networks x both evaluation backends (analytical model and vectorized
simulator) -- against a throwaway store and records points/second, so
the perf trajectory of the hardware-description axis is tracked across
PRs the same way ``BENCH_sim.json`` tracks the datapath::

    PYTHONPATH=src python benchmarks/bench_arch_sweep.py
    PYTHONPATH=src python benchmarks/bench_arch_sweep.py --jobs 2
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The smoke grid: mini workloads keep the sim side interactive.
ARCHS = ("bitwave-16nm", "bitwave-16nm@sram_pj=0.5+group=16")
NETWORKS = ("cnn_lstm@frames=4+bins=64+hidden=64",
            "cnn_lstm@frames=2+bins=32+hidden=32")
BACKENDS = ("model", "sim-vectorized")


def run_sweep(jobs: int) -> dict:
    from repro.dse.executor import run_campaign
    from repro.dse.spec import CampaignSpec
    from repro.dse.store import ResultStore

    spec = CampaignSpec(
        name="bench-arch-sweep",
        accelerators=("BitWave",),
        networks=NETWORKS,
        backends=BACKENDS,
        archs=ARCHS,
    )
    points = spec.points()
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        run = run_campaign(spec, ResultStore(tmp), jobs=jobs)
        elapsed = time.perf_counter() - start
    if run.evaluated != len(points):
        raise RuntimeError(
            f"expected {len(points)} fresh evaluations, got {run.evaluated}")
    priced = sum(1 for result in run.results.values()
                 if result.models_energy)
    if priced != len(points):
        raise RuntimeError(
            f"only {priced}/{len(points)} results price energy; the "
            f"sim-energy epilog regressed")
    return {
        "points": len(points),
        "elapsed_s": elapsed,
        "points_per_s": len(points) / elapsed,
        "jobs": jobs,
        "archs": list(ARCHS),
        "networks": list(NETWORKS),
        "backends": list(BACKENDS),
        # Per-phase breakdown from a second, traced pass over the same
        # grid (fresh store) -- kept out of the timed pass above so
        # tracing overhead never pollutes the points/s trajectory.
        "extra_info": {"obs_phases": traced_phase_breakdown(jobs)},
    }


def traced_phase_breakdown(jobs: int) -> dict:
    """Re-run the sweep grid with repro.obs tracing on; return the
    span phase table (name -> count/total/mean/p50/p95/max)."""
    from repro import obs
    from repro.dse.executor import run_campaign
    from repro.dse.spec import CampaignSpec
    from repro.dse.store import ResultStore
    from repro.obs.report import phase_breakdown

    spec = CampaignSpec(
        name="bench-arch-sweep-traced",
        accelerators=("BitWave",),
        networks=NETWORKS,
        backends=BACKENDS,
        archs=ARCHS,
    )
    with tempfile.TemporaryDirectory() as store_tmp, \
            tempfile.TemporaryDirectory() as trace_tmp:
        obs.configure(trace_tmp)
        try:
            run_campaign(spec, ResultStore(store_tmp), jobs=jobs)
            obs.flush()
            return phase_breakdown(trace_tmp)
        finally:
            obs.configure(None)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_arch.json"),
                        metavar="FILE", help="output path")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="executor worker processes (default 1)")
    args = parser.parse_args(argv)

    sweep = run_sweep(args.jobs)
    payload = {
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine_info": {"cpu_count": os.cpu_count()},
        "sweep": sweep,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out} ({sweep['points']} points, "
          f"{sweep['points_per_s']:.2f} points/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
