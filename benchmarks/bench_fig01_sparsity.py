"""Fig. 1 bench: value vs bit sparsity across the four Int8 networks."""

from repro.experiments import fig01_sparsity


def test_fig01_sparsity(benchmark):
    results = benchmark.pedantic(fig01_sparsity.run, rounds=1, iterations=1)
    print()
    fig01_sparsity.main()
    for net, summary in results.items():
        # Paper bands: SR(2C) in 5.67-32.5, SR(SM) in 8.73-47.5 (we
        # accept the band's low edge with a small tolerance).
        assert summary["sr_2c"] > 5.0, net
        assert summary["sr_sm"] > summary["sr_2c"], net
        assert summary["bit_sparsity_sm"] > 0.6, net
