"""Fig. 6(e)-(h) bench: CR vs accuracy -- PTQ vs SM vs SM+Bit-Flip."""

from repro.experiments import fig06_pareto


def test_fig06_pareto_resnet18(benchmark):
    series = benchmark.pedantic(
        fig06_pareto.run,
        kwargs=dict(network="resnet18", batch=8,
                    zero_columns=(3, 4, 5), ptq_bits=(6, 4)),
        rounds=1, iterations=1)
    print()
    for label, points in series.items():
        print(label, [(round(cr, 2), round(f, 3)) for cr, f in points])

    sm_cr, sm_fidelity = series["Int8+SM"][0]
    # Lossless SM compression: fidelity exactly 1.0 at CR > 1.
    assert sm_fidelity == 1.0
    assert sm_cr > 1.0

    # In the high-fidelity region (the paper's "negligible accuracy
    # drop"), SM+BF reaches a strictly better CR than PTQ.
    def best_cr(label):
        qualifying = [cr for cr, fid in series[label] if fid >= 0.9]
        return max(qualifying, default=0.0)

    assert best_cr("Int8+SM+BF") > best_cr("Int8+PTQ")
    # BF reaches ~2x CR at high fidelity (paper: 2.04x within 0.5%).
    assert best_cr("Int8+SM+BF") > 1.5
