"""Fig. 15 bench: energy consumption vs SotA (normalized to BitWave)."""

from repro.experiments import fig15_energy


def test_fig15_energy(benchmark, sota_grid):
    results = benchmark.pedantic(fig15_energy.run, rounds=1, iterations=1)
    print()
    fig15_energy.main()

    for net, energies in results.items():
        assert energies["BitWave"] == 1.0
        # Everyone else pays more energy.
        for acc, value in energies.items():
            assert value >= 1.0, (net, acc)

    # SCNN is the worst option on the weight-intensive networks
    # (paper: up to 13.23x on Bert-Base; our DRAM-inclusive model
    # compresses the factor but preserves the ordering).
    for net in ("cnn_lstm", "bert_base"):
        assert results[net]["SCNN"] == max(results[net].values())
        assert results[net]["SCNN"] > 2.5
