"""Benchmark-suite configuration.

Each bench regenerates one paper table/figure.  Experiment harnesses
that evaluate the full 6-accelerator x 4-network grid are expensive, so
they run with ``benchmark.pedantic(rounds=1)``; the cheap core-operation
benches use normal statistical rounds.
"""

import pytest


@pytest.fixture(scope="session")
def sota_grid():
    """Force the shared evaluation cache once per session."""
    from repro.eval.grids import sota_grid as eval_sota_grid

    return eval_sota_grid()
