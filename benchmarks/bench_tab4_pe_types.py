"""Table IV bench: the three PE types' area/power."""

import pytest

from repro.experiments import tab4_pe_types


def test_tab4_pe_types(benchmark):
    results = benchmark.pedantic(tab4_pe_types.run, rounds=1, iterations=1)
    print()
    tab4_pe_types.main()

    bcse = results["bit_column_serial"]
    serial = results["bit_serial"]
    # Paper: 1.26x bit-parallel area, 1.25x less power; the plain
    # bit-serial PE is the worst of both.
    assert bcse["area_ratio"] == pytest.approx(1.26, abs=0.01)
    assert 1 / bcse["power_ratio"] == pytest.approx(1.25, abs=0.01)
    assert serial["area_ratio"] > 4.0
    assert serial["power_ratio"] > 2.5
