"""Fig. 16 bench: BitWave energy breakdown including off-chip DRAM."""

from repro.experiments import fig16_energy_breakdown


def test_fig16_energy_breakdown(benchmark, sota_grid):
    results = benchmark.pedantic(
        fig16_energy_breakdown.run, rounds=1, iterations=1)
    print()
    fig16_energy_breakdown.main()

    for net, shares in results.items():
        assert abs(sum(shares.values()) - 1.0) < 1e-9, net

    # Paper: DRAM dominates, especially for weight-intensive networks.
    for net in ("resnet18", "cnn_lstm", "bert_base"):
        assert results[net]["dram"] > 0.5, net
    # BERT (85M weights at token size 4) is the most DRAM-bound.
    assert results["bert_base"]["dram"] == max(
        results[net]["dram"] for net in results)
