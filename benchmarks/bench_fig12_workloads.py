"""Fig. 12 (left) bench: the benchmark workload table."""

import pytest

from repro.experiments import fig12_workloads


def test_fig12_workloads(benchmark):
    results = benchmark.pedantic(fig12_workloads.run, rounds=1, iterations=1)
    print()
    fig12_workloads.main()
    assert results["resnet18"]["mparams"] == pytest.approx(11.7, rel=0.05)
    assert results["mobilenetv2"]["mparams"] == pytest.approx(3.4, rel=0.15)
    assert results["bert_base"]["mparams"] == pytest.approx(85, rel=0.02)
    # CNN-LSTM: LSTM-dominated weight budget of a few Mparams.
    assert 2 < results["cnn_lstm"]["mparams"] < 8
