"""Tests for the fidelity proxies and evaluator factory."""

import numpy as np
import pytest

from repro.models import build_cnn_lstm
from repro.models.fidelity import (
    PESQ_MAX,
    f1_proxy,
    make_evaluator,
    pesq_proxy,
    top1_agreement,
)


class TestTop1Agreement:
    def test_identical_logits(self):
        logits = np.random.default_rng(0).normal(0, 1, (8, 10))
        assert top1_agreement(logits, logits) == 1.0

    def test_all_different(self):
        a = np.zeros((4, 3))
        a[:, 0] = 1.0
        b = np.zeros((4, 3))
        b[:, 1] = 1.0
        assert top1_agreement(a, b) == 0.0

    def test_partial(self):
        a = np.eye(4)
        b = a.copy()
        b[0] = np.roll(b[0], 1)
        assert top1_agreement(a, b) == 0.75

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            top1_agreement(np.zeros((2, 3)), np.zeros((3, 2)))


class TestPesqProxy:
    def test_identical_scores_max(self):
        x = np.random.default_rng(1).normal(0, 1, (4, 8))
        assert pesq_proxy(x, x) == PESQ_MAX

    def test_monotone_in_noise(self):
        rng = np.random.default_rng(2)
        ref = rng.normal(0, 1, (4, 64))
        scores = [
            pesq_proxy(ref + rng.normal(0, s, ref.shape), ref)
            for s in (0.01, 0.1, 0.5, 2.0)
        ]
        assert scores == sorted(scores, reverse=True)

    def test_bounded(self):
        ref = np.ones((2, 4))
        noisy = ref + 100.0
        assert 1.0 <= pesq_proxy(noisy, ref) <= PESQ_MAX


class TestF1Proxy:
    def test_identical(self):
        logits = np.random.default_rng(3).normal(0, 1, (4, 16, 2))
        assert f1_proxy(logits, logits) == 1.0

    def test_disjoint_spans_zero(self):
        a = np.zeros((1, 8, 2))
        a[0, 0, 0] = a[0, 1, 1] = 10.0  # span [0, 1]
        b = np.zeros((1, 8, 2))
        b[0, 5, 0] = b[0, 6, 1] = 10.0  # span [5, 6]
        assert f1_proxy(a, b) == 0.0

    def test_partial_overlap(self):
        a = np.zeros((1, 8, 2))
        a[0, 0, 0] = a[0, 3, 1] = 10.0  # span [0..3]
        b = np.zeros((1, 8, 2))
        b[0, 2, 0] = b[0, 5, 1] = 10.0  # span [2..5]
        # Overlap 2 tokens, |a|=4, |b|=4: F1 = 0.5.
        assert f1_proxy(a, b) == pytest.approx(0.5)

    def test_end_clamped_to_start(self):
        a = np.zeros((1, 8, 2))
        a[0, 5, 0] = 10.0  # start 5
        a[0, 1, 1] = 10.0  # end 1 < start -> clamped to 5
        assert f1_proxy(a, a) == 1.0


class TestMakeEvaluator:
    def test_identity_weights_score_max(self):
        model = build_cnn_lstm("tiny")
        evaluate = make_evaluator(model, model.sample_inputs(2))
        assert evaluate(model.weights_int8()) == PESQ_MAX

    def test_restores_original_weights(self):
        model = build_cnn_lstm("tiny")
        snapshot = model.weights_int8()
        evaluate = make_evaluator(model, model.sample_inputs(1))
        zeroed = {k: np.zeros_like(v) for k, v in snapshot.items()}
        evaluate(zeroed)
        for name, packed in model.weights_int8().items():
            assert np.array_equal(packed, snapshot[name])

    def test_degradation_detected(self):
        model = build_cnn_lstm("tiny")
        evaluate = make_evaluator(model, model.sample_inputs(2))
        zeroed = {k: np.zeros_like(v) for k, v in model.weights_int8().items()}
        assert evaluate(zeroed) < PESQ_MAX
