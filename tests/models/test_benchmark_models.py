"""Tests for the four benchmark networks (tiny presets for inference)."""

import numpy as np
import pytest

from repro.models import (
    build_bert_base,
    build_cnn_lstm,
    build_mobilenetv2,
    build_resnet18,
)


class TestResNet18:
    @pytest.fixture(scope="class")
    def model(self):
        return build_resnet18("tiny")

    def test_paper_layer_names_present(self, model):
        for name in ("conv1", "layer1.0.conv1", "layer4.1.conv2", "fc"):
            assert name in model

    def test_20_conv_layers_plus_fc(self, model):
        names = [n for n, _ in model.named_quantized_layers()]
        convs = [n for n in names if n != "fc"]
        # 1 stem + 16 block convs + 3 downsample convs = 20.
        assert len(convs) == 20

    def test_forward_logits_shape(self, model):
        x = model.sample_inputs(2)
        assert model.forward(x).shape == (2, 10)

    def test_forward_deterministic(self, model):
        x = model.sample_inputs(1)
        np.testing.assert_array_equal(model.forward(x), model.forward(x))

    def test_paper_preset_weight_count(self):
        model = build_resnet18("paper")
        # Published ResNet18 has ~11.7M params; conv+fc (no BN) ~11.68M.
        assert 11e6 < model.total_weights < 12e6

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="preset"):
            build_resnet18("huge")


class TestMobileNetV2:
    @pytest.fixture(scope="class")
    def model(self):
        return build_mobilenetv2("tiny")

    def test_52_conv_layers(self, model):
        assert model.num_conv_layers == 52
        assert "L.0" in model
        assert "L.51" in model
        assert "fc" in model

    def test_paper_flip_targets_exist(self, model):
        for name in ("L.47", "L.48", "L.50", "L.51"):
            assert name in model

    def test_forward_shape(self, model):
        x = model.sample_inputs(2)
        assert model.forward(x).shape == (2, 10)

    def test_paper_preset_weight_count(self):
        model = build_mobilenetv2("paper")
        # Published MobileNetV2 has ~3.4M params.
        assert 3e6 < model.total_weights < 4e6

    def test_late_layers_hold_majority_of_weights(self):
        model = build_mobilenetv2("paper")
        counts = model.weight_counts()
        late = sum(counts[n] for n in ("L.47", "L.48", "L.50", "L.51", "fc"))
        assert late / model.total_weights > 0.5


class TestCnnLstm:
    @pytest.fixture(scope="class")
    def model(self):
        return build_cnn_lstm("tiny")

    def test_layer_names(self, model):
        for name in ("conv.0", "conv.1", "LSTM.0", "LSTM.1", "fc"):
            assert name in model

    def test_forward_mask_same_shape(self, model):
        x = model.sample_inputs(2)
        out = model.forward(x)
        assert out.shape == x.shape

    def test_mask_bounded_by_input(self, model):
        x = model.sample_inputs(1)
        out = model.forward(x)
        # Sigmoid mask: output magnitude cannot exceed the input.
        assert np.all(np.abs(out) <= np.abs(x) + 1e-6)

    def test_lstm_holds_majority_of_weights(self):
        model = build_cnn_lstm("paper")
        counts = model.weight_counts()
        lstm = counts["LSTM.0"] + counts["LSTM.1"]
        # Paper: LSTM.0 + LSTM.1 hold ~80% of the weights.
        assert lstm / model.total_weights > 0.75


class TestBertBase:
    @pytest.fixture(scope="class")
    def model(self):
        return build_bert_base("tiny")

    def test_block_names(self, model):
        names = model.block_layer_names(0)
        assert f"bert.encoder.layer.0.attention.query" in names
        assert f"bert.encoder.layer.0.ffn.output" in names
        assert len(names) == 6

    def test_forward_span_logits(self, model):
        tokens = model.sample_inputs(3)
        out = model.forward(tokens)
        assert out.shape == (3, model.seq_len, 2)

    def test_paper_preset_dimensions(self):
        model = build_bert_base("paper")
        assert model.num_blocks == 12
        assert model.dim == 768
        # Encoder weights: 12 x (4 x 768^2 + 2 x 768 x 3072) = ~85M.
        encoder = sum(
            count for name, count in model.weight_counts().items()
            if name.startswith("bert.encoder"))
        assert 80e6 < encoder < 90e6

    def test_blocks_have_equal_weight_counts(self):
        model = build_bert_base("tiny")
        counts = model.weight_counts()

        def block_total(i):
            return sum(counts[n] for n in model.block_layer_names(i))

        totals = {block_total(i) for i in range(model.num_blocks)}
        assert len(totals) == 1  # paper: "weights size of each layer equal"
