"""ProgressPrinter live lines: rate, ETA, and cached suppression."""

from __future__ import annotations

import io

from repro.utils.progress import ProgressPrinter, format_eta


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_printer():
    stream = io.StringIO()
    clock = FakeClock()
    return ProgressPrinter(stream=stream, clock=clock), stream, clock


class TestFormatEta:
    def test_seconds(self):
        assert format_eta(0.0) == "0s"
        assert format_eta(42.4) == "42s"

    def test_minutes(self):
        assert format_eta(192) == "3m12s"
        assert format_eta(60) == "1m00s"

    def test_hours(self):
        assert format_eta(3840) == "1h04m"

    def test_negative_clamped(self):
        assert format_eta(-5) == "0s"


class TestProgressPrinter:
    def test_fresh_point_line_has_rate_and_eta(self):
        printer, stream, clock = make_printer()
        clock.advance(2.0)  # one fresh point in 2s -> 0.50/s
        printer(1, 3, "SCNN/cnn_lstm", cached=False, elapsed_s=2.0)
        line = stream.getvalue().strip()
        assert line.startswith("[1/3] SCNN/cnn_lstm (2.00s)")
        # 2 points remain at 0.50/s -> 4s out.
        assert "[0.50/s, ETA 4s]" in line

    def test_rate_tracks_completions(self):
        printer, stream, clock = make_printer()
        clock.advance(1.0)
        printer(1, 4, "a", cached=False, elapsed_s=1.0)
        clock.advance(1.0)
        printer(2, 4, "b", cached=False, elapsed_s=1.0)
        lines = stream.getvalue().strip().splitlines()
        # 2 fresh in 2s -> 1.00/s, 2 remaining -> ETA 2s.
        assert "[1.00/s, ETA 2s]" in lines[1]

    def test_cached_points_get_no_pace(self):
        printer, stream, clock = make_printer()
        clock.advance(1.0)
        printer(1, 2, "a", cached=True)
        line = stream.getvalue().strip()
        assert line == "[1/2] a (cached)"
        assert "ETA" not in line

    def test_cached_points_do_not_distort_rate(self):
        printer, stream, clock = make_printer()
        clock.advance(1.0)
        printer(1, 3, "a", cached=True)
        clock.advance(1.0)
        printer(2, 3, "b", cached=False, elapsed_s=1.0)
        lines = stream.getvalue().strip().splitlines()
        # 1 fresh completion over the 2s wall -> 0.50/s, not 1.00/s.
        assert "[0.50/s, ETA 2s]" in lines[1]

    def test_last_point_has_rate_but_no_eta(self):
        printer, stream, clock = make_printer()
        clock.advance(2.0)
        printer(2, 2, "done", cached=False, elapsed_s=2.0)
        line = stream.getvalue().strip()
        assert "[0.50/s]" in line
        assert "ETA" not in line

    def test_disabled_prints_nothing(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream, enabled=False)
        printer(1, 2, "a", cached=False, elapsed_s=1.0)
        assert stream.getvalue() == ""

    def test_width_pads_to_total(self):
        printer, stream, clock = make_printer()
        clock.advance(1.0)
        printer(7, 100, "x", cached=True)
        assert stream.getvalue().startswith("[  7/100]")
