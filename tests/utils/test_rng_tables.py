"""Tests for repro.utils.rng and repro.utils.tables."""

import numpy as np
import pytest

from repro.utils.rng import seeded_rng
from repro.utils.tables import format_table


class TestSeededRng:
    def test_same_tokens_same_stream(self):
        a = seeded_rng("net", "layer", 3)
        b = seeded_rng("net", "layer", 3)
        assert np.array_equal(a.integers(0, 100, 10), b.integers(0, 100, 10))

    def test_different_tokens_differ(self):
        a = seeded_rng("net", "layer", 3)
        b = seeded_rng("net", "layer", 4)
        assert not np.array_equal(a.integers(0, 1 << 30, 8), b.integers(0, 1 << 30, 8))

    def test_token_concatenation_not_ambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        a = seeded_rng("ab", "c")
        b = seeded_rng("a", "bc")
        assert not np.array_equal(a.integers(0, 1 << 30, 8), b.integers(0, 1 << 30, 8))


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "x"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["h"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159265]])
        assert "3.142" in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])
