"""Tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.bits import pack_bits, popcount8, unpack_bits


class TestUnpackBits:
    def test_single_value_msb_first(self):
        planes = unpack_bits(np.array([0b1000_0001], dtype=np.uint8))
        assert planes.tolist() == [[1, 0, 0, 0, 0, 0, 0, 1]]

    def test_zero(self):
        assert unpack_bits(np.array([0], dtype=np.uint8)).sum() == 0

    def test_all_ones(self):
        assert unpack_bits(np.array([255], dtype=np.uint8)).sum() == 8

    def test_shape_appends_axis(self):
        values = np.zeros((3, 5), dtype=np.uint8)
        assert unpack_bits(values).shape == (3, 5, 8)

    def test_known_pattern(self):
        planes = unpack_bits(np.array([0b0101_1010], dtype=np.uint8))
        assert planes.tolist() == [[0, 1, 0, 1, 1, 0, 1, 0]]


class TestPackBits:
    def test_roundtrip_arbitrary(self):
        values = np.arange(256, dtype=np.uint8)
        assert np.array_equal(pack_bits(unpack_bits(values)), values)

    def test_rejects_wrong_trailing_axis(self):
        with pytest.raises(ValueError, match="trailing axis"):
            pack_bits(np.zeros((4, 7), dtype=np.uint8))

    @given(arrays(np.uint8, st.integers(0, 64)))
    def test_roundtrip_property(self, values):
        assert np.array_equal(pack_bits(unpack_bits(values)), values)


class TestPopcount8:
    def test_matches_python_bin(self):
        values = np.arange(256, dtype=np.uint8)
        expected = [bin(v).count("1") for v in range(256)]
        assert popcount8(values).tolist() == expected

    def test_preserves_shape(self):
        assert popcount8(np.zeros((2, 3), dtype=np.uint8)).shape == (2, 3)
