"""The Objective adapter: cache sharing, retries, and provenance.

Acceptance pins: a probe of a point an exhaustive campaign already
stored evaluates nothing; an injected ``crash:site=opt`` plan is healed
by the retry loop; poison error types fail fast; and every record a
guided probe writes carries ``origin``/``round`` provenance that the
summary and Pareto JSON rows surface.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.dse.executor import run_campaign
from repro.dse.spec import CampaignSpec, EvalPoint
from repro.dse.store import ResultStore
from repro.dse.summary import pareto_data, summary_data
from repro.opt.objective import Objective

POINT = EvalPoint(accelerator="BitWave",
                  network="cnn_lstm@frames=2+bins=32+hidden=32")


def _store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


class TestCaching:
    def test_second_probe_is_a_store_hit(self, tmp_path):
        objective = Objective(_store(tmp_path), origin="opt:test")
        first = objective.probe(POINT)
        second = objective.probe(POINT)
        assert first.ok and not first.cached and first.attempts == 1
        assert second.ok and second.cached and second.attempts == 0
        assert second.result == first.result
        assert objective.counts() == {
            "probes": 2, "evaluated": 1, "saved": 1, "failed": 0}

    def test_exhaustive_run_prewarms_guided_probes(self, tmp_path):
        """The cache-sharing contract: guided probes of points an
        exhaustive campaign stored evaluate nothing."""
        store = _store(tmp_path)
        spec = CampaignSpec(name="warm", accelerators=("BitWave",),
                            networks=(POINT.network,))
        run = run_campaign(spec, store)
        assert run.evaluated == 1
        objective = Objective(store, origin="opt:test")
        probe = objective.probe(POINT)
        assert probe.ok and probe.cached
        assert objective.evaluated == 0

    def test_guided_probe_prewarms_exhaustive_run(self, tmp_path):
        store = _store(tmp_path)
        Objective(store, origin="opt:test").probe(POINT)
        spec = CampaignSpec(name="warm", accelerators=("BitWave",),
                            networks=(POINT.network,))
        run = run_campaign(spec, store)
        assert run.evaluated == 0 and run.cached == 1


class TestFailureTolerance:
    def test_injected_crash_is_healed_by_retry(self, tmp_path):
        faults.configure("seed=7,crash:1:attempt<1:site=opt")
        objective = Objective(_store(tmp_path), origin="opt:test",
                              sleep=False)
        probe = objective.probe(POINT)
        assert probe.ok and probe.attempts == 2
        record = objective.router.record(POINT)
        assert record["attempts"] == 2
        assert "InjectedFault" in record["last_error"]

    def test_retry_budget_exhausted_returns_failed_probe(self, tmp_path):
        faults.configure("seed=7,crash:1:site=opt")  # every attempt
        objective = Objective(_store(tmp_path), origin="opt:test",
                              sleep=False)
        probe = objective.probe(POINT)
        assert not probe.ok and probe.result is None
        assert probe.attempts == objective.policy.max_attempts
        assert "InjectedFault" in probe.error
        assert objective.failed == 1
        # Nothing broken was persisted: the store has no record.
        assert objective.router.record(POINT) is None

    def test_poison_error_fails_fast(self, tmp_path, monkeypatch):
        class _Poison:
            def evaluate(self, request):
                raise ValueError("deterministic bug")

            def fingerprint(self):
                return "poison"

        monkeypatch.setattr("repro.opt.objective.get_backend",
                            lambda name: _Poison())
        objective = Objective(_store(tmp_path), origin="opt:test",
                              sleep=False)
        probe = objective.probe(POINT)
        assert not probe.ok and probe.attempts == 1
        assert probe.error.startswith("ValueError")

    def test_transient_error_is_retried(self, tmp_path, monkeypatch):
        from repro.eval.registry import get_backend
        real = get_backend(POINT.backend)
        calls = []

        class _Flaky:
            def evaluate(self, request):
                calls.append(request.key())
                if len(calls) == 1:
                    raise RuntimeError("weather")
                return real.evaluate(request)

            def fingerprint(self):
                return real.fingerprint()

        monkeypatch.setattr("repro.opt.objective.get_backend",
                            lambda name: _Flaky())
        objective = Objective(_store(tmp_path), origin="opt:test",
                              sleep=False)
        probe = objective.probe(POINT)
        assert probe.ok and probe.attempts == 2 and len(calls) == 2


class TestProvenance:
    def test_record_extra_carries_origin_and_round(self, tmp_path):
        objective = Objective(_store(tmp_path), origin="opt:test")
        objective.probe(POINT, round_index=3)
        record = objective.router.record(POINT)
        assert record["extra"] == {"origin": "opt:test", "round": 3}

    def test_summary_and_pareto_rows_surface_provenance(self, tmp_path):
        store = _store(tmp_path)
        spec = CampaignSpec(name="prov", accelerators=("BitWave",),
                            networks=(POINT.network,))
        Objective(store, origin="opt:test").probe(POINT)
        (row,) = summary_data(spec, store)
        assert row["origin"] == "opt:test" and row["round"] == 0
        (prow,) = pareto_data(spec, store, x="cycles", y="tops_per_w")
        assert prow["origin"] == "opt:test" and prow["round"] == 0

    def test_exhaustive_records_read_as_origin_none(self, tmp_path):
        store = _store(tmp_path)
        spec = CampaignSpec(name="prov", accelerators=("BitWave",),
                            networks=(POINT.network,))
        run_campaign(spec, store)
        (row,) = summary_data(spec, store)
        assert row["origin"] is None and row["round"] is None


class TestFidelityOptions:
    def test_options_change_the_cache_key(self, tmp_path):
        from repro.eval.request import EvalOptions
        objective = Objective(_store(tmp_path), origin="opt:test")
        default = objective.request_for(POINT)
        reduced = objective.request_for(
            POINT, EvalOptions(sim_max_contexts=8))
        assert default.key() != reduced.key()
        assert default.key() == POINT.key()
