"""Shared hygiene for the guided-search tests: no fault plan, point
context, or trace sink leaks into (or out of) any test."""

from __future__ import annotations

import pytest

from repro import faults, obs


@pytest.fixture(autouse=True)
def _clean_hooks():
    yield
    faults.configure(None)
    faults.clear_point_context()
    obs.configure(None)
