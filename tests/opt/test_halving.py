"""Successive halving: determinism, cache sharing, and the acceptance
pin -- the seeded run over the pinned smoke space recovers the
exhaustive campaign's (cycles, TOPS/W) Pareto front bit-identically
while evaluating at most 40% of the grid.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.dse.executor import run_campaign
from repro.dse.retry import RetryPolicy
from repro.dse.spec import EvalPoint
from repro.dse.store import ResultStore
from repro.dse.summary import pareto_data
from repro.eval.request import EvalOptions
from repro.opt.halving import (
    HalvingConfig,
    _round_options,
    sample_candidates,
    smoke_space,
    successive_halving,
)


@pytest.fixture(scope="module")
def fresh_run(tmp_path_factory):
    """One seeded halving run on a cold store (shared: it is the
    expensive part of this module)."""
    store = ResultStore(tmp_path_factory.mktemp("sh-fresh"))
    result = successive_halving(smoke_space(), store)
    return store, result


class TestDeterminism:
    def test_same_seed_same_trajectory_and_front(self, fresh_run,
                                                 tmp_path):
        _, first = fresh_run
        second = successive_halving(
            smoke_space(), ResultStore(tmp_path / "replay"))
        assert second.sampled == first.sampled
        assert second.trajectory == first.trajectory
        assert second.rounds == first.rounds
        assert second.survivors == first.survivors
        assert second.front == first.front

    def test_candidate_draw_ignores_grid_expansion_order(self):
        spec = smoke_space()
        shuffled = replace(
            spec,
            accelerators=tuple(reversed(spec.accelerators)),
            networks=tuple(reversed(spec.networks)))
        drawn = sample_candidates(spec, seed=73, sample=12)
        redrawn = sample_candidates(shuffled, seed=73, sample=12)
        assert [p.key() for p in drawn] == [p.key() for p in redrawn]

    def test_different_seed_different_draw(self):
        spec = smoke_space()
        a = [p.key() for p in sample_candidates(spec, seed=73, sample=12)]
        b = [p.key() for p in sample_candidates(spec, seed=74, sample=12)]
        assert a != b


class TestCacheSharing:
    def test_halving_after_exhaustive_evaluates_nothing(self, fresh_run,
                                                        tmp_path):
        _, reference = fresh_run
        store = ResultStore(tmp_path / "warm")
        run_campaign(smoke_space(), store)
        result = successive_halving(smoke_space(), store)
        assert result.counts["evaluated"] == 0
        assert result.counts["saved"] == result.counts["probes"]
        # The warm trajectory and front match the cold run exactly:
        # caching changes cost, never decisions.
        assert result.trajectory == reference.trajectory
        assert result.front == reference.front

    def test_rerun_on_own_store_is_all_hits(self, fresh_run):
        store, first = fresh_run
        again = successive_halving(smoke_space(), store)
        assert again.counts["evaluated"] == 0
        assert again.trajectory == first.trajectory


class TestAcceptance:
    """ISSUE pin: guided run == exhaustive front at <= 40% of the cost."""

    def test_front_matches_exhaustive_bit_identically(self, fresh_run,
                                                      tmp_path):
        _, result = fresh_run
        spec = smoke_space()
        store = ResultStore(tmp_path / "exhaustive")
        run_campaign(spec, store)
        exhaustive = pareto_data(spec, store, x="cycles", y="tops_per_w")
        assert [r["key"] for r in result.front] == \
            [r["key"] for r in exhaustive]
        for guided, full in zip(result.front, exhaustive):
            assert guided["cycles"] == full["cycles"]
            assert guided["tops_per_w"] == full["tops_per_w"]

    def test_evaluations_at_most_forty_percent_of_grid(self, fresh_run):
        _, result = fresh_run
        assert result.grid_size == 36
        assert result.counts["failed"] == 0
        assert result.counts["evaluated"] / result.grid_size <= 0.40

    def test_round_schedule_halves_to_one_survivor(self, fresh_run):
        _, result = fresh_run
        assert [r["candidates"] for r in result.rounds] == [12, 6, 3, 2]
        assert len(result.survivors) == 1
        # The winner survives every round after its first appearance.
        winner = result.survivors[0]
        assert all(winner in r["survivors"] for r in result.rounds)


class TestFidelityLadder:
    def test_model_points_never_ride_the_ladder(self):
        config = HalvingConfig(sim_contexts=(4, 16))
        point = EvalPoint(accelerator="BitWave", network="cnn_lstm")
        assert _round_options(point, 0, config) is None

    def test_sim_points_probe_reduced_then_full(self):
        config = HalvingConfig(sim_contexts=(4, 16))
        point = EvalPoint(accelerator="BitWave", network="cnn_lstm",
                          backend="sim-vectorized")
        assert _round_options(point, 0, config) == \
            EvalOptions(sim_max_contexts=4)
        assert _round_options(point, 1, config) == \
            EvalOptions(sim_max_contexts=16)
        assert _round_options(point, 2, config) is None


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            HalvingConfig(eta=1)
        with pytest.raises(ValueError):
            HalvingConfig(sample=-1)
        with pytest.raises(ValueError):
            HalvingConfig(min_survivors=0)
        with pytest.raises(ValueError):
            HalvingConfig(metric="nope")

    def test_retry_policy_defaults_from_spec(self, tmp_path):
        spec = replace(smoke_space(), retry=RetryPolicy(max_attempts=5))
        result = successive_halving(
            spec, ResultStore(tmp_path / "policy"),
            HalvingConfig(sample=2))
        assert result.counts["failed"] == 0
