"""The bound-expanding scalar search: bracketing, expansion, failure
tolerance, and the arch-field tuner over the shared store."""

from __future__ import annotations

import math

import pytest

from repro.dse.retry import RetryPolicy
from repro.dse.spec import EvalPoint
from repro.dse.store import ResultStore
from repro.opt.objective import Objective
from repro.opt.scalar import (
    TUNE_ORIGIN,
    bound_expanding_search,
    tune_arch_field,
)


def _linear(x: float) -> float:
    return 2.0 * x + 1.0


class TestBisection:
    def test_converges_inside_initial_bracket(self):
        result = bound_expanding_search(
            _linear, 11.0, lo=0.0, hi=10.0, tolerance=0.01)
        assert result.converged
        assert result.best_x == pytest.approx(5.0, abs=0.01)
        assert result.expansions == 0

    def test_probe_log_is_deterministic(self):
        first = bound_expanding_search(
            _linear, 11.0, lo=0.0, hi=10.0, tolerance=0.01)
        second = bound_expanding_search(
            _linear, 11.0, lo=0.0, hi=10.0, tolerance=0.01)
        assert first.probes == second.probes

    def test_endpoint_already_within_tolerance(self):
        result = bound_expanding_search(
            _linear, 1.0, lo=0.0, hi=10.0, tolerance=0.5)
        assert result.converged and result.tries == 1
        assert result.best_x == 0.0

    def test_max_tries_caps_the_probe_budget(self):
        result = bound_expanding_search(
            _linear, 11.3, lo=0.0, hi=10.0, tolerance=0.0, max_tries=5)
        assert result.tries <= 5
        assert not result.converged  # zero tolerance, finite budget

    def test_decreasing_objective(self):
        result = bound_expanding_search(
            lambda x: 100.0 - x, 40.0, lo=0.0, hi=100.0,
            tolerance=0.01, increasing=False)
        assert result.converged
        assert result.best_x == pytest.approx(60.0, abs=0.1)

    def test_integer_mode_stops_on_adjacent_bracket(self):
        result = bound_expanding_search(
            _linear, 10.0, lo=0.0, hi=7.0, tolerance=0.0, integer=True)
        assert all(x == int(x) for x, _ in result.probes)
        # 10.0 is unreachable on integers (f(4)=9, f(5)=11): the search
        # must stop on the adjacent bracket, not loop forever.
        assert result.best_x in (4.0, 5.0)
        assert not result.converged


class TestExpansion:
    def test_hi_expands_until_target_bracketed(self):
        result = bound_expanding_search(
            _linear, 101.0, lo=0.0, hi=10.0, tolerance=0.01)
        assert result.converged
        assert result.best_x == pytest.approx(50.0, abs=0.01)
        assert result.expansions >= 2
        assert result.hi >= 50.0

    def test_lo_expands_when_bracket_overshoots(self):
        result = bound_expanding_search(
            _linear, -39.0, lo=0.0, hi=10.0, tolerance=0.01)
        assert result.converged
        assert result.best_x == pytest.approx(-20.0, abs=0.01)
        assert result.lo <= -20.0

    def test_expansion_budget_exhaustion_reports_best_effort(self):
        result = bound_expanding_search(
            _linear, 1e9, lo=0.0, hi=1.0, tolerance=0.01,
            max_expansions=2)
        assert not result.converged
        assert result.expansions == 2
        assert result.best_value < 1e9


class TestFailureTolerance:
    def test_flaky_probe_is_retried(self):
        failures = []

        def flaky(x: float) -> float:
            if x not in failures:
                failures.append(x)
                raise RuntimeError("weather")
            return _linear(x)

        result = bound_expanding_search(
            flaky, 11.0, lo=0.0, hi=10.0, tolerance=0.01, sleep=False)
        assert result.converged
        assert all(value is not None for _, value in result.probes)

    def test_poison_probe_ends_search_with_best_so_far(self):
        def poisoned(x: float) -> float:
            if x > 4.0:
                raise ValueError("deterministic bug")
            return _linear(x)

        result = bound_expanding_search(
            poisoned, 11.0, lo=0.0, hi=10.0, tolerance=0.01,
            sleep=False)
        assert not result.converged
        assert result.probes[-1][1] is None  # the terminal failure
        assert result.best_x == 0.0  # best measured point survives

    def test_all_probes_failed_reports_nan(self):
        def broken(x: float) -> float:
            raise ValueError("nothing works")

        result = bound_expanding_search(
            broken, 11.0, lo=0.0, hi=10.0, tolerance=0.01, sleep=False)
        assert not result.converged
        assert math.isnan(result.best_value)
        assert result.tries == 1

    def test_retry_budget_is_policy_controlled(self):
        calls = []

        def counting(x: float) -> float:
            calls.append(x)
            raise RuntimeError("weather")

        bound_expanding_search(
            counting, 11.0, lo=0.0, hi=10.0, tolerance=0.01,
            policy=RetryPolicy(max_attempts=2), sleep=False)
        assert len(calls) == 2  # one probe, one retry, then give up


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"tolerance": -1.0},
        {"max_tries": 1},
        {"expand_factor": 1.0},
        {"lo": 5.0, "hi": 5.0},
    ])
    def test_rejects_bad_arguments(self, kwargs):
        merged = {"lo": 0.0, "hi": 10.0, "tolerance": 0.1, **kwargs}
        with pytest.raises(ValueError):
            bound_expanding_search(_linear, 1.0, **merged)


class TestTuneArchField:
    """The store-backed driver over one hardware axis.

    ``sram_pj`` (SRAM access energy) against the ``energy`` metric is
    the pinned test axis: the model's total energy rises monotonically
    with it, and it is a float field so the probe spelling path gets
    exercised too.
    """

    NETWORK = "cnn_lstm@frames=2+bins=32+hidden=32"

    def _measure(self, store: ResultStore, sram_pj: float) -> float:
        from repro.dse.summary import METRICS
        point = EvalPoint(
            accelerator="BitWave", network=self.NETWORK,
            arch=f"bitwave-16nm@sram_pj={sram_pj:g}")
        probe = Objective(store, origin="opt:test").probe(point)
        return METRICS["energy"].extract(probe.result)

    def test_converges_and_stamps_tune_provenance(self, tmp_path):
        store = ResultStore(tmp_path / "tune")
        f_lo, f_hi = (self._measure(store, 0.1), self._measure(store, 4.0))
        assert f_lo < f_hi  # the monotonicity the axis pin relies on
        target = (f_lo + f_hi) / 2.0

        result = tune_arch_field(
            "sram_pj", target, store, network=self.NETWORK,
            metric="energy", lo=0.1, hi=4.0,
            tolerance=(f_hi - f_lo) * 0.05, integer=False)
        assert result.converged
        assert 0.1 <= result.best_x <= 4.0

        # Every tuning probe landed in the shared store with origin.
        records = [store.get(key) for key in store.keys()]
        records = [r for r in records
                   if r.get("extra", {}).get("origin") == TUNE_ORIGIN]
        assert records

    def test_rerun_is_deterministic_and_fully_cached(self, tmp_path):
        store = ResultStore(tmp_path / "tune")
        f_lo, f_hi = (self._measure(store, 0.1), self._measure(store, 4.0))
        target = (f_lo + f_hi) / 2.0
        kwargs = dict(network=self.NETWORK, metric="energy",
                      lo=0.1, hi=4.0, tolerance=(f_hi - f_lo) * 0.05,
                      integer=False)
        first = tune_arch_field("sram_pj", target, store, **kwargs)
        second = tune_arch_field("sram_pj", target, store, **kwargs)
        assert second.probes == first.probes
        assert second.best_x == first.best_x
