"""The accuracy x hardware co-search: the acceptance pin is a nonempty
accuracy-vs-TOPS/W frontier with a genuine trade-off, deterministic
across runs and fully cached on a rerun."""

from __future__ import annotations

import pytest

from repro import faults
from repro.dse.store import ResultStore
from repro.eval.fingerprints import opt_fingerprint
from repro.opt.cosearch import (
    COSEARCH_ORIGIN,
    CosearchConfig,
    CosearchProbe,
    cosearch,
    effective_zero_columns,
    strategy_signature,
)


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    """One co-search on a cold store (shared: the accuracy phase is the
    expensive part of this module)."""
    store = ResultStore(tmp_path_factory.mktemp("cosearch"))
    return store, cosearch(store)


class TestFrontier:
    def test_frontier_is_nonempty_and_priced(self, run):
        _, result = run
        assert result.front
        for row in result.front:
            assert row["accuracy"] is not None
            assert row["tops_per_w"] > 0
            assert row["cycles"] > 0

    def test_frontier_is_a_genuine_tradeoff(self, run):
        """Nondominated over (accuracy, TOPS/W) both maximized: along
        the front, higher efficiency must cost accuracy."""
        _, result = run
        accuracies = [row["accuracy"] for row in result.front]
        efficiencies = [row["tops_per_w"] for row in result.front]
        assert accuracies == sorted(accuracies)
        assert efficiencies == sorted(efficiencies, reverse=True)
        if len(result.front) > 1:
            assert max(efficiencies) > min(efficiencies)

    def test_history_respects_the_accuracy_floor(self, run):
        _, result = run
        config = result.config
        assert 0 < len(result.history) <= config.max_moves
        for _layer, gs, new_z, accuracy in result.history:
            assert gs in config.group_sizes
            assert accuracy >= config.min_accuracy

    def test_archive_prices_every_snapshot_under_every_arch(self, run):
        _, result = run
        expected = (len(result.history) + 1) * len(result.config.archs)
        assert len(result.rows) == expected
        assert result.counts["failed"] == 0
        # Move 0 is the empty strategy: the untouched baseline.
        baselines = [r for r in result.rows if r["moves"] == 0]
        assert all(r["strategy"] == {} for r in baselines)


class TestDeterminism:
    def test_same_config_same_trajectory_and_front(self, run, tmp_path):
        _, first = run
        second = cosearch(ResultStore(tmp_path / "replay"))
        assert second.history == first.history
        assert second.trajectory == first.trajectory
        assert second.front == first.front

    def test_rerun_on_warm_store_reprices_nothing(self, run):
        store, first = run
        again = cosearch(store)
        assert again.counts["evaluated"] == 0
        assert again.counts["saved"] == again.counts["probes"]
        assert again.front == first.front


class TestPersistence:
    def test_probes_land_in_the_opt_namespace_with_origin(self, run):
        store, result = run
        cache = ResultStore(store.root, namespace=opt_fingerprint())
        for key in result.trajectory:
            record = cache.get(key)
            assert record is not None
            assert record["extra"]["origin"] == COSEARCH_ORIGIN

    def test_probe_key_ignores_zero_targets(self):
        probe = CosearchProbe(
            workload="cnn_lstm", arch="bitwave-16nm", preset="tiny",
            strategy={"fc": {16: 2, 8: 0}})
        trimmed = CosearchProbe(
            workload="cnn_lstm", arch="bitwave-16nm", preset="tiny",
            strategy={"fc": {16: 2}})
        assert probe.key() == trimmed.key()

    def test_probe_key_separates_archs(self):
        a = CosearchProbe(workload="cnn_lstm", arch="bitwave-16nm",
                          preset="tiny", strategy={})
        b = CosearchProbe(workload="cnn_lstm", arch="bitwave-dense-16nm",
                          preset="tiny", strategy={})
        assert a.key() != b.key()


class TestChaos:
    def test_injected_crashes_heal_and_match_the_clean_front(self, run,
                                                             tmp_path):
        _, reference = run
        faults.configure("seed=7,crash:0.5:attempt<1:site=opt")
        try:
            result = cosearch(ResultStore(tmp_path / "chaos"))
        finally:
            faults.configure(None)
        assert result.counts["failed"] == 0
        assert result.front == reference.front


class TestStrategyShapes:
    def test_signature_drops_zeros_and_sorts(self):
        signature = strategy_signature(
            {"b": {16: 1, 8: 0}, "a": {4: 2}, "c": {}})
        assert signature == {"a": {"4": 2}, "b": {"16": 1}}
        assert list(signature) == ["a", "b"]

    def test_effective_zero_columns_takes_the_strongest_target(self):
        strategy = {"fc": {16: 1, 8: 3}, "conv": {16: 0}}
        assert effective_zero_columns(strategy) == {"fc": 3}


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CosearchConfig(network="nope")
        with pytest.raises(ValueError):
            CosearchConfig(archs=())
        with pytest.raises(ValueError):
            CosearchConfig(max_moves=-1)
        with pytest.raises(ValueError):
            CosearchConfig(batch=0)
        with pytest.raises(ValueError):
            CosearchConfig(archs=("no-such-preset",))
