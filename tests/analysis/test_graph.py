"""The AST import graph: resolution, cones, cycles, and the real tree."""

from __future__ import annotations

import pytest

from repro.analysis.graph import build_graph, repo_graph


class TestSyntheticGraph:
    def test_module_names_cover_packages_and_modules(self, make_tree):
        root = make_tree({
            "a.py": "import pkg.b\n",
            "b.py": "VALUE = 1\n",
            "sub/c.py": "from pkg import a\n",
        })
        graph = build_graph(root, package="pkg")
        assert set(graph.module_names()) == {
            "pkg", "pkg.a", "pkg.b", "pkg.sub", "pkg.sub.c"}

    def test_top_level_and_deferred_edges(self, make_tree):
        root = make_tree({
            "a.py": ("import pkg.b\n"
                     "def lazy():\n"
                     "    import pkg.c\n"),
            "b.py": "",
            "c.py": "",
        })
        graph = build_graph(root, package="pkg")
        info = graph.modules["pkg.a"]
        assert info.imports(include_deferred=True) == {"pkg.b", "pkg.c"}
        assert info.imports(include_deferred=False) == {"pkg.b"}
        by_target = {edge.target: edge for edge in info.edges}
        assert not by_target["pkg.b"].deferred
        assert by_target["pkg.c"].deferred

    def test_type_checking_guard_is_deferred(self, make_tree):
        root = make_tree({
            "a.py": ("from typing import TYPE_CHECKING\n"
                     "if TYPE_CHECKING:\n"
                     "    import pkg.b\n"),
            "b.py": ("import typing\n"
                     "if typing.TYPE_CHECKING:\n"
                     "    import pkg.a\n"),
        })
        graph = build_graph(root, package="pkg")
        assert all(edge.deferred for edge in graph.modules["pkg.a"].edges)
        assert all(edge.deferred for edge in graph.modules["pkg.b"].edges)
        # Annotation-only back-references must not read as runtime cycles.
        assert graph.cycles() == []

    def test_relative_imports_resolve(self, make_tree):
        root = make_tree({
            "sub/a.py": ("from . import b\n"
                         "from ..other import c\n"),
            "sub/b.py": "",
            "other/c.py": "",
        })
        graph = build_graph(root, package="pkg")
        assert graph.modules["pkg.sub.a"].imports() == {
            "pkg.sub.b", "pkg.other.c"}

    def test_external_imports_dropped(self, make_tree):
        root = make_tree({
            "a.py": ("import os\n"
                     "import numpy as np\n"
                     "from collections import deque\n"),
        })
        graph = build_graph(root, package="pkg")
        assert graph.modules["pkg.a"].imports() == frozenset()

    def test_symbol_import_falls_back_to_module(self, make_tree):
        root = make_tree({
            "a.py": "from pkg.b import helper\n",
            "b.py": "def helper():\n    return 1\n",
        })
        graph = build_graph(root, package="pkg")
        assert graph.modules["pkg.a"].imports() == {"pkg.b"}

    def test_dependency_cone_transitive(self, make_tree):
        root = make_tree({
            "a.py": "import pkg.b\n",
            "b.py": ("def lazy():\n"
                     "    import pkg.c\n"),
            "c.py": "import pkg.d\n",
            "d.py": "",
            "unrelated.py": "import pkg.d\n",
        })
        graph = build_graph(root, package="pkg")
        cone = graph.dependency_cone("pkg.a")
        assert cone == {"pkg.a", "pkg.b", "pkg.c", "pkg.d"}
        shallow = graph.dependency_cone("pkg.a", include_deferred=False)
        assert shallow == {"pkg.a", "pkg.b"}

    def test_package_entry_seeds_subtree(self, make_tree):
        root = make_tree({
            "sub/a.py": "import pkg.other.c\n",
            "sub/b.py": "",
            "other/c.py": "",
            "other/d.py": "",
        })
        graph = build_graph(root, package="pkg")
        cone = graph.dependency_cone("pkg.sub")
        assert "pkg.sub.a" in cone and "pkg.sub.b" in cone
        assert "pkg.other.c" in cone
        assert "pkg.other.d" not in cone

    def test_prune_cuts_back_references(self, make_tree):
        root = make_tree({
            "low/a.py": ("def shim():\n"
                         "    import pkg.high.facade\n"),
            "high/facade.py": "import pkg.high.deep\n",
            "high/deep.py": "",
        })
        graph = build_graph(root, package="pkg")
        full = graph.dependency_cone("pkg.low")
        assert "pkg.high.deep" in full
        cut = graph.dependency_cone("pkg.low", prune=("pkg.high",))
        assert cut == {"pkg.low", "pkg.low.a"}

    def test_unknown_entry_raises(self, make_tree):
        root = make_tree({"a.py": ""})
        graph = build_graph(root, package="pkg")
        with pytest.raises(KeyError, match="nonexistent"):
            graph.dependency_cone("pkg.nonexistent")

    def test_cone_files_sorted_by_module(self, make_tree):
        root = make_tree({
            "b.py": "import pkg.a\n",
            "a.py": "",
        })
        graph = build_graph(root, package="pkg")
        files = graph.cone_files("pkg.b")
        assert [path.stem for path in files] == ["a", "b"]

    def test_cycles_found_on_top_level_edges(self, make_tree):
        root = make_tree({
            "a.py": "import pkg.b\n",
            "b.py": "import pkg.a\n",
            "c.py": "",
        })
        graph = build_graph(root, package="pkg")
        assert graph.cycles() == [("pkg.a", "pkg.b")]

    def test_deferred_edge_breaks_cycle(self, make_tree):
        root = make_tree({
            "a.py": "import pkg.b\n",
            "b.py": ("def lazy():\n"
                     "    import pkg.a\n"),
        })
        graph = build_graph(root, package="pkg")
        assert graph.cycles() == []

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_graph(tmp_path / "nope")


class TestRealTree:
    def test_sim_cone_excludes_search_layers(self):
        """The pinned invariant behind cone fingerprints: nothing under
        ``repro.sim`` can reach the campaign/search/serving layers, so
        a ``dse``-only edit never rotates the sim store namespace."""
        cone = repo_graph().dependency_cone("repro.sim")
        assert not any(
            name == layer or name.startswith(layer + ".")
            for name in cone
            for layer in ("repro.dse", "repro.serve", "repro.opt",
                          "repro.eval"))

    def test_sim_backend_cone_excludes_dse(self):
        from repro.eval.fingerprints import SIM_CONE_ENTRIES

        cone = repo_graph().dependency_cone(*SIM_CONE_ENTRIES)
        assert "repro.sim.npu" in cone
        assert not any(name.startswith(("repro.dse", "repro.serve",
                                        "repro.opt"))
                       for name in cone)

    def test_real_tree_has_no_module_scope_cycles(self):
        assert repo_graph().cycles() == []

    def test_model_cone_covers_shared_helpers(self):
        """Helpers the hand-maintained package list already digests
        must be in the cone too -- the cone is a superset within the
        layers it covers -- while the pruned back-reference keeps the
        eval/sim layers out."""
        from repro.eval.fingerprints import (
            MODEL_CONE_ENTRIES,
            MODEL_CONE_PRUNE,
        )

        cone = repo_graph().dependency_cone(
            *MODEL_CONE_ENTRIES, prune=MODEL_CONE_PRUNE)
        assert "repro.model.energy" in cone
        assert "repro.arch.spec" in cone
        assert not any(name.startswith(("repro.eval", "repro.sim",
                                        "repro.dse", "repro.serve",
                                        "repro.opt"))
                       for name in cone)
