"""``python -m repro.analysis``, driven in-process through main()."""

from __future__ import annotations

import json

from repro.analysis.__main__ import main


class TestCheck:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK:")
        assert "0 violations" in out

    def test_json_format(self, capsys):
        assert main(["check", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["violations"] == []
        assert set(data["rules"]) >= {"layering", "cycles", "determinism"}

    def test_single_rule_selection(self, capsys):
        assert main(["check", "--rule", "layering"]) == 0
        capsys.readouterr()
        assert main(["check", "--rule", "layering",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["rules"] == ["layering"]

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["check", "--rule", "nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_violations_rendered_and_exit_one(self, make_tree, capsys):
        root = make_tree({
            "sim/bad.py": "import repro.dse.store\n",
            "dse/store.py": "",
        })
        assert main(["check", "--root", str(root)]) == 1
        captured = capsys.readouterr()
        assert "[layering]" in captured.out
        assert "FAIL:" in captured.err

    def test_missing_root_exits_two(self, tmp_path, capsys):
        assert main(["check", "--root", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestVersions:
    def test_pinned_tree_exits_zero(self, capsys):
        assert main(["versions"]) == 0
        out = capsys.readouterr().out
        assert "REQUEST_VERSION" in out
        assert "schemas match their pins" in out

    def test_json_format(self, capsys):
        assert main(["versions", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert len(data["schemas"]) == 6


class TestCone:
    def test_cone_lists_modules(self, capsys):
        assert main(["cone", "repro.sim"]) == 0
        out = capsys.readouterr().out
        assert "repro.sim.npu" in out
        assert "repro.dse" not in out

    def test_cone_json(self, capsys):
        assert main(["cone", "repro.sim", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["entries"] == ["repro.sim"]
        assert "repro.sim" in data["cone"]

    def test_unknown_entry_exits_two(self, capsys):
        assert main(["cone", "repro.nope"]) == 2
        assert "error:" in capsys.readouterr().err
