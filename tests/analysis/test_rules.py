"""Every lint rule pinned by good and known-bad fixture snippets."""

from __future__ import annotations

import pytest

from repro.analysis.engine import Allow, get_rule, run_checks


def check(root, rule_name):
    return run_checks(root=root, rules=(get_rule(rule_name),))


def messages(report):
    return [violation.message for violation in report.violations]


class TestLayering:
    def test_sim_importing_dse_rejected(self, make_tree):
        root = make_tree({
            "sim/kernel.py": "import repro.dse.store\n",
            "dse/store.py": "",
        })
        report = check(root, "layering")
        assert not report.ok
        assert "repro.sim.kernel" in messages(report)[0]
        assert "repro.dse.store" in messages(report)[0]

    def test_deferred_import_still_rejected(self, make_tree):
        root = make_tree({
            "core/util.py": ("def lazy():\n"
                             "    from repro.serve import app\n"),
            "serve/app.py": "",
        })
        report = check(root, "layering")
        assert not report.ok
        assert "deferred import" in messages(report)[0]

    def test_every_restricted_layer_guarded(self, make_tree):
        root = make_tree({
            "arch/a.py": "import repro.eval.core\n",
            "core/b.py": "import repro.opt.search\n",
            "model/c.py": "import repro.dse.spec\n",
            "sim/d.py": "import repro.serve.app\n",
            "eval/core.py": "", "opt/search.py": "",
            "dse/spec.py": "", "serve/app.py": "",
        })
        report = check(root, "layering")
        assert len(report.violations) == 4

    def test_operational_layers_may_import_numeric(self, make_tree):
        root = make_tree({
            "eval/core.py": "import repro.sim.npu\n",
            "dse/driver.py": "import repro.model.energy\n",
            "sim/npu.py": "", "model/energy.py": "",
        })
        assert check(root, "layering").ok


class TestCycles:
    def test_module_scope_cycle_rejected(self, make_tree):
        root = make_tree({
            "a.py": "import repro.b\n",
            "b.py": "import repro.a\n",
        })
        report = check(root, "cycles")
        assert not report.ok
        assert "repro.a <-> repro.b" in messages(report)[0]
        assert report.violations[0].line == 1

    def test_deferred_back_reference_accepted(self, make_tree):
        root = make_tree({
            "a.py": "import repro.b\n",
            "b.py": ("def back():\n"
                     "    import repro.a\n"),
        })
        assert check(root, "cycles").ok


class TestDeterminism:
    @pytest.mark.parametrize("snippet", [
        "import time\nSTAMP = time.time()\n",
        "import time\nSTAMP = time.time_ns()\n",
        "import datetime\nNOW = datetime.datetime.now()\n",
        "from datetime import datetime\nNOW = datetime.utcnow()\n",
        "import numpy as np\nX = np.random.rand(3)\n",
        "from random import random\n",
        "from numpy.random import default_rng\n",
        "import random\nX = random.random()\n",
        "import random\nR = random.Random()\n",
    ])
    def test_wall_clock_and_unseeded_randomness_rejected(
            self, make_tree, snippet):
        root = make_tree({"mod.py": snippet})
        assert not check(root, "determinism").ok

    @pytest.mark.parametrize("snippet", [
        "import time\nT0 = time.perf_counter()\n",
        "import random\nR = random.Random(42)\n",
        "import random\nR = random.Random(seed=7)\n",
        "from repro.utils.rng import seeded_rng\n",
    ])
    def test_seeded_and_monotonic_sources_accepted(
            self, make_tree, snippet):
        root = make_tree({"mod.py": snippet})
        assert check(root, "determinism").ok

    def test_stale_allowlist_entry_reported(self, make_tree):
        """A module that stopped triggering its exemption is flagged."""
        root = make_tree({"utils/rng.py": "CLEAN = True\n"})
        report = check(root, "determinism")
        assert not report.ok
        assert "stale allowlist entry" in messages(report)[0]
        assert report.violations[0].module == "repro.utils.rng"

    def test_allowlist_suppresses_and_counts(self, make_tree):
        root = make_tree({
            "utils/rng.py": "import numpy as np\nX = np.random.rand(3)\n",
        })
        report = check(root, "determinism")
        assert report.ok
        assert report.suppressed == 1


class TestLockDiscipline:
    def test_fcntl_outside_store_rejected(self, make_tree):
        root = make_tree({"eval/locks.py": "import fcntl\n"})
        assert not check(root, "lock-discipline").ok

    def test_from_fcntl_import_rejected(self, make_tree):
        root = make_tree({"sim/locks.py": "from fcntl import flock\n"})
        assert not check(root, "lock-discipline").ok

    def test_fcntl_in_store_accepted(self, make_tree):
        root = make_tree({
            "dse/store.py": ("import fcntl\n"
                             "def append(path):\n"
                             "    with open(path, 'a') as fh:\n"
                             "        fh.write('x')\n"),
        })
        assert check(root, "lock-discipline").ok

    @pytest.mark.parametrize("snippet", [
        "def f(path):\n    open(path, 'w')\n",
        "def f(path):\n    open(path, mode='a')\n",
        "def f(path):\n    path.open('w')\n",
        "def f(path):\n    path.write_text('x')\n",
        "def f(path):\n    path.write_bytes(b'x')\n",
        "import os\ndef f(path):\n    os.open(path, 0)\n",
    ])
    def test_writes_in_scoped_packages_rejected(self, make_tree, snippet):
        root = make_tree({"dse/writer.py": snippet})
        assert not check(root, "lock-discipline").ok

    @pytest.mark.parametrize("module", ["dse/r.py", "opt/r.py",
                                        "serve/r.py"])
    def test_reads_in_scoped_packages_accepted(self, make_tree, module):
        root = make_tree({
            module: ("def f(path):\n"
                     "    with open(path) as fh:\n"
                     "        return fh.read()\n"),
        })
        assert check(root, "lock-discipline").ok

    def test_writes_outside_scoped_packages_accepted(self, make_tree):
        root = make_tree({
            "eval/report.py": "def f(path):\n    open(path, 'w')\n",
        })
        assert check(root, "lock-discipline").ok


class TestFrozenMutation:
    def test_setattr_in_plain_method_rejected(self, make_tree):
        root = make_tree({
            "mod.py": ("class C:\n"
                       "    def update(self):\n"
                       "        object.__setattr__(self, 'x', 1)\n"),
        })
        report = check(root, "frozen-mutation")
        assert not report.ok
        assert "update" in messages(report)[0]

    def test_setattr_at_module_scope_rejected(self, make_tree):
        root = make_tree({
            "mod.py": "object.__setattr__(object(), 'x', 1)\n",
        })
        report = check(root, "frozen-mutation")
        assert not report.ok
        assert "module scope" in messages(report)[0]

    @pytest.mark.parametrize("scope", ["__post_init__", "__init__",
                                       "__setstate__"])
    def test_constructor_scopes_accepted(self, make_tree, scope):
        root = make_tree({
            "mod.py": (f"class C:\n"
                       f"    def {scope}(self):\n"
                       f"        object.__setattr__(self, 'x', 1)\n"),
        })
        assert check(root, "frozen-mutation").ok


class TestObsNames:
    def test_bad_grammar_rejected(self, make_tree):
        root = make_tree({
            "sim/x.py": ("from repro.obs import trace\n"
                         "def f():\n"
                         "    with trace('SimCompute'):\n"
                         "        pass\n"),
        })
        report = check(root, "obs-names")
        assert not report.ok
        assert "grammar" in messages(report)[0]

    def test_unregistered_name_rejected(self, make_tree):
        root = make_tree({
            "sim/x.py": ("from repro.obs import trace\n"
                         "def f():\n"
                         "    with trace('sim.not_registered'):\n"
                         "        pass\n"),
        })
        report = check(root, "obs-names")
        assert not report.ok
        assert "registry" in messages(report)[0]

    def test_registered_span_and_counter_accepted(self, make_tree):
        root = make_tree({
            "sim/x.py": ("from repro.obs import counter, trace\n"
                         "def f():\n"
                         "    with trace('sim.compute'):\n"
                         "        counter('sim.kernel_dispatch')\n"),
        })
        assert check(root, "obs-names").ok

    def test_aliased_import_still_checked(self, make_tree):
        root = make_tree({
            "sim/x.py": ("from repro.obs import trace as t\n"
                         "def f():\n"
                         "    with t('Bad'):\n"
                         "        pass\n"),
        })
        assert not check(root, "obs-names").ok

    def test_non_literal_name_rejected(self, make_tree):
        root = make_tree({
            "sim/x.py": ("from repro.obs import counter\n"
                         "def f(name):\n"
                         "    counter(name)\n"),
        })
        report = check(root, "obs-names")
        assert not report.ok
        assert "non-literal" in messages(report)[0]

    def test_serve_incr_checked_against_counter_registry(self, make_tree):
        root = make_tree({
            "serve/x.py": ("def f(metrics):\n"
                           "    metrics.incr('nope')\n"),
        })
        report = check(root, "obs-names")
        assert not report.ok

    def test_serve_incr_registered_name_accepted(self, make_tree):
        root = make_tree({
            "serve/x.py": ("def f(metrics):\n"
                           "    metrics.incr('serve.http.errors')\n"),
        })
        assert check(root, "obs-names").ok

    def test_incr_outside_serve_untracked(self, make_tree):
        root = make_tree({
            "eval/x.py": ("def f(metrics):\n"
                          "    metrics.incr('nope')\n"),
        })
        assert check(root, "obs-names").ok

    def test_empty_gauge_registry_rejects_all(self, make_tree):
        root = make_tree({
            "sim/x.py": ("from repro.obs import gauge\n"
                         "def f():\n"
                         "    gauge('sim.queue_depth', 1)\n"),
        })
        assert not check(root, "obs-names").ok


class TestEngine:
    def test_allow_requires_justification(self):
        with pytest.raises(ValueError, match="justification"):
            Allow("repro.x", "   ")

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rule("nope")

    def test_violations_sorted_and_counted(self, make_tree):
        root = make_tree({
            "sim/a.py": "import repro.dse.b\nimport time\nT = time.time()\n",
            "dse/b.py": "",
        })
        report = run_checks(root=root)
        assert [v.rule for v in report.violations] == [
            "layering", "determinism"]
        assert report.modules == len(
            {"repro", "repro.sim", "repro.sim.a", "repro.dse",
             "repro.dse.b"})

    def test_full_run_on_real_tree_is_clean(self):
        report = run_checks()
        assert report.ok, [v.render() for v in report.violations]
        assert report.suppressed > 0
