"""The schema-version guard: field-set hashes vs pinned baselines."""

from __future__ import annotations

import json

import pytest

from repro.analysis.versions import (
    BASELINE_PATH,
    SchemaProbe,
    check_versions,
    default_probes,
    load_baselines,
    schema_states,
    write_baselines,
)

GUARDED = (
    "REQUEST_VERSION", "RESULT_VERSION", "RECORD_VERSION",
    "SPEC_VERSION", "SIM_SPEC_VERSION", "COSEARCH_PROBE_VERSION",
)


def probe(version=1, fields=("a", "b")):
    return SchemaProbe("TEST_VERSION", "tests.fake",
                       lambda: version, lambda: tuple(fields))


def baseline_for(test_probe):
    state = schema_states((test_probe,))[0]
    return {state.name: {"module": state.module,
                         "version": state.version,
                         "fields_hash": state.fields_hash}}


class TestStates:
    def test_every_guarded_schema_probed(self):
        names = [state.name for state in schema_states()]
        assert names == list(GUARDED)

    def test_fields_hash_order_insensitive(self):
        one = schema_states((probe(fields=("a", "b")),))[0]
        two = schema_states((probe(fields=("b", "a")),))[0]
        assert one.fields_hash == two.fields_hash

    def test_fields_hash_sees_every_field(self):
        base = schema_states((probe(fields=("a", "b")),))[0]
        grown = schema_states((probe(fields=("a", "b", "c")),))[0]
        renamed = schema_states((probe(fields=("a", "c")),))[0]
        assert base.fields_hash != grown.fields_hash
        assert base.fields_hash != renamed.fields_hash

    def test_nested_fields_flattened_with_prefixes(self):
        by_name = {state.name: state for state in schema_states()}
        assert any(field.startswith("options.")
                   for field in by_name["REQUEST_VERSION"].fields)
        assert any(field.startswith("layer.")
                   for field in by_name["RESULT_VERSION"].fields)
        assert any(field.startswith("campaign.retry.")
                   for field in by_name["SPEC_VERSION"].fields)


class TestCheck:
    def test_matching_pin_is_ok(self):
        test_probe = probe()
        report = check_versions((test_probe,), baseline_for(test_probe))
        assert report.ok
        assert report.findings[0].status == "ok"

    def test_field_change_without_bump_trips(self):
        """The guard's whole point: mutate a serialized field set while
        leaving the version constant alone, and the check fails."""
        pinned = baseline_for(probe(fields=("a", "b")))
        report = check_versions(
            (probe(fields=("a", "b", "sneaky")),), pinned)
        assert not report.ok
        finding = report.findings[0]
        assert finding.status == "changed"
        assert "bump the constant" in finding.advice

    def test_version_bump_without_repin_trips(self):
        pinned = baseline_for(probe(version=1))
        report = check_versions((probe(version=2),), pinned)
        assert not report.ok
        assert report.findings[0].status == "stale-pin"
        assert "--update" in report.findings[0].advice

    def test_unpinned_schema_trips(self):
        report = check_versions((probe(),), {})
        assert not report.ok
        assert report.findings[0].status == "unpinned"

    def test_report_to_dict_round_trips(self):
        test_probe = probe()
        report = check_versions((test_probe,), baseline_for(test_probe))
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is True
        assert data["schemas"][0]["name"] == "TEST_VERSION"


class TestBaselineFile:
    def test_update_round_trip(self, tmp_path):
        path = tmp_path / "baselines.json"
        write_baselines(path, (probe(),))
        pinned = load_baselines(path)
        report = check_versions((probe(),), pinned)
        assert report.ok
        assert pinned["TEST_VERSION"]["fields"] == ["a", "b"]

    def test_missing_baseline_file_reads_empty(self, tmp_path):
        assert load_baselines(tmp_path / "nope.json") == {}

    def test_checked_in_baseline_matches_tree(self):
        """The committed pin file must always match the committed
        schemas -- exactly what CI enforces."""
        assert BASELINE_PATH.exists()
        report = check_versions()
        assert report.ok, [f.advice for f in report.findings
                           if not f.ok]
        assert len(report.findings) == len(GUARDED)

    def test_checked_in_baseline_lists_fields(self):
        pinned = load_baselines()
        for name in GUARDED:
            assert pinned[name]["fields"], name

    def test_default_probes_read_real_constants(self):
        for schema_probe in default_probes():
            assert schema_probe.version() >= 1


@pytest.mark.parametrize("name", GUARDED)
def test_each_schema_pinned(name):
    assert name in load_baselines()
