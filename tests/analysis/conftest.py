"""Fixtures for the static-analysis tests: synthetic package trees.

The lint rules and the graph builder are exercised against tiny
purpose-built trees written to ``tmp_path`` -- one good and one bad
fixture per invariant -- so every rule is pinned by a seeded known-bad
snippet it must reject, independent of what the real tree contains.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Mapping

import pytest


@pytest.fixture
def make_tree(tmp_path: Path) -> Callable[[Mapping[str, str]], Path]:
    """Write ``{relative/path.py: source}`` under a scratch root.

    Returns the package root directory (the directory that plays the
    role of ``src/repro``); missing ``__init__.py`` files for any
    referenced package directory are created empty.
    """

    def write(files: Mapping[str, str]) -> Path:
        root = tmp_path / "pkgroot"
        for relative, source in files.items():
            path = root / relative
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        for directory in {p.parent for p in root.rglob("*.py")}:
            current = directory
            while current != root.parent:
                init = current / "__init__.py"
                if not init.exists():
                    init.write_text("", encoding="utf-8")
                current = current.parent
        return root

    return write
