"""Tests for the sparsity statistics, including the analytic Bit-Flip
histogram transform against real flipping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bitcolumn import group_weights, nonzero_column_counts
from repro.core.bitflip import flip_layer
from repro.sparsity.stats import (
    compute_layer_stats,
    expected_max_of_sample,
)

int8_tensors = arrays(np.int8, st.integers(64, 512),
                      elements=st.integers(-127, 127))


class TestExpectedMaxOfSample:
    def test_m_one_is_mean(self):
        hist = np.array([1, 2, 3, 4])
        mean = (np.arange(4) * hist).sum() / hist.sum()
        assert expected_max_of_sample(hist, 1) == pytest.approx(mean)

    def test_monotone_in_m(self):
        hist = np.array([5, 5, 5, 5, 5])
        values = [expected_max_of_sample(hist, m) for m in (1, 2, 4, 8, 64)]
        assert values == sorted(values)

    def test_converges_to_max_value(self):
        hist = np.array([10, 10, 10])
        assert expected_max_of_sample(hist, 10_000) == pytest.approx(2.0, abs=1e-2)

    def test_point_mass(self):
        hist = np.array([0, 0, 0, 7])
        for m in (1, 3, 100):
            assert expected_max_of_sample(hist, m) == 3.0

    def test_empty_histogram(self):
        assert expected_max_of_sample(np.zeros(9), 4) == 0.0

    def test_invalid_m(self):
        with pytest.raises(ValueError, match="sample size"):
            expected_max_of_sample(np.ones(3), 0)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 9, 50_000)
        hist = np.bincount(values, minlength=9)
        m = 16
        draws = rng.choice(values, size=(20_000, m)).max(axis=1)
        assert expected_max_of_sample(hist, m) == pytest.approx(
            draws.mean(), abs=0.05)


class TestComputeLayerStats:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            compute_layer_stats(np.array([], dtype=np.int8))

    def test_sparsity_fields_consistent(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        assert 0 < stats.value_sparsity < 1
        assert stats.bit_sparsity_sm > stats.bit_sparsity_2c

    def test_essential_bits_histogram_sums_to_count(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        assert stats.essential_bits_hist.sum() == laplacian_int8.size

    def test_essential_bits_mean_matches_bit_sparsity(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        assert stats.essential_bits_mean == pytest.approx(
            8 * (1 - stats.bit_sparsity_2c))

    def test_significance_occupancy_bounds(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        assert stats.significance_occupancy.shape == (8,)
        assert np.all(stats.significance_occupancy >= 0)
        assert np.all(stats.significance_occupancy <= 1)

    def test_nz_histograms_per_group_size(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        for g in (8, 16, 32, 64):
            hist = stats.nz_column_hists[g]
            assert hist.sum() == -(-laplacian_int8.size // g)

    def test_mean_nz_columns_grows_with_group(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        means = [stats.mean_nz_columns(g) for g in (8, 16, 32, 64)]
        assert means == sorted(means)

    def test_cr_real_below_ideal(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        for g in (8, 16, 32):
            assert stats.bcs_cr[g] < stats.bcs_cr_ideal[g]


class TestWithBitflip:
    def test_caps_histogram(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        flipped = stats.with_bitflip(5)
        for g in (8, 16, 32):
            hist = flipped.nz_column_hists[g]
            assert hist[4:].sum() == 0 or hist[3] >= 0
            assert hist[8 - 5 + 1:].sum() == 0  # nothing above cap

    def test_group_count_preserved(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        flipped = stats.with_bitflip(4)
        for g in (8, 16, 32):
            assert flipped.nz_column_hists[g].sum() == \
                stats.nz_column_hists[g].sum()

    def test_cr_improves(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        flipped = stats.with_bitflip(5)
        for g in (8, 16, 32):
            assert flipped.bcs_cr[g] > stats.bcs_cr[g]

    def test_zero_target_is_identity(self, laplacian_int8):
        stats = compute_layer_stats(laplacian_int8)
        same = stats.with_bitflip(0)
        for g in (8, 16, 32):
            assert np.array_equal(
                same.nz_column_hists[g], stats.nz_column_hists[g])

    @given(int8_tensors, st.sampled_from([3, 5]), st.sampled_from([8, 16]))
    @settings(max_examples=25, deadline=None)
    def test_analytic_upper_bounds_real_flip(self, tensor, target, g):
        """The histogram transform must upper-bound real per-group counts.

        Real flipping can exceed the target (rounding may zero extra
        columns), so the analytic cap min(orig, 8 - target) bounds the
        achieved non-zero-column count group by group.
        """
        orig_counts = nonzero_column_counts(group_weights(tensor, g))
        flipped = flip_layer(tensor, target, g).weights
        real_counts = nonzero_column_counts(group_weights(flipped, g))
        analytic = np.minimum(orig_counts, 8 - target)
        assert np.all(real_counts <= analytic)

    def test_analytic_matches_real_distribution_closely(self, laplacian_int8):
        g, target = 16, 5
        stats = compute_layer_stats(laplacian_int8)
        analytic_mean = stats.with_bitflip(target).mean_nz_columns(g)
        flipped = flip_layer(laplacian_int8, target, g).weights
        real = nonzero_column_counts(group_weights(flipped, g)).mean()
        assert analytic_mean == pytest.approx(real, rel=0.1)
