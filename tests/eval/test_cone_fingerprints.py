"""Dependency-cone fingerprints: tighter store namespaces, same bits.

The headline property: with cone fingerprints enabled, an edit under
``repro.dse`` (or any operational layer outside a backend's import
cone) no longer rotates the ``sim`` store namespace, while an edit to
the simulator datapath still does.  And with the flag off, the default
package-list digests are bit-identical to what they were before the
cone machinery existed.
"""

from __future__ import annotations

import shutil

import pytest

from repro.analysis.graph import default_root
from repro.eval.fingerprints import (
    CONE_ENV,
    MODEL_CONE_ENTRIES,
    MODEL_CONE_PRUNE,
    SIM_CONE_ENTRIES,
    code_fingerprint,
    cone_fingerprint,
    cone_fingerprints_enabled,
    opt_fingerprint,
    sim_backend_fingerprint,
)


@pytest.fixture
def tree_copy(tmp_path):
    """A scratch copy of the installed tree, safe to edit."""
    root = tmp_path / "repro"
    shutil.copytree(default_root(), root)
    return root


def touch(root, relative):
    path = root / relative
    assert path.exists(), relative
    path.write_text(path.read_text(encoding="utf-8")
                    + "\n# cache-buster\n", encoding="utf-8")


class TestConeFingerprint:
    def test_dse_edit_leaves_sim_namespace_alone(self, tree_copy):
        """The acceptance property: a ``dse``-only edit no longer
        rotates the simulator backend's cache namespace."""
        before = cone_fingerprint(*SIM_CONE_ENTRIES, root=tree_copy,
                                  prefix="simnet-")
        touch(tree_copy, "dse/executor.py")
        touch(tree_copy, "serve/service.py")
        after = cone_fingerprint(*SIM_CONE_ENTRIES, root=tree_copy,
                                 prefix="simnet-")
        assert before == after

    def test_sim_edit_rotates_sim_namespace(self, tree_copy):
        before = cone_fingerprint(*SIM_CONE_ENTRIES, root=tree_copy)
        touch(tree_copy, "sim/npu.py")
        assert cone_fingerprint(*SIM_CONE_ENTRIES,
                                root=tree_copy) != before

    def test_cone_helper_edit_rotates_namespace(self, tree_copy):
        """Shared helpers inside the cone count -- the cone is safer
        than the hand-maintained package list, not just tighter."""
        before = cone_fingerprint(*SIM_CONE_ENTRIES, root=tree_copy)
        touch(tree_copy, "arch/spec.py")
        assert cone_fingerprint(*SIM_CONE_ENTRIES,
                                root=tree_copy) != before

    def test_model_cone_ignores_sim_edits(self, tree_copy):
        """With the deprecated evaluate_network back-reference pruned,
        the analytical model's namespace ignores simulator edits."""
        before = cone_fingerprint(*MODEL_CONE_ENTRIES, root=tree_copy,
                                  prune=MODEL_CONE_PRUNE)
        touch(tree_copy, "sim/npu.py")
        touch(tree_copy, "eval/lowering.py")
        assert cone_fingerprint(*MODEL_CONE_ENTRIES, root=tree_copy,
                                prune=MODEL_CONE_PRUNE) == before

    def test_prefix_prepended(self, tree_copy):
        plain = cone_fingerprint("repro.sim", root=tree_copy)
        prefixed = cone_fingerprint("repro.sim", root=tree_copy,
                                    prefix="simnet-")
        assert prefixed == "simnet-" + plain
        assert len(plain) == 12


class TestFlag:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CONE_ENV, raising=False)
        assert not cone_fingerprints_enabled()
        monkeypatch.setenv(CONE_ENV, "0")
        assert not cone_fingerprints_enabled()
        monkeypatch.setenv(CONE_ENV, "1")
        assert cone_fingerprints_enabled()

    def test_flag_switches_every_backend_namespace(self, monkeypatch):
        monkeypatch.delenv(CONE_ENV, raising=False)
        static = (code_fingerprint(), sim_backend_fingerprint(),
                  opt_fingerprint())
        monkeypatch.setenv(CONE_ENV, "1")
        cone = (code_fingerprint(), sim_backend_fingerprint(),
                opt_fingerprint())
        assert all(a != b for a, b in zip(static, cone))
        assert cone[1].startswith("simnet-")
        assert cone[2].startswith("opt-")

    def test_default_digests_survive_flag_round_trip(self, monkeypatch):
        """Toggling the flag never perturbs the default namespaces --
        stores written before the flag existed stay reachable."""
        monkeypatch.delenv(CONE_ENV, raising=False)
        before = (code_fingerprint(), sim_backend_fingerprint(),
                  opt_fingerprint())
        monkeypatch.setenv(CONE_ENV, "1")
        code_fingerprint(), sim_backend_fingerprint(), opt_fingerprint()
        monkeypatch.delenv(CONE_ENV, raising=False)
        assert (code_fingerprint(), sim_backend_fingerprint(),
                opt_fingerprint()) == before

    def test_registered_backends_follow_the_flag(self, monkeypatch):
        from repro.eval.registry import get_backend

        monkeypatch.delenv(CONE_ENV, raising=False)
        static = get_backend("model").fingerprint()
        monkeypatch.setenv(CONE_ENV, "1")
        assert get_backend("model").fingerprint() != static
        assert get_backend("model").fingerprint() == code_fingerprint()
