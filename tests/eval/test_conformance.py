"""Backend-conformance suite: every registered backend over a shared
mini-grid must produce schema-complete, serializable, cacheable
:class:`EvalResult`s -- plus the cross-backend check that the
analytical model and the vectorized simulator stay within the
established Section V-B deviation bound (<6%) through the new API.
"""

from __future__ import annotations

import math

import pytest

from repro.eval import (
    EvalRequest,
    EvalResult,
    backend_names,
    evaluate,
    get_backend,
)
from repro.eval.registry import register_backend

#: A parametrized CNN-LSTM small enough for the reference datapath.
MINI_WORKLOAD = "cnn_lstm@frames=4+bins=64+hidden=64"

#: The shared conformance grid: every backend answers these.
MINI_GRID = (MINI_WORKLOAD, "cnn_lstm@frames=2+bins=32+hidden=32")


def _mini_requests(backend: str) -> list[EvalRequest]:
    requests = [EvalRequest(workload=wl, accelerator="BitWave",
                            backend=backend) for wl in MINI_GRID]
    if backend == "model":
        # The model backend also answers other accelerators + variants.
        requests.append(EvalRequest(workload=MINI_WORKLOAD,
                                    accelerator="SCNN"))
        requests.append(EvalRequest(workload=MINI_WORKLOAD,
                                    variant="+DF"))
    return requests


class TestBuiltinRegistry:
    def test_three_builtin_backends(self):
        names = backend_names()
        for expected in ("model", "sim-vectorized", "sim-reference"):
            assert expected in names

    def test_get_backend_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("rtl")

    def test_fingerprints_distinct(self):
        assert get_backend("model").fingerprint() \
            != get_backend("sim-vectorized").fingerprint()
        # Both sim datapaths share one lowering (and one namespace).
        assert get_backend("sim-vectorized").fingerprint() \
            == get_backend("sim-reference").fingerprint()

    def test_custom_backend_registration(self):
        class Echo:
            name = "echo-test"

            def fingerprint(self) -> str:
                return "echo-0"

            def evaluate(self, request):
                return EvalResult(workload=request.workload,
                                  config_label="echo", backend=self.name)

        register_backend(Echo())
        try:
            assert "echo-test" in backend_names()
            assert get_backend("echo-test").fingerprint() == "echo-0"
        finally:
            from repro.eval.registry import _REGISTRY

            _REGISTRY.pop("echo-test", None)


class TestBackendConformance:
    """Every backend must fill the canonical schema completely."""

    @pytest.mark.parametrize("backend",
                             ("model", "sim-vectorized", "sim-reference"))
    def test_schema_complete(self, backend, isolated_store):
        for request in _mini_requests(backend):
            result = evaluate(request)
            assert result.backend == backend
            assert result.workload == request.workload
            assert result.layers, "no per-layer breakdown"
            for layer in result.layers:
                assert layer.name
                assert layer.macs > 0
                assert layer.cycles > 0 and math.isfinite(layer.cycles)
                assert layer.energy_pj >= 0.0
                assert layer.traffic, "no traffic counters"
                for value in layer.traffic.values():
                    assert math.isfinite(value)
            assert result.total_macs == sum(l.macs for l in result.layers)
            assert result.total_cycles > 0
            assert result.effective_tops > 0
            # Finite for every backend: the sim prices its counters too.
            assert result.efficiency_tops_per_w > 0
            assert math.isfinite(result.efficiency_tops_per_w)

    @pytest.mark.parametrize("backend",
                             ("model", "sim-vectorized", "sim-reference"))
    def test_json_round_trip_is_exact(self, backend, isolated_store):
        import json

        request = EvalRequest(workload=MINI_WORKLOAD, backend=backend)
        result = evaluate(request)
        wire = json.loads(json.dumps(result.to_dict()))
        assert EvalResult.from_dict(wire) == result

    @pytest.mark.parametrize("backend",
                             ("model", "sim-vectorized", "sim-reference"))
    def test_store_cache_round_trip(self, backend, isolated_store):
        from repro.eval import api

        request = EvalRequest(workload=MINI_WORKLOAD, backend=backend)
        first = evaluate(request)
        # Same process: memo identity.
        assert evaluate(request) is first
        # Fresh process (simulated): store round-trip equality.
        api.reset_cache()
        reloaded = evaluate(request)
        assert reloaded is not first
        assert reloaded == first

    def test_model_energy_is_componentwise(self, isolated_store):
        result = evaluate(EvalRequest(workload=MINI_WORKLOAD))
        shares = result.energy_shares()
        assert set(shares) == {"dram", "sram", "reg", "compute"}
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_sim_backends_agree_bit_exactly(self, isolated_store):
        """Both datapaths are one structural machine: identical counters."""
        vec = evaluate(EvalRequest(workload=MINI_WORKLOAD,
                                   backend="sim-vectorized"))
        ref = evaluate(EvalRequest(workload=MINI_WORKLOAD,
                                   backend="sim-reference"))
        for a, b in zip(vec.layers, ref.layers):
            assert a.cycles == b.cycles
            assert a.traffic == b.traffic
            assert a.detail["compute_cycles"] == b.detail["compute_cycles"]
            assert a.detail["column_ops"] == b.detail["column_ops"]


class TestCrossBackendDeviation:
    """The established Section V-B bound, through the new API: every
    simulated layer's matched analytical compute-cycle prediction stays
    within <6% of the structural simulator (the suite scope: FC, conv
    and pointwise layers at realistic sizes -- the bound was never
    established for depthwise or tiny-K layers)."""

    @pytest.mark.parametrize("workload", ("cnn_lstm", "resnet18"))
    def test_model_vs_sim_vectorized_within_bound(
            self, workload, isolated_store):
        result = evaluate(EvalRequest(workload=workload,
                                      backend="sim-vectorized"))
        for layer in result.layers:
            assert layer.detail["model_deviation"] < 0.06, layer.name

    def test_context_rescale_is_exact(self, isolated_store):
        """A truncated simulation rescales to the full-simulation
        counters bit-exactly (the lowering's core claim).  40 frames
        spans multiple OXu=16 context blocks, so the rescale actually
        multiplies."""
        from repro.eval import EvalOptions

        workload = "cnn_lstm@frames=40+bins=32+hidden=32"
        full = evaluate(EvalRequest(
            workload=workload, backend="sim-vectorized",
            options=EvalOptions(sim_max_contexts=0)))
        capped = evaluate(EvalRequest(
            workload=workload, backend="sim-vectorized",
            options=EvalOptions(sim_max_contexts=1)))
        for a, b in zip(full.layers, capped.layers):
            assert a.cycles == b.cycles
            assert a.detail["compute_cycles"] == b.detail["compute_cycles"]
            assert a.traffic == b.traffic


class TestExplicitStore:
    """evaluate(store=...) must really consult the given store."""

    def test_explicit_store_bypasses_memo(self, isolated_store, tmp_path):
        from repro.dse.store import ResultStore
        from repro.eval import get_backend

        request = EvalRequest(workload=MINI_WORKLOAD)
        evaluate(request)  # warms the default store + memo

        mine = ResultStore(tmp_path / "mine",
                           namespace=get_backend("model").fingerprint())
        result = evaluate(request, store=mine)
        assert request.key() in mine  # written despite the warm memo
        assert result == evaluate(request)

    def test_sim_run_grid_raises_cleanly(self, tmp_path):
        from repro.dse.simcampaign import (
            SimCampaignSpec,
            run_sim_campaign,
            sim_store,
        )

        run = run_sim_campaign(SimCampaignSpec("g", oxus=(16,)),
                               sim_store(tmp_path))
        with pytest.raises(TypeError, match="evaluation-grid"):
            run.grid()
