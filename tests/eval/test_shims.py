"""The deprecation shims must stay bit-equal to the new API.

Pins the satellite guarantee: ``Accelerator.evaluate_network`` and the
public ``experiments.common`` helpers keep working (same numbers, same
types) while emitting ``DeprecationWarning``, and their outputs equal
``repro.eval`` answering the same question.
"""

from __future__ import annotations

import pytest

from repro.accelerators import build_accelerator
from repro.accelerators.bitwave import BitWave
from repro.eval import EvalRequest, evaluate, to_network_evaluation
from repro.experiments import common

WORKLOAD = "cnn_lstm"


class TestEvaluateNetworkShim:
    def test_warns_and_matches_new_api(self, isolated_store):
        acc = build_accelerator("Stripes")
        with pytest.warns(DeprecationWarning, match="evaluate_network"):
            legacy = acc.evaluate_network(WORKLOAD)
        modern = evaluate(
            EvalRequest(workload=WORKLOAD, accelerator="Stripes"))
        assert to_network_evaluation(modern) == legacy

    def test_adhoc_instance_matches_model_backend(self, isolated_store):
        """Instances with no registry name still shim correctly."""
        from repro.eval.backends import model_network_evaluation

        acc = BitWave("dynamic", "dense", False)
        with pytest.warns(DeprecationWarning):
            legacy = acc.evaluate_network(WORKLOAD)
        assert legacy == model_network_evaluation(
            BitWave("dynamic", "dense", False), WORKLOAD)


class TestCommonShims:
    """Every public common helper warns AND equals the new API."""

    def test_sota_evaluation(self, isolated_store):
        with pytest.warns(DeprecationWarning):
            legacy = common.sota_evaluation("SCNN", WORKLOAD)
        modern = evaluate(EvalRequest(workload=WORKLOAD,
                                      accelerator="SCNN"))
        assert legacy == to_network_evaluation(modern)

    def test_breakdown_evaluation(self, isolated_store):
        with pytest.warns(DeprecationWarning):
            legacy = common.breakdown_evaluation("+DF", WORKLOAD)
        modern = evaluate(EvalRequest(workload=WORKLOAD,
                                      accelerator="BitWave", variant="+DF"))
        assert legacy == to_network_evaluation(modern)

    def test_grids_match_eval_grids(self, isolated_store):
        from repro.eval.grids import breakdown_grid, sota_grid

        with pytest.warns(DeprecationWarning):
            legacy_sota = common.sota_grid((WORKLOAD,),
                                           accelerators=("Stripes",))
        modern_sota = sota_grid((WORKLOAD,), accelerators=("Stripes",))
        assert legacy_sota[("Stripes", WORKLOAD)] \
            == to_network_evaluation(modern_sota[("Stripes", WORKLOAD)])

        with pytest.warns(DeprecationWarning):
            legacy_bd = common.breakdown_grid((WORKLOAD,),
                                              variants=("Dense",))
        modern_bd = breakdown_grid((WORKLOAD,), variants=("Dense",))
        assert legacy_bd[("Dense", WORKLOAD)] \
            == to_network_evaluation(modern_bd[("Dense", WORKLOAD)])

    def test_shims_share_the_new_cache(self, isolated_store):
        """A shim call and a new-API call hit one store entry."""
        modern = evaluate(EvalRequest(workload=WORKLOAD,
                                      accelerator="HUAA"))
        store = common.default_store()
        assert store is not None
        key = EvalRequest(workload=WORKLOAD, accelerator="HUAA").key()
        assert key in store
        with pytest.warns(DeprecationWarning):
            legacy = common.sota_evaluation("HUAA", WORKLOAD)
        assert legacy == to_network_evaluation(modern)

    def test_memo_identity_preserved(self, isolated_store):
        with pytest.warns(DeprecationWarning):
            first = common.sota_evaluation("Stripes", WORKLOAD)
        with pytest.warns(DeprecationWarning):
            again = common.sota_evaluation("Stripes", WORKLOAD)
        assert again is first
