"""EvalRequest/EvalResult unit behavior: validation, keys, schema."""

from __future__ import annotations

import pytest

from repro.eval import (
    EvalOptions,
    EvalRequest,
    EvalResult,
    LayerResult,
    config_hash,
)
from repro.workloads.nets import network_layers, parse_network


class TestParseNetwork:
    def test_bare_name(self):
        assert parse_network("resnet18") == ("resnet18", {})

    def test_parametrized(self):
        assert parse_network("bert_base@tokens=128") \
            == ("bert_base", {"tokens": 128})

    def test_multiple_params(self):
        base, params = parse_network("cnn_lstm@frames=4+hidden=128")
        assert base == "cnn_lstm"
        assert params == {"frames": 4, "hidden": 128}

    def test_unknown_network(self):
        with pytest.raises(ValueError, match="unknown network"):
            parse_network("alexnet")

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            parse_network("resnet18@tokens=4")

    def test_bad_value(self):
        with pytest.raises(ValueError, match="integer"):
            parse_network("bert_base@tokens=big")
        with pytest.raises(ValueError, match=">= 1"):
            parse_network("bert_base@tokens=0")
        with pytest.raises(ValueError, match="name=value"):
            parse_network("bert_base@tokens")

    def test_token_count_drives_layer_table(self):
        base = network_layers("bert_base")
        swept = network_layers("bert_base@tokens=128")
        assert [s.name for s in base] == [s.name for s in swept]
        assert all(s.ox == 4 for s in base)
        assert all(s.ox == 128 for s in swept)
        # Weight shapes (and thus sparsity stats) are token-independent.
        assert [(s.k, s.c) for s in base] == [(s.k, s.c) for s in swept]


class TestEvalRequest:
    def test_defaults_and_key_stability(self):
        a = EvalRequest(workload="cnn_lstm")
        b = EvalRequest(workload="cnn_lstm", accelerator="BitWave",
                        backend="model")
        assert a == b
        assert a.key() == b.key()
        assert a.key() == config_hash(a.to_dict())

    def test_axes_change_the_key(self):
        base = EvalRequest(workload="cnn_lstm")
        assert base.key() != EvalRequest(workload="resnet18").key()
        assert base.key() != EvalRequest(workload="cnn_lstm",
                                         accelerator="SCNN").key()
        assert base.key() != EvalRequest(workload="cnn_lstm",
                                         backend="sim-vectorized").key()
        assert base.key() != EvalRequest(
            workload="cnn_lstm",
            options=EvalOptions(sim_max_contexts=8)).key()
        assert base.key() != EvalRequest(
            workload="bert_base@tokens=64").key()

    def test_full_variant_canonicalizes(self):
        full = EvalRequest(workload="cnn_lstm", variant="+DF+SM+BF")
        sota = EvalRequest(workload="cnn_lstm")
        assert full == sota
        assert full.config_label == "BitWave"

    def test_round_trip(self):
        request = EvalRequest(
            workload="bert_base@tokens=64", variant="+DF",
            arch="bitwave-16nm@group=16+sram_pj=0.5",
            options=EvalOptions(batch=2, sim_max_contexts=8))
        assert EvalRequest.from_dict(request.to_dict()) == request

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="unknown accelerator"):
            EvalRequest(workload="cnn_lstm", accelerator="TPU").validate()
        with pytest.raises(ValueError, match="unknown backend"):
            EvalRequest(workload="cnn_lstm", backend="rtl").validate()
        with pytest.raises(ValueError, match="unknown network"):
            EvalRequest(workload="alexnet").validate()
        with pytest.raises(ValueError, match="BitWave ablations"):
            EvalRequest(workload="cnn_lstm", accelerator="SCNN",
                        variant="Dense").validate()

    def test_sim_backend_restrictions(self):
        with pytest.raises(ValueError, match="fully-enabled BitWave"):
            EvalRequest(workload="cnn_lstm", accelerator="SCNN",
                        backend="sim-vectorized").validate()
        with pytest.raises(ValueError, match="fully-enabled BitWave"):
            EvalRequest(workload="cnn_lstm", variant="+DF",
                        backend="sim-vectorized").validate()

    def test_bad_options(self):
        with pytest.raises(ValueError, match="batch"):
            EvalRequest(workload="cnn_lstm",
                        options=EvalOptions(batch=0)).validate()
        with pytest.raises(ValueError, match="sim_max_contexts"):
            EvalRequest(workload="cnn_lstm",
                        options=EvalOptions(sim_max_contexts=-1)).validate()

    def test_legacy_sim_option_keys_fail_loudly(self):
        """Pre-arch request dicts carrying sim geometry must not
        silently deserialize onto default hardware."""
        with pytest.raises(ValueError, match="arch axis"):
            EvalOptions.from_dict({"batch": 1, "sim_group_size": 16})

    def test_arch_axis(self):
        base = EvalRequest(workload="cnn_lstm")
        swept = EvalRequest(workload="cnn_lstm",
                            arch="bitwave-16nm@sram_pj=0.5")
        assert swept.key() != base.key()
        # The preset's own values canonicalize away.
        assert EvalRequest(workload="cnn_lstm",
                           arch="bitwave-16nm@group=8") == base
        assert "bitwave-16nm@sram_pj=0.5" in swept.config_label
        with pytest.raises(ValueError, match="unknown arch preset"):
            EvalRequest(workload="cnn_lstm", arch="tpu-v4").validate()
        with pytest.raises(ValueError, match="unknown arch field"):
            EvalRequest(workload="cnn_lstm",
                        arch="bitwave-16nm@foo=1").validate()

    def test_labels(self):
        assert EvalRequest(workload="cnn_lstm").label == "BitWave/cnn_lstm"
        assert EvalRequest(workload="cnn_lstm", variant="+DF").config_label \
            == "BitWave[+DF]"
        assert EvalRequest(workload="cnn_lstm",
                           backend="sim-reference").config_label \
            == "BitWave@sim-reference"


class TestEvalResult:
    def _result(self) -> EvalResult:
        return EvalResult(
            workload="w", config_label="c", backend="model",
            layers=(
                LayerResult(name="l0", macs=100, cycles=10.0, energy_pj=4.0,
                            energy={"dram": 1.0, "sram": 1.0, "reg": 1.0,
                                    "compute": 1.0},
                            traffic={"dram_elems": 5.0}),
                LayerResult(name="l1", macs=300, cycles=30.0, energy_pj=12.0,
                            energy={"dram": 9.0, "sram": 1.0, "reg": 1.0,
                                    "compute": 1.0},
                            traffic={"dram_elems": 7.0}),
            ))

    def test_totals(self):
        result = self._result()
        assert result.total_macs == 400
        assert result.total_cycles == 40.0
        assert result.total_energy_pj == 16.0
        assert result.traffic_totals() == {"dram_elems": 12.0}

    def test_energy_shares(self):
        shares = self._result().energy_shares()
        assert shares["dram"] == 10.0 / 16.0
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_no_energy_model_means_inf_efficiency(self):
        result = EvalResult(
            workload="w", config_label="c", backend="sim-vectorized",
            layers=(LayerResult(name="l", macs=10, cycles=5.0,
                                energy_pj=0.0),))
        assert result.efficiency_tops_per_w == float("inf")
        assert result.energy_shares()["dram"] == 0.0

    def test_dict_round_trip(self):
        result = self._result()
        assert EvalResult.from_dict(result.to_dict()) == result


class TestCanonicalWorkloads:
    """Equivalent workload spellings share one cache key (review fix)."""

    def test_default_params_drop(self):
        from repro.workloads.nets import canonical_network

        assert canonical_network("bert_base@tokens=4") == "bert_base"
        assert canonical_network("bert_base@tokens=64") \
            == "bert_base@tokens=64"

    def test_param_order_canonicalizes(self):
        from repro.workloads.nets import canonical_network

        assert canonical_network("cnn_lstm@hidden=128+frames=4") \
            == canonical_network("cnn_lstm@frames=4+hidden=128")

    def test_duplicate_param_rejected(self):
        with pytest.raises(ValueError, match="duplicate parameter"):
            parse_network("bert_base@tokens=4+tokens=8")

    def test_request_keys_unify_spellings(self):
        assert EvalRequest(workload="bert_base@tokens=4").key() \
            == EvalRequest(workload="bert_base").key()
        assert EvalRequest(workload="cnn_lstm@hidden=128+frames=4").key() \
            == EvalRequest(workload="cnn_lstm@frames=4+hidden=128").key()

    def test_bad_workload_still_reported_by_validate(self):
        request = EvalRequest(workload="alexnet")  # construction is lazy
        with pytest.raises(ValueError, match="unknown network"):
            request.validate()
