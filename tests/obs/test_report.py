"""Report aggregation and the ``python -m repro.obs`` CLI."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.__main__ import main
from repro.obs.report import (aggregate, iter_events, percentile,
                              phase_breakdown, report_data, slowest_spans)


def write_trace(directory, lines, name="trace-1-aa.jsonl"):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))
    return path


def span(name, dur_s, pid=1, ok=True, **attrs):
    event = {"t": "span", "name": name, "ts": 0.0, "dur_s": dur_s,
             "ok": ok, "pid": pid}
    if attrs:
        event["attrs"] = attrs
    return event


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.95) == 0.0

    def test_single(self):
        assert percentile([3.0], 0.50) == 3.0
        assert percentile([3.0], 0.95) == 3.0

    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 1.0) == 100.0


class TestAggregate:
    def test_span_stats(self, tmp_path):
        write_trace(tmp_path, [
            span("sim.compute", 0.1),
            span("sim.compute", 0.3),
            span("sim.compute", 0.2, ok=False),
        ])
        data = aggregate(iter_events(tmp_path))
        stats = data["spans"]["sim.compute"]
        assert stats["count"] == 3
        assert stats["total_s"] == pytest.approx(0.6)
        assert stats["mean_s"] == pytest.approx(0.2)
        assert stats["p50_s"] == pytest.approx(0.2)
        assert stats["max_s"] == pytest.approx(0.3)
        assert stats["errors"] == 1

    def test_counter_breakdown(self, tmp_path):
        write_trace(tmp_path, [
            {"t": "counter", "name": "eval.cache", "n": 1, "pid": 1,
             "attrs": {"result": "miss", "backend": "model"}},
            {"t": "counter", "name": "eval.cache", "n": 1, "pid": 1,
             "attrs": {"result": "miss", "backend": "model"}},
            {"t": "counter", "name": "eval.cache", "n": 3, "pid": 2,
             "attrs": {"result": "store", "backend": "model"}},
        ])
        data = aggregate(iter_events(tmp_path))
        entry = data["counters"]["eval.cache"]
        assert entry["total"] == 5
        assert entry["breakdown"] == {
            "backend=model,result=miss": 2,
            "backend=model,result=store": 3,
        }

    def test_gauges_and_processes(self, tmp_path):
        write_trace(tmp_path, [
            {"t": "gauge", "name": "queue.depth", "value": 2.0, "pid": 1},
            {"t": "gauge", "name": "queue.depth", "value": 6.0, "pid": 2},
        ])
        data = aggregate(iter_events(tmp_path))
        assert data["gauges"]["queue.depth"] == {
            "count": 2, "min": 2.0, "mean": 4.0, "max": 6.0}
        assert data["processes"] == 2
        assert data["events"] == 2

    def test_merges_files_in_name_order(self, tmp_path):
        write_trace(tmp_path, [span("a", 0.1, pid=2)],
                    name="trace-2-bb.jsonl")
        write_trace(tmp_path, [span("a", 0.2, pid=1)],
                    name="trace-1-aa.jsonl")
        events = list(iter_events(tmp_path))
        assert [event["pid"] for event in events] == [1, 2]
        assert aggregate(events)["spans"]["a"]["count"] == 2

    def test_missing_directory(self, tmp_path):
        data = aggregate(iter_events(tmp_path / "nope"))
        assert data["events"] == 0
        assert data["spans"] == {}

    def test_tolerates_garbage_lines(self, tmp_path):
        path = write_trace(tmp_path, [span("ok", 0.1)])
        with path.open("a") as handle:
            handle.write("not json\n")
            handle.write('{"t": "span", "name": "to')  # torn write
        data = aggregate(iter_events(tmp_path))
        assert data["events"] == 1


class TestSlowest:
    def test_top_n_longest_first(self, tmp_path):
        write_trace(tmp_path, [
            span("a", 0.1, label="p1"),
            span("b", 0.5, label="p2"),
            span("c", 0.3, label="p3"),
            {"t": "counter", "name": "noise", "n": 1, "pid": 1},
        ])
        slowest = slowest_spans(iter_events(tmp_path), top=2)
        assert [entry["name"] for entry in slowest] == ["b", "c"]
        assert slowest[0]["attrs"] == {"label": "p2"}


class TestReportData:
    def test_round_trip_from_tracer(self, trace_dir):
        with obs.trace("phase.x", layer="conv"):
            pass
        obs.counter("hits", n=2)
        obs.gauge("depth", 4.0)
        obs.flush()
        data = report_data(trace_dir, top=5)
        assert data["spans"]["phase.x"]["count"] == 1
        assert data["counters"]["hits"]["total"] == 2
        assert data["gauges"]["depth"]["count"] == 1
        assert data["slowest"][0]["name"] == "phase.x"
        assert data["dir"] == str(trace_dir)

    def test_phase_breakdown_is_spans_only(self, tmp_path):
        write_trace(tmp_path, [
            span("a", 0.1),
            {"t": "counter", "name": "c", "n": 1, "pid": 1},
        ])
        phases = phase_breakdown(tmp_path)
        assert set(phases) == {"a"}
        assert phases["a"]["count"] == 1


class TestCli:
    def test_report_table(self, tmp_path, capsys):
        write_trace(tmp_path, [span("sim.compute", 0.25, layer="fc1"),
                               {"t": "counter", "name": "hits", "n": 3,
                                "pid": 1}])
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sim.compute" in out
        assert "Per-phase span latency" in out
        assert "Counters" in out
        assert "Slowest spans" in out

    def test_report_json(self, tmp_path, capsys):
        write_trace(tmp_path, [span("a", 0.1)])
        assert main(["report", str(tmp_path), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["spans"]["a"]["count"] == 1
        assert data["events"] == 1

    def test_slow_subcommand(self, tmp_path, capsys):
        write_trace(tmp_path, [span("a", 0.1, label="x"),
                               span("b", 0.9, label="y")])
        assert main(["slow", str(tmp_path), "--top", "1",
                     "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in rows] == ["b"]

    def test_empty_directory(self, tmp_path, capsys):
        tmp_path.joinpath("empty").mkdir()
        assert main(["report", str(tmp_path / "empty")]) == 0
        assert "(no events)" in capsys.readouterr().out
