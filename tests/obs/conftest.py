"""Shared fixtures for the ``repro.obs`` test suite."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def tracing_disabled_after():
    """Never leak an enabled tracer (or REPRO_TRACE) into other tests."""
    yield
    obs.configure(None)


@pytest.fixture
def trace_dir(tmp_path):
    """Tracing enabled into a throwaway directory for one test."""
    directory = obs.configure(tmp_path / "trace")
    yield directory
    obs.configure(None)
