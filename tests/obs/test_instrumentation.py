"""End-to-end instrumentation: traced campaigns, the disabled no-op
path (bit-identical outputs, pinned overhead), and the --trace flag."""

from __future__ import annotations

import math
import time

from repro import obs
from repro.dse.executor import run_campaign
from repro.dse.spec import CampaignSpec
from repro.dse.store import ResultStore
from repro.obs.report import aggregate, iter_events

MINI_NET = "cnn_lstm@frames=2+bins=32+hidden=32"


def _spec(name="obs-test", **overrides) -> CampaignSpec:
    base = dict(name=name, accelerators=("BitWave",),
                networks=(MINI_NET,),
                backends=("model", "sim-vectorized"))
    base.update(overrides)
    return CampaignSpec(**base)


class TestTracedCampaign:
    def test_spans_cover_all_four_layers(self, trace_dir, tmp_path):
        run = run_campaign(_spec(), ResultStore(tmp_path / "store"))
        obs.flush()
        data = aggregate(iter_events(trace_dir))
        spans = data["spans"]
        # Layer 1: eval API / point evaluation.
        assert "eval.evaluate" in spans
        # Layer 2: per-layer lowering.
        assert "eval.lower.layer" in spans
        assert "eval.lower.sim_call" in spans
        # Layer 3: sim kernels.
        assert "sim.compute" in spans
        assert "sim.plane_gemm" in spans
        assert "sim.energy_epilog" in spans
        # Layer 4: executor + store.
        assert "dse.point" in spans
        assert "dse.persist" in spans
        assert "dse.cache_scan" in spans
        assert "store.lock_wait" in spans
        assert spans["dse.point"]["count"] == run.total

    def test_counters_match_run_summary(self, trace_dir, tmp_path):
        store = ResultStore(tmp_path / "store")
        run = run_campaign(_spec(), store)
        obs.flush()
        counters = aggregate(iter_events(trace_dir))["counters"]
        assert counters["dse.points.total"]["total"] == run.total
        assert counters["dse.points.evaluated"]["total"] == run.evaluated
        assert counters["dse.points.cached"]["total"] == 0
        assert counters["dse.points.failed"]["total"] == 0
        assert counters["sim.kernel_dispatch"]["total"] > 0

    def test_resume_attributes_cache_hits(self, trace_dir, tmp_path):
        store_root = tmp_path / "store"
        run_campaign(_spec(), ResultStore(store_root))
        resumed = run_campaign(_spec(), ResultStore(store_root))
        assert resumed.cached == resumed.total
        obs.flush()
        counters = aggregate(iter_events(trace_dir))["counters"]
        # Both runs traced into the same dir: total counts twice, the
        # second run contributes only cached points.
        assert counters["dse.points.cached"]["total"] == resumed.total

    def test_pool_workers_write_their_own_files(self, trace_dir, tmp_path):
        run_campaign(_spec(), ResultStore(tmp_path / "store"), jobs=2)
        obs.flush()
        data = aggregate(iter_events(trace_dir))
        # Parent plus at least one pool worker (two when the pool
        # splits the two points, which it usually does).
        assert data["processes"] >= 2
        assert data["spans"]["dse.point"]["count"] == 2


class TestEvalApiAttribution:
    """The single-request API attributes every answer: miss (computed),
    store (read back), memo (process-local)."""

    def test_miss_store_memo_counters(self, trace_dir, tmp_path,
                                      monkeypatch):
        from repro.eval import api
        from repro.eval.request import EvalRequest

        monkeypatch.setenv("REPRO_DSE_STORE", str(tmp_path / "estore"))
        api.reset_cache()
        try:
            request = EvalRequest(workload=MINI_NET, accelerator="BitWave")
            api.evaluate(request)          # miss -> compute + persist
            api.reset_cache()
            api.evaluate(request)          # store hit (memo dropped)
            api.evaluate(request)          # memo hit
        finally:
            api.reset_cache()
        obs.flush()
        data = aggregate(iter_events(trace_dir))
        breakdown = data["counters"]["eval.cache"]["breakdown"]
        assert breakdown == {
            "backend=model,result=miss": 1,
            "backend=model,result=store": 1,
            "backend=model,result=memo": 1,
        }
        assert data["spans"]["eval.store_lookup"]["count"] == 2
        assert data["spans"]["eval.persist"]["count"] == 1
        assert data["spans"]["eval.evaluate"]["count"] == 1
        assert data["spans"]["eval.model"]["count"] == 1


class TestDisabledNoOp:
    """Satellite: the no-tracing path must not perturb results at all."""

    def test_campaign_outputs_bit_identical_with_and_without_trace(
            self, tmp_path):
        plain = run_campaign(_spec(), ResultStore(tmp_path / "plain"))
        obs.configure(tmp_path / "trace")
        try:
            traced = run_campaign(_spec(), ResultStore(tmp_path / "traced"))
        finally:
            obs.configure(None)
        assert plain.results == traced.results
        assert (plain.total, plain.cached, plain.evaluated) == \
            (traced.total, traced.cached, traced.evaluated)
        # And the store records agree field-for-field (modulo the
        # wall-clock fields stamped per record).
        for key, result in plain.results.items():
            assert traced.results[key] == result

    def test_no_trace_files_written_when_disabled(self, tmp_path):
        run_campaign(_spec(name="no-files"), ResultStore(tmp_path / "s"))
        obs.flush()
        assert obs.trace_dir() is None
        leaked = list(tmp_path.rglob("trace-*.jsonl"))
        assert leaked == []

    def test_disabled_overhead_under_two_percent(self):
        """Micro-benchmark pinning design constraint #1: with tracing
        off, the per-call cost of one span + one counter is <2% of the
        work quantum the sim hot path wraps them around (~0.5ms of
        arithmetic -- every obs call in the instrumented layers guards
        a vectorized kernel of at least this weight).

        Measured as amortized per-call cost over a large batch vs a
        best-of-N timing of the bare work unit: an A/B loop comparison
        at this overhead level disappears into run-to-run drift, while
        both quantities here are individually stable.
        """
        assert not obs.enabled()
        iters = 10_000
        calls = 50_000

        def work_unit() -> float:
            acc = 0.0
            for i in range(iters):
                acc += math.sqrt(i + 1.5)
            return acc

        def obs_batch() -> None:
            for _ in range(calls):
                with obs.trace("bench.unit", kind="noop"):
                    pass
                obs.counter("bench.count")

        def best_of(fn, repeats=10) -> float:
            best = math.inf
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        best_of(work_unit, repeats=3)  # warm both paths
        obs_batch()
        unit = best_of(work_unit)
        per_call = best_of(obs_batch, repeats=3) / calls
        overhead = per_call / unit
        assert overhead < 0.02, (
            f"disabled span+counter cost {per_call * 1e9:.0f}ns = "
            f"{overhead:.2%} of the {unit * 1e6:.1f}us work quantum")


class TestCliTraceFlag:
    def test_run_trace_flag_writes_and_reports(self, tmp_path, monkeypatch,
                                               capsys):
        from repro.dse.__main__ import main as dse_main

        monkeypatch.setenv("REPRO_DSE_STORE", str(tmp_path / "store"))
        trace_root = tmp_path / "t"
        try:
            assert dse_main(["run", "--name", "cli-trace",
                             "--accelerators", "Stripes",
                             "--networks", "cnn_lstm",
                             "--quiet", "--trace", str(trace_root)]) == 0
        finally:
            obs.configure(None)
        out = capsys.readouterr().out
        assert f"trace: {trace_root}" in out
        assert "python -m repro.obs report" in out
        data = aggregate(iter_events(trace_root))
        assert data["spans"]["dse.point"]["count"] == 1
        assert data["counters"]["dse.points.evaluated"]["total"] == 1

    def test_run_trace_auto_lands_under_store(self, tmp_path, monkeypatch,
                                              capsys):
        from repro.dse.__main__ import main as dse_main

        store_root = tmp_path / "store"
        monkeypatch.setenv("REPRO_DSE_STORE", str(store_root))
        try:
            assert dse_main(["run", "--name", "cli-auto",
                             "--accelerators", "Stripes",
                             "--networks", "cnn_lstm",
                             "--quiet", "--trace"]) == 0
        finally:
            obs.configure(None)
        capsys.readouterr()
        traces = list((store_root / "traces").iterdir())
        assert len(traces) == 1
        assert traces[0].name.startswith("cli-auto-")
        assert list(iter_events(traces[0]))
