"""Tracer core: emission, enable/disable, buffering, process safety."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro import obs
from repro.obs import tracer
from repro.obs.report import iter_events


def read_events(directory):
    return list(iter_events(directory))


class TestDisabled:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.trace_dir() is None

    def test_trace_returns_shared_null_span(self):
        # The no-op span is one shared object: the disabled hot path
        # allocates nothing per call.
        a = obs.trace("x", attr=1)
        b = obs.trace("y")
        assert a is b
        with a:
            pass

    def test_counter_gauge_observe_are_noops(self, tmp_path):
        obs.counter("c", n=3)
        obs.gauge("g", 1.0)
        obs.observe("o", 0.5)
        obs.flush()
        assert not list(tmp_path.iterdir())

    def test_null_span_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with obs.trace("x"):
                raise RuntimeError("boom")


class TestEmission:
    def test_span_event(self, trace_dir):
        with obs.trace("phase.one", layer="conv1"):
            pass
        obs.flush()
        (event,) = read_events(trace_dir)
        assert event["t"] == "span"
        assert event["name"] == "phase.one"
        assert event["attrs"] == {"layer": "conv1"}
        assert event["dur_s"] >= 0.0
        assert event["ok"] is True
        assert event["pid"] == os.getpid()

    def test_span_records_failure(self, trace_dir):
        with pytest.raises(ValueError):
            with obs.trace("phase.bad"):
                raise ValueError("nope")
        obs.flush()
        (event,) = read_events(trace_dir)
        assert event["ok"] is False

    def test_counter_and_gauge_and_observe(self, trace_dir):
        obs.counter("hits", n=2, backend="model")
        obs.gauge("depth", 7.0)
        obs.observe("lock.wait", 0.25, namespace="ns")
        obs.flush()
        by_name = {event["name"]: event for event in read_events(trace_dir)}
        assert by_name["hits"]["n"] == 2
        assert by_name["hits"]["attrs"] == {"backend": "model"}
        assert by_name["depth"]["value"] == 7.0
        assert by_name["lock.wait"]["t"] == "span"
        assert by_name["lock.wait"]["dur_s"] == 0.25

    def test_events_buffer_until_flush(self, trace_dir):
        obs.counter("c")
        assert read_events(trace_dir) == []
        obs.flush()
        assert len(read_events(trace_dir)) == 1

    def test_auto_flush_at_batch_size(self, trace_dir):
        for _ in range(tracer.FLUSH_EVERY):
            obs.counter("c")
        assert len(read_events(trace_dir)) == tracer.FLUSH_EVERY


class TestConfigure:
    def test_configure_sets_and_clears_env(self, tmp_path):
        resolved = obs.configure(tmp_path / "t")
        assert os.environ[obs.TRACE_ENV] == str(resolved)
        assert obs.enabled()
        assert obs.trace_dir() == resolved
        obs.configure(None)
        assert obs.TRACE_ENV not in os.environ
        assert not obs.enabled()

    def test_configure_flushes_previous_sink(self, tmp_path):
        obs.configure(tmp_path / "a")
        obs.counter("c")
        obs.configure(tmp_path / "b")  # must not lose the buffered event
        assert len(read_events(tmp_path / "a")) == 1
        obs.configure(None)

    def test_env_init(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.TRACE_ENV, str(tmp_path / "envtrace"))
        tracer._init_from_env()
        try:
            assert obs.enabled()
            obs.counter("c")
            obs.flush()
            assert len(read_events(tmp_path / "envtrace")) == 1
        finally:
            obs.configure(None)


def _child_emit(directory: str) -> None:
    # Runs in a forked child that inherited the parent's live sink:
    # its events must land in a file of its own.
    obs.counter("from_child")
    obs.flush()


class TestProcessSafety:
    def test_one_file_per_process(self, trace_dir):
        obs.counter("from_parent")
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_child_emit, args=(str(trace_dir),))
        proc.start()
        proc.join()
        assert proc.exitcode == 0
        obs.flush()
        events = read_events(trace_dir)
        names = {event["name"] for event in events}
        assert names == {"from_parent", "from_child"}
        # Two distinct pids, two distinct files.
        assert len({event["pid"] for event in events}) == 2
        assert len(list(trace_dir.glob("trace-*.jsonl"))) == 2

    def test_forked_child_does_not_replay_parent_buffer(self, trace_dir):
        # The parent's unflushed event must appear exactly once even
        # though the child inherits the buffer via fork.
        obs.counter("parent_only")
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_child_emit, args=(str(trace_dir),))
        proc.start()
        proc.join()
        obs.flush()
        events = [event for event in read_events(trace_dir)
                  if event["name"] == "parent_only"]
        assert len(events) == 1

    def test_torn_trailing_line_tolerated(self, trace_dir):
        obs.counter("good")
        obs.flush()
        path = next(iter(trace_dir.glob("trace-*.jsonl")))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"t": "counter", "name": "to')  # torn write
        events = read_events(trace_dir)
        assert [event["name"] for event in events] == ["good"]

    def test_lines_are_valid_json(self, trace_dir):
        obs.counter("a", n=1, label="x/y")
        with obs.trace("b"):
            pass
        obs.flush()
        path = next(iter(trace_dir.glob("trace-*.jsonl")))
        for line in path.read_text().splitlines():
            json.loads(line)
