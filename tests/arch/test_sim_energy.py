"""Sim-energy epilog and the arch evaluation axis, end to end.

The acceptance bar: ``evaluate()`` with ``backend="sim-vectorized"``
returns non-``None`` ``energy_pj`` and ``efficiency_tops_per_w`` that
agree with the matched analytical-model prediction within the same <6%
deviation bound established for cycles, and an ``--archs``-swept DSE
campaign persists distinctly-hashed records per arch override.
"""

from __future__ import annotations

import math

import pytest

from repro.eval import EvalRequest, evaluate

#: A parametrized CNN-LSTM small enough for both datapaths.
MINI_WORKLOAD = "cnn_lstm@frames=4+bins=64+hidden=64"

#: The paper's Section V-B bound (<6% vs RTL), reused for energy.
DEVIATION_BOUND = 0.06


class TestSimEnergyPriced:
    def test_energy_fields_populated(self, isolated_store):
        result = evaluate(EvalRequest(workload=MINI_WORKLOAD,
                                      backend="sim-vectorized"))
        assert result.models_energy
        assert result.total_energy_pj > 0
        assert math.isfinite(result.efficiency_tops_per_w)
        assert result.efficiency_tops_per_w > 0
        for layer in result.layers:
            assert layer.energy_pj > 0
            assert set(layer.energy) == {"dram", "sram", "reg", "compute"}
            assert layer.energy_pj == pytest.approx(
                sum(layer.energy.values()))

    def test_datapaths_price_identically(self, isolated_store):
        """Both datapaths are one structural machine: identical counters
        mean identical priced energy."""
        vec = evaluate(EvalRequest(workload=MINI_WORKLOAD,
                                   backend="sim-vectorized"))
        ref = evaluate(EvalRequest(workload=MINI_WORKLOAD,
                                   backend="sim-reference"))
        for a, b in zip(vec.layers, ref.layers):
            assert a.energy_pj == b.energy_pj
            assert a.energy == b.energy


class TestEnergyDeviationBound:
    """Sim-priced energy vs the matched analytical eq. (4) prediction."""

    @pytest.mark.parametrize("workload", ("cnn_lstm", "resnet18"))
    def test_per_layer_energy_within_bound(self, workload, isolated_store):
        result = evaluate(EvalRequest(workload=workload,
                                      backend="sim-vectorized"))
        for layer in result.layers:
            assert layer.detail["energy_deviation"] < DEVIATION_BOUND, \
                layer.name

    @pytest.mark.parametrize("workload", ("cnn_lstm", "resnet18"))
    def test_efficiency_within_bound(self, workload, isolated_store):
        """TOPS/W from the sim epilog vs TOPS/W from the matched
        analytic energies, network-level."""
        result = evaluate(EvalRequest(workload=workload,
                                      backend="sim-vectorized"))
        analytic_total = sum(layer.detail["analytic_energy_pj"]
                             for layer in result.layers)
        analytic_eff = 2.0 * result.total_macs / (analytic_total * 1e-12) \
            / 1e12
        deviation = abs(result.efficiency_tops_per_w - analytic_eff) \
            / result.efficiency_tops_per_w
        assert deviation < DEVIATION_BOUND

    def test_tech_override_moves_sim_energy(self, isolated_store):
        base = evaluate(EvalRequest(workload=MINI_WORKLOAD,
                                    backend="sim-vectorized"))
        cheap = evaluate(EvalRequest(workload=MINI_WORKLOAD,
                                     backend="sim-vectorized",
                                     arch="bitwave-16nm@dram_pj=6"))
        assert cheap.total_energy_pj < base.total_energy_pj
        # Cycles are untouched by a pure unit-energy override.
        assert cheap.total_cycles == base.total_cycles

    def test_sram_capacity_moves_both_backends(self, isolated_store):
        """The sram_kb axis reaches the analytical mapper's fusion
        thresholds AND the sim epilog -- one spec moves both backends."""
        for backend in ("model", "sim-vectorized"):
            base = evaluate(EvalRequest(workload="resnet18",
                                        backend=backend))
            small = evaluate(EvalRequest(workload="resnet18",
                                         backend=backend,
                                         arch="bitwave-16nm@sram_kb=64"))
            assert small.total_energy_pj > base.total_energy_pj, backend

    def test_clock_override_consistent_across_entry_points(
            self, isolated_store):
        """The legacy NetworkEvaluation path and repro.eval agree on
        clock-derived metrics for a clock-overridden arch."""
        from repro.accelerators.bitwave import BitWave
        from repro.arch import parse_arch
        from repro.eval.backends import model_network_evaluation

        arch = "bitwave-16nm@clock_mhz=500"
        legacy = model_network_evaluation(
            BitWave(arch=parse_arch(arch)), MINI_WORKLOAD)
        result = evaluate(EvalRequest(workload=MINI_WORKLOAD, arch=arch))
        assert result.runtime_s == result.total_cycles / 500e6
        assert legacy.effective_tops == result.effective_tops

    def test_clock_survives_legacy_record_round_trip(self, isolated_store):
        """evaluation_to_dict/from_dict preserve a non-default clock
        (the conversion defaults to the evaluation's own clock)."""
        from repro.accelerators.bitwave import BitWave
        from repro.arch import parse_arch
        from repro.dse.records import evaluation_from_dict, evaluation_to_dict
        from repro.eval.backends import model_network_evaluation

        legacy = model_network_evaluation(
            BitWave(arch=parse_arch("bitwave-16nm@clock_mhz=500")),
            MINI_WORKLOAD)
        restored = evaluation_from_dict(evaluation_to_dict(legacy))
        assert restored.clock_hz == 500e6
        assert restored.effective_tops == legacy.effective_tops


class TestArchAxisCaching:
    def test_overridden_arch_never_collides_with_default(self, isolated_store):
        base = EvalRequest(workload=MINI_WORKLOAD, backend="sim-vectorized")
        swept = EvalRequest(workload=MINI_WORKLOAD, backend="sim-vectorized",
                            arch="bitwave-16nm@group=16")
        assert base.key() != swept.key()
        a = evaluate(base)
        b = evaluate(swept)
        # G=16 streams different column groups: different counters.
        assert a.total_cycles != b.total_cycles

    def test_archs_swept_campaign_persists_distinct_records(self, tmp_path):
        """An --archs-swept campaign lands one distinctly-hashed record
        per arch override, on both backends."""
        from repro.dse.executor import run_campaign
        from repro.dse.spec import CampaignSpec
        from repro.dse.store import ResultStore, StoreRouter

        spec = CampaignSpec(
            name="tech-sense",
            accelerators=("BitWave",),
            networks=(MINI_WORKLOAD,),
            backends=("model", "sim-vectorized"),
            archs=("bitwave-16nm", "bitwave-16nm@sram_pj=0.5",
                   "bitwave-16nm@group=16+dram_pj=30"),
        )
        points = spec.points()
        assert len(points) == 6  # 3 archs x 2 backends
        assert len({p.key() for p in points}) == 6

        store = ResultStore(tmp_path)
        run = run_campaign(spec, store)
        assert (run.total, run.evaluated) == (6, 6)
        router = StoreRouter(store)
        for point in points:
            stored = router.result(point)
            assert stored is not None
            assert stored.models_energy  # both backends price energy
        # Resume is fully cached -- records really landed per-arch.
        resumed = run_campaign(spec, ResultStore(tmp_path))
        assert (resumed.cached, resumed.evaluated) == (6, 0)

    def test_duplicate_arch_spellings_rejected(self):
        from repro.dse.spec import CampaignSpec

        spec = CampaignSpec(
            name="dupes",
            accelerators=("BitWave",),
            networks=(MINI_WORKLOAD,),
            archs=("bitwave-16nm", "bitwave-16nm@group=8"),
        )
        with pytest.raises(ValueError, match="duplicate arch"):
            spec.validate()


class TestNpuArchConstruction:
    def test_dense_columns_mode_engages_zcip_dense_schedule(
            self, isolated_store):
        """An arch with columns="dense" really simulates dense mode
        (and the matched analytic halves model it): the datapath
        streams the configured precision, not sparsity-skipped SM
        columns."""
        from repro.arch import parse_arch
        from repro.sim.npu import BitWaveNPU

        npu = BitWaveNPU(arch=parse_arch(
            "bitwave-16nm@columns=dense+dense_precision=4"))
        assert npu.parser.dense_mode
        assert npu.parser.dense_precision == 4

        dense = evaluate(EvalRequest(workload=MINI_WORKLOAD,
                                     backend="sim-vectorized",
                                     arch="bitwave-16nm@columns=dense"))
        sm = evaluate(EvalRequest(workload=MINI_WORKLOAD,
                                  backend="sim-vectorized"))
        assert dense.total_cycles != sm.total_cycles
        for layer in dense.layers:
            assert layer.detail["model_deviation"] < DEVIATION_BOUND
            assert layer.detail["energy_deviation"] < DEVIATION_BOUND

    def test_model_bitwave_defaults_from_dense_arch(self):
        """The model side follows the spec's columns mode: a dense
        arch builds a dense-columns, no-bitflip BitWave."""
        from repro.accelerators import build_accelerator
        from repro.arch import parse_arch

        acc = build_accelerator("BitWave", parse_arch("bitwave-dense-16nm"))
        assert acc.columns == "dense"
        assert acc.bitflip is False

    def test_legacy_positional_technology_errors_clearly(self):
        from repro.accelerators.scnn import SCNN
        from repro.model.technology import TECH_16NM

        with pytest.raises(TypeError, match="tech= keyword"):
            SCNN(TECH_16NM)

    def test_kwargs_route_through_spec_validation(self):
        """The silent Ku mis-accounting bugfix reaches the legacy kwargs
        path too."""
        from repro.sim.npu import BitWaveNPU

        with pytest.raises(ValueError, match="8-kernel weight-segment"):
            BitWaveNPU(ku=12)

    def test_arch_configures_geometry_and_tech(self):
        from repro.arch import parse_arch
        from repro.sim.npu import BitWaveNPU

        arch = parse_arch("bitwave-16nm@group=16+oxu=8+sram_pj=0.5")
        npu = BitWaveNPU(arch=arch)
        assert (npu.group_size, npu.oxu) == (16, 8)
        assert npu.tech.sram_pj_per_element == 0.5

    def test_run_carries_energy(self):
        import numpy as np

        from repro.sim.npu import BitWaveNPU

        rng = np.random.default_rng(7)
        w = rng.integers(-8, 8, (16, 32)).astype(np.int8)
        a = rng.integers(-8, 8, (4, 32)).astype(np.int32)
        run = BitWaveNPU().run_fc(w, a)
        assert run.energy is not None
        assert run.energy_pj == pytest.approx(run.energy.total_pj)
        assert run.energy.total_pj > 0
