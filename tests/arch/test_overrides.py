"""The ``@field=value`` override grammar: parse, canonicalize, errors."""

from __future__ import annotations

import pytest

from repro.arch import (
    DEFAULT_ARCH,
    arch_overrides,
    canonical_arch,
    default_arch,
    parse_arch,
)


class TestParseArch:
    def test_bare_preset(self):
        assert parse_arch("bitwave-16nm") == default_arch()

    def test_spec_passthrough(self):
        spec = default_arch()
        assert parse_arch(spec) is spec

    def test_issue_grammar_example(self):
        spec = parse_arch("bitwave-16nm@sram_pj=0.5+group=16")
        assert spec.group_size == 16
        assert spec.tech.sram_pj_per_element == 0.5
        # Untouched fields keep the preset's values.
        assert spec.ku == default_arch().ku
        assert spec.tech.dram_pj_per_element == \
            default_arch().tech.dram_pj_per_element

    def test_scaled_field(self):
        assert parse_arch(
            "bitwave-16nm@clock_mhz=500").tech.clock_frequency_hz == 500e6

    def test_geometry_fields(self):
        spec = parse_arch("bitwave-16nm@ku=64+oxu=8+weight_bw=512")
        assert (spec.ku, spec.oxu, spec.weight_bw_bits) == (64, 8, 512)

    def test_overrides_revalidate(self):
        with pytest.raises(ValueError, match="8-kernel weight-segment"):
            parse_arch("bitwave-16nm@ku=12")

    def test_dense_preset(self):
        spec = parse_arch("bitwave-dense-16nm")
        assert (spec.group_size, spec.ku) == (64, 64)


class TestArchOverrides:
    def test_split(self):
        base, overrides = arch_overrides("bitwave-16nm@group=16+dram_pj=30")
        assert base == "bitwave-16nm"
        assert overrides == {"group": 16, "dram_pj": 30.0}

    def test_int_fields_reject_floats(self):
        with pytest.raises(ValueError, match="must be an integer"):
            arch_overrides("bitwave-16nm@group=8.5")


class TestCanonicalArch:
    def test_bare_is_canonical(self):
        assert canonical_arch(DEFAULT_ARCH) == DEFAULT_ARCH

    def test_noop_override_dropped(self):
        assert canonical_arch("bitwave-16nm@group=8") == "bitwave-16nm"
        assert canonical_arch("bitwave-16nm@clock_mhz=250") == "bitwave-16nm"

    def test_sorted_and_value_normalized(self):
        assert canonical_arch("bitwave-16nm@sram_pj=0.50+group=16") \
            == "bitwave-16nm@group=16+sram_pj=0.5"

    def test_equivalent_spellings_share_one_form(self):
        spellings = (
            "bitwave-16nm@group=16+sram_pj=0.5",
            "bitwave-16nm@sram_pj=0.5+group=16",
            "bitwave-16nm@sram_pj=.5+group=16+ku=32",  # ku=32 is default
        )
        forms = {canonical_arch(s) for s in spellings}
        assert len(forms) == 1
        # And the canonical form parses back to the same spec.
        assert parse_arch(forms.pop()) == parse_arch(spellings[0])


class TestErrors:
    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown arch preset"):
            parse_arch("tpu-v4")

    def test_unknown_field(self):
        with pytest.raises(ValueError, match="unknown arch field"):
            parse_arch("bitwave-16nm@voltage=0.8")

    def test_malformed_override(self):
        with pytest.raises(ValueError, match="field=value"):
            parse_arch("bitwave-16nm@group")
        with pytest.raises(ValueError, match="field=value"):
            parse_arch("bitwave-16nm@=8")

    def test_duplicate_field(self):
        with pytest.raises(ValueError, match="duplicate arch field"):
            parse_arch("bitwave-16nm@group=8+group=16")

    def test_bad_value(self):
        with pytest.raises(ValueError, match="must be a number"):
            parse_arch("bitwave-16nm@sram_pj=cheap")
