"""Golden-equivalence suite: the default preset IS the old hard-coded
hardware description.

``tests/arch/golden/harness_outputs.json`` captures the Fig. 13-18 and
Table IV harness outputs from the commit *before* the ``repro.arch``
refactor (module-level constants, class-attribute widths, loose NPU
kwargs).  Every ``run()`` under the default ``bitwave-16nm`` preset
must reproduce them bit-identically -- JSON round-trips floats by
shortest-repr, so ``==`` over the decoded tree is an exact comparison.

Regenerate deliberately (only when the *model* changes, never for a
pure refactor) with::

    PYTHONPATH=src python -c "
    import json
    from repro.experiments import (fig13_breakdown, fig14_speedup,
        fig15_energy, fig16_energy_breakdown, fig17_efficiency,
        fig18_area_power, tab4_pe_types)
    json.dump({'fig13': fig13_breakdown.run(), 'fig14': fig14_speedup.run(),
               'fig15': fig15_energy.run(), 'fig16': fig16_energy_breakdown.run(),
               'fig17': fig17_efficiency.run(), 'fig18': fig18_area_power.run(),
               'tab4': tab4_pe_types.run()},
              open('tests/arch/golden/harness_outputs.json', 'w'),
              indent=2, sort_keys=True)"
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "golden" / "harness_outputs.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def isolated_store(tmp_path_factory):
    """Module-scoped store isolation: the Fig. 13-17 harnesses share one
    evaluation grid, so one warm store serves every golden test."""
    import os

    from repro.eval import api

    old = os.environ.get("REPRO_DSE_STORE")
    os.environ["REPRO_DSE_STORE"] = str(tmp_path_factory.mktemp("golden"))
    api.reset_cache()
    yield
    if old is None:
        os.environ.pop("REPRO_DSE_STORE", None)
    else:
        os.environ["REPRO_DSE_STORE"] = old
    api.reset_cache()


def _canonical(tree):
    """Round-trip through JSON so both sides use identical encodings."""
    return json.loads(json.dumps(tree, sort_keys=True))


class TestGoldenEquivalence:
    """Fig. 13-17 grids under the default preset, bit-identical."""

    def test_fig13_breakdown(self, golden, isolated_store):
        from repro.experiments import fig13_breakdown

        assert _canonical(fig13_breakdown.run()) == golden["fig13"]

    def test_fig14_speedup(self, golden, isolated_store):
        from repro.experiments import fig14_speedup

        assert _canonical(fig14_speedup.run()) == golden["fig14"]

    def test_fig15_energy(self, golden, isolated_store):
        from repro.experiments import fig15_energy

        assert _canonical(fig15_energy.run()) == golden["fig15"]

    def test_fig16_energy_breakdown(self, golden, isolated_store):
        from repro.experiments import fig16_energy_breakdown

        assert _canonical(fig16_energy_breakdown.run()) == golden["fig16"]

    def test_fig17_efficiency(self, golden, isolated_store):
        from repro.experiments import fig17_efficiency

        assert _canonical(fig17_efficiency.run()) == golden["fig17"]


class TestGoldenAreaPower:
    """Fig. 18 / Table IV through the ArchSpec accessors, bit-identical."""

    def test_fig18_area_power(self, golden):
        from repro.experiments import fig18_area_power

        assert _canonical(fig18_area_power.run()) == golden["fig18"]

    def test_tab4_pe_types(self, golden):
        from repro.experiments import tab4_pe_types

        assert _canonical(tab4_pe_types.run()) == golden["tab4"]
