"""ArchSpec/TechSpec unit behavior: identity, round-trip, validation."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.arch import (
    ARCH_PRESETS,
    DEFAULT_ARCH,
    PRESET_DESCRIPTIONS,
    ArchSpec,
    TechSpec,
    default_arch,
    register_arch,
)


class TestTechSpecIdentity:
    """The spec's defaults ARE the legacy constants (single-sourced)."""

    def test_matches_legacy_technology(self):
        from repro.model.technology import CLOCK_FREQUENCY_HZ, TECH_16NM

        assert TechSpec().technology() == TECH_16NM
        assert TechSpec().clock_frequency_hz == CLOCK_FREQUENCY_HZ

    def test_pe_type_table_reproduces_table_iv(self):
        """Energies x clock reproduce the published per-PE milliwatts
        and areas bit-identically."""
        from repro.model.area import PE_TYPES

        table = TechSpec().pe_type_table()
        assert set(table) == set(PE_TYPES)
        for name, published in PE_TYPES.items():
            assert table[name]["area_um2"] == published["area_um2"]
            assert table[name]["power_mw"] == published["power_mw"]

    def test_clock_scales_pe_power(self):
        doubled = replace(TechSpec(), clock_frequency_hz=500e6)
        base = TechSpec().pe_type_table()
        fast = doubled.pe_type_table()
        for name in base:
            assert fast[name]["power_mw"] == 2 * base[name]["power_mw"]
            assert fast[name]["area_um2"] == base[name]["area_um2"]


class TestJsonRoundTrip:
    def test_techspec_exact(self):
        tech = replace(TechSpec(), sram_pj_per_element=0.5,
                       clock_frequency_hz=123.456e6)
        wire = json.loads(json.dumps(tech.to_dict()))
        assert TechSpec.from_dict(wire) == tech

    def test_archspec_exact(self):
        spec = ArchSpec(group_size=16, ku=64, oxu=8, sram_kb=256,
                        tech=replace(TechSpec(), dram_pj_per_element=30.0))
        wire = json.loads(json.dumps(spec.to_dict()))
        assert ArchSpec.from_dict(wire) == spec

    def test_partial_dict_fills_defaults(self):
        spec = ArchSpec.from_dict({"group_size": 32})
        assert spec.group_size == 32
        assert spec.ku == ArchSpec().ku
        assert spec.tech == TechSpec()


class TestValidation:
    def test_group_size(self):
        with pytest.raises(ValueError, match="group_size must be >= 1"):
            ArchSpec(group_size=0)

    def test_ku_must_sit_on_segment_grid(self):
        """The PR 3 silent-mis-accounting bugfix: Ku off the 8-kernel
        weight-segment width now errors instead of mis-counting
        parallel streams."""
        with pytest.raises(ValueError, match="8-kernel weight-segment"):
            ArchSpec(ku=12)
        with pytest.raises(ValueError, match="8-kernel weight-segment"):
            ArchSpec(ku=4)
        ArchSpec(ku=8)
        ArchSpec(ku=64)

    def test_oxu(self):
        with pytest.raises(ValueError, match="oxu"):
            ArchSpec(oxu=0)

    def test_weight_bw_segment_multiple(self):
        with pytest.raises(ValueError, match="64-bit segment"):
            ArchSpec(weight_bw_bits=100)

    def test_dense_precision_bounds(self):
        with pytest.raises(ValueError, match="dense_precision"):
            ArchSpec(dense_precision=0)
        with pytest.raises(ValueError, match="dense_precision"):
            ArchSpec(dense_precision=9)

    def test_tech_fields_positive(self):
        with pytest.raises(ValueError, match="sram_pj_per_element"):
            TechSpec(sram_pj_per_element=0.0)
        with pytest.raises(ValueError, match="multiple of 8"):
            TechSpec(dram_bits_per_cycle=100)

    def test_tech_type(self):
        with pytest.raises(TypeError, match="TechSpec"):
            ArchSpec(tech={"sram_pj_per_element": 1.0})


class TestSystemScale:
    def test_area_breakdown_scales_with_spec(self):
        full = default_arch().area_breakdown()
        half = replace(default_arch(), n_bce=256).area_breakdown()
        assert half["pe_array"] == full["pe_array"] / 2
        assert half["sram"] == full["sram"]

    def test_power_breakdown_scales_with_sram(self):
        full = default_arch().power_breakdown()
        quarter = replace(default_arch(), sram_kb=128).power_breakdown()
        assert quarter["sram"] == full["sram"] / 4


class TestPresetRegistry:
    def test_default_registered(self):
        assert DEFAULT_ARCH in ARCH_PRESETS
        assert default_arch() == ARCH_PRESETS[DEFAULT_ARCH]
        assert default_arch() == ArchSpec()

    def test_every_preset_described_and_valid(self):
        for name, spec in ARCH_PRESETS.items():
            assert name in PRESET_DESCRIPTIONS
            assert isinstance(spec, ArchSpec)
            # Construction already validated; re-check round-trip.
            assert ArchSpec.from_dict(spec.to_dict()) == spec

    def test_register_arch_rejects_grammar_characters(self):
        with pytest.raises(ValueError, match="grammar characters"):
            register_arch("bad@name", ArchSpec())
