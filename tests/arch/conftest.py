"""Shared fixtures for the ``repro.arch`` test suite."""

from __future__ import annotations

import pytest

from repro.eval import api


@pytest.fixture
def isolated_store(tmp_path, monkeypatch):
    """Route the default (env-derived) store into a tmp dir."""
    monkeypatch.setenv("REPRO_DSE_STORE", str(tmp_path))
    api.reset_cache()
    yield tmp_path
    api.reset_cache()
