"""Tests for layer specs and the network tables (Fig. 12 left)."""

import pytest

from repro.workloads import (
    LayerSpec,
    NETWORKS,
    network_layers,
    synthetic_weights,
)


class TestLayerSpec:
    def test_macs_conv(self):
        spec = LayerSpec("x", "n", "conv", k=2, c=3, ox=4, oy=5, fx=2, fy=2)
        assert spec.macs == 2 * 3 * 4 * 5 * 2 * 2

    def test_weight_count_fc(self):
        spec = LayerSpec("x", "n", "fc", k=10, c=20, ox=1)
        assert spec.weight_count == 200

    def test_weight_count_dwconv(self):
        spec = LayerSpec("x", "n", "dwconv", k=16, c=1, ox=8, oy=8, fx=3, fy=3)
        assert spec.weight_count == 16 * 9

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            LayerSpec("x", "n", "attention", k=1, c=1, ox=1)

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError, match="k"):
            LayerSpec("x", "n", "conv", k=0, c=1, ox=1)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError, match="sparsity"):
            LayerSpec("x", "n", "fc", k=1, c=1, ox=1, input_value_sparsity=1.0)

    def test_scaled_batch(self):
        spec = LayerSpec("x", "n", "fc", k=8, c=8, ox=2)
        assert spec.scaled(4).macs == 4 * spec.macs


class TestNetworkTables:
    def test_unknown_network(self):
        with pytest.raises(ValueError, match="unknown network"):
            network_layers("alexnet")

    def test_resnet18_published_shape(self):
        layers = network_layers("resnet18")
        assert len(layers) == 21  # 20 convs + fc
        total_macs = sum(s.macs for s in layers)
        # Published ResNet18 @224: ~1.82 GMACs.
        assert 1.7e9 < total_macs < 1.95e9
        total_weights = sum(s.weight_count for s in layers)
        assert 11e6 < total_weights < 12e6

    def test_mobilenetv2_published_shape(self):
        layers = network_layers("mobilenetv2")
        total_macs = sum(s.macs for s in layers)
        # Published MobileNetV2 @224: ~0.3 GMACs.
        assert 0.25e9 < total_macs < 0.35e9
        total_weights = sum(s.weight_count for s in layers)
        assert 3e6 < total_weights < 4e6

    def test_mobilenetv2_names_l0_to_l51(self):
        names = [s.name for s in network_layers("mobilenetv2")]
        assert names[0] == "L.0"
        assert "L.51" in names
        assert names[-1] == "fc"

    def test_bert_weight_count(self):
        layers = network_layers("bert_base")
        encoder = sum(s.weight_count for s in layers if s.name != "qa_outputs")
        # 12 x (4 x 768^2 + 2 x 768 x 3072) = ~85M.
        assert 84e6 < encoder < 86e6

    def test_bert_tokens_parameterized(self):
        from repro.workloads import bert_base_layers

        layers = bert_base_layers(tokens=128)
        assert all(s.ox == 128 for s in layers)

    def test_cnn_lstm_lstm_dominates_weights(self):
        layers = {s.name: s for s in network_layers("cnn_lstm")}
        lstm = layers["LSTM.0"].weight_count + layers["LSTM.1"].weight_count
        total = sum(s.weight_count for s in layers.values())
        assert lstm / total > 0.75

    def test_all_networks_have_dense_first_input(self):
        for net in NETWORKS:
            first = network_layers(net)[0]
            assert first.input_value_sparsity == 0.0


class TestSyntheticWeights:
    def test_deterministic(self):
        spec = network_layers("resnet18")[2]
        import numpy as np

        assert np.array_equal(synthetic_weights(spec), synthetic_weights(spec))

    def test_shape_matches_weight_count(self):
        import numpy as np

        for spec in network_layers("mobilenetv2")[:6]:
            w = synthetic_weights(spec)
            assert int(np.prod(w.shape)) == spec.weight_count

    def test_realistic_distribution(self):
        import numpy as np

        spec = network_layers("resnet18")[5]
        w = synthetic_weights(spec).astype(np.float64)
        # Small-magnitude dominated: mean |w| well below half range.
        assert np.abs(w).mean() < 40
        # Has some exact zeros (Fig. 1 value sparsity).
        assert 0.01 < (w == 0).mean() < 0.15
