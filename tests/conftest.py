"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import seeded_rng


@pytest.fixture
def rng() -> np.random.Generator:
    return seeded_rng("tests", "shared")


@pytest.fixture
def laplacian_int8(rng: np.random.Generator) -> np.ndarray:
    """Int8 weights with the small-magnitude-dominated shape of real DNNs."""
    values = rng.laplace(loc=0.0, scale=9.0, size=4096)
    return np.clip(np.round(values), -127, 127).astype(np.int8)
