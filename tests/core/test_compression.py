"""Tests for BCS compression and the ZRE/CSR baselines."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.compression import (
    bcs_compress,
    bcs_compression_ratio,
    bcs_decompress,
    bcs_nonzero_column_fraction,
    csr_compression_ratio,
    zre_compression_ratio,
)

int8_arrays = arrays(np.int8, st.integers(1, 512),
                     elements=st.integers(-127, 127))


class TestBcsRoundtrip:
    @given(int8_arrays, st.sampled_from([4, 8, 16, 32]))
    def test_lossless(self, w, g):
        assert np.array_equal(bcs_decompress(bcs_compress(w, g)), w)

    def test_multidimensional_shape_restored(self):
        w = np.arange(24, dtype=np.int8).reshape(2, 3, 4)
        out = bcs_decompress(bcs_compress(w, 8))
        assert out.shape == (2, 3, 4)
        assert np.array_equal(out, w)

    def test_all_zero_tensor(self):
        w = np.zeros(64, dtype=np.int8)
        c = bcs_compress(w, 16)
        assert c.payload_bits == 0
        assert np.array_equal(bcs_decompress(c), w)


class TestBcsAccounting:
    def test_index_byte_msb_is_sign_column(self):
        # A group with a negative member must raise the index MSB.
        c = bcs_compress(np.array([-1, 0, 0, 0], dtype=np.int8), 4)
        assert (int(c.indices[0]) & 0x80) != 0

    def test_positive_only_group_has_clear_msb(self):
        c = bcs_compress(np.array([1, 2, 3, 4], dtype=np.int8), 4)
        assert (int(c.indices[0]) & 0x80) == 0

    def test_index_cost_8_bits_per_group(self):
        c = bcs_compress(np.zeros(64, dtype=np.int8), 16)
        assert c.index_bits == 4 * 8

    def test_payload_counts_nonzero_columns(self):
        # One group of 8 with a single value 1: only the LSB column stored.
        c = bcs_compress(np.array([1, 0, 0, 0, 0, 0, 0, 0], dtype=np.int8), 8)
        assert c.payload_bits == 8

    def test_dense_tensor_cr_below_one(self):
        # Index overhead makes the real CR < 1 for incompressible data.
        rng = np.random.default_rng(0)
        w = rng.choice(np.array([-85, 85, -107, 107], dtype=np.int8), 1024)
        assert bcs_compression_ratio(w, 8) < 1.0

    def test_ideal_cr_at_least_real_cr(self, laplacian_int8):
        for g in (8, 16, 32):
            ideal = bcs_compression_ratio(laplacian_int8, g, ideal=True)
            real = bcs_compression_ratio(laplacian_int8, g)
            assert ideal >= real

    def test_ideal_cr_decreases_with_group_size(self, laplacian_int8):
        # Fig. 5: larger groups see fewer co-occurring zero columns.
        crs = [bcs_compression_ratio(laplacian_int8, g, ideal=True)
               for g in (1, 2, 4, 8, 16, 32, 64)]
        assert all(a >= b - 1e-9 for a, b in zip(crs, crs[1:]))

    def test_group1_real_cr_suffers_from_index(self, laplacian_int8):
        # Fig. 5: at G=1 the 8-bit-per-weight index offsets the benefit.
        real_g1 = bcs_compression_ratio(laplacian_int8, 1)
        real_g8 = bcs_compression_ratio(laplacian_int8, 8)
        assert real_g8 > real_g1

    def test_nonzero_column_fraction_bounds(self, laplacian_int8):
        f = bcs_nonzero_column_fraction(laplacian_int8, 16)
        assert 0.0 < f < 1.0


class TestZre:
    def test_all_zero(self):
        # 16 zeros with 4-bit runs: one escape entry covers 16 zeros.
        cr = zre_compression_ratio(np.zeros(16, dtype=np.int8))
        assert cr == (16 * 8) / 12.0

    def test_dense_worse_than_one(self):
        cr = zre_compression_ratio(np.ones(64, dtype=np.int8))
        assert cr < 1.0

    def test_sparse_beats_dense(self):
        sparse = np.zeros(64, dtype=np.int8)
        sparse[::16] = 7
        assert zre_compression_ratio(sparse) > zre_compression_ratio(
            np.ones(64, dtype=np.int8))

    def test_long_run_escapes_counted(self):
        # 100 zeros then one value: runs force escape entries.
        w = np.zeros(101, dtype=np.int8)
        w[-1] = 3
        cr_long = zre_compression_ratio(w)
        w_short = np.zeros(9, dtype=np.int8)
        w_short[-1] = 3
        cr_short = zre_compression_ratio(w_short)
        assert cr_long > cr_short  # still compresses better overall

    def test_ideal_geq_real(self, laplacian_int8):
        assert zre_compression_ratio(laplacian_int8, ideal=True) >= \
            zre_compression_ratio(laplacian_int8)

    def test_empty(self):
        assert zre_compression_ratio(np.array([], dtype=np.int8)) == 1.0


class TestCsr:
    def test_dense_overhead(self):
        cr = csr_compression_ratio(np.ones(128, dtype=np.int8))
        assert cr < 1.0

    def test_highly_sparse_compresses(self):
        w = np.zeros(1024, dtype=np.int8)
        w[::64] = 5
        assert csr_compression_ratio(w) > 3.0

    def test_ideal_geq_real(self, laplacian_int8):
        assert csr_compression_ratio(laplacian_int8, ideal=True) >= \
            csr_compression_ratio(laplacian_int8)

    def test_empty(self):
        assert csr_compression_ratio(np.array([], dtype=np.int8)) == 1.0


class TestBcsVsValueSparsityBaselines:
    def test_bcs_wins_at_low_value_sparsity(self, laplacian_int8):
        """Fig. 5's headline: at low value sparsity BCS-compression beats
        ZRE and CSR, which pay index costs for scarce zero values."""
        bcs = bcs_compression_ratio(laplacian_int8, 8)
        assert bcs > zre_compression_ratio(laplacian_int8)
        assert bcs > csr_compression_ratio(laplacian_int8)
