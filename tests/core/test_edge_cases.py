"""Edge-case and failure-injection tests across the core package.

These pin the behaviours that only show up at boundaries: extreme
values, degenerate groups, corrupted compressed streams, and adversarial
weight patterns.
"""

import numpy as np
import pytest

from repro.core.bitcolumn import group_weights, zero_column_mask
from repro.core.bitflip import flip_group, flip_groups
from repro.core.compression import BCSCompressed, bcs_compress, bcs_decompress
from repro.core.signmag import sm_bitplanes, to_sign_magnitude


class TestExtremeValues:
    def test_all_127(self):
        w = np.full(32, 127, dtype=np.int8)
        c = bcs_compress(w, 8)
        # Every magnitude column non-zero, sign column zero: 7 columns.
        assert c.payload_bits == 4 * 7 * 8
        assert np.array_equal(bcs_decompress(c), w)

    def test_all_minus_127(self):
        w = np.full(32, -127, dtype=np.int8)
        c = bcs_compress(w, 8)
        assert c.payload_bits == 4 * 8 * 8  # + sign column
        assert np.array_equal(bcs_decompress(c), w)

    def test_minus_128_saturates_through_compression(self):
        w = np.array([-128, 1, 2, 3], dtype=np.int8)
        restored = bcs_decompress(bcs_compress(w, 4))
        assert restored[0] == -127  # documented saturation
        assert np.array_equal(restored[1:], w[1:])

    def test_alternating_extremes_flip(self):
        group = np.array([127, -127, 127, -127], dtype=np.int8)
        result = flip_group(group, 6)
        assert result.min_zero_columns >= 6
        # Signs preserved even under deep flipping.
        assert np.all(np.sign(result.weights) == np.sign(group))

    def test_single_weight_group(self):
        w = np.array([-37], dtype=np.int8)
        groups = group_weights(w, 1)
        mask = zero_column_mask(groups)
        # 37 = 0b0100101: sign + 3 ones -> 4 non-zero columns.
        assert (~mask).sum() == 4


class TestCorruptedStreams:
    def _compressed(self):
        rng = np.random.default_rng(9)
        w = rng.integers(-100, 100, 64).astype(np.int8)
        return w, bcs_compress(w, 8)

    def test_truncated_columns_rejected(self):
        w, c = self._compressed()
        corrupted = BCSCompressed(
            indices=c.indices,
            columns=c.columns[:-1],
            group_size=c.group_size,
            original_shape=c.original_shape,
        )
        with pytest.raises(Exception):
            bcs_decompress(corrupted)

    def test_wrong_shape_rejected(self):
        w, c = self._compressed()
        corrupted = BCSCompressed(
            indices=c.indices,
            columns=c.columns,
            group_size=c.group_size,
            original_shape=(1000,),
        )
        with pytest.raises(ValueError):
            bcs_decompress(corrupted)

    def test_index_flip_changes_decoded_values(self):
        w, c = self._compressed()
        indices = c.indices.copy()
        # Claim an extra non-zero column on group 0: column counts no
        # longer match the payload; decode must not silently succeed
        # with the original data.
        indices[0] ^= 0x01
        corrupted = BCSCompressed(
            indices=indices, columns=c.columns,
            group_size=c.group_size, original_shape=c.original_shape)
        try:
            restored = bcs_decompress(corrupted)
        except Exception:
            return  # structural mismatch detected: acceptable
        assert not np.array_equal(restored, w)


class TestAdversarialPatterns:
    def test_one_hot_columns(self):
        """Each weight occupies a distinct column: zero co-occurrence."""
        w = np.array([64, 32, 16, 8, 4, 2, 1, 0], dtype=np.int8)
        groups = group_weights(w, 8)
        mask = zero_column_mask(groups)
        assert mask.sum() == 1  # only the sign column is free

    def test_flip_one_hot_to_target(self):
        w = np.array([64, 32, 16, 8, 4, 2, 1, 0], dtype=np.int8)
        result = flip_groups(w.reshape(1, -1), 5)
        assert result.min_zero_columns >= 5
        # Large-magnitude weights survive better than small ones under
        # the L2 objective.
        assert abs(int(result.weights[0, 0])) >= abs(int(result.weights[0, 6]))

    def test_sm_wins_in_aggregate_on_realistic_weights(self):
        """SM is not pointwise better (a group of -127s favours 2C!),
        but on small-magnitude-dominated weights it wins in aggregate --
        the property the paper's technique actually relies on."""
        rng = np.random.default_rng(10)
        w = np.clip(np.round(rng.laplace(0, 9, 4096)), -127, 127).astype(
            np.int8)
        groups = group_weights(w, 8)
        sm = zero_column_mask(groups, "sm").sum()
        tc = zero_column_mask(groups, "2c").sum()
        assert sm > 1.5 * tc

    def test_sm_can_lose_on_adversarial_group(self):
        """Documenting the counterexample: -127 is 1000_0001 in 2C
        (six zero columns) but 1111_1111 in SM (none)."""
        group = np.full((1, 8), -127, dtype=np.int8)
        assert zero_column_mask(group, "2c").sum() == 6
        assert zero_column_mask(group, "sm").sum() == 0

    def test_positive_only_group_sm_equals_2c_magnitudes(self):
        w = np.array([1, 2, 3, 4, 5, 6, 7, 8], dtype=np.int8)
        sign, mag = to_sign_magnitude(w)
        assert sign.sum() == 0
        planes = sm_bitplanes(w)
        # For non-negative values SM and 2C planes are identical.
        from repro.core.signmag import twos_complement_bitplanes

        assert np.array_equal(planes, twos_complement_bitplanes(w))
