"""Edge cases of ``pareto_front``: duplicates, ties, empty input, and
the minimization senses the DSE engine uses."""

from repro.core.pareto import pareto_front


class TestEdgeCases:
    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_duplicate_cr_keeps_only_best_accuracy(self):
        points = [(2.0, 0.90, "worse"), (2.0, 0.95, "better")]
        assert pareto_front(points) == [(2.0, 0.95, "better")]

    def test_duplicate_cr_among_tradeoffs(self):
        points = [(1.0, 0.99, "a"), (2.0, 0.90, "b"),
                  (2.0, 0.95, "c"), (3.0, 0.80, "d")]
        front = pareto_front(points)
        assert [p[2] for p in front] == ["a", "c", "d"]

    def test_tie_in_both_objectives_single_survivor(self):
        points = [(1.0, 0.9, "a"), (1.0, 0.9, "b"), (1.0, 0.9, "c")]
        front = pareto_front(points)
        assert len(front) == 1
        assert front[0][:2] == (1.0, 0.9)

    def test_all_points_identical(self):
        assert len(pareto_front([(5.0, 5.0, i) for i in range(10)])) == 1

    def test_tie_on_second_objective_keeps_higher_cr(self):
        points = [(1.0, 0.9, "low"), (2.0, 0.9, "high")]
        assert pareto_front(points) == [(2.0, 0.9, "high")]

    def test_payload_preserved(self):
        payload = {"config": "BitWave"}
        front = pareto_front([(1.0, 1.0, payload)])
        assert front[0][2] is payload

    def test_single_point(self):
        assert pareto_front([(0.0, 0.0, None)]) == [(0.0, 0.0, None)]


class TestSenses:
    def test_min_min_front(self):
        # Cycles-vs-energy: smaller is better in both.
        points = [(1.0, 1.0, "best"), (2.0, 2.0, "dominated"),
                  (0.5, 3.0, "fast-hot"), (3.0, 0.5, "slow-cool")]
        front = pareto_front(points, maximize=(False, False))
        assert {p[2] for p in front} == {"best", "fast-hot", "slow-cool"}

    def test_min_min_sorted_descending_first_objective(self):
        points = [(1.0, 1.0, "a"), (0.5, 3.0, "b"), (3.0, 0.5, "c")]
        front = pareto_front(points, maximize=(False, False))
        firsts = [p[0] for p in front]
        assert firsts == sorted(firsts, reverse=True)

    def test_mixed_senses(self):
        # Minimize cycles, maximize TOPS/W.
        points = [(100.0, 10.0, "slow-efficient"),
                  (10.0, 5.0, "fast-ok"),
                  (100.0, 5.0, "dominated"),
                  (10.0, 10.0, "dominates-all")]
        front = pareto_front(points, maximize=(False, True))
        assert [p[2] for p in front] == ["dominates-all"]

    def test_default_matches_explicit_max_max(self):
        points = [(1.0, 0.95, "a"), (2.0, 0.90, "b"), (1.5, 0.99, "c")]
        assert pareto_front(points) == pareto_front(
            points, maximize=(True, True))

    def test_min_min_duplicates(self):
        points = [(2.0, 2.0, "x"), (2.0, 2.0, "y"), (2.0, 1.0, "z")]
        front = pareto_front(points, maximize=(False, False))
        assert len(front) == 1
        assert front[0][2] == "z"


class TestCleaning:
    """Pinned pre-filter semantics: unrankable points (``None``/NaN in
    either objective) are dropped before dominance, and exact
    coordinate duplicates collapse to the first input occurrence --
    what the guided-search archive (``repro.opt``) relies on."""

    def test_none_coordinates_are_dropped(self):
        points = [(1.0, None, "unpriced"), (None, 1.0, "unpriced-too"),
                  (2.0, 2.0, "real")]
        assert pareto_front(points) == [(2.0, 2.0, "real")]

    def test_nan_coordinates_are_dropped(self):
        nan = float("nan")
        points = [(nan, 1.0, "bad-x"), (1.0, nan, "bad-y"),
                  (2.0, 2.0, "real")]
        assert pareto_front(points) == [(2.0, 2.0, "real")]

    def test_all_points_invalid_gives_empty_front(self):
        nan = float("nan")
        assert pareto_front([(None, 1.0, "a"), (nan, nan, "b")]) == []

    def test_exact_duplicate_keeps_first_input_occurrence(self):
        points = [(1.0, 1.0, "first"), (1.0, 1.0, "second"),
                  (1.0, 1.0, "third")]
        assert pareto_front(points) == [(1.0, 1.0, "first")]

    def test_dedupe_is_input_order_not_sort_order(self):
        # "late" sorts before "early" lexically; input order must win.
        points = [(1.0, 1.0, "early"), (0.5, 0.5, "worse"),
                  (1.0, 1.0, "late")]
        front = pareto_front(points)
        assert front == [(1.0, 1.0, "early")]
