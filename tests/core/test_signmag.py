"""Tests for the sign-magnitude / two's complement codecs."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.signmag import (
    from_sign_magnitude,
    from_sm_bitplanes,
    from_twos_complement_bitplanes,
    sm_bitplanes,
    to_sign_magnitude,
    twos_complement_bitplanes,
)

int8_arrays = arrays(np.int8, st.integers(1, 128),
                     elements=st.integers(-127, 127))


class TestToSignMagnitude:
    def test_positive(self):
        sign, mag = to_sign_magnitude(np.array([5], dtype=np.int8))
        assert sign.tolist() == [0]
        assert mag.tolist() == [5]

    def test_negative(self):
        sign, mag = to_sign_magnitude(np.array([-3], dtype=np.int8))
        assert sign.tolist() == [1]
        assert mag.tolist() == [3]

    def test_zero(self):
        sign, mag = to_sign_magnitude(np.array([0], dtype=np.int8))
        assert sign.tolist() == [0]
        assert mag.tolist() == [0]

    def test_extremes(self):
        sign, mag = to_sign_magnitude(np.array([127, -127], dtype=np.int8))
        assert sign.tolist() == [0, 1]
        assert mag.tolist() == [127, 127]

    def test_minus_128_rejected(self):
        with pytest.raises(ValueError, match="-128"):
            to_sign_magnitude(np.array([-128], dtype=np.int8))

    def test_minus_128_saturates_on_request(self):
        sign, mag = to_sign_magnitude(np.array([-128], dtype=np.int8), saturate=True)
        assert sign.tolist() == [1]
        assert mag.tolist() == [127]

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError, match="integer"):
            to_sign_magnitude(np.array([0.5]))

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError, match="int8"):
            to_sign_magnitude(np.array([300]))

    @given(int8_arrays)
    def test_roundtrip(self, w):
        sign, mag = to_sign_magnitude(w)
        assert np.array_equal(from_sign_magnitude(sign, mag), w)


class TestFromSignMagnitude:
    def test_negative_zero_decodes_to_zero(self):
        out = from_sign_magnitude(np.array([1], np.uint8), np.array([0], np.uint8))
        assert out.tolist() == [0]

    def test_rejects_8bit_magnitude(self):
        with pytest.raises(ValueError, match="7 bits"):
            from_sign_magnitude(np.array([0], np.uint8), np.array([128], np.uint8))


class TestSmBitplanes:
    def test_paper_example_minus_3(self):
        # -3 in SM: sign 1, magnitude 000_0011.
        planes = sm_bitplanes(np.array([-3], dtype=np.int8))
        assert planes.tolist() == [[1, 0, 0, 0, 0, 0, 1, 1]]

    def test_small_negative_has_leading_zeros(self):
        # The motivating observation: -3 in 2C is 1111_1101 (6 ones),
        # in SM it is 1000_0011 (3 ones).
        tc = twos_complement_bitplanes(np.array([-3], dtype=np.int8))
        sm = sm_bitplanes(np.array([-3], dtype=np.int8))
        assert tc.sum() == 7
        assert sm.sum() == 3

    def test_plane0_is_sign(self):
        planes = sm_bitplanes(np.array([-64, 64], dtype=np.int8))
        assert planes[:, 0].tolist() == [1, 0]

    @given(int8_arrays)
    def test_roundtrip(self, w):
        assert np.array_equal(from_sm_bitplanes(sm_bitplanes(w)), w)


class TestTwosComplementBitplanes:
    def test_minus_one_all_ones(self):
        planes = twos_complement_bitplanes(np.array([-1], dtype=np.int8))
        assert planes.sum() == 8

    def test_positive_matches_binary(self):
        planes = twos_complement_bitplanes(np.array([0b0101_1010], dtype=np.int8))
        assert planes.tolist() == [[0, 1, 0, 1, 1, 0, 1, 0]]

    @given(arrays(np.int8, st.integers(1, 128), elements=st.integers(-128, 127)))
    def test_roundtrip_full_range(self, w):
        planes = twos_complement_bitplanes(w)
        assert np.array_equal(from_twos_complement_bitplanes(planes), w)
