"""Tests for the greedy search (Algorithm 1), Pareto front and pipeline."""

import numpy as np
import pytest

from repro.core.bitcolumn import column_sparsity
from repro.core.pareto import pareto_front
from repro.core.pipeline import BitWavePipeline
from repro.core.search import (
    apply_strategy,
    empty_strategy,
    greedy_bitflip_search,
)
from repro.utils.rng import seeded_rng


def _toy_weights() -> dict[str, np.ndarray]:
    rng = seeded_rng("search-tests")
    return {
        "conv1": np.clip(np.round(rng.laplace(0, 8, 256)), -127, 127).astype(np.int8),
        "conv2": np.clip(np.round(rng.laplace(0, 12, 256)), -127, 127).astype(np.int8),
    }


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front([(1.0, 0.9, "a")]) == [(1.0, 0.9, "a")]

    def test_dominated_point_removed(self):
        points = [(1.0, 0.9, "a"), (2.0, 0.95, "b")]
        assert pareto_front(points) == [(2.0, 0.95, "b")]

    def test_tradeoff_points_kept(self):
        points = [(1.0, 0.95, "a"), (2.0, 0.90, "b"), (3.0, 0.80, "c")]
        assert len(pareto_front(points)) == 3

    def test_sorted_by_cr(self):
        points = [(3.0, 0.8, "c"), (1.0, 0.95, "a"), (2.0, 0.9, "b")]
        front = pareto_front(points)
        crs = [p[0] for p in front]
        assert crs == sorted(crs)

    def test_equal_points_single_survivor(self):
        points = [(1.0, 0.9, "a"), (1.0, 0.9, "b")]
        assert len(pareto_front(points)) == 1

    def test_empty(self):
        assert pareto_front([]) == []


class TestApplyStrategy:
    def test_empty_strategy_passthrough(self):
        weights = _toy_weights()
        out = apply_strategy(weights, empty_strategy(weights))
        for name in weights:
            assert out[name] is weights[name]

    def test_nonzero_target_flips(self):
        weights = _toy_weights()
        strategy = empty_strategy(weights)
        strategy["conv1"][16] = 5
        out = apply_strategy(weights, strategy)
        before = column_sparsity(weights["conv1"], 16, "sm")
        after = column_sparsity(out["conv1"], 16, "sm")
        assert after > before
        assert out["conv2"] is weights["conv2"]

    def test_original_never_mutated(self):
        weights = _toy_weights()
        snapshot = {k: v.copy() for k, v in weights.items()}
        strategy = empty_strategy(weights)
        strategy["conv1"][8] = 6
        apply_strategy(weights, strategy)
        for name in weights:
            assert np.array_equal(weights[name], snapshot[name])


class TestGreedySearch:
    def test_stops_at_min_accuracy(self):
        weights = _toy_weights()

        def evaluate(candidate):
            # Accuracy falls linearly with total distortion.
            err = sum(
                float(((candidate[n].astype(np.int64) -
                        weights[n].astype(np.int64)) ** 2).sum())
                for n in weights
            )
            return 1.0 - err / 2e5

        result = greedy_bitflip_search(
            weights, evaluate, min_accuracy=0.98, max_moves=6)
        assert result.accuracy >= 0.98

    def test_moves_recorded(self):
        weights = _toy_weights()
        result = greedy_bitflip_search(
            weights, lambda c: 1.0, min_accuracy=0.5, max_moves=3)
        assert result.n_moves == 3
        for layer, gs, z, acc in result.history:
            assert layer in weights
            assert gs in (8, 16, 32)
            assert 1 <= z <= 7
            assert acc == 1.0

    def test_initial_strategy_respected(self):
        weights = _toy_weights()
        initial = {"conv1": {16: 4}}
        result = greedy_bitflip_search(
            weights, lambda c: 1.0, min_accuracy=0.5,
            initial_strategy=initial, max_moves=1)
        assert result.strategy["conv1"][16] >= 4

    def test_layer_restriction(self):
        weights = _toy_weights()
        result = greedy_bitflip_search(
            weights, lambda c: 1.0, min_accuracy=0.5,
            layers=["conv2"], max_moves=4)
        assert all(z == 0 for z in result.strategy["conv1"].values())

    def test_unknown_layer_raises(self):
        with pytest.raises(KeyError, match="nope"):
            greedy_bitflip_search(
                _toy_weights(), lambda c: 1.0, 0.5, layers=["nope"])

    def test_saturation_terminates(self):
        weights = {"w": np.array([1, 2, 3, 4] * 4, dtype=np.int8)}
        result = greedy_bitflip_search(
            weights, lambda c: 1.0, min_accuracy=0.0, max_zero_columns=1)
        assert all(z <= 1 for z in result.strategy["w"].values())


class TestBitWavePipeline:
    def test_rejects_unsupported_group_size(self):
        with pytest.raises(ValueError, match="unsupported"):
            BitWavePipeline(group_size=4)

    def test_deploy_lossless_by_default(self):
        weights = _toy_weights()
        report = BitWavePipeline(group_size=16).deploy(weights)
        for name in weights:
            assert np.array_equal(report.layers[name].weights, weights[name])
            assert report.layers[name].distortion == 0.0

    def test_deploy_with_targets_flips(self):
        weights = _toy_weights()
        pipeline = BitWavePipeline(
            group_size=16, zero_column_targets={"conv1": 5})
        report = pipeline.deploy(weights)
        assert report.layers["conv1"].distortion > 0.0
        assert report.layers["conv2"].distortion == 0.0

    def test_flipping_improves_network_cr(self):
        weights = _toy_weights()
        base = BitWavePipeline(group_size=16).deploy(weights)
        flipped = BitWavePipeline(
            group_size=16,
            zero_column_targets={"conv1": 5, "conv2": 5},
        ).deploy(weights)
        assert flipped.compression_ratio > base.compression_ratio

    def test_per_layer_group_size(self):
        weights = _toy_weights()
        pipeline = BitWavePipeline(group_size=16, group_sizes={"conv1": 8})
        report = pipeline.deploy(weights)
        assert report.layers["conv1"].group_size == 8
        assert report.layers["conv2"].group_size == 16

    def test_nonzero_column_counts_exposed(self):
        weights = _toy_weights()
        report = BitWavePipeline(group_size=16).deploy(weights)
        counts = report.layers["conv1"].nonzero_column_counts
        assert counts.ndim == 1
        assert counts.max() <= 8

    def test_total_bits_accounting(self):
        weights = _toy_weights()
        report = BitWavePipeline(group_size=16).deploy(weights)
        assert report.total_original_bits == sum(
            w.size * 8 for w in weights.values())
