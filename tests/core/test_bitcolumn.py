"""Tests for bit-column sparsity statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bitcolumn import (
    bit_sparsity,
    column_sparsity,
    group_weights,
    nonzero_column_counts,
    ungroup_weights,
    value_sparsity,
    zero_column_mask,
)

int8_arrays = arrays(np.int8, st.integers(1, 256),
                     elements=st.integers(-127, 127))


class TestGroupWeights:
    def test_exact_multiple(self):
        groups = group_weights(np.arange(8, dtype=np.int8), 4)
        assert groups.shape == (2, 4)
        assert groups[0].tolist() == [0, 1, 2, 3]

    def test_padding_with_zeros(self):
        groups = group_weights(np.ones(5, dtype=np.int8), 4)
        assert groups.shape == (2, 4)
        assert groups[1].tolist() == [1, 0, 0, 0]

    def test_group_size_one(self):
        groups = group_weights(np.arange(3, dtype=np.int8), 1)
        assert groups.shape == (3, 1)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError, match="group_size"):
            group_weights(np.ones(4, dtype=np.int8), 0)

    @given(int8_arrays, st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    def test_roundtrip(self, w, g):
        groups = group_weights(w, g)
        assert np.array_equal(ungroup_weights(groups, w.shape), w)

    def test_ungroup_rejects_short(self):
        with pytest.raises(ValueError, match="need"):
            ungroup_weights(np.zeros((1, 4), dtype=np.int8), (8,))


class TestZeroColumnMask:
    def test_paper_fig4_style_example(self):
        # Four Int8 values with a shared zero at one significance.
        # In SM: 3=0000011, 5=0000101, -3=sign+0000011, 1=0000001.
        group = np.array([[3, 5, -3, 1]], dtype=np.int8)
        mask = zero_column_mask(group, fmt="sm")
        # Planes: sign(no: -3), 64,32,16,8 all zero, 4 (5 has it), 2, 1.
        assert mask.tolist() == [[False, True, True, True, True, False, False, False]]

    def test_all_zero_group(self):
        mask = zero_column_mask(np.zeros((1, 8), dtype=np.int8))
        assert mask.all()

    def test_2c_negative_fills_columns(self):
        # -1 in 2C is all ones: no zero column.
        mask = zero_column_mask(np.array([[-1, -1]], dtype=np.int8), fmt="2c")
        assert not mask.any()

    def test_sm_vs_2c_small_negatives(self):
        # Small negatives: SM should expose strictly more zero columns.
        group = np.array([[-1, -2, -3, -1]], dtype=np.int8)
        sm = zero_column_mask(group, fmt="sm").sum()
        tc = zero_column_mask(group, fmt="2c").sum()
        assert sm > tc

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="n_groups"):
            zero_column_mask(np.zeros(4, dtype=np.int8))

    def test_unknown_format(self):
        with pytest.raises(ValueError, match="format"):
            zero_column_mask(np.zeros((1, 4), dtype=np.int8), fmt="gray")


class TestNonzeroColumnCounts:
    def test_zero_group_costs_zero_cycles(self):
        counts = nonzero_column_counts(np.zeros((1, 4), dtype=np.int8))
        assert counts.tolist() == [0]

    def test_single_value(self):
        counts = nonzero_column_counts(np.array([[64]], dtype=np.int8))
        assert counts.tolist() == [1]

    def test_counts_bounded_by_8(self):
        counts = nonzero_column_counts(np.array([[-127, 127, -1, 85]], dtype=np.int8))
        assert (counts <= 8).all()

    @given(int8_arrays, st.sampled_from([4, 8, 16]))
    def test_counts_complement_mask(self, w, g):
        groups = group_weights(w, g)
        mask = zero_column_mask(groups)
        counts = nonzero_column_counts(groups)
        assert np.array_equal(counts, 8 - mask.sum(axis=1))


class TestSparsityScalars:
    def test_value_sparsity_all_zero(self):
        assert value_sparsity(np.zeros(16, dtype=np.int8)) == 1.0

    def test_value_sparsity_dense(self):
        assert value_sparsity(np.ones(16, dtype=np.int8)) == 0.0

    def test_bit_sparsity_zero_tensor(self):
        assert bit_sparsity(np.zeros(8, dtype=np.int8)) == 1.0

    def test_bit_sparsity_sm_beats_2c_on_laplacian(self, laplacian_int8):
        assert bit_sparsity(laplacian_int8, "sm") > bit_sparsity(laplacian_int8, "2c")

    def test_column_sparsity_group1_equals_bit_sparsity(self, laplacian_int8):
        cs = column_sparsity(laplacian_int8, 1, "sm")
        bs = bit_sparsity(laplacian_int8, "sm")
        assert cs == pytest.approx(bs)

    def test_column_sparsity_decreases_with_group_size(self, laplacian_int8):
        sparsities = [
            column_sparsity(laplacian_int8, g, "sm") for g in (1, 4, 16, 64)
        ]
        assert all(a >= b for a, b in zip(sparsities, sparsities[1:]))

    def test_empty_tensor(self):
        assert value_sparsity(np.array([], dtype=np.int8)) == 0.0
        assert bit_sparsity(np.array([], dtype=np.int8)) == 0.0

    @given(int8_arrays)
    def test_bit_sparsity_bounds(self, w):
        for fmt in ("sm", "2c"):
            assert 0.0 <= bit_sparsity(w, fmt) <= 1.0

    @given(int8_arrays)
    def test_bit_sparsity_at_least_value_sparsity(self, w):
        # Every zero value contributes 8 zero bits, so bit sparsity can
        # never be below value sparsity.
        assert bit_sparsity(w, "sm") >= value_sparsity(w) - 1e-12
