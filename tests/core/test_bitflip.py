"""Tests for the Bit-Flip optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bitcolumn import group_weights, zero_column_mask
from repro.core.bitflip import (
    FlipResult,
    flip_group,
    flip_groups,
    flip_layer,
    representable_magnitudes,
)

int8_groups = arrays(
    np.int8, st.tuples(st.integers(1, 16), st.sampled_from([4, 8, 16])),
    elements=st.integers(-127, 127),
)


class TestRepresentableMagnitudes:
    def test_empty_subset(self):
        assert representable_magnitudes(()).tolist() == [0]

    def test_lsb_pair(self):
        assert representable_magnitudes((5, 6)).tolist() == [0, 1, 2, 3]

    def test_full_set_covers_7_bits(self):
        values = representable_magnitudes(tuple(range(7)))
        assert len(values) == 128
        assert values[-1] == 127

    def test_single_msb(self):
        assert representable_magnitudes((0,)).tolist() == [0, 64]


class TestFlipGroup:
    def test_paper_fig4c_example(self):
        """Targeting 5 zero columns tunes -3 to -4 with distance 1."""
        # Group engineered so -3 is the only obstacle to 5 zero columns:
        # magnitudes use planes {4, 5, 6} (values 4, 2, 1).
        group = np.array([4, -3, 4, 4], dtype=np.int8)
        result = flip_group(group, 5)
        assert result.min_zero_columns >= 5
        assert result.weights.tolist() == [4, -4, 4, 4]
        assert result.distortion == 1.0

    def test_already_satisfied_is_noop(self):
        group = np.array([1, 1, 1, 1], dtype=np.int8)  # 6 zero cols + sign
        result = flip_group(group, 5)
        assert result.distortion == 0.0
        assert np.array_equal(result.weights, group)

    def test_target_zero_is_noop(self):
        group = np.array([-127, 85, 33, -1], dtype=np.int8)
        result = flip_group(group, 0)
        assert result.distortion == 0.0

    def test_target_8_zeroes_everything_positive(self):
        group = np.array([3, 1, 2, 7], dtype=np.int8)
        result = flip_group(group, 8)
        assert np.array_equal(result.weights, np.zeros(4, dtype=np.int8))

    def test_target_8_with_negatives_zeroes_magnitudes(self):
        group = np.array([-3, 1, -2, 7], dtype=np.int8)
        result = flip_group(group, 8)
        # Zero magnitudes decode to value 0; sign column then empty too.
        assert np.array_equal(result.weights, np.zeros(4, dtype=np.int8))
        assert result.min_zero_columns == 8

    def test_invalid_target(self):
        with pytest.raises(ValueError, match="target_zero_columns"):
            flip_group(np.array([1], dtype=np.int8), 9)

    def test_sign_never_flipped(self):
        group = np.array([-100, 100, -50, 50], dtype=np.int8)
        result = flip_group(group, 4)
        assert np.all(np.sign(result.weights) == np.sign(group))

    @given(int8_groups, st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_target_always_met(self, groups, target):
        result = flip_groups(groups, target)
        assert result.min_zero_columns >= target

    @given(int8_groups, st.integers(1, 7))
    @settings(max_examples=60, deadline=None)
    def test_distortion_is_squared_error(self, groups, target):
        result = flip_groups(groups, target)
        err = (result.weights.astype(np.int64) - groups.astype(np.int64)) ** 2
        assert result.distortion == pytest.approx(err.sum())

    @given(int8_groups)
    @settings(max_examples=40, deadline=None)
    def test_monotone_distortion_in_target(self, groups):
        prev = 0.0
        for target in range(8):
            d = flip_groups(groups, target).distortion
            assert d >= prev - 1e-9
            prev = d

    def test_optimality_vs_bruteforce_small(self):
        """The vectorized optimizer must match exhaustive search."""
        rng = np.random.default_rng(7)
        for _ in range(20):
            group = rng.integers(-127, 128, size=4).astype(np.int8)
            group[group == -128] = -127
            target = int(rng.integers(1, 7))
            got = flip_groups(group.reshape(1, -1), target)
            best = _bruteforce_flip(group, target)
            assert got.distortion == pytest.approx(best)


def _bruteforce_flip(group: np.ndarray, target: int) -> float:
    """Exhaustive minimal distortion meeting the zero-column target."""
    from itertools import product

    best = float("inf")
    signs = np.sign(group)
    candidates = [np.arange(0, 128)] * len(group)
    # Exhaustive over magnitudes is 128^4 -- too big; instead exhaustively
    # verify via the subset structure: enumerate all column subsets of any
    # size and round. This independently reimplements the algorithm with
    # unrestricted subset size to confirm exact-size enumeration suffices.
    from itertools import combinations

    from repro.core.bitflip import _round_to_table, representable_magnitudes

    mags = np.abs(group.astype(np.int64))
    for size in range(8):
        for subset in combinations(range(7), size):
            table = representable_magnitudes(subset)
            rounded = _round_to_table(mags, table)
            flipped = (signs * rounded).astype(np.int8)
            mask = zero_column_mask(flipped.reshape(1, -1), fmt="sm")
            if mask.sum() >= target:
                cost = float(((rounded - mags) ** 2).sum())
                best = min(best, cost)
    return best


class TestFlipLayer:
    def test_shape_preserved(self):
        rng = np.random.default_rng(3)
        w = rng.integers(-127, 128, size=(8, 16)).astype(np.int8)
        w[w == -128] = -127
        result = flip_layer(w, 4, 8)
        assert result.weights.shape == (8, 16)

    def test_rms_property(self):
        w = np.full((4, 8), 85, dtype=np.int8)
        result = flip_layer(w, 6, 8)
        n = w.size
        assert result.rms == pytest.approx(np.sqrt(result.distortion / n))

    def test_zero_layer_untouched(self):
        w = np.zeros((4, 4), dtype=np.int8)
        result = flip_layer(w, 7, 8)
        assert result.distortion == 0.0

    def test_flipping_raises_column_sparsity(self, laplacian_int8):
        from repro.core.bitcolumn import column_sparsity

        before = column_sparsity(laplacian_int8, 16, "sm")
        flipped = flip_layer(laplacian_int8, 5, 16).weights
        after = column_sparsity(flipped, 16, "sm")
        assert after > before

    def test_distortion_grows_with_group_size(self, laplacian_int8):
        # Bigger groups constrain more weights per column: more distortion.
        d8 = flip_layer(laplacian_int8, 5, 8).distortion
        d32 = flip_layer(laplacian_int8, 5, 32).distortion
        assert d32 >= d8


class TestFlipResult:
    def test_min_zero_columns_empty(self):
        r = FlipResult(np.zeros(0, dtype=np.int8), 0.0, np.zeros(0, dtype=int))
        assert r.min_zero_columns == 8
