"""Tests for activity counts and equations (1)-(5)."""

import pytest

from repro.model.latency import total_cycles
from repro.model.energy import total_energy
from repro.model.mapping import SpatialUnrolling
from repro.model.technology import TECH_16NM
from repro.model.zigzag import map_layer
from repro.workloads.spec import LayerSpec


def _layer(**kw):
    defaults = dict(k=64, c=64, ox=28, oy=28, fx=3, fy=3)
    defaults.update(kw)
    return LayerSpec("t", "n", "conv", **defaults)


SU = SpatialUnrolling("su", {"K": 32, "C": 8, "OX": 16})


class TestMapLayer:
    def test_nmac(self):
        counts = map_layer(_layer(), SU)
        assert counts.n_mac == 64 * 64 * 28 * 28 * 9

    def test_weight_dram_single_pass_when_fits(self):
        counts = map_layer(_layer(), SU)
        assert counts.dram_read_weight == 64 * 64 * 9

    def test_weight_repass_when_nothing_fits(self):
        big = _layer(k=512, c=512, ox=128, oy=128)
        counts = map_layer(big, SU)
        assert counts.dram_read_weight > big.weight_count

    def test_act_fusion_small_tensors(self):
        small = _layer(ox=7, oy=7, c=64, k=64)
        counts = map_layer(small, SU)
        assert counts.dram_read_act == 0.0
        assert counts.dram_write_act == 0.0

    def test_act_offchip_when_too_big(self):
        counts = map_layer(_layer(ox=112, oy=112), SU)
        assert counts.dram_read_act > 0

    def test_padded_macs_inflate_sram_traffic(self):
        fitted = map_layer(_layer(c=64), SU)
        starved = map_layer(_layer(c=3), SU)  # C=3 on C=8 lanes
        per_mac_fitted = fitted.sram_read_weight / fitted.n_mac
        per_mac_starved = starved.sram_read_weight / starved.n_mac
        assert per_mac_starved > per_mac_fitted

    def test_reg_traffic(self):
        counts = map_layer(_layer(), SU)
        assert counts.reg_read == 2 * counts.n_mac
        assert counts.reg_write == counts.n_mac

    def test_spatial_and_temporal_reuse_reduce_sram(self):
        counts = map_layer(_layer(), SU)
        # Weight reads shrunk by OX unroll (16) and the register window.
        assert counts.sram_read_weight < counts.n_mac / 16


class TestTotalCycles:
    def test_compute_bound_layer(self):
        counts = map_layer(_layer(), SU)
        lat = total_cycles(counts, compute_cycles=1e9)
        assert lat.total == pytest.approx(
            1e9 + lat.dram_cycles + lat.sram_write_output_cycles)
        assert lat.compute_bound

    def test_memory_terms_overlap_with_compute(self):
        counts = map_layer(_layer(), SU)
        lat = total_cycles(counts, compute_cycles=0.0)
        assert lat.overlap_term == max(
            lat.sram_read_input_cycles, lat.sram_read_weight_cycles,
            lat.reg_read_cycles, 0.0)

    def test_weight_cr_divides_traffic(self):
        counts = map_layer(_layer(), SU)
        plain = total_cycles(counts, 0.0, weight_cr=1.0)
        halved = total_cycles(counts, 0.0, weight_cr=2.0)
        assert halved.sram_read_weight_cycles == pytest.approx(
            plain.sram_read_weight_cycles / 2)
        assert halved.dram_cycles < plain.dram_cycles

    def test_invalid_cr(self):
        counts = map_layer(_layer(), SU)
        with pytest.raises(ValueError, match="positive"):
            total_cycles(counts, 0.0, weight_cr=0.0)

    def test_overhead_multiplies_sram_weight_reads(self):
        counts = map_layer(_layer(), SU)
        plain = total_cycles(counts, 0.0)
        loaded = total_cycles(counts, 0.0, sram_weight_overhead=1.25)
        assert loaded.sram_read_weight_cycles == pytest.approx(
            plain.sram_read_weight_cycles * 1.25)


class TestTotalEnergy:
    def test_components_sum(self):
        counts = map_layer(_layer(), SU)
        energy = total_energy(counts, compute_pj=123.0)
        assert energy.total_pj == pytest.approx(
            energy.dram_pj + energy.sram_pj + energy.reg_pj + 123.0)

    def test_shares_sum_to_one(self):
        counts = map_layer(_layer(), SU)
        energy = total_energy(counts, compute_pj=1e6)
        assert sum(energy.shares().values()) == pytest.approx(1.0)

    def test_compression_reduces_dram_energy(self):
        counts = map_layer(_layer(), SU)
        plain = total_energy(counts, 0.0)
        compressed = total_energy(counts, 0.0, weight_cr=2.0)
        assert compressed.dram_pj < plain.dram_pj

    def test_dram_unit_cost_dominates_per_element(self):
        assert TECH_16NM.dram_pj_per_element > 10 * TECH_16NM.sram_pj_per_element

    def test_invalid_cr(self):
        counts = map_layer(_layer(), SU)
        with pytest.raises(ValueError, match="positive"):
            total_energy(counts, 0.0, act_cr=-1.0)
