"""Tests for spatial unrolling and utilization math (Fig. 9 machinery)."""

import pytest

from repro.model.mapping import SpatialUnrolling, best_su
from repro.workloads.spec import LayerSpec


def _conv(k=64, c=64, ox=56, oy=56, fx=3, fy=3, kind="conv"):
    return LayerSpec("t", "n", kind, k=k, c=c, ox=ox, oy=oy, fx=fx, fy=fy)


class TestSpatialUnrolling:
    def test_lanes(self):
        su = SpatialUnrolling("x", {"K": 8, "C": 4, "OX": 2})
        assert su.lanes == 64

    def test_perfect_fit_utilization(self):
        su = SpatialUnrolling("x", {"K": 32, "C": 8})
        assert su.utilization(_conv(k=64, c=64)) == 1.0

    def test_partial_fill(self):
        su = SpatialUnrolling("x", {"C": 8})
        # C=3: 3 of 8 lanes busy.
        assert su.utilization(_conv(c=3)) == pytest.approx(3 / 8)

    def test_remainder_iteration(self):
        su = SpatialUnrolling("x", {"OX": 16})
        # OX=56: 4 iterations, last uses 8/16 -> 56/64.
        assert su.utilization(_conv(ox=56)) == pytest.approx(56 / 64)

    def test_fold_reduction_counts_kernel(self):
        folded = SpatialUnrolling("x", {"C": 64}, fold_reduction=True)
        # C=3, 7x7: 147 flattened -> ceil(147/64)=3 rounds -> 147/192.
        assert folded.utilization(_conv(c=3, fx=7, fy=7)) == pytest.approx(
            147 / 192)

    def test_fold_rejects_fx_factor(self):
        with pytest.raises(ValueError, match="fold_reduction"):
            SpatialUnrolling("x", {"C": 8, "FX": 3}, fold_reduction=True)

    def test_unknown_dim_rejected(self):
        with pytest.raises(ValueError, match="unknown dim"):
            SpatialUnrolling("x", {"Z": 4})

    def test_invalid_factor(self):
        with pytest.raises(ValueError, match="factor"):
            SpatialUnrolling("x", {"K": 0})

    def test_weight_spatial_reuse_is_output_dims(self):
        su = SpatialUnrolling("x", {"K": 8, "OX": 16, "B": 2})
        spec = _conv(ox=64)
        # Weights broadcast across OX (16) and B (but B=1 -> 1).
        assert su.weight_spatial_reuse(spec) == pytest.approx(16.0)

    def test_input_spatial_reuse_is_k(self):
        su = SpatialUnrolling("x", {"K": 32, "C": 8})
        assert su.input_spatial_reuse(_conv(k=64)) == pytest.approx(32.0)

    def test_g_dim_maps_to_kernels(self):
        su = SpatialUnrolling("dw", {"G": 64, "OX": 2})
        spec = _conv(k=128, c=1, kind="dwconv")
        assert su.utilization(spec) == 1.0

    def test_macs_per_cycle(self):
        su = SpatialUnrolling("x", {"K": 32, "C": 16})
        assert su.macs_per_cycle(_conv(k=64, c=64)) == pytest.approx(512.0)


class TestBestSu:
    def test_picks_highest_utilization(self):
        sus = (
            SpatialUnrolling("ck", {"K": 32, "C": 16}),
            SpatialUnrolling("xy", {"OX": 16, "OY": 16, "K": 2}),
        )
        deep = _conv(k=512, c=512, ox=7, oy=7)
        wide = _conv(k=16, c=16, ox=112, oy=112)
        assert best_su(sus, deep).name == "ck"
        assert best_su(sus, wide).name == "xy"

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no spatial"):
            best_su((), _conv())

    def test_fig9_no_single_su_covers_everything(self):
        """Fig. 9's core claim: no fixed SU exceeds 80% utilization on
        every workload class on the 4096-lane array."""
        cases = [
            _conv(k=64, c=3, ox=112, oy=112, fx=7, fy=7),      # early
            _conv(k=512, c=512, ox=7, oy=7),                   # late
            LayerSpec("dw", "n", "dwconv", k=96, c=1, ox=112,
                      oy=112, fx=3, fy=3),                     # depthwise
            _conv(k=96, c=16, ox=112, oy=112, fx=1, fy=1,
                  kind="pwconv"),                              # pointwise
        ]
        fixed_sus = [
            SpatialUnrolling("ck", {"K": 64, "C": 64}),
            SpatialUnrolling("xy", {"OX": 64, "OY": 8, "K": 8}),
            SpatialUnrolling("xfx", {"OX": 64, "FX": 8, "K": 8}),
        ]
        for su in fixed_sus:
            utils = [su.utilization(c) for c in cases]
            assert min(utils) < 0.8

    def test_fig9_small_array_utilizes_better(self):
        """The 512-PE array dominates the 4096-lane array in utilization."""
        big = SpatialUnrolling("big", {"K": 64, "C": 64})
        small = SpatialUnrolling("small", {"K": 32, "C": 16})
        cases = [
            _conv(k=64, c=3, ox=112, oy=112, fx=7, fy=7),
            LayerSpec("dw", "n", "dwconv", k=96, c=1, ox=112,
                      oy=112, fx=3, fy=3),
            _conv(k=96, c=16, ox=112, oy=112, fx=1, fy=1, kind="pwconv"),
        ]
        for case in cases:
            assert small.utilization(case) >= big.utilization(case)
