"""Tests for the roofline analysis utility."""

import pytest

from repro.model.roofline import layer_roofline, network_roofline
from repro.workloads.nets import bert_base_layers, resnet18_layers
from repro.workloads.spec import LayerSpec


class TestLayerRoofline:
    def test_bert_token4_is_memory_bound(self):
        fc = LayerSpec("ffn", "bert_base", "fc", k=3072, c=768, ox=4)
        point = layer_roofline(fc)
        assert point.memory_bound
        assert point.headroom < 1.0

    def test_resnet_conv_is_compute_bound(self):
        conv = LayerSpec("c", "resnet18", "conv", k=128, c=128,
                         ox=28, oy=28, fx=3, fy=3)
        point = layer_roofline(conv)
        assert not point.memory_bound
        assert point.headroom > 1.0

    def test_compression_raises_intensity(self):
        fc = LayerSpec("ffn", "bert_base", "fc", k=3072, c=768, ox=4)
        plain = layer_roofline(fc, weight_cr=1.0)
        compressed = layer_roofline(fc, weight_cr=2.5)
        assert compressed.arithmetic_intensity > plain.arithmetic_intensity

    def test_invalid_cr(self):
        fc = LayerSpec("ffn", "n", "fc", k=8, c=8, ox=1)
        with pytest.raises(ValueError, match="positive"):
            layer_roofline(fc, weight_cr=0.0)

    def test_ridge_scales_with_bandwidth(self):
        from dataclasses import replace

        from repro.model.technology import TECH_16NM

        fc = LayerSpec("ffn", "n", "fc", k=8, c=8, ox=1)
        wide = layer_roofline(
            fc, tech=replace(TECH_16NM, dram_bits_per_cycle=2048))
        narrow = layer_roofline(
            fc, tech=replace(TECH_16NM, dram_bits_per_cycle=64))
        assert wide.ridge_point < narrow.ridge_point


class TestNetworkRoofline:
    def test_bert_mostly_memory_bound(self):
        points = network_roofline(bert_base_layers())
        bound = sum(p.memory_bound for p in points)
        assert bound / len(points) > 0.9

    def test_resnet_mostly_compute_bound(self):
        points = network_roofline(resnet18_layers())
        bound = sum(not p.memory_bound for p in points)
        assert bound / len(points) > 0.7

    def test_one_point_per_layer(self):
        specs = resnet18_layers()
        assert len(network_roofline(specs)) == len(specs)
