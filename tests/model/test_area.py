"""Tests for the area/power model (Fig. 18, Table III, Table IV)."""

import pytest

from repro.model.area import (
    TOTAL_AREA_MM2,
    TOTAL_POWER_MW,
    bitwave_area_breakdown,
    bitwave_power_breakdown,
    pe_type_comparison,
    system_specs,
)


class TestAreaBreakdown:
    def test_totals_match_paper(self):
        area = bitwave_area_breakdown()
        assert sum(area.values()) == pytest.approx(TOTAL_AREA_MM2, rel=1e-6)

    def test_sram_share_fig18(self):
        area = bitwave_area_breakdown()
        assert area["sram"] / sum(area.values()) == pytest.approx(0.5508)

    def test_scaling_with_sram(self):
        area = bitwave_area_breakdown(sram_kb=1024)
        assert area["sram"] == pytest.approx(
            bitwave_area_breakdown()["sram"] * 2)

    def test_scaling_with_bces(self):
        area = bitwave_area_breakdown(n_bce=256)
        assert area["pe_array"] == pytest.approx(
            bitwave_area_breakdown()["pe_array"] / 2)


class TestPowerBreakdown:
    def test_totals_match_paper(self):
        power = bitwave_power_breakdown()
        assert sum(power.values()) == pytest.approx(TOTAL_POWER_MW, rel=1e-6)

    def test_pe_array_dominates_power(self):
        power = bitwave_power_breakdown()
        assert power["pe_array"] == max(power.values())

    def test_dispatcher_share(self):
        power = bitwave_power_breakdown()
        assert power["data_dispatcher"] / TOTAL_POWER_MW == pytest.approx(0.244)


class TestPeTypeComparison:
    def test_table_iv_values(self):
        table = pe_type_comparison()
        assert table["bit_parallel"]["area_um2"] == pytest.approx(98.029)
        assert table["bit_column_serial"]["power_mw"] == pytest.approx(1.71e-2)

    def test_bcse_area_overhead_1_26x(self):
        """Paper: BCSeC PE has ~1.26x area of the bit-parallel PE."""
        table = pe_type_comparison()
        ratio = table["bit_column_serial"]["area_um2"] / \
            table["bit_parallel"]["area_um2"]
        assert ratio == pytest.approx(1.26, abs=0.01)

    def test_bcse_power_below_bit_parallel(self):
        """Paper: ~1.25x less power than bit-parallel via add-then-shift."""
        table = pe_type_comparison()
        ratio = table["bit_parallel"]["power_mw"] / \
            table["bit_column_serial"]["power_mw"]
        assert ratio == pytest.approx(1.25, abs=0.01)

    def test_bit_serial_worst_power(self):
        table = pe_type_comparison()
        assert table["bit_serial"]["power_mw"] == max(
            v["power_mw"] for v in table.values())

    def test_mutation_safe(self):
        table = pe_type_comparison()
        table["bit_parallel"]["area_um2"] = 0.0
        assert pe_type_comparison()["bit_parallel"]["area_um2"] > 0


class TestSystemSpecs:
    def test_published_point(self):
        specs = system_specs()
        assert specs.area_mm2 == pytest.approx(1.138)
        assert specs.power_mw == pytest.approx(17.56)
        assert specs.peak_gops == pytest.approx(215.6, rel=0.01)
        assert specs.energy_efficiency_tops_w == pytest.approx(12.21, rel=0.01)

    def test_area_efficiency(self):
        specs = system_specs()
        assert specs.area_efficiency_gops_w_mm2 > 5000
