"""Sim-backed validation campaigns: spec, store round-trip, CLI."""

import json

import pytest

from repro.dse.__main__ import main as dse_main
from repro.dse.simcampaign import (
    SimCampaignSpec,
    SimPoint,
    run_sim_campaign,
    sim_code_fingerprint,
    sim_store,
    stored_sim_result,
)


class TestSimPoint:
    def test_key_is_stable_and_distinct(self):
        a = SimPoint(group_size=8, oxu=16)
        b = SimPoint(group_size=8, oxu=16)
        c = SimPoint(group_size=4, oxu=16)
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_backend_is_part_of_the_key(self):
        assert (SimPoint(backend="vectorized").key()
                != SimPoint(backend="reference").key())

    def test_round_trip(self):
        point = SimPoint(group_size=4, ku=64, oxu=8, backend="reference")
        assert SimPoint.from_dict(point.to_dict()) == point

    def test_validate_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            SimPoint(backend="fpga").validate()

    def test_validate_rejects_bad_dims(self):
        with pytest.raises(ValueError, match="group_size"):
            SimPoint(group_size=0).validate()


class TestSimCampaignSpec:
    def test_points_cross_product(self):
        spec = SimCampaignSpec("sweep", group_sizes=(4, 8), oxus=(8, 16))
        points = spec.points()
        assert len(points) == 4
        assert len({p.key() for p in points}) == 4

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="group_sizes"):
            SimCampaignSpec("bad", group_sizes=()).points()

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            SimCampaignSpec("bad", oxus=(16, 16)).points()


class TestRunSimCampaign:
    def test_run_persists_and_resumes(self, tmp_path):
        spec = SimCampaignSpec("t", group_sizes=(8,), oxus=(8, 16))
        store = sim_store(tmp_path)
        run = run_sim_campaign(spec, store)
        assert (run.total, run.cached, run.evaluated) == (2, 0, 2)
        for point in run.points:
            result = run.result_for(point)
            assert result["layers"] >= 10
            assert result["max_deviation"] < 0.06

        # Resume from a fresh store object: everything cached.
        resumed = run_sim_campaign(spec, sim_store(tmp_path))
        assert (resumed.cached, resumed.evaluated) == (2, 0)
        assert resumed.results == run.results

    def test_force_re_evaluates(self, tmp_path):
        spec = SimCampaignSpec("t", group_sizes=(8,))
        store = sim_store(tmp_path)
        run_sim_campaign(spec, store)
        forced = run_sim_campaign(spec, store, force=True)
        assert (forced.cached, forced.evaluated) == (0, 1)

    def test_records_are_json_clean(self, tmp_path):
        store = sim_store(tmp_path)
        run = run_sim_campaign(SimCampaignSpec("t"), store)
        point = run.points[0]
        raw = store.path.read_text().strip()
        record = json.loads(raw)
        assert record["point"]["kind"] == "sim-validation"
        assert record["fingerprint"] == sim_code_fingerprint()
        assert stored_sim_result(store, point.key()) == run.result_for(point)

    def test_namespace_tracks_simulator_code(self, tmp_path):
        assert sim_store(tmp_path).namespace.startswith("sim-")


class TestSimCli:
    def test_sim_subcommand_runs_and_resumes(self, tmp_path, capsys):
        args = ["sim", "--name", "clismoke", "--group-sizes", "8",
                "--oxus", "16", "--store", str(tmp_path), "--quiet"]
        assert dse_main(args) == 0
        out = capsys.readouterr().out
        assert "cached=0 evaluated=1" in out
        assert "max deviation" in out

        assert dse_main(args) == 0
        assert "cached=1 evaluated=0" in capsys.readouterr().out

    def test_sim_rejects_bad_backend(self, tmp_path, capsys):
        assert dse_main(["sim", "--backends", "fpga",
                         "--store", str(tmp_path), "--quiet"]) == 2
        assert "backend" in capsys.readouterr().err
