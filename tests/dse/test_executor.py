"""Executor semantics: caching, resume, and parallel/serial equivalence.

The acceptance grid (2 accelerators x 2 networks) runs through the
real ``multiprocessing`` pool; the cheaper single-network campaigns
cover the serial path, force mode, and progress reporting.
"""

import pytest

from repro.dse.executor import resolve_jobs, run_campaign
from repro.dse.spec import CampaignSpec
from repro.dse.store import ResultStore


def _spec(**overrides) -> CampaignSpec:
    base = dict(name="exec-test", accelerators=("SCNN", "Stripes"),
                networks=("cnn_lstm",))
    base.update(overrides)
    return CampaignSpec(**base)


class TestSerialExecution:
    def test_first_run_evaluates_and_persists(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_campaign(_spec(), store)
        assert (run.total, run.cached, run.evaluated) == (2, 0, 2)
        assert store.path.exists()
        assert len(store) == 2
        for point in run.points:
            assert run.result_for(point).total_cycles > 0

    def test_second_run_fully_cached(self, tmp_path):
        run_campaign(_spec(), ResultStore(tmp_path))
        # Fresh store instance: nothing carried over in memory.
        resumed = run_campaign(_spec(), ResultStore(tmp_path))
        assert (resumed.cached, resumed.evaluated) == (2, 0)

    def test_partial_resume(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(_spec(accelerators=("SCNN",)), store)
        grown = run_campaign(_spec(), ResultStore(tmp_path))
        assert (grown.cached, grown.evaluated) == (1, 1)

    def test_force_reevaluates(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(_spec(), store)
        forced = run_campaign(_spec(), store, force=True)
        assert (forced.cached, forced.evaluated) == (0, 2)
        assert len(store) == 2  # duplicates superseded, not re-keyed

    def test_cached_equals_computed(self, tmp_path):
        first = run_campaign(_spec(), ResultStore(tmp_path))
        resumed = run_campaign(_spec(), ResultStore(tmp_path))
        for key, evaluation in first.results.items():
            assert resumed.results[key] == evaluation

    def test_progress_events(self, tmp_path):
        events = []

        def progress(done, total, label, *, cached, elapsed_s):
            events.append((done, total, label, cached))

        run_campaign(_spec(), ResultStore(tmp_path), progress=progress)
        assert [e[0] for e in events] == [1, 2]
        assert all(e[1] == 2 and not e[3] for e in events)
        events.clear()
        run_campaign(_spec(), ResultStore(tmp_path), progress=progress)
        assert all(e[3] for e in events)

    def test_grid_keys(self, tmp_path):
        spec = _spec(variants=("Dense",))
        run = run_campaign(spec, ResultStore(tmp_path))
        grid = run.grid()
        assert ("SCNN", "cnn_lstm") in grid
        assert ("BitWave[Dense]", "cnn_lstm") in grid

    def test_unwritable_store_degrades_to_no_persistence(self, tmp_path):
        store = ResultStore(tmp_path)
        # Make the namespace dir a file so mkdir/open fail with OSError.
        store.path.parent.parent.mkdir(parents=True, exist_ok=True)
        store.path.parent.touch()
        run = run_campaign(_spec(accelerators=("Stripes",)), store)
        assert run.evaluated == 1
        assert run.persist_failures == 1
        assert "not persisted" in run.summary_line
        assert run.results  # the evaluation itself still came back


class TestParallelExecution:
    """The ISSUE acceptance grid: >= 2 accelerators x 2 networks
    through the pool executor, persisted, then resumed with zero
    re-evaluations."""

    @pytest.fixture(scope="class")
    def acceptance_spec(self):
        return CampaignSpec(
            name="acceptance",
            accelerators=("SCNN", "Stripes"),
            networks=("cnn_lstm", "mobilenetv2"),
        )

    def test_pool_run_persists_and_resumes_from_cache(
            self, acceptance_spec, tmp_path_factory):
        root = tmp_path_factory.mktemp("acceptance")
        first = run_campaign(
            acceptance_spec, ResultStore(root), jobs=2)
        assert (first.total, first.cached, first.evaluated) == (4, 0, 4)
        assert ResultStore(root).path.exists()

        resumed = run_campaign(
            acceptance_spec, ResultStore(root), jobs=2)
        assert resumed.evaluated == 0, "resume must not re-evaluate"
        assert resumed.cached == 4

        serial = run_campaign(
            acceptance_spec, ResultStore(tmp_path_factory.mktemp("serial")),
            jobs=1)
        assert serial.evaluated == 4
        for key, evaluation in serial.results.items():
            parallel_ev = first.results[key]
            assert parallel_ev == evaluation, \
                "parallel and serial evaluations must be identical"

    def test_explicit_chunksize(self, acceptance_spec, tmp_path):
        run = run_campaign(
            acceptance_spec, ResultStore(tmp_path), jobs=2, chunksize=2)
        assert run.evaluated == 4


class TestResolveJobs:
    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)


class TestBackendAxis:
    """Backend is a first-class campaign axis: sim-backed points ride
    the same executor and land in the simulator's fingerprint-namespaced
    store next to the model store."""

    def test_mixed_backend_campaign(self, tmp_path):
        from repro.eval.fingerprints import sim_backend_fingerprint

        spec = CampaignSpec(
            name="mixed",
            accelerators=("SCNN", "BitWave"),
            networks=("cnn_lstm@frames=4+bins=64+hidden=64",),
            backends=("model", "sim-vectorized"),
        )
        points = spec.points()
        # Sim backends expand against BitWave only.
        assert [p.label for p in points] == [
            "SCNN/cnn_lstm@frames=4+bins=64+hidden=64",
            "BitWave/cnn_lstm@frames=4+bins=64+hidden=64",
            "BitWave@sim-vectorized/cnn_lstm@frames=4+bins=64+hidden=64",
        ]

        store = ResultStore(tmp_path)
        run = run_campaign(spec, store)
        assert (run.total, run.cached, run.evaluated) == (3, 0, 3)

        sim_store = ResultStore(tmp_path,
                                namespace=sim_backend_fingerprint())
        sim_point = points[-1]
        assert sim_point.key() in sim_store
        assert sim_point.key() not in store
        assert store.result(points[0].key()) is not None

        # Resume serves every backend from its own namespace.
        resumed = run_campaign(spec, ResultStore(tmp_path))
        assert (resumed.cached, resumed.evaluated) == (3, 0)
        assert resumed.results == run.results

    def test_sim_result_metrics_flow_into_summary(self, tmp_path):
        from repro.dse.summary import summary_data

        spec = CampaignSpec(
            name="simsum",
            accelerators=("BitWave",),
            networks=("cnn_lstm@frames=4+bins=64+hidden=64",),
            backends=("sim-vectorized",),
        )
        store = ResultStore(tmp_path)
        run_campaign(spec, store)
        rows = summary_data(spec, store)
        assert len(rows) == 1
        assert rows[0]["stored"] is True
        assert rows[0]["backend"] == "sim-vectorized"
        assert rows[0]["cycles"] > 0
        # The sim energy epilog prices the structural counters.
        assert rows[0]["energy"] > 0
        assert rows[0]["tops_per_w"] > 0

    def test_sim_only_campaign_without_bitwave_is_an_error(self):
        spec = CampaignSpec(
            name="empty",
            accelerators=("SCNN",),
            networks=("cnn_lstm",),
            backends=("sim-vectorized",),
        )
        with pytest.raises(ValueError, match="zero points"):
            spec.points()

    def test_energy_priced_vs_legacy_unpriced_paths(self, tmp_path):
        """Both energy paths pin down: current sim records carry priced
        energy (ranked in summaries and Pareto fronts); genuinely
        unpriced records -- stores written before the sim-energy epilog
        -- read as missing, never as a best-possible zero (and the JSON
        stays RFC-parseable)."""
        import json as json_mod

        from repro.dse.records import make_record
        from repro.dse.store import StoreRouter
        from repro.dse.summary import pareto_data, summary_data
        from repro.eval.result import EvalResult, LayerResult

        spec = CampaignSpec(
            name="mixedsum",
            accelerators=("BitWave",),
            networks=("cnn_lstm@frames=4+bins=64+hidden=64",),
            backends=("model", "sim-vectorized"),
        )
        store = ResultStore(tmp_path)
        run_campaign(spec, store)
        rows = summary_data(spec, store)
        by_backend = {row["backend"]: row for row in rows}
        assert by_backend["model"]["energy"] > 0
        # Priced path: the sim epilog fills real energy metrics.
        assert by_backend["sim-vectorized"]["energy"] > 0
        assert by_backend["sim-vectorized"]["tops_per_w"] > 0
        json_mod.loads(json_mod.dumps(rows))  # strictly serializable

        front = pareto_data(spec, store, x="cycles", y="energy")
        # Priced sim records rank in the front like any other point.
        assert front
        assert all(row["energy"] is not None for row in front)

        # Legacy path: overwrite the sim record with an unpriced result
        # (energy_pj=0, empty component dicts -- the pre-epilog layout).
        sim_point = next(p for p in spec.points()
                         if p.backend == "sim-vectorized")
        router = StoreRouter(store)
        sim_store = router.for_point(sim_point)
        stored = sim_store.result(sim_point.key())
        unpriced = EvalResult(
            workload=stored.workload,
            config_label=stored.config_label,
            backend=stored.backend,
            clock_hz=stored.clock_hz,
            layers=tuple(
                LayerResult(name=l.name, macs=l.macs, cycles=l.cycles,
                            energy_pj=0.0, energy={}, traffic=l.traffic,
                            detail=l.detail)
                for l in stored.layers),
        )
        sim_store.put(sim_point.key(),
                      make_record(sim_point, unpriced))
        rows = summary_data(spec, store)
        legacy = {row["backend"]: row for row in rows}["sim-vectorized"]
        assert legacy["stored"] is True
        assert legacy["energy"] is None
        assert legacy["tops_per_w"] is None
        json_mod.loads(json_mod.dumps(rows))
        front = pareto_data(spec, store, x="cycles", y="energy")
        assert all(row["backend"] == "model" for row in front)
