"""The campaign-lifecycle layer: deterministic sharding, cross-process
store locking, shard merge, store GC, and failure-tolerant execution.

The acceptance pins: (1) a two-shard campaign run as two separate OS
processes against the same store root merges into one namespace with no
lost or duplicated records; (2) a campaign with one poisoned point
completes and persists every other point, reports the failure in
``summary_line``/``summary_data``, and exits nonzero.
"""

import json
import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.dse.executor import CampaignRun, _worker, drive_points, run_campaign
from repro.dse.gc import collect_garbage, gc_table, live_namespaces
from repro.dse.records import RECORD_VERSION, make_record, result_from_dict
from repro.dse.spec import CampaignSpec, Shard
from repro.dse.store import ResultStore, StoreRouter
from repro.dse.summary import summary_data, summary_table
from repro.eval.fingerprints import code_fingerprint
from repro.eval.registry import get_backend

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spec(**overrides) -> CampaignSpec:
    base = dict(name="lifecycle", accelerators=("SCNN", "Stripes"),
                networks=("cnn_lstm",))
    base.update(overrides)
    return CampaignSpec(**base)


def _drive(points, run, router, worker, **kwargs):
    """drive_points with the standard evaluation-grid plumbing."""
    drive_points(
        points, run,
        worker=worker,
        cached_result=router.result,
        make_point_record=lambda point, payload, elapsed: make_record(
            point, payload, elapsed,
            fingerprint=get_backend(point.backend).fingerprint()),
        decode_result=result_from_dict,
        store_for=router.for_point,
        **kwargs,
    )


def _poison_worker(point):
    """Module-level (picklable) worker that fails exactly one point."""
    if point.accelerator == "SCNN":
        raise RuntimeError("injected fault")
    return _worker(point)


class TestShard:
    def test_parse(self):
        assert Shard.parse("0/2") == Shard(0, 2)
        assert Shard.parse(" 3/8 ") == Shard(3, 8)
        assert str(Shard(1, 4)) == "1/4"

    @pytest.mark.parametrize("bad", ["", "2", "a/b", "1/2/3", "-1/2"])
    def test_parse_rejects_bad_spellings(self, bad):
        with pytest.raises(ValueError, match="shard"):
            Shard.parse(bad)

    def test_index_must_be_below_count(self):
        with pytest.raises(ValueError, match="index"):
            Shard(2, 2)
        with pytest.raises(ValueError, match="count"):
            Shard(0, 0)

    def test_shards_partition_the_grid(self):
        points = _spec(networks=("cnn_lstm", "resnet18", "mobilenetv2"),
                       variants=("Dense", "+DF")).points()
        for count in (1, 2, 3, 5):
            shards = [Shard(i, count).select(points) for i in range(count)]
            keys = [p.key() for shard in shards for p in shard]
            assert sorted(keys) == sorted(p.key() for p in points)
            assert len(set(keys)) == len(points)

    def test_assignment_is_deterministic_and_key_local(self):
        # The same point lands in the same shard regardless of what
        # else is in the grid (assignment depends only on its own key).
        small = _spec().points()
        big = _spec(networks=("cnn_lstm", "resnet18")).points()
        shard = Shard(0, 3)
        small_selected = {p.key() for p in shard.select(small)}
        big_selected = {p.key() for p in shard.select(big)}
        assert small_selected == {k for k in big_selected
                                  if k in {p.key() for p in small}}

    def test_single_shard_is_identity(self):
        points = _spec().points()
        assert Shard(0, 1).select(points) == points

    def test_sharded_runs_cover_the_grid(self, tmp_path):
        spec = _spec(networks=("cnn_lstm", "mobilenetv2"))
        total = len(spec.points())
        counts = []
        for index in range(2):
            run = run_campaign(spec, ResultStore(tmp_path),
                               shard=Shard(index, 2))
            assert not run.failed
            counts.append(run.evaluated)
        assert sum(counts) == total
        store = ResultStore(tmp_path)
        assert len(store) == total
        rows = summary_data(spec, store)
        assert all(row["stored"] for row in rows)


class TestTwoProcessShardedCampaign:
    """Acceptance: two shards, two OS processes, one store root."""

    def test_concurrent_shards_merge_into_one_namespace(self, tmp_path):
        # This grid splits 3/1 over two shards, so both processes
        # genuinely evaluate and append concurrently.
        spec_args = ["--name", "twoproc",
                     "--accelerators", "SCNN,Stripes",
                     "--networks", "cnn_lstm,resnet18"]
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        procs = [
            subprocess.Popen(
                [sys.executable, "-m", "repro.dse", "run", *spec_args,
                 "--shard", f"{index}/2", "--store", str(tmp_path),
                 "--quiet"],
                env=env, cwd=REPO_ROOT,
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
            for index in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=600)
            assert proc.returncode == 0, (out, err)

        spec = CampaignSpec(name="twoproc",
                            accelerators=("SCNN", "Stripes"),
                            networks=("cnn_lstm", "resnet18"))
        points = spec.points()
        store = ResultStore(tmp_path)
        # No lost records: every point is stored...
        assert sorted(store.keys()) == sorted(p.key() for p in points)
        # ...and no duplicated ones: concurrent appends under the lock
        # produced exactly one intact line per point.
        lines = store.path.read_text().strip().splitlines()
        assert len(lines) == len(points)
        assert len({json.loads(line)["key"] for line in lines}) \
            == len(points)
        assert all(summary_data(spec, store)[i]["stored"]
                   for i in range(len(points)))


def _hammer(root: str, namespace: str, prefix: str, n: int) -> None:
    store = ResultStore(root, namespace=namespace)
    for i in range(n):
        store.put(f"{prefix}{i}", {"version": RECORD_VERSION,
                                   "prefix": prefix, "i": i})


class TestStoreConcurrency:
    def test_two_processes_append_under_the_lock(self, tmp_path):
        procs = [
            multiprocessing.Process(
                target=_hammer, args=(str(tmp_path), "ns", prefix, 50))
            for prefix in ("a", "b")
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = ResultStore(tmp_path, namespace="ns")
        assert len(store) == 100
        # Every line is intact JSON: the writers never interleaved.
        lines = store.path.read_text().strip().splitlines()
        assert len(lines) == 100
        for line in lines:
            json.loads(line)

    def test_torn_trailing_line_resume(self, tmp_path):
        store = ResultStore(tmp_path, namespace="ns")
        store.put("k1", {"version": RECORD_VERSION, "marker": 1})
        with store.path.open("a") as handle:
            handle.write('{"key": "k2", "trunc')  # crashed mid-write
        resumed = ResultStore(tmp_path, namespace="ns")
        assert "k1" in resumed and "k2" not in resumed
        # Appending after the torn fragment starts a fresh line (the
        # fragment has no newline); the new record must not be lost by
        # concatenating onto it.
        resumed.put("k3", {"version": RECORD_VERSION, "marker": 3})
        fresh = ResultStore(tmp_path, namespace="ns")
        assert "k1" in fresh and "k3" in fresh
        # compact() heals the file: only live records survive.
        stats = fresh.compact()
        assert stats.live_records == 2
        for line in fresh.path.read_text().strip().splitlines():
            json.loads(line)


class TestMerge:
    def _fill(self, root, namespace, keys, marker):
        store = ResultStore(root, namespace=namespace)
        for key in keys:
            store.put(key, {"version": RECORD_VERSION, "marker": marker})
        return store

    def test_merge_folds_and_is_idempotent(self, tmp_path):
        a = self._fill(tmp_path / "a", "ns", ("k1", "k2"), 1)
        b = self._fill(tmp_path / "b", "ns", ("k3",), 2)
        assert b.merge(a) == 2
        assert sorted(b.keys()) == ["k1", "k2", "k3"]
        size = b.path.stat().st_size
        # Merging the same shard again changes nothing.
        assert b.merge(a) == 0
        assert b.path.stat().st_size == size
        fresh = ResultStore(tmp_path / "b", namespace="ns")
        assert len(fresh) == 3

    def test_merge_is_last_wins_on_conflict(self, tmp_path):
        dest = self._fill(tmp_path / "dest", "ns", ("k",), 1)
        src = self._fill(tmp_path / "src", "ns", ("k",), 2)
        assert dest.merge(src) == 1
        assert dest.get("k")["marker"] == 2
        assert ResultStore(tmp_path / "dest",
                           namespace="ns").get("k")["marker"] == 2

    def test_merge_accepts_bare_jsonl_and_namespace_dir(self, tmp_path):
        src = self._fill(tmp_path / "src", "ns", ("k1",), 1)
        via_file = ResultStore(tmp_path / "d1", namespace="ns")
        assert via_file.merge(src.path) == 1
        via_dir = ResultStore(tmp_path / "d2", namespace="ns")
        assert via_dir.merge(src.path.parent) == 1
        assert "k1" in via_file and "k1" in via_dir

    def test_merge_skips_torn_source_lines(self, tmp_path):
        src = self._fill(tmp_path / "src", "ns", ("k1",), 1)
        with src.path.open("a") as handle:
            handle.write('{"key": "k2", "trunc')
        dest = ResultStore(tmp_path / "dest", namespace="ns")
        assert dest.merge(src) == 1
        assert "k2" not in dest

    def test_merge_missing_source_is_a_noop(self, tmp_path):
        dest = ResultStore(tmp_path / "dest", namespace="ns")
        assert dest.merge(tmp_path / "nope" / "results.jsonl") == 0
        assert not dest.path.exists()

    def test_cli_merge_whole_store_root(self, tmp_path, capsys):
        from repro.dse.__main__ import main as dse_main

        self._fill(tmp_path / "a", "ns1", ("k1",), 1)
        self._fill(tmp_path / "a", "ns2", ("k2",), 1)
        dest = tmp_path / "dest"
        assert dse_main(["merge", "--store", str(dest),
                         str(tmp_path / "a")]) == 0
        out = capsys.readouterr().out
        assert "merge complete: 2 records" in out
        assert "k1" in ResultStore(dest, namespace="ns1")
        assert "k2" in ResultStore(dest, namespace="ns2")

    def test_cli_merge_bare_file_requires_namespace(self, tmp_path, capsys):
        # Guessing a namespace would strand the records somewhere no
        # reader looks (e.g. sim records under the model fingerprint).
        from repro.dse.__main__ import main as dse_main

        src = self._fill(tmp_path / "src", "simnet-abc", ("k1",), 1)
        dest = tmp_path / "dest"
        assert dse_main(["merge", "--store", str(dest),
                         str(src.path)]) == 2
        assert "--namespace" in capsys.readouterr().err
        assert dse_main(["merge", "--store", str(dest),
                         "--namespace", "simnet-abc", str(src.path)]) == 0
        assert "k1" in ResultStore(dest, namespace="simnet-abc")

    def test_cli_merge_rejects_namespace_with_store_root(
            self, tmp_path, capsys):
        # For a whole store root the namespaces merge under their own
        # names; silently ignoring --namespace would surprise.
        from repro.dse.__main__ import main as dse_main

        self._fill(tmp_path / "a", "ns1", ("k1",), 1)
        assert dse_main(["merge", "--store", str(tmp_path / "dest"),
                         "--namespace", "ns9", str(tmp_path / "a")]) == 2
        assert "store root" in capsys.readouterr().err


class TestGc:
    def _stale(self, root, name, age_days, n_records=3):
        store = ResultStore(root, namespace=name)
        for i in range(n_records):
            store.put(f"k{i}", {"version": RECORD_VERSION, "i": i})
        old = time.time() - age_days * 86400
        os.utime(store.path, (old, old))
        return store

    def test_live_namespaces_cover_every_backend(self):
        live = live_namespaces()
        assert code_fingerprint() in live
        assert any(ns.startswith("simnet-") for ns in live)
        assert any(ns.startswith("sim-") and not ns.startswith("simnet-")
                   for ns in live)

    def test_stale_namespace_evicted_by_age(self, tmp_path):
        self._stale(tmp_path, "deadbeef0001", age_days=90)
        young = self._stale(tmp_path, "deadbeef0002", age_days=1)
        report = collect_garbage(tmp_path, max_age_days=30)
        actions = {ns.namespace: ns.action for ns in report.namespaces}
        assert actions == {"deadbeef0001": "evict",
                           "deadbeef0002": "keep"}
        assert not (tmp_path / "deadbeef0001").exists()
        assert young.path.exists()
        assert report.evicted == 1
        assert report.reclaimed_bytes > 0

    def test_live_namespace_compacts_but_never_evicts(self, tmp_path):
        live_ns = code_fingerprint()
        store = ResultStore(tmp_path, namespace=live_ns)
        store.put("k", {"version": RECORD_VERSION, "marker": 1})
        store.put("k", {"version": RECORD_VERSION, "marker": 2})
        old = time.time() - 365 * 86400
        os.utime(store.path, (old, old))
        report = collect_garbage(tmp_path, max_age_days=1, max_bytes=0)
        (entry,) = report.namespaces
        assert entry.live
        assert entry.action == "compact"
        assert entry.reclaimed_bytes > 0
        fresh = ResultStore(tmp_path, namespace=live_ns)
        assert fresh.get("k")["marker"] == 2
        assert len(fresh.path.read_text().strip().splitlines()) == 1

    def test_dry_run_touches_nothing(self, tmp_path):
        self._stale(tmp_path, "deadbeef0001", age_days=90)
        before = (tmp_path / "deadbeef0001" / "results.jsonl").read_bytes()
        report = collect_garbage(tmp_path, max_age_days=30, dry_run=True)
        assert report.namespaces[0].action == "evict"
        assert (tmp_path / "deadbeef0001" /
                "results.jsonl").read_bytes() == before
        assert "dry run" in gc_table(report)

    def test_size_budget_evicts_oldest_stale_first(self, tmp_path):
        oldest = self._stale(tmp_path, "deadbeef0001", age_days=20)
        newest = self._stale(tmp_path, "deadbeef0002", age_days=5)
        budget = newest.path.stat().st_size
        report = collect_garbage(tmp_path, max_age_days=30,
                                 max_bytes=budget)
        actions = {ns.namespace: ns.action for ns in report.namespaces}
        assert actions["deadbeef0001"] == "evict"
        assert actions["deadbeef0002"] == "keep"
        assert not oldest.path.exists()

    def test_evicts_namespace_husk_left_by_zero_live_compact(self, tmp_path):
        # A zero-live-record compact() unlinks results.jsonl but leaves
        # the dir + lockfile; the GC must still be able to reclaim it.
        store = ResultStore(tmp_path, namespace="deadbeef0001")
        store.path.parent.mkdir(parents=True)
        store.path.write_text('{"key": "k1", "trunc')
        assert store.compact().live_records == 0
        assert store.path.parent.exists() and not store.path.exists()
        old = time.time() - 90 * 86400
        os.utime(store.path.parent, (old, old))
        report = collect_garbage(tmp_path, max_age_days=30)
        (entry,) = report.namespaces
        assert (entry.action, entry.records, entry.size_bytes) \
            == ("evict", 0, 0)
        assert not store.path.parent.exists()

    def test_unrelated_directories_are_never_evicted(self, tmp_path):
        foreign = tmp_path / "not-a-namespace"
        foreign.mkdir()
        (foreign / "data.txt").write_text("keep me")
        empty = tmp_path / "empty-foreign-dir"  # no store lockfile
        empty.mkdir()
        old = time.time() - 365 * 86400
        os.utime(foreign, (old, old))
        os.utime(empty, (old, old))
        report = collect_garbage(tmp_path, max_age_days=1)
        assert report.namespaces == ()
        assert (foreign / "data.txt").exists()
        assert empty.exists()

    def test_rejects_negative_budgets(self, tmp_path):
        with pytest.raises(ValueError, match="max_age_days"):
            collect_garbage(tmp_path, max_age_days=-1)
        with pytest.raises(ValueError, match="max_bytes"):
            collect_garbage(tmp_path, max_bytes=-1)

    def test_missing_root_reports_empty(self, tmp_path):
        report = collect_garbage(tmp_path / "nope")
        assert report.namespaces == ()

    def test_cli_gc_json(self, tmp_path, capsys):
        from repro.dse.__main__ import main as dse_main

        self._stale(tmp_path, "deadbeef0001", age_days=90)
        assert dse_main(["gc", "--store", str(tmp_path), "--dry-run",
                         "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dry_run"] is True
        assert payload["evicted"] == 1
        assert payload["namespaces"][0]["action"] == "evict"
        assert (tmp_path / "deadbeef0001").exists()


class TestFailureTolerance:
    def _run_with(self, tmp_path, worker, spec=None, **kwargs):
        spec = spec or _spec()
        store = ResultStore(tmp_path)
        points = spec.points()
        run: CampaignRun = CampaignRun(
            spec=spec, store_path=store.path, points=points,
            total=len(points))
        _drive(points, run, StoreRouter(store), worker, **kwargs)
        return run, store

    def test_serial_poisoned_point_spares_the_rest(self, tmp_path):
        run, store = self._run_with(tmp_path, _poison_worker, jobs=1)
        assert run.evaluated == 1
        assert len(run.failed) == 1
        assert run.failed_labels() == ["SCNN/cnn_lstm"]
        (error,) = run.failed.values()
        assert "injected fault" in error
        # The surviving point persisted; the failed one did not.
        assert len(store) == 1
        assert "failed=1" in run.summary_line
        assert "SCNN/cnn_lstm" in run.summary_line

    def test_pool_poisoned_point_spares_the_rest(self, tmp_path):
        spec = _spec(networks=("cnn_lstm", "mobilenetv2"))
        run, store = self._run_with(tmp_path, _poison_worker, spec=spec,
                                    jobs=2, chunksize=1)
        assert run.evaluated == 2   # both Stripes points
        assert len(run.failed) == 2  # both SCNN points
        assert len(store) == 2
        assert sorted(run.failed_labels()) == [
            "SCNN/cnn_lstm", "SCNN/mobilenetv2"]

    def test_failed_points_retry_on_resume(self, tmp_path):
        run, _ = self._run_with(tmp_path, _poison_worker, jobs=1)
        assert run.failed
        # The fault is gone on the next run: only the failed point
        # re-evaluates, the survivor is served from the store.
        resumed, _ = self._run_with(tmp_path, _worker, jobs=1)
        assert (resumed.cached, resumed.evaluated) == (1, 1)
        assert not resumed.failed

    def test_progress_counts_failures_and_never_overruns(self, tmp_path):
        events = []

        def progress(done, total, label, *, cached, elapsed_s):
            events.append((done, total, label))

        run, _ = self._run_with(tmp_path, _poison_worker, jobs=1,
                                progress=progress)
        assert [done for done, _, _ in events] == [1, 2]
        assert all(done <= total for done, total, _ in events)
        # The live line flags the fault as it happens, not only in the
        # final summary.
        failed_lines = [label for _, _, label in events
                        if label.startswith("FAILED ")]
        assert len(failed_lines) == 1
        assert "injected fault" in failed_lines[0]

    def test_grid_refuses_partial_results(self, tmp_path):
        run, _ = self._run_with(tmp_path, _poison_worker, jobs=1)
        with pytest.raises(RuntimeError, match="SCNN/cnn_lstm"):
            run.grid()

    def test_summary_data_surfaces_failures(self, tmp_path):
        run, store = self._run_with(tmp_path, _poison_worker, jobs=1)
        rows = summary_data(run.spec, store, failures=run.failed)
        by_config = {row["config"]: row for row in rows}
        assert "injected fault" in by_config["SCNN"]["error"]
        assert by_config["SCNN"]["stored"] is False
        assert by_config["Stripes"]["error"] is None
        assert by_config["Stripes"]["stored"] is True
        json.loads(json.dumps(rows))  # strictly serializable
        table = summary_table(run.spec, store, failures=run.failed)
        assert "FAILED" in table

    def test_force_failure_over_stored_record_still_reports_failed(
            self, tmp_path):
        # First run stores both points; a --force re-run where one
        # point raises must not let the stale stored record mask the
        # failure in the table.
        good, store = self._run_with(tmp_path, _worker, jobs=1)
        assert not good.failed
        forced, _ = self._run_with(tmp_path, _poison_worker, jobs=1,
                                   force=True)
        assert forced.failed
        rows = summary_data(forced.spec, store, failures=forced.failed)
        scnn = {row["config"]: row for row in rows}["SCNN"]
        assert scnn["stored"] is True  # the pre-force record survives
        assert "injected fault" in scnn["error"]
        table = summary_table(forced.spec, store, failures=forced.failed)
        scnn_row = next(line for line in table.splitlines()
                        if line.startswith("SCNN"))
        assert "FAILED" in scnn_row

    def test_cli_exit_code_and_report(self, tmp_path, monkeypatch, capsys):
        from repro.dse import executor
        from repro.dse.__main__ import main as dse_main

        monkeypatch.setenv("REPRO_DSE_STORE", str(tmp_path))
        real = executor.evaluate_point

        def poisoned(point):
            if point.accelerator == "SCNN":
                raise RuntimeError("injected fault")
            return real(point)

        monkeypatch.setattr(executor, "evaluate_point", poisoned)
        code = dse_main(["run", "--name", "poisoned",
                         "--accelerators", "SCNN,Stripes",
                         "--networks", "cnn_lstm", "--quiet"])
        assert code == 1
        captured = capsys.readouterr()
        assert "failed=1" in captured.out
        assert "FAILED" in captured.out          # summary-table status
        assert "injected fault" in captured.err  # per-point stderr line

        # The healthy point persisted and resumes from cache; with the
        # fault gone the campaign completes and exits 0.
        monkeypatch.setattr(executor, "evaluate_point", real)
        code = dse_main(["run", "--name", "poisoned",
                         "--accelerators", "SCNN,Stripes",
                         "--networks", "cnn_lstm", "--quiet"])
        assert code == 0
        assert "cached=1 evaluated=1" in capsys.readouterr().out

    def test_sim_summaries_report_failures(self):
        from repro.dse.simcampaign import (
            SimCampaignSpec,
            SimPoint,
            sim_summary_data,
            sim_summary_rows,
        )

        point = SimPoint()
        run: CampaignRun = CampaignRun(
            spec=SimCampaignSpec(name="simfail"),
            store_path=Path("unused"), points=[point], total=1)
        run.failed[point.key()] = "RuntimeError: boom"
        (row,) = sim_summary_rows(run)
        assert "FAILED" in row[-1]
        (entry,) = sim_summary_data(run)
        assert entry["error"] == "RuntimeError: boom"
        assert entry["layers"] is None


class TestDedupeAndRecommits:
    def test_duplicate_key_points_deduped_with_warning(self, tmp_path):
        spec = _spec(accelerators=("Stripes",))
        store = ResultStore(tmp_path)
        (point,) = spec.points()
        points = [point, point]  # a buggy caller's duplicate expansion
        run: CampaignRun = CampaignRun(
            spec=spec, store_path=store.path, points=points,
            total=len(points))
        with pytest.warns(RuntimeWarning, match="duplicates the key"):
            _drive(points, run, StoreRouter(store), _worker, jobs=1)
        # total corrected, one evaluation, one record, progress sane,
        # and the run's own point list deduped (so failure reporting
        # could never list one point twice).
        assert (run.total, run.evaluated, run.cached) == (1, 1, 0)
        assert run.points == [point]
        assert len(store) == 1

    def test_recommitted_key_counted_separately_and_clamped(self, tmp_path):
        # A worker streaming back an already-committed key (the
        # pre-fix 101/100 progress bug) must not inflate the counters.
        spec = _spec()
        store = ResultStore(tmp_path)
        points = spec.points()
        first_key = points[0].key()

        def same_key_worker(point):
            key, payload, elapsed = _worker(points[0])
            return first_key, payload, elapsed

        events = []

        def progress(done, total, label, *, cached, elapsed_s):
            events.append((done, total))

        run: CampaignRun = CampaignRun(
            spec=spec, store_path=store.path, points=points,
            total=len(points))
        _drive(points, run, StoreRouter(store), same_key_worker, jobs=1,
               progress=progress)
        assert run.evaluated == 1
        assert run.recommits == 1
        assert all(done <= total for done, total in events)
        assert "re-committed" in run.summary_line
