"""Retry-policy semantics: validation, failure classification,
deterministic backoff, and spec round-tripping.

The acceptance pin: two runs of the same campaign compute identical
backoff schedules (jitter is drawn from the point key, not a clock or
RNG), so chaos runs are reproducible end to end.
"""

import pytest

from repro.dse.retry import POISON_TYPES, WORKER_FAILURE_KINDS, RetryPolicy
from repro.dse.spec import CampaignSpec


class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(max_attempts=0),
        dict(timeout_s=0),
        dict(timeout_s=-1.0),
        dict(backoff_s=-0.1),
        dict(backoff_factor=0.5),
        dict(jitter=1.5),
        dict(jitter=-0.1),
        dict(heartbeat_timeout_s=0),
    ])
    def test_rejects_bad_fields(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)

    def test_defaults_are_valid_and_watchdog_free(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert not policy.needs_watchdog()
        assert RetryPolicy(timeout_s=30.0).needs_watchdog()


class TestClassification:
    @pytest.mark.parametrize("etype", POISON_TYPES)
    def test_poison_types_never_retry(self, etype):
        assert not RetryPolicy().is_retryable(etype)

    @pytest.mark.parametrize("etype", ["OSError", "MemoryError",
                                       "InjectedFault", "RuntimeError"])
    def test_transient_types_retry(self, etype):
        assert RetryPolicy().is_retryable(etype)

    @pytest.mark.parametrize("kind", WORKER_FAILURE_KINDS)
    def test_worker_failures_always_retry(self, kind):
        # The process died, not necessarily the point's code: even an
        # etype that would be poison as an exception gets retried.
        assert RetryPolicy().is_retryable("ValueError", kind=kind)

    def test_poison_list_is_configurable(self):
        policy = RetryPolicy(poison=("RuntimeError",))
        assert not policy.is_retryable("RuntimeError")
        assert policy.is_retryable("ValueError")


class TestBackoff:
    def test_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy()
        assert policy.backoff_for("abcd", 1) == policy.backoff_for("abcd", 1)
        assert policy.backoff_for("abcd", 1) != policy.backoff_for("dcba", 1)

    def test_exponential_growth_within_jitter_bounds(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0, jitter=0.1)
        for attempt in range(4):
            base = 0.1 * 2.0 ** attempt
            wait = policy.backoff_for("abcd", attempt)
            assert base * 0.9 <= wait <= base * 1.1

    def test_clamped_at_max_backoff(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_factor=10.0,
                             max_backoff_s=5.0, jitter=0.0)
        assert policy.backoff_for("abcd", 6) == 5.0

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_s=0.25, backoff_factor=2.0, jitter=0.0)
        assert policy.backoff_for("abcd", 2) == 1.0


class TestSerialization:
    def test_round_trip(self):
        policy = RetryPolicy(max_attempts=5, timeout_s=120.0,
                             backoff_s=0.5, poison=("RuntimeError",))
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown retry-policy"):
            RetryPolicy.from_dict({"max_attempts": 2, "retires": 9})

    def test_with_overrides_skips_none(self):
        base = RetryPolicy(max_attempts=5, timeout_s=60.0)
        same = base.with_overrides(max_attempts=None, timeout_s=None)
        assert same == base
        bumped = base.with_overrides(max_attempts=7, timeout_s=None)
        assert (bumped.max_attempts, bumped.timeout_s) == (7, 60.0)

    def test_rides_on_campaign_spec(self):
        spec = CampaignSpec(
            name="chaos", accelerators=("SCNN",), networks=("cnn_lstm",),
            retry=RetryPolicy(max_attempts=4, timeout_s=90.0))
        restored = CampaignSpec.from_dict(spec.to_dict())
        assert restored.retry == spec.retry
        # Specs without a policy stay policy-free (and their dict form
        # stays byte-identical to the pre-retry era).
        bare = CampaignSpec(name="bare", accelerators=("SCNN",),
                            networks=("cnn_lstm",))
        assert bare.retry is None
        assert "retry" not in bare.to_dict()
