"""The ``python -m repro.dse`` CLI, the run_all argparse migration, and
the store-backed ``experiments.common`` helpers."""

import json

import pytest

from repro.accelerators import SOTA_ACCELERATORS
from repro.accelerators.bitwave import BitWave
from repro.dse.__main__ import main as dse_main
from repro.dse.spec import CampaignSpec
from repro.eval.result import to_network_evaluation
from repro.experiments import common
from repro.experiments.run_all import parse_args

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # the legacy shims are under test here


@pytest.fixture
def isolated_store(tmp_path, monkeypatch):
    """Route the default store (env-derived) into a tmp dir."""
    monkeypatch.setenv("REPRO_DSE_STORE", str(tmp_path))
    common.reset_cache()
    yield tmp_path
    common.reset_cache()


SMOKE = ["--name", "smoke", "--accelerators", "Stripes",
         "--networks", "cnn_lstm"]


class TestCli:
    def test_run_then_resume(self, isolated_store, capsys):
        assert dse_main(["run", *SMOKE, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "cached=0 evaluated=1" in out
        assert "Stripes" in out

        assert dse_main(["run", *SMOKE, "--quiet"]) == 0
        assert "cached=1 evaluated=0" in capsys.readouterr().out

    def test_explicit_store_flag(self, tmp_path, capsys):
        store_dir = tmp_path / "explicit"
        assert dse_main(
            ["run", *SMOKE, "--quiet", "--store", str(store_dir)]) == 0
        capsys.readouterr()
        assert any(store_dir.rglob("results.jsonl"))

    def test_points_reports_cache_status(self, isolated_store, capsys):
        dse_main(["run", *SMOKE, "--quiet"])
        capsys.readouterr()
        assert dse_main(["points", *SMOKE]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert "cached" in lines[0] and "Stripes/cnn_lstm" in lines[0]

    def test_summary_marks_missing(self, isolated_store, capsys):
        assert dse_main(["summary", *SMOKE]) == 0
        assert "missing" in capsys.readouterr().out

    def test_pareto(self, isolated_store, capsys):
        dse_main(["run", *SMOKE, "--quiet"])
        capsys.readouterr()
        assert dse_main(
            ["pareto", *SMOKE, "--x", "cycles", "--y", "tops_per_w"]) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out and "Stripes" in out

    def test_init_writes_loadable_spec(self, tmp_path, capsys):
        out_file = tmp_path / "campaign.json"
        assert dse_main(["init", "--out", str(out_file),
                         "--name", "full"]) == 0
        spec = CampaignSpec.from_json(out_file)
        assert spec.name == "full"
        # 6 accelerators x 4 networks + 3 non-canonical variants x 4.
        assert len(spec.points()) == 36

    def test_spec_file_roundtrip(self, isolated_store, tmp_path, capsys):
        out_file = tmp_path / "c.json"
        out_file.write_text(json.dumps({
            "name": "fromfile", "accelerators": ["Stripes"],
            "networks": ["cnn_lstm"], "variants": []}))
        assert dse_main(["run", "--spec", str(out_file), "--quiet"]) == 0
        assert "fromfile" in capsys.readouterr().out

    def test_invalid_grid_is_an_error(self, isolated_store, capsys):
        code = dse_main(["run", "--name", "bad",
                         "--accelerators", "TPU",
                         "--networks", "cnn_lstm", "--quiet"])
        assert code == 2
        assert "unknown accelerator" in capsys.readouterr().err


class TestRunAllArgs:
    def test_defaults(self):
        args = parse_args([])
        assert args.fast is False and args.jobs == 1

    def test_fast_and_jobs(self):
        args = parse_args(["--fast", "--jobs", "4"])
        assert args.fast is True and args.jobs == 4

    def test_unknown_flag_rejected(self):
        with pytest.raises(SystemExit):
            parse_args(["--warp-speed"])


class TestCommonMigration:
    """The lru_cache helpers now ride the persistent store with the
    same public call signatures."""

    def test_sota_evaluation_persists_and_reloads(self, isolated_store):
        first = common.sota_evaluation("Stripes", "cnn_lstm")
        # Same process: memoized identity.
        assert common.sota_evaluation("Stripes", "cnn_lstm") is first
        assert any(isolated_store.rglob("results.jsonl"))

        common.reset_cache()  # simulate a fresh process
        reloaded = common.sota_evaluation("Stripes", "cnn_lstm")
        assert reloaded is not first
        assert reloaded == first

    def test_breakdown_evaluation_matches_direct_build(self, isolated_store):
        via_store = common.breakdown_evaluation("+DF", "cnn_lstm")
        direct = BitWave("dynamic", "dense", False).evaluate_network(
            "cnn_lstm")
        assert via_store == direct

    def test_grids_share_the_store(self, isolated_store):
        grid = common.sota_grid(("cnn_lstm",), accelerators=("Stripes",))
        assert grid[("Stripes", "cnn_lstm")] \
            is common.sota_evaluation("Stripes", "cnn_lstm")

    def test_all_sota_signature_preserved(self):
        assert callable(common.all_sota_evaluations)
        assert common.BREAKDOWN_VARIANTS == (
            "Dense", "+DF", "+DF+SM", "+DF+SM+BF")

    def test_prewarm_populates_memo(self, isolated_store):
        run = common.prewarm_grids(networks=("cnn_lstm",), jobs=1)
        assert run is not None
        # The fully-enabled variant shares the SotA BitWave point.
        assert run.total == len(SOTA_ACCELERATORS) \
            + len(common.BREAKDOWN_VARIANTS) - 1
        # Harness calls after prewarm are pure memo hits: no further
        # evaluation, stable identity across calls, values equal to
        # the prewarmed canonical results.
        key = [p for p in run.points
               if p.label == "BitWave/cnn_lstm"][0].key()
        legacy = common.sota_evaluation("BitWave", "cnn_lstm")
        assert legacy is common.sota_evaluation("BitWave", "cnn_lstm")
        assert legacy == to_network_evaluation(run.results[key])


class TestJsonFormat:
    """--format json on points/summary/pareto for scripting."""

    def test_points_json(self, isolated_store, capsys):
        assert dse_main(["points", *SMOKE, "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["accelerator"] == "Stripes"
        assert entry["network"] == "cnn_lstm"
        assert entry["backend"] == "model"
        assert entry["cached"] is False
        assert entry["key"] and entry["label"] == "Stripes/cnn_lstm"

    def test_summary_json(self, isolated_store, capsys):
        dse_main(["run", *SMOKE, "--quiet"])
        capsys.readouterr()
        assert dse_main(["summary", *SMOKE, "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["stored"] is True
        assert rows[0]["cycles"] > 0
        assert rows[0]["tops_per_w"] > 0

    def test_summary_json_missing_is_null(self, isolated_store, capsys):
        assert dse_main(["summary", *SMOKE, "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["stored"] is False
        assert rows[0]["cycles"] is None

    def test_pareto_json(self, isolated_store, capsys):
        dse_main(["run", *SMOKE, "--quiet"])
        capsys.readouterr()
        assert dse_main(["pareto", *SMOKE, "--format", "json",
                         "--x", "cycles", "--y", "energy"]) == 0
        front = json.loads(capsys.readouterr().out)
        assert front and front[0]["config"] == "Stripes"
        assert front[0]["cycles"] > 0


class TestBackendAxisCli:
    def test_run_with_sim_backend(self, isolated_store, capsys):
        args = ["run", "--name", "simsmoke", "--accelerators", "BitWave",
                "--networks", "cnn_lstm@frames=4+bins=64+hidden=64",
                "--backends", "model,sim-vectorized", "--quiet"]
        assert dse_main(args) == 0
        out = capsys.readouterr().out
        assert "cached=0 evaluated=2" in out
        assert "BitWave@sim-vectorized" in out

        # Resume: both namespaces serve from cache.
        assert dse_main(args) == 0
        assert "cached=2 evaluated=0" in capsys.readouterr().out

    def test_unknown_backend_is_an_error(self, isolated_store, capsys):
        code = dse_main(["run", "--name", "bad", "--accelerators",
                         "BitWave", "--networks", "cnn_lstm",
                         "--backends", "rtl", "--quiet"])
        assert code == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_token_sweep_points(self, isolated_store, capsys):
        assert dse_main(["points", "--name", "tokens",
                         "--accelerators", "BitWave",
                         "--networks",
                         "bert_base@tokens=4,bert_base@tokens=64"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert "bert_base@tokens=4" in lines[0]
        assert "bert_base@tokens=64" in lines[1]
