"""Campaign specs, config hashing, and the persistent result store."""

import json

import pytest

from repro.accelerators import BITWAVE_VARIANTS, SOTA_ACCELERATORS
from repro.accelerators.base import LayerEvaluation, NetworkEvaluation
from repro.dse.records import (
    evaluation_from_dict,
    evaluation_to_dict,
    make_record,
)
from repro.dse.spec import (
    CampaignSpec,
    EvalPoint,
    code_fingerprint,
    config_hash,
    paper_grid,
)
from repro.dse.store import ResultStore
from repro.eval.result import from_network_evaluation
from repro.model.energy import EnergyBreakdown
from repro.model.latency import LatencyBreakdown
from repro.model.zigzag import ActivityCounts
from repro.workloads.nets import NETWORKS


def _synthetic_evaluation() -> NetworkEvaluation:
    """A hand-built evaluation with repr-awkward floats (no profiling)."""
    counts = ActivityCounts(
        n_mac=12345, macs_per_cycle=1024.0, utilization=0.1 + 0.2,
        dram_read_weight=1e7 / 3.0, dram_read_act=7.25, dram_write_act=0.1,
        sram_read_weight=2.0 ** 0.5, sram_read_input=3.0, sram_write_output=4.0,
        reg_read=5.5, reg_write=6.5)
    latency = LatencyBreakdown(
        dram_cycles=1.0 / 7.0, sram_write_output_cycles=2.0,
        sram_read_input_cycles=3.0, sram_read_weight_cycles=4.0,
        reg_read_cycles=5.0, compute_cycles=1e-9)
    energy = EnergyBreakdown(
        dram_pj=0.1, sram_pj=0.2, reg_pj=0.3, compute_pj=1e12 + 0.5)
    return NetworkEvaluation(
        accelerator="Test", network="cnn_lstm",
        layers=[LayerEvaluation(
            layer="l0", su_name="SU1", counts=counts,
            latency=latency, energy=energy)])


class TestConfigHash:
    def test_pinned_value(self):
        # Catches accidental canonical-format drift; update deliberately
        # (and bump SPEC_VERSION) if the point schema changes.
        # SPEC_VERSION 3: the arch axis joined the key (and the sim
        # geometry options left EvalOptions for the arch spec).
        assert EvalPoint("SCNN", "cnn_lstm").key() == "cccbbe9f2329d1f4"

    def test_key_order_independent(self):
        a = config_hash({"x": 1, "y": [1, 2], "z": None})
        b = config_hash({"z": None, "y": [1, 2], "x": 1})
        assert a == b

    def test_distinct_points_distinct_keys(self):
        keys = {
            EvalPoint(acc, net, variant=v).key()
            for acc, net, v in [
                ("SCNN", "cnn_lstm", None),
                ("SCNN", "resnet18", None),
                ("BitWave", "cnn_lstm", None),
                ("BitWave", "cnn_lstm", "Dense"),
                ("BitWave", "cnn_lstm", "+DF"),
            ]
        }
        assert len(keys) == 5

    def test_key_matches_request_hash(self):
        # Campaign points and ad-hoc repro.eval requests share one
        # cache keyspace.
        point = EvalPoint("BitWave", "resnet18", variant="+DF+SM")
        assert point.key() == point.request().key()
        assert point.key() == config_hash(point.request().to_dict())

    def test_backend_is_part_of_the_key(self):
        model = EvalPoint("BitWave", "cnn_lstm")
        sim = EvalPoint("BitWave", "cnn_lstm", backend="sim-vectorized")
        assert model.key() != sim.key()
        assert sim.config_label == "BitWave@sim-vectorized"

    def test_fingerprint_is_stable_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 12
        int(fp, 16)


class TestEvalPoint:
    def test_unknown_network(self):
        with pytest.raises(ValueError, match="unknown network"):
            EvalPoint("SCNN", "alexnet").validate()

    def test_unknown_accelerator(self):
        with pytest.raises(ValueError, match="unknown accelerator"):
            EvalPoint("TPU", "cnn_lstm").validate()

    def test_variant_requires_bitwave(self):
        with pytest.raises(ValueError, match="BitWave ablations"):
            EvalPoint("SCNN", "cnn_lstm", variant="Dense").validate()

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown BitWave variant"):
            EvalPoint("BitWave", "cnn_lstm", variant="+XX").validate()

    def test_labels(self):
        assert EvalPoint("SCNN", "cnn_lstm").label == "SCNN/cnn_lstm"
        assert EvalPoint("BitWave", "resnet18", variant="+DF").config_label \
            == "BitWave[+DF]"

    def test_dict_roundtrip(self):
        point = EvalPoint("BitWave", "bert_base", variant="+DF")
        assert EvalPoint.from_dict(point.to_dict()) == point

    def test_full_variant_canonicalizes_to_sota_point(self):
        full = EvalPoint("BitWave", "cnn_lstm", variant="+DF+SM+BF")
        sota = EvalPoint("BitWave", "cnn_lstm")
        assert full == sota
        assert full.key() == sota.key()
        assert full.config_label == "BitWave"

    def test_canonicalization_matches_constructor_defaults(self):
        # The canonicalization is only sound while BitWave() defaults
        # equal the fully-enabled ablation rung.
        from repro.accelerators.bitwave import BREAKDOWN_CONFIGS, BitWave

        bw = BitWave()
        assert BREAKDOWN_CONFIGS["+DF+SM+BF"] == (
            bw.dataflow, bw.columns, bw.bitflip)


class TestCampaignSpec:
    def test_points_cross_product(self):
        spec = CampaignSpec(
            name="t", accelerators=("SCNN", "Stripes"),
            networks=("cnn_lstm", "resnet18"), variants=("Dense",))
        points = spec.points()
        assert len(points) == 2 * 2 + 2
        assert len({p.key() for p in points}) == len(points)

    def test_paper_grid_shape(self):
        points = paper_grid().points()
        # The fully-enabled variant canonicalizes into the SotA
        # BitWave column, so one variant row collapses per network.
        expected = len(SOTA_ACCELERATORS) * len(NETWORKS) \
            + (len(BITWAVE_VARIANTS) - 1) * len(NETWORKS)
        assert len(points) == expected

    def test_rejects_empty_networks(self):
        with pytest.raises(ValueError, match="at least one network"):
            CampaignSpec(name="t", accelerators=("SCNN",)).validate()

    def test_rejects_no_configs(self):
        with pytest.raises(ValueError, match="accelerator or variant"):
            CampaignSpec(name="t", networks=("cnn_lstm",)).validate()

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(name="t", accelerators=("SCNN", "SCNN"),
                         networks=("cnn_lstm",)).validate()

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError, match="name"):
            CampaignSpec(name="bad name!", accelerators=("SCNN",),
                         networks=("cnn_lstm",)).validate()

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            CampaignSpec(name="t", networks=("cnn_lstm",),
                         variants=("Sparse",)).validate()

    def test_json_roundtrip(self, tmp_path):
        spec = CampaignSpec(
            name="rt", accelerators=("BitWave",),
            networks=("cnn_lstm",), variants=("Dense", "+DF"))
        path = tmp_path / "spec.json"
        spec.to_json(path)
        assert CampaignSpec.from_json(path) == spec

    def test_lists_normalized_to_tuples(self):
        spec = CampaignSpec(name="t", accelerators=["SCNN"],
                            networks=["cnn_lstm"])
        assert spec.accelerators == ("SCNN",)
        assert spec.points()


class TestRecords:
    def test_exact_roundtrip(self):
        evaluation = _synthetic_evaluation()
        data = json.loads(json.dumps(evaluation_to_dict(evaluation)))
        assert evaluation_from_dict(data) == evaluation

    def test_make_record_fields(self):
        point = EvalPoint("SCNN", "cnn_lstm")
        result = from_network_evaluation(_synthetic_evaluation())
        record = make_record(point, result, elapsed_s=1.5)
        assert record["key"] == point.key()
        assert record["point"] == point.to_dict()
        assert record["fingerprint"] == code_fingerprint()
        assert record["elapsed_s"] == 1.5
        assert record["result"]["layers"]
        assert record["result"]["backend"] == "model"

    def test_make_record_custom_fingerprint(self):
        point = EvalPoint("BitWave", "cnn_lstm", backend="sim-vectorized")
        result = from_network_evaluation(_synthetic_evaluation())
        record = make_record(point, result, fingerprint="simnet-abc")
        assert record["fingerprint"] == "simnet-abc"


class TestResultStore:
    def _record(self, key: str, marker: int) -> dict:
        from repro.dse.records import RECORD_VERSION
        return {"key": key, "marker": marker, "version": RECORD_VERSION,
                "result": evaluation_to_dict(_synthetic_evaluation())}

    def test_roundtrip_across_instances(self, tmp_path):
        store = ResultStore(tmp_path, namespace="ns")
        store.put("k1", self._record("k1", 1))
        fresh = ResultStore(tmp_path, namespace="ns")
        assert "k1" in fresh
        assert fresh.get("k1")["marker"] == 1
        assert fresh.evaluation("k1") == _synthetic_evaluation()

    def test_missing_key(self, tmp_path):
        store = ResultStore(tmp_path, namespace="ns")
        assert store.get("nope") is None
        assert store.evaluation("nope") is None
        assert len(store) == 0

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path, namespace="ns")
        store.put("k", self._record("k", 1))
        store.put("k", self._record("k", 2))
        fresh = ResultStore(tmp_path, namespace="ns")
        assert fresh.get("k")["marker"] == 2
        assert len(fresh) == 1

    def test_torn_line_skipped(self, tmp_path):
        store = ResultStore(tmp_path, namespace="ns")
        store.put("k1", self._record("k1", 1))
        with store.path.open("a") as handle:
            handle.write('{"key": "k2", "trunc')  # crashed mid-write
        fresh = ResultStore(tmp_path, namespace="ns")
        assert "k1" in fresh and "k2" not in fresh

    def test_compact_drops_duplicates(self, tmp_path):
        store = ResultStore(tmp_path, namespace="ns")
        store.put("k", self._record("k", 1))
        store.put("k", self._record("k", 2))
        stats = store.compact()
        assert stats.live_records == 1
        assert stats.reclaimed_bytes > 0
        assert len(store.path.read_text().strip().splitlines()) == 1
        assert ResultStore(tmp_path, namespace="ns").get("k")["marker"] == 2

    def test_compact_with_zero_live_records_unlinks(self, tmp_path):
        # A file holding only a torn write must not survive compaction
        # as stale on-disk garbage.
        store = ResultStore(tmp_path, namespace="ns")
        store.path.parent.mkdir(parents=True)
        store.path.write_text('{"key": "k1", "trunc')
        torn_bytes = store.path.stat().st_size
        stats = store.compact()
        assert stats.live_records == 0
        assert stats.reclaimed_bytes == torn_bytes
        assert not store.path.exists()

    def test_compact_on_missing_file_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path, namespace="ns")
        assert store.compact() == (0, 0)
        # Truly a no-op: no namespace dir (or lockfile husk) appears.
        assert not store.path.parent.exists()

    def test_non_dict_json_lines_skipped(self, tmp_path):
        # A foreign/corrupt file may hold valid JSON that is not a
        # record object; the loader must skip it, not crash.
        store = ResultStore(tmp_path, namespace="ns")
        store.put("k1", self._record("k1", 1))
        with store.path.open("a") as handle:
            handle.write('"hello"\n123\n[1, 2]\n')
        fresh = ResultStore(tmp_path, namespace="ns")
        assert sorted(fresh.keys()) == ["k1"]
        assert fresh.compact().live_records == 1

    def test_compact_sees_other_writers(self, tmp_path):
        # compact() re-reads under the lock, so records appended by
        # another store instance survive the rewrite.
        store = ResultStore(tmp_path, namespace="ns")
        store.put("k1", self._record("k1", 1))
        other = ResultStore(tmp_path, namespace="ns")
        other.put("k2", self._record("k2", 2))
        stats = store.compact()
        assert stats.live_records == 2
        fresh = ResultStore(tmp_path, namespace="ns")
        assert "k1" in fresh and "k2" in fresh

    def test_stale_record_version_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path, namespace="ns")
        record = self._record("k", 1)
        record["version"] = -1  # written by an older record layout
        store.put("k", record)
        fresh = ResultStore(tmp_path, namespace="ns")
        assert "k" in fresh  # raw record still visible
        assert fresh.evaluation("k") is None  # but not trusted

    def test_default_namespace_is_fingerprint(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.namespace == code_fingerprint()
        assert store.path.parent.name == code_fingerprint()

    def test_refresh_sees_external_writes(self, tmp_path):
        store = ResultStore(tmp_path, namespace="ns")
        store.put("k1", self._record("k1", 1))
        other = ResultStore(tmp_path, namespace="ns")
        assert "k1" in other
        store.put("k2", self._record("k2", 2))
        assert "k2" not in other  # loaded index is a snapshot
        other.refresh()
        assert "k2" in other
