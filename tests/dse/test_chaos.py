"""The chaos matrix: injected faults against the self-healing executor.

Each test arms a deterministic :class:`~repro.faults.FaultPlan` and
drives a real campaign (or the shared driver over cheap synthetic
points) straight through it, asserting the run completes without human
intervention and the self-healing counters match the injected plan
exactly.  The acceptance pins: (1) a seeded plan with crashes and a
guaranteed hang finishes with every point evaluated and the retried
results bit-identical to a clean run; (2) a poison point is
quarantined on its first attempt; (3) a torn store write is
re-evaluated on resume and quarantined by ``compact``.
"""

import os
import signal
import time
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Any

import pytest

from repro import faults, obs
from repro.dse.executor import CampaignRun, drive_points, run_campaign
from repro.dse.retry import RetryPolicy
from repro.dse.spec import CampaignSpec
from repro.dse.store import ResultStore, scan_jsonl
from repro.obs.report import aggregate, iter_events


@pytest.fixture(autouse=True)
def _clean_faults():
    """No plan leaks into the next test (or the exported env)."""
    yield
    faults.configure(None)
    faults.clear_point_context()


@dataclass(frozen=True)
class ChaosPoint:
    """A picklable stand-in grid point; its name is its config key, so
    fault clauses can target it with ``key=<prefix>``."""

    name: str

    @property
    def label(self) -> str:
        return self.name

    def key(self) -> str:
        return self.name

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name}


def _ok_worker(point: ChaosPoint) -> tuple[str, dict[str, Any], float]:
    time.sleep(0.02)
    return point.key(), {"value": point.name}, 0.02


def _poison_worker(point: ChaosPoint) -> tuple[str, dict[str, Any], float]:
    if point.name.endswith("bad"):
        raise ValueError("deterministic bug")
    return _ok_worker(point)


def _points(prefix: str, n: int) -> list[ChaosPoint]:
    return [ChaosPoint(f"{prefix}{i}") for i in range(n)]


def _drive(points, store, *, jobs=1, policy=None, worker=_ok_worker,
           progress=None) -> CampaignRun:
    """drive_points over synthetic points with a real backing store."""
    run: CampaignRun = CampaignRun(
        spec=SimpleNamespace(name="chaos"), store_path=store.path,
        points=list(points), total=len(points))
    drive_points(
        points, run,
        jobs=jobs,
        worker=worker,
        cached_result=lambda p: (store.get(p.key()) or {}).get("result"),
        make_point_record=lambda p, payload, elapsed: {"result": payload},
        decode_result=lambda payload: payload,
        store_for=lambda p: store,
        policy=policy,
        progress=progress,
    )
    return run


_FAST = dict(backoff_s=0.01, jitter=0.0)


class TestSelfHealingDriver:
    def test_crash_on_every_first_attempt_retries_to_success(self, tmp_path):
        faults.configure("seed=7,crash:1:attempt<1")
        store = ResultStore(tmp_path)
        points = _points("crash-", 4)
        events = []

        def progress(done, total, label, *, cached, elapsed_s):
            events.append((done, label))

        run = _drive(points, store, policy=RetryPolicy(**_FAST),
                     progress=progress)
        assert not run.failed
        assert (run.evaluated, run.retried) == (4, 4)
        assert (run.timed_out, run.poisoned) == (0, 0)
        assert all(run.attempts[p.key()] == 2 for p in points)
        assert all("InjectedFault" in run.last_error[p.key()]
                   for p in points)
        assert "retried=4" in run.summary_line
        # A retried point reports exactly once (terminal outcome only).
        assert [done for done, _ in events] == [1, 2, 3, 4]
        # The record remembers the bumpy history.
        record = store.get(points[0].key())
        assert record["attempts"] == 2
        assert "InjectedFault" in record["last_error"]

    def test_exhausted_retry_budget_becomes_failure(self, tmp_path):
        faults.configure("seed=7,crash:1")  # every attempt crashes
        run = _drive(_points("stub-", 2), ResultStore(tmp_path),
                     policy=RetryPolicy(max_attempts=2, **_FAST))
        assert len(run.failed) == 2
        assert run.poisoned == 0  # transient classification, budget spent
        assert all(attempts == 2 for attempts in run.attempts.values())
        assert "ERROR" in run.summary_line

    def test_poison_quarantined_on_first_attempt(self, tmp_path):
        points = [ChaosPoint("pois-ok"), ChaosPoint("pois-bad")]
        run = _drive(points, ResultStore(tmp_path), worker=_poison_worker,
                     policy=RetryPolicy(**_FAST))
        assert run.poisoned == 1
        assert run.retried == 0
        assert run.attempts["pois-bad"] == 1, "poison must not be retried"
        assert "ValueError" in run.failed["pois-bad"]
        assert "pois-ok" in run.results
        assert "poisoned=1" in run.summary_line

    def test_die_in_pool_detected_as_worker_death(self, tmp_path):
        faults.configure("seed=7,die:key=die-1:attempt<1")
        points = _points("die-", 3)
        run = _drive(points, ResultStore(tmp_path), jobs=2,
                     policy=RetryPolicy(backoff_s=0.05, jitter=0.0))
        assert not run.failed
        assert (run.evaluated, run.retried) == (3, 1)
        assert run.timed_out == 0
        assert "worker-died" in run.last_error["die-1"]

    def test_hang_killed_by_timeout_watchdog(self, tmp_path):
        faults.configure("seed=7,hang_s=30,hang:key=hg-1:attempt<1")
        points = _points("hg-", 3)
        run = _drive(points, ResultStore(tmp_path), jobs=2,
                     policy=RetryPolicy(timeout_s=1.5, backoff_s=0.05,
                                        jitter=0.0))
        assert not run.failed
        assert (run.retried, run.timed_out) == (1, 1)
        assert "timeout" in run.last_error["hg-1"]
        assert "timed_out=1" in run.summary_line

    def test_hang_killed_by_heartbeat_silence(self, tmp_path):
        # No per-point deadline at all: the hung worker is caught purely
        # by its heartbeat going silent.
        faults.configure("seed=7,hang_s=30,hang:key=hb-1:attempt<1")
        points = _points("hb-", 3)
        run = _drive(points, ResultStore(tmp_path), jobs=2,
                     policy=RetryPolicy(timeout_s=None,
                                        heartbeat_timeout_s=2.0,
                                        backoff_s=0.05, jitter=0.0))
        assert not run.failed
        assert (run.retried, run.timed_out) == (1, 1)
        assert "heartbeat-silent" in run.last_error["hb-1"]

    def test_sigint_stops_gracefully_and_resumes(self, tmp_path):
        points = _points("int-", 3)

        def progress(done, total, label, *, cached, elapsed_s):
            if done == 1:
                os.kill(os.getpid(), signal.SIGINT)

        run = _drive(points, ResultStore(tmp_path), progress=progress)
        assert run.interrupted
        assert run.interrupt_signum == signal.SIGINT
        assert run.evaluated == 1
        assert run.remaining == 2
        assert "INTERRUPTED: 2 points" in run.summary_line
        assert "rerun the same command to resume" in run.summary_line
        # The completed result is on disk; a rerun picks up the rest.
        resumed = _drive(points, ResultStore(tmp_path))
        assert not resumed.interrupted
        assert (resumed.cached, resumed.evaluated) == (1, 2)

    def test_torn_write_heals_on_resume_and_compact_quarantines(
            self, tmp_path):
        faults.configure("seed=7,torn_write:key=torn-0:attempt<1")
        points = _points("torn-", 2)
        run = _drive(points, ResultStore(tmp_path),
                     policy=RetryPolicy(**_FAST))
        assert run.evaluated == 2  # the tear is invisible to the writer
        fresh = ResultStore(tmp_path)
        scan = scan_jsonl(fresh.path)
        assert len(scan.records) == 1, "the torn record must be lost"
        assert len(scan.corrupt) == 1
        assert "torn-0" not in fresh

        # Resume: only the torn point re-evaluates, and its re-append
        # (write ordinal 1, past the attempt<1 gate) lands intact.
        resumed = _drive(points, ResultStore(tmp_path),
                         policy=RetryPolicy(**_FAST))
        assert (resumed.cached, resumed.evaluated) == (1, 1)
        healed = ResultStore(tmp_path)
        assert len(scan_jsonl(healed.path).records) == 2

        # compact() preserves the fragment in a quarantine sidecar.
        healed.compact()
        sidecars = list(healed.path.parent.glob("corrupt-*.jsonl"))
        assert len(sidecars) == 1
        fragment = sidecars[0].read_text(encoding="utf-8").strip()
        assert scan.corrupt[0] == fragment
        final = scan_jsonl(healed.path)
        assert (len(final.records), final.corrupt) == (2, ())


class TestChaosCounters:
    def test_obs_counters_match_the_injected_plan(self, tmp_path):
        trace_root = tmp_path / "trace"
        obs.configure(trace_root)
        try:
            faults.configure("seed=7,crash:1:attempt<1")
            run = _drive(_points("cnt-", 3), ResultStore(tmp_path / "store"),
                         policy=RetryPolicy(**_FAST))
        finally:
            obs.configure(None)
            faults.configure(None)
        assert run.retried == 3
        counters = aggregate(iter_events(trace_root))["counters"]
        assert counters["faults.injected"]["total"] == 3
        assert counters["dse.points.retried"]["total"] == 3
        assert counters["dse.point.recovered"]["total"] == 3
        assert counters["dse.points.timed_out"]["total"] == 0
        assert counters["dse.points.poisoned"]["total"] == 0
        assert counters["dse.points.evaluated"]["total"] == 3


class TestRealCampaignChaos:
    """The ISSUE acceptance: a seeded chaos plan (every point crashes
    once, one targeted point hangs) against the real evaluation grid
    completes with zero human intervention and the retried results are
    bit-identical to a clean run."""

    def test_crash_plus_hang_campaign_is_bit_identical(self, tmp_path):
        spec = CampaignSpec(name="chaos", accelerators=("SCNN", "Stripes"),
                            networks=("cnn_lstm",))
        clean = run_campaign(spec, ResultStore(tmp_path / "clean"), jobs=2)
        assert not clean.failed

        hang_key = spec.points()[0].key()
        plan = faults.configure(
            f"seed=7,hang_s=30,hang:key={hang_key}:attempt<1,"
            f"crash:1:attempt<1")
        # The plan is its own oracle: every point is hit exactly once
        # on its first attempt (the hang clause shadows the crash for
        # the targeted key -- first match wins).
        injected = list(plan.planned(
            "eval", [p.key() for p in spec.points()]))
        assert len(injected) == 2
        assert {clause.kind for _, _, clause in injected} \
            == {"hang", "crash"}

        chaos = run_campaign(
            spec, ResultStore(tmp_path / "chaos"), jobs=2,
            policy=RetryPolicy(timeout_s=6.0, backoff_s=0.05, jitter=0.0))
        assert not chaos.failed
        assert chaos.retried == 2, "every point needed its retry"
        assert chaos.timed_out == 1, "exactly the planned hang"
        assert chaos.poisoned == 0
        assert chaos.results == clean.results, \
            "retried results must be bit-identical to the clean run"
        # The store remembers which point had the bumpy ride.
        record = ResultStore(tmp_path / "chaos").get(hang_key)
        assert record["attempts"] == 2
