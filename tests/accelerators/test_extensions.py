"""Tests for dense-mode precision scaling and custom-workload evaluation."""

import numpy as np
import pytest

from repro.accelerators.bitwave import BitWave
from repro.accelerators.huaa import HUAA

# evaluate_network's deprecation shim is itself under test below.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")
from repro.sparsity.stats import compute_layer_stats
from repro.workloads.nets import bert_base_layers
from repro.workloads.spec import LayerSpec


def _stats():
    rng = np.random.default_rng(21)
    w = np.clip(np.round(rng.laplace(0, 9, 4096)), -127, 127)
    return compute_layer_stats(w.astype(np.int8))


def _conv():
    return LayerSpec("t", "n", "conv", k=64, c=64, ox=28, oy=28, fx=3, fy=3)


class TestDensePrecisionScaling:
    def test_precision_sets_cycles_per_group(self):
        acc = BitWave(columns="dense", bitflip=False, dense_precision=4)
        for entry in acc.bw_sus:
            assert acc.cycles_per_group(_stats(), entry) == 4.0

    def test_precision_sets_weight_cr(self):
        acc = BitWave(columns="dense", bitflip=False, dense_precision=2)
        assert acc.weight_cr(_conv(), _stats(), acc.sus[0]) == 4.0

    def test_lower_precision_is_faster(self):
        stats = _stats()
        spec = _conv()
        results = []
        for bits in (8, 4, 2):
            acc = BitWave(columns="dense", bitflip=False,
                          dense_precision=bits)
            su = acc.select_su(spec, stats)
            results.append(acc.compute_cycles(spec, stats, su))
        assert results == sorted(results, reverse=True)

    def test_precision_requires_dense_columns(self):
        with pytest.raises(ValueError, match="dense mode"):
            BitWave(columns="sm", bitflip=False, dense_precision=4)

    def test_invalid_precision(self):
        with pytest.raises(ValueError, match="dense_precision"):
            BitWave(columns="dense", bitflip=False, dense_precision=0)

    def test_full_precision_default_unchanged(self):
        dense = BitWave(columns="dense", bitflip=False)
        assert dense.dense_precision == 8
        assert dense.weight_cr(_conv(), _stats(), dense.sus[0]) == 1.0


class TestEvaluateWorkload:
    def test_custom_token_count(self):
        stats = HUAA().layer_stats("bert_base")
        small = HUAA().evaluate_workload(
            bert_base_layers(tokens=4), stats, "bert@4")
        large = HUAA().evaluate_workload(
            bert_base_layers(tokens=64), stats, "bert@64")
        assert large.total_macs == 16 * small.total_macs
        assert large.total_cycles > small.total_cycles
        assert small.network == "bert@4"

    def test_workload_label_propagates(self):
        stats = HUAA().layer_stats("bert_base")
        ev = HUAA().evaluate_workload(
            bert_base_layers(tokens=4)[:2], stats, "slice")
        assert ev.network == "slice"
        assert len(ev.layers) == 2

    def test_evaluate_network_is_workload_of_full_table(self):
        a = HUAA().evaluate_network("cnn_lstm")
        from repro.workloads.nets import network_layers

        b = HUAA().evaluate_workload(
            network_layers("cnn_lstm"), HUAA().layer_stats("cnn_lstm"),
            "cnn_lstm")
        assert a.total_cycles == b.total_cycles
        assert a.total_energy_pj == b.total_energy_pj
