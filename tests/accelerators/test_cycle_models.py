"""Unit tests for the per-accelerator cycle/energy hooks."""

import numpy as np
import pytest

from repro.accelerators.bitlet import (
    Bitlet,
    expected_max_significance_population,
)
from repro.accelerators.bitwave import (
    BitWave,
    DENSE_SU,
    TABLE_I,
    bitflip_targets_for,
)
from repro.accelerators.pragmatic import Pragmatic
from repro.accelerators.scnn import SCNN, load_imbalance, zre_cr_from_sparsity
from repro.accelerators.stripes import Stripes
from repro.sparsity.stats import compute_layer_stats
from repro.workloads.spec import LayerSpec


def _stats(rng_scale=9.0, n=4096):
    rng = np.random.default_rng(11)
    w = np.clip(np.round(rng.laplace(0, rng_scale, n)), -127, 127)
    return compute_layer_stats(w.astype(np.int8))


def _conv():
    return LayerSpec("t", "n", "conv", k=64, c=64, ox=28, oy=28, fx=3, fy=3)


def _fc(ox=4):
    return LayerSpec("t", "n", "fc", k=768, c=768, ox=ox)


class TestStripes:
    def test_always_8_cycles_per_mac(self):
        acc = Stripes()
        spec = _conv()
        su = acc.sus[0]
        cycles = acc.compute_cycles(spec, _stats(), su)
        assert cycles == pytest.approx(
            spec.macs * 8 / su.macs_per_cycle(spec))


class TestPragmatic:
    def test_cpm_below_8_above_mean(self):
        acc = Pragmatic()
        stats = _stats()
        cpm = acc.cycles_per_mac(stats)
        assert stats.essential_bits_mean < cpm < 8.0

    def test_faster_than_stripes(self):
        spec = _conv()
        stats = _stats()
        prag = Pragmatic()
        stripes = Stripes()
        assert prag.compute_cycles(spec, stats, prag.sus[0]) < \
            stripes.compute_cycles(spec, stats, stripes.sus[0])


class TestBitlet:
    def test_expected_max_dense_is_m(self):
        occupancy = np.ones(8)
        assert expected_max_significance_population(occupancy, 8) == \
            pytest.approx(8.0)

    def test_expected_max_zero_occupancy(self):
        assert expected_max_significance_population(np.zeros(8), 8) == 0.0

    def test_teeming_significances_dominate(self):
        """One dense significance pins the cycle count (the paper's
        'bit-significance teeming with non-zero bits' effect)."""
        skewed = np.array([0.05] * 7 + [0.95])
        uniform = np.full(8, 0.4)
        m = 8
        assert expected_max_significance_population(skewed, m) > \
            expected_max_significance_population(uniform, m) * 0.9

    def test_metadata_overhead(self):
        assert Bitlet().sram_weight_overhead() > 1.0


class TestScnnHelpers:
    def test_zre_cr_dense_below_one(self):
        assert zre_cr_from_sparsity(0.05) < 1.0

    def test_zre_cr_grows_with_sparsity(self):
        crs = [zre_cr_from_sparsity(s) for s in (0.0, 0.3, 0.6, 0.9)]
        assert crs == sorted(crs)

    def test_imbalance_at_least_one(self):
        for s in (0.0, 0.05, 0.5, 0.95):
            assert load_imbalance(s) >= 1.0

    def test_imbalance_grows_with_sparsity(self):
        # Sparser tiles have relatively more spread between PEs.
        assert load_imbalance(0.9) > load_imbalance(0.1)

    def test_fc_dataflow_degeneracy(self):
        scnn = SCNN()
        assert scnn.dataflow_efficiency(_fc()) < \
            scnn.dataflow_efficiency(_conv())

    def test_pointwise_penalized(self):
        scnn = SCNN()
        pw = LayerSpec("t", "n", "pwconv", k=96, c=16, ox=56, oy=56)
        assert scnn.dataflow_efficiency(pw) == pytest.approx(
            scnn.dataflow_efficiency(_conv()) / 4)


class TestBitWaveConfig:
    def test_variant_names(self):
        assert BitWave("fixed", "dense", False).name == "BitWave-Dense"
        assert BitWave("dynamic", "dense", False).name == "BitWave+DF"
        assert BitWave("dynamic", "sm", False).name == "BitWave+DF+SM"
        assert BitWave("dynamic", "sm", True).name == "BitWave+DF+SM+BF"

    def test_bitflip_requires_sm(self):
        with pytest.raises(ValueError, match="sign-magnitude"):
            BitWave("dynamic", "dense", True)

    def test_invalid_dataflow(self):
        with pytest.raises(ValueError, match="dataflow"):
            BitWave("adaptive", "sm", True)

    def test_table_i_has_7_sus(self):
        assert len(TABLE_I) == 7
        names = [entry.name for entry in TABLE_I]
        assert names == [f"SU{i}" for i in range(1, 8)]

    def test_table_i_bandwidths(self):
        """Table I: W BW = Cu x Ku bits/cycle for the conv SUs."""
        for entry in TABLE_I[:3]:
            cu = entry.su.factors["C"]
            ku = entry.su.factors["K"]
            assert entry.weight_bw_bits == cu * ku

    def test_group_size_tied_to_cu(self):
        for entry in TABLE_I[:6]:
            assert entry.group_size == entry.su.factors["C"]

    def test_sync_groups_segment_level(self):
        assert TABLE_I[0].sync_groups == 8   # G=8 -> 64/8
        assert TABLE_I[2].sync_groups == 2   # G=32
        assert TABLE_I[6].sync_groups == 1   # G=64

    def test_dense_su_lanes(self):
        assert DENSE_SU.su.lanes == 4096


class TestBitWaveCycles:
    def test_dense_columns_cost_8(self):
        acc = BitWave("dynamic", "dense", False)
        stats = _stats()
        for entry in acc.bw_sus:
            assert acc.cycles_per_group(stats, entry) == 8.0

    def test_sm_skips_columns(self):
        acc = BitWave("dynamic", "sm", False)
        stats = _stats()
        entry = acc.bw_sus[0]
        assert acc.cycles_per_group(stats, entry) < 8.0

    def test_bitflip_caps_cycles(self):
        stats = _stats().with_bitflip(5)
        acc = BitWave("dynamic", "sm", True)
        entry = acc.bw_sus[0]
        assert acc.cycles_per_group(stats, entry) <= 3.0

    def test_weight_cr_dense_is_one(self):
        acc = BitWave("dynamic", "dense", False)
        assert acc.weight_cr(_conv(), _stats(), acc.sus[0]) == 1.0

    def test_weight_cr_sm_uses_bcs(self):
        acc = BitWave("dynamic", "sm", False)
        stats = _stats()
        assert acc.weight_cr(_conv(), stats, acc.sus[0]) == \
            stats.bcs_cr[8]

    def test_foreign_su_rejected(self):
        acc = BitWave("dynamic", "sm", False)
        with pytest.raises(ValueError, match="not part"):
            acc.weight_cr(_conv(), _stats(), DENSE_SU.su)


class TestBitflipTargets:
    def test_first_pattern_wins_for_bert(self):
        names = [f"Layer.{i}.ffn.output" for i in range(5)]
        targets = bitflip_targets_for("bert_base", names)
        assert targets["Layer.1.ffn.output"] == 2
        assert targets["Layer.4.ffn.output"] == 5

    def test_resnet_conv1_untouched(self):
        targets = bitflip_targets_for(
            "resnet18", ["conv1", "layer4.0.conv1", "fc"])
        assert targets["conv1"] == 0
        assert targets["layer4.0.conv1"] == 5

    def test_unknown_network_empty(self):
        assert bitflip_targets_for("vgg", ["a"]) == {}
