"""Integration tests pinning the paper's evaluation *shape* (Section V).

These run the full analytical pipeline on all four benchmark networks
and assert the orderings/factors the paper reports -- who wins, by
roughly what magnitude, and where each technique pays off.  Absolute
numbers differ from the paper (our substrate is synthetic, DESIGN.md §2);
the assertions target the robust qualitative claims.
"""

import pytest

from repro.accelerators import SOTA_ACCELERATORS, build_accelerator
from repro.accelerators.bitwave import BitWave
from repro.eval.backends import model_network_evaluation
from repro.workloads.nets import NETWORKS


@pytest.fixture(scope="module")
def evaluations():
    results = {}
    for name in SOTA_ACCELERATORS:
        acc = build_accelerator(name)
        for net in NETWORKS:
            results[(name, net)] = model_network_evaluation(acc, net)
    return results


@pytest.fixture(scope="module")
def breakdown():
    variants = {
        "dense": BitWave("fixed", "dense", False),
        "df": BitWave("dynamic", "dense", False),
        "df_sm": BitWave("dynamic", "sm", False),
        "df_sm_bf": BitWave("dynamic", "sm", True),
    }
    return {
        (tag, net): model_network_evaluation(acc, net)
        for tag, acc in variants.items()
        for net in NETWORKS
    }


class TestFig14Speedup:
    def test_bitwave_fastest_everywhere(self, evaluations):
        for net in NETWORKS:
            bw = evaluations[("BitWave", net)].total_cycles
            for other in SOTA_ACCELERATORS:
                assert bw <= evaluations[(other, net)].total_cycles

    def test_large_gains_on_low_value_sparsity_nets(self, evaluations):
        """Paper: 10.1x / 13.25x vs SCNN on CNN-LSTM / BERT."""
        for net in ("cnn_lstm", "bert_base"):
            ratio = evaluations[("SCNN", net)].total_cycles / \
                evaluations[("BitWave", net)].total_cycles
            assert ratio > 8.0

    def test_beats_bitlet_clearly(self, evaluations):
        """Paper: BitWave outperforms Bitlet by over 2x (we accept 1.4x
        on the conv nets where our synthetic sparsity is conservative)."""
        for net in NETWORKS:
            ratio = evaluations[("Bitlet", net)].total_cycles / \
                evaluations[("BitWave", net)].total_cycles
            assert ratio > 1.4

    def test_huaa_strongest_baseline_on_mobilenet(self, evaluations):
        """Dynamic dataflow is what MobileNetV2's shape diversity needs."""
        cycles = {n: evaluations[(n, "mobilenetv2")].total_cycles
                  for n in SOTA_ACCELERATORS if n != "BitWave"}
        assert min(cycles, key=cycles.get) == "HUAA"


class TestFig15Energy:
    def test_bitwave_lowest_energy_everywhere(self, evaluations):
        for net in NETWORKS:
            bw = evaluations[("BitWave", net)].total_energy_pj
            for other in SOTA_ACCELERATORS:
                assert bw <= evaluations[(other, net)].total_energy_pj

    def test_scnn_worst_on_weight_heavy_networks(self, evaluations):
        """Paper: SCNN's ZRE indexing explodes memory traffic; e.g.
        Bert-Base costs 13.23x more energy than BitWave (we reproduce
        the ordering with a >2.5x factor)."""
        for net in ("cnn_lstm", "bert_base"):
            energies = {n: evaluations[(n, net)].total_energy_pj
                        for n in SOTA_ACCELERATORS}
            assert max(energies, key=energies.get) == "SCNN"
            assert energies["SCNN"] / energies["BitWave"] > 2.5


class TestFig16EnergyBreakdown:
    def test_dram_dominates_weight_intensive_nets(self, evaluations):
        """Paper: 'DRAM energy is the dominant factor, especially for
        weight-intensive networks'."""
        for net in ("resnet18", "cnn_lstm", "bert_base"):
            shares = evaluations[("BitWave", net)].energy_shares()
            assert shares["dram"] > 0.5

    def test_shares_sum_to_one(self, evaluations):
        for net in NETWORKS:
            shares = evaluations[("BitWave", net)].energy_shares()
            assert sum(shares.values()) == pytest.approx(1.0)


class TestFig17Efficiency:
    def test_bitwave_most_efficient(self, evaluations):
        for net in NETWORKS:
            bw = evaluations[("BitWave", net)].efficiency_tops_per_w
            for other in SOTA_ACCELERATORS:
                assert bw >= evaluations[(other, net)].efficiency_tops_per_w

    def test_about_2x_over_huaa_on_bert(self, evaluations):
        """Paper: 2.04x higher energy efficiency than HUAA on Bert-Base."""
        ratio = evaluations[("BitWave", "bert_base")].efficiency_tops_per_w / \
            evaluations[("HUAA", "bert_base")].efficiency_tops_per_w
        assert 1.5 < ratio < 3.0


class TestFig13Breakdown:
    def test_each_technique_helps(self, breakdown):
        """Dense -> +DF -> +SM -> +BF is monotone in speed."""
        for net in NETWORKS:
            dense = breakdown[("dense", net)].total_cycles
            df = breakdown[("df", net)].total_cycles
            sm = breakdown[("df_sm", net)].total_cycles
            bf = breakdown[("df_sm_bf", net)].total_cycles
            assert df <= dense * 1.001
            assert sm <= df * 1.001
            assert bf <= sm * 1.001

    def test_df_helps_mobilenet_most(self, breakdown):
        """Paper: 2.57x from dataflow on MobileNetV2's diverse layers."""
        gains = {}
        for net in NETWORKS:
            gains[net] = breakdown[("dense", net)].total_cycles / \
                breakdown[("df", net)].total_cycles
        assert max(gains, key=gains.get) == "mobilenetv2"
        assert gains["mobilenetv2"] > 2.0

    def test_df_barely_moves_bert_and_cnn_lstm(self, breakdown):
        """Paper: 'CNN-LSTM and Bert-Base are less influenced by the
        dynamic dataflow due to their less diverse layer shapes'."""
        for net in ("cnn_lstm", "bert_base"):
            gain = breakdown[("dense", net)].total_cycles / \
                breakdown[("df", net)].total_cycles
            assert gain < 1.3

    def test_sm_gain_small_on_bert(self, breakdown):
        """Paper: SM alone is only 1.06x on Bert-Base."""
        gain = breakdown[("df", "bert_base")].total_cycles / \
            breakdown[("df_sm", "bert_base")].total_cycles
        assert 1.0 <= gain < 1.3

    def test_bf_large_on_bert(self, breakdown):
        """Paper: Bit-Flip unlocks an additional 2.67x on Bert-Base."""
        gain = breakdown[("df_sm", "bert_base")].total_cycles / \
            breakdown[("df_sm_bf", "bert_base")].total_cycles
        assert gain > 1.6


class TestEvaluationPlumbing:
    def test_unknown_accelerator(self):
        with pytest.raises(ValueError, match="unknown accelerator"):
            build_accelerator("TPU")

    def test_layer_results_cover_network(self, evaluations):
        ev = evaluations[("BitWave", "resnet18")]
        assert len(ev.layers) == 21

    def test_runtime_positive(self, evaluations):
        for ev in evaluations.values():
            assert ev.runtime_s > 0
            assert ev.effective_tops > 0
