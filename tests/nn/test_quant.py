"""Tests for the quantization package."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quant import (
    MinMaxObserver,
    PercentileObserver,
    QTensor,
    dequantize,
    ptq_reduce_bits,
    quantize_symmetric,
)


class TestQuantizeSymmetric:
    def test_range_maps_to_127(self):
        q = quantize_symmetric(np.array([-2.0, 0.0, 2.0]))
        assert q.values.tolist() == [-127, 0, 127]

    def test_never_produces_minus_128(self):
        rng = np.random.default_rng(0)
        q = quantize_symmetric(rng.normal(0, 1, 10000))
        assert q.values.min() >= -127

    def test_scale_positive_for_zero_tensor(self):
        q = quantize_symmetric(np.zeros(4))
        assert q.scale > 0

    def test_quantization_error_bounded_by_half_step(self):
        rng = np.random.default_rng(1)
        w = rng.normal(0, 1, 1000)
        q = quantize_symmetric(w)
        err = np.abs(q.dequantize() - w)
        assert err.max() <= q.scale / 2 + 1e-9

    @given(st.floats(0.01, 100.0))
    def test_scale_proportional_to_amax(self, amax):
        q = quantize_symmetric(np.array([0.0]), amax=amax)
        assert q.scale == pytest.approx(amax / 127)


class TestQTensor:
    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError, match="scale"):
            QTensor(np.zeros(2, dtype=np.int8), 0.0)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError, match="bits"):
            QTensor(np.zeros(2, dtype=np.int8), 1.0, bits=9)

    def test_with_values_shape_checked(self):
        q = QTensor(np.zeros(4, dtype=np.int8), 1.0)
        with pytest.raises(ValueError, match="shape"):
            q.with_values(np.zeros(5, dtype=np.int8))

    def test_dequantize(self):
        q = QTensor(np.array([2, -4], dtype=np.int8), 0.5)
        assert dequantize(q).tolist() == [1.0, -2.0]


class TestPtqReduceBits:
    def test_8_bits_is_identity(self):
        q = quantize_symmetric(np.random.default_rng(2).normal(0, 1, 64))
        assert ptq_reduce_bits(q, 8) is q

    def test_values_snap_to_coarse_grid(self):
        q = QTensor(np.array([37, -55, 100], dtype=np.int8), 1.0)
        out = ptq_reduce_bits(q, 4)
        assert np.all(out.values % 16 == 0)
        assert out.bits == 4

    def test_monotone_error_in_bits(self):
        rng = np.random.default_rng(3)
        q = quantize_symmetric(rng.normal(0, 1, 2048))
        errs = []
        for bits in (8, 6, 4, 2):
            out = ptq_reduce_bits(q, bits)
            errs.append(float(np.abs(
                out.values.astype(int) - q.values.astype(int)).mean()))
        assert errs == sorted(errs)

    def test_invalid_bits(self):
        q = QTensor(np.zeros(2, dtype=np.int8), 1.0)
        with pytest.raises(ValueError, match="bits"):
            ptq_reduce_bits(q, 0)

    def test_reduced_values_stay_int8_range(self):
        q = QTensor(np.array([127, -127], dtype=np.int8), 1.0)
        for bits in range(1, 8):
            out = ptq_reduce_bits(q, bits)
            assert out.values.max() <= 127
            assert out.values.min() >= -127


class TestObservers:
    def test_minmax_tracks_amax(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, -3.0]))
        obs.observe(np.array([2.0]))
        assert obs.range() == 3.0

    def test_minmax_unobserved_raises(self):
        with pytest.raises(RuntimeError, match="no tensors"):
            MinMaxObserver().range()

    def test_percentile_clips_outliers(self):
        rng = np.random.default_rng(4)
        data = rng.normal(0, 1, 100_000)
        data[0] = 1000.0
        obs = PercentileObserver(percentile=99.9)
        obs.observe(data)
        assert obs.range() < 10.0

    def test_percentile_validates_argument(self):
        with pytest.raises(ValueError, match="percentile"):
            PercentileObserver(percentile=0.0)

    def test_percentile_unobserved_raises(self):
        with pytest.raises(RuntimeError, match="no tensors"):
            PercentileObserver().range()
