"""Tests for multi-head attention and the transformer encoder block."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention, TransformerEncoderLayer
from repro.utils.rng import seeded_rng


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        mhsa = MultiHeadSelfAttention(16, 4, seed=("t", 1))
        x = np.zeros((2, 5, 16), dtype=np.float32)
        assert mhsa.forward(x).shape == (2, 5, 16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            MultiHeadSelfAttention(10, 3)

    def test_permutation_equivariance(self):
        """Self-attention without positional info commutes with token
        permutations -- a strong functional correctness check."""
        mhsa = MultiHeadSelfAttention(8, 2, seed=("t", 2))
        x = seeded_rng("attn-perm").normal(0, 1, (1, 6, 8)).astype(np.float32)
        perm = np.array([3, 1, 5, 0, 4, 2])
        out = mhsa.forward(x)
        out_perm = mhsa.forward(x[:, perm, :])
        np.testing.assert_allclose(out_perm, out[:, perm, :], atol=1e-5)

    def test_projections_exposed(self):
        mhsa = MultiHeadSelfAttention(8, 2, seed=("t", 3))
        assert set(mhsa.projections()) == {"query", "key", "value", "output"}

    def test_attention_mixes_tokens(self):
        mhsa = MultiHeadSelfAttention(8, 2, seed=("t", 4))
        x = seeded_rng("attn-mix").normal(0, 1, (1, 4, 8)).astype(np.float32)
        y = x.copy()
        y[0, 0] += 10.0  # perturb one token
        out_x = mhsa.forward(x)
        out_y = mhsa.forward(y)
        # Other tokens' outputs must change too (global mixing).
        assert not np.allclose(out_x[0, 1:], out_y[0, 1:])


class TestTransformerEncoderLayer:
    def test_output_shape(self):
        block = TransformerEncoderLayer(16, 4, 32, seed=("t", 5))
        x = np.zeros((2, 3, 16), dtype=np.float32)
        assert block.forward(x).shape == (2, 3, 16)

    def test_six_quantized_sublayers(self):
        block = TransformerEncoderLayer(8, 2, 16, seed=("t", 6))
        subs = block.quantized_sublayers()
        assert len(subs) == 6
        assert "ffn.intermediate" in subs
        assert "attention.query" in subs

    def test_output_layernormed(self):
        block = TransformerEncoderLayer(16, 4, 32, seed=("t", 7))
        x = seeded_rng("enc").normal(0, 3, (2, 4, 16)).astype(np.float32)
        out = block.forward(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)

    def test_deterministic(self):
        a = TransformerEncoderLayer(8, 2, 16, seed=("same",))
        b = TransformerEncoderLayer(8, 2, 16, seed=("same",))
        x = np.ones((1, 2, 8), dtype=np.float32)
        np.testing.assert_array_equal(a.forward(x), b.forward(x))
