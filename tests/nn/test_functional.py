"""Tests for the NumPy operators, pinned against direct reference code."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.utils.rng import seeded_rng


def _direct_conv2d(x, w, stride, padding):
    """O(n^7) reference convolution."""
    b, c, h, wd = x.shape
    k, _, fy, fx = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - fy) // stride + 1
    ow = (wd + 2 * padding - fx) // stride + 1
    out = np.zeros((b, k, oh, ow))
    for bi in range(b):
        for ki in range(k):
            for oy in range(oh):
                for ox in range(ow):
                    patch = xp[bi, :, oy * stride:oy * stride + fy,
                               ox * stride:ox * stride + fx]
                    out[bi, ki, oy, ox] = (patch * w[ki]).sum()
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 3)])
    def test_matches_direct(self, stride, padding):
        rng = seeded_rng("conv-test", stride, padding)
        x = rng.normal(0, 1, (2, 3, 9, 9))
        w = rng.normal(0, 1, (4, 3, 3, 3))
        got = F.conv2d(x, w, stride=stride, padding=padding)
        want = _direct_conv2d(x, w, stride, padding)
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_1x1_conv_is_channel_matmul(self):
        rng = seeded_rng("pw-test")
        x = rng.normal(0, 1, (1, 8, 4, 4))
        w = rng.normal(0, 1, (16, 8, 1, 1))
        got = F.conv2d(x, w)
        want = np.einsum("kc,bchw->bkhw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_bias_added_per_channel(self):
        x = np.zeros((1, 2, 3, 3))
        w = np.zeros((2, 2, 1, 1))
        bias = np.array([1.0, -2.0])
        out = F.conv2d(x, w, bias=bias)
        assert np.all(out[0, 0] == 1.0)
        assert np.all(out[0, 1] == -2.0)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channels"):
            F.conv2d(np.zeros((1, 3, 4, 4)), np.zeros((2, 4, 1, 1)))

    def test_output_shape(self):
        out = F.conv2d(np.zeros((1, 3, 224, 224)), np.zeros((64, 3, 7, 7)),
                       stride=2, padding=3)
        assert out.shape == (1, 64, 112, 112)


class TestDepthwiseConv2d:
    def test_matches_per_channel_conv(self):
        rng = seeded_rng("dw-test")
        x = rng.normal(0, 1, (2, 4, 8, 8))
        w = rng.normal(0, 1, (4, 1, 3, 3))
        got = F.depthwise_conv2d(x, w, stride=1, padding=1)
        for c in range(4):
            want = _direct_conv2d(x[:, c:c + 1], w[c:c + 1], 1, 1)
            np.testing.assert_allclose(got[:, c:c + 1], want, rtol=1e-10)

    def test_rejects_grouped_weight(self):
        with pytest.raises(ValueError, match="singleton"):
            F.depthwise_conv2d(np.zeros((1, 4, 8, 8)), np.zeros((4, 2, 3, 3)))

    def test_channel_mismatch(self):
        with pytest.raises(ValueError, match="channels"):
            F.depthwise_conv2d(np.zeros((1, 3, 8, 8)), np.zeros((4, 1, 3, 3)))


class TestPooling:
    def test_maxpool_known(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.max_pool2d(x, 2, 2)
        assert out[0, 0].tolist() == [[5, 7], [13, 15]]

    def test_maxpool_padding_uses_neg_inf(self):
        x = -np.ones((1, 1, 2, 2))
        out = F.max_pool2d(x, 3, 2, padding=1)
        assert out.max() == -1.0  # padding must never win

    def test_avgpool_known(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(x, 2, 2)
        assert out[0, 0].tolist() == [[2.5, 4.5], [10.5, 12.5]]

    def test_global_avg_pool(self):
        x = np.arange(8, dtype=float).reshape(1, 2, 2, 2)
        out = F.global_avg_pool2d(x)
        assert out.tolist() == [[1.5, 5.5]]


class TestNormalization:
    def test_batchnorm_identity_params(self):
        x = seeded_rng("bn").normal(0, 1, (2, 3, 4, 4))
        out = F.batch_norm2d(x, np.zeros(3), np.ones(3) - 1e-5,
                             np.ones(3), np.zeros(3))
        np.testing.assert_allclose(out, x, rtol=1e-4)

    def test_layernorm_zero_mean_unit_var(self):
        x = seeded_rng("ln").normal(3, 5, (2, 8))
        out = F.layer_norm(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(out.mean(axis=-1), 0, atol=1e-6)
        np.testing.assert_allclose(out.var(axis=-1), 1, atol=1e-3)


class TestActivations:
    def test_relu(self):
        assert F.relu(np.array([-1.0, 2.0])).tolist() == [0.0, 2.0]

    def test_relu6_clips(self):
        assert F.relu6(np.array([-1.0, 3.0, 9.0])).tolist() == [0.0, 3.0, 6.0]

    def test_gelu_at_zero(self):
        assert F.gelu(np.array([0.0]))[0] == 0.0

    def test_gelu_large_positive_identity(self):
        np.testing.assert_allclose(F.gelu(np.array([10.0])), [10.0], rtol=1e-4)

    def test_sigmoid_stable_at_extremes(self):
        out = F.sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.isfinite(out).all()

    def test_softmax_rows_sum_to_one(self):
        x = seeded_rng("sm").normal(0, 10, (4, 7))
        np.testing.assert_allclose(F.softmax(x).sum(axis=-1), 1.0, rtol=1e-9)

    def test_softmax_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100), rtol=1e-9)


class TestLinear:
    def test_matches_matmul(self):
        rng = seeded_rng("lin")
        x = rng.normal(0, 1, (5, 8))
        w = rng.normal(0, 1, (3, 8))
        b = rng.normal(0, 1, 3)
        np.testing.assert_allclose(F.linear(x, w, b), x @ w.T + b, rtol=1e-12)

    def test_batched_leading_dims(self):
        x = np.ones((2, 4, 8))
        w = np.ones((3, 8))
        assert F.linear(x, w).shape == (2, 4, 3)
