"""Tests for layer classes, the Model registry and weight round-trips."""

import numpy as np
import pytest

from repro.nn.layers import Conv2d, DepthwiseConv2d, Embedding, Linear
from repro.nn.lstm import LSTM
from repro.nn.model import Model


class TestConv2dLayer:
    def test_packed_roundtrip(self):
        conv = Conv2d(8, 4, 3, seed=("t", 1))
        packed = conv.packed_weights()
        original = conv.qweight.values.copy()
        conv.set_packed_weights(packed)
        assert np.array_equal(conv.qweight.values, original)

    def test_packed_group_axis_is_input_channels(self):
        conv = Conv2d(8, 4, 3, seed=("t", 2))
        packed = conv.packed_weights()
        # Row k, first 8 entries = weights of kernel k at (fy=0, fx=0)
        # across all 8 input channels.
        assert packed.shape == (4, 8 * 9)
        np.testing.assert_array_equal(
            packed[0, :8], conv.qweight.values[0, :, 0, 0])

    def test_forward_shape(self):
        conv = Conv2d(3, 16, 3, stride=2, padding=1, seed=("t", 3))
        out = conv.forward(np.zeros((2, 3, 8, 8), dtype=np.float32))
        assert out.shape == (2, 16, 4, 4)

    def test_weights_are_int8_scaled(self):
        conv = Conv2d(4, 4, 1, seed=("t", 4))
        w = conv.weight
        np.testing.assert_allclose(
            w, conv.qweight.values * np.float32(conv.qweight.scale))


class TestDepthwiseLayer:
    def test_packed_roundtrip(self):
        dw = DepthwiseConv2d(16, 3, seed=("t", 5))
        original = dw.qweight.values.copy()
        dw.set_packed_weights(dw.packed_weights())
        assert np.array_equal(dw.qweight.values, original)

    def test_forward_preserves_channels(self):
        dw = DepthwiseConv2d(6, 3, padding=1, seed=("t", 6))
        out = dw.forward(np.zeros((1, 6, 5, 5), dtype=np.float32))
        assert out.shape == (1, 6, 5, 5)


class TestLinearLayer:
    def test_packed_is_weight_matrix(self):
        fc = Linear(8, 3, seed=("t", 7))
        assert np.array_equal(fc.packed_weights(), fc.qweight.values)

    def test_set_packed_rejects_bad_size(self):
        fc = Linear(8, 3, seed=("t", 8))
        with pytest.raises(ValueError):
            fc.set_packed_weights(np.zeros((2, 8), dtype=np.int8))


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, seed=("t", 9))
        out = emb.forward(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out[0, 0], emb.weight[1])


class TestLSTM:
    def test_output_shape(self):
        lstm = LSTM(8, 16, num_layers=2, seed=("t", 10))
        out = lstm.forward(np.zeros((3, 5, 8), dtype=np.float32))
        assert out.shape == (3, 5, 16)

    def test_zero_weights_zero_input_gives_sigmoid_bias_dynamics(self):
        lstm = LSTM(4, 4, num_layers=1, seed=("t", 11))
        layer = lstm.layers[0]
        layer.set_packed_weights(
            np.zeros_like(layer.packed_weights()))
        out = lstm.forward(np.zeros((1, 3, 4), dtype=np.float32))
        # With zero weights, gates depend on bias only; forget bias 1.0,
        # other gates 0 -> i=0.5, g=0, so c stays 0 and h stays 0.
        np.testing.assert_allclose(out, 0.0, atol=1e-7)

    def test_deterministic_given_seed(self):
        a = LSTM(4, 8, seed=("same",))
        b = LSTM(4, 8, seed=("same",))
        x = np.ones((1, 2, 4), dtype=np.float32)
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_state_propagates_through_time(self):
        lstm = LSTM(2, 4, seed=("t", 12))
        x = np.ones((1, 4, 2), dtype=np.float32)
        out = lstm.forward(x)
        # Hidden state must evolve over constant input.
        assert not np.allclose(out[0, 0], out[0, -1])


class TestModelRegistry:
    def _model(self) -> Model:
        m = Model("toy")
        m.add("fc1", Linear(4, 4, seed=("m", 1)))
        m.add("fc2", Linear(4, 2, seed=("m", 2)))
        return m

    def test_duplicate_name_rejected(self):
        m = self._model()
        with pytest.raises(ValueError, match="duplicate"):
            m.add("fc1", Linear(2, 2))

    def test_weights_roundtrip(self):
        m = self._model()
        snapshot = m.weights_int8()
        m.set_weights_int8(snapshot)
        for name, packed in m.weights_int8().items():
            assert np.array_equal(packed, snapshot[name])

    def test_set_unknown_layer_raises(self):
        m = self._model()
        with pytest.raises(KeyError, match="unknown"):
            m.set_weights_int8({"nope": np.zeros((2, 2), dtype=np.int8)})

    def test_total_weights(self):
        m = self._model()
        assert m.total_weights == 4 * 4 + 4 * 2

    def test_contains(self):
        m = self._model()
        assert "fc1" in m
        assert "fc9" not in m
