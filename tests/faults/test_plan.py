"""The fault-injection framework: spec grammar, deterministic dice,
and the runtime hooks.

The acceptance pins: (1) a spec string round-trips through its
canonical spelling, so the plan a worker process reconstructs from
``$REPRO_FAULTS`` is the plan the parent activated; (2) every
injection decision is a pure function of ``(seed, kind, site, key,
attempt, call)`` -- the ``planned()`` oracle enumerates exactly what a
chaos run will inject.
"""

import os
import time

import pytest

from repro import faults
from repro.faults import (
    FAULTS_ENV,
    FaultClause,
    FaultPlan,
    InjectedFault,
)


@pytest.fixture(autouse=True)
def _clean_faults():
    """Every test leaves injection disabled and the env unexported."""
    yield
    faults.configure(None)
    faults.clear_point_context()


class TestClauseParsing:
    @pytest.mark.parametrize("kind", ["crash", "hang", "slow_io",
                                      "torn_write", "die"])
    def test_bare_kind_gets_defaults(self, kind):
        plan = FaultPlan.parse(kind)
        (clause,) = plan.clauses
        assert clause.kind == kind
        assert clause.probability == 1.0
        assert clause.max_attempt is None
        assert clause.key_prefix is None

    def test_full_clause(self):
        plan = FaultPlan.parse("crash:0.25:attempt<2:key=3fa:site=gemm")
        (clause,) = plan.clauses
        assert clause == FaultClause("crash", probability=0.25,
                                     max_attempt=2, key_prefix="3fa",
                                     site="gemm")

    def test_default_sites_per_kind(self):
        assert FaultPlan.parse("crash").clauses[0].site == "eval"
        assert FaultPlan.parse("hang").clauses[0].site == "eval"
        assert FaultPlan.parse("die").clauses[0].site == "eval"
        assert FaultPlan.parse("slow_io").clauses[0].site == "store"
        assert FaultPlan.parse("torn_write").clauses[0].site == "store"

    def test_globals(self):
        plan = FaultPlan.parse("seed=42,hang_s=9.5,slow_s=0.2,crash:0.5")
        assert (plan.seed, plan.hang_s, plan.slow_s) == (42, 9.5, 0.2)

    def test_clause_order_preserved(self):
        plan = FaultPlan.parse("hang:key=aa,crash:0.5")
        assert [c.kind for c in plan.clauses] == ["hang", "crash"]

    @pytest.mark.parametrize("bad", [
        "fry",                      # unknown kind
        "crash:1.5",                # probability out of range
        "crash:site=disk",          # unknown site
        "torn_write:site=eval",     # kind not allowed at site
        "crash:when=later",         # unknown field
        "seed=7",                   # no clauses at all
        "",                         # empty spec
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_canonical_spec_round_trips(self):
        spec = "seed=9,hang_s=12,crash:0.3:attempt<1,hang:key=ab:site=gemm"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.spec()) == plan

    def test_default_globals_omitted_from_spec(self):
        assert FaultPlan.parse("crash").spec() == "seed=0,crash:1"


class TestDecisions:
    def test_gates(self):
        clause = FaultClause("crash", max_attempt=1, key_prefix="ab")
        assert clause.matches("eval", "abcd", 0)
        assert not clause.matches("gemm", "abcd", 0)     # wrong site
        assert not clause.matches("eval", "abcd", 1)     # attempt spent
        assert not clause.matches("eval", "ba", 0)       # key mismatch

    def test_certain_and_impossible_probabilities(self):
        always = FaultPlan.parse("crash:1")
        never = FaultPlan.parse("crash:0")
        for key in ("a", "b", "c"):
            assert always.decide("eval", key, 0) is not None
            assert never.decide("eval", key, 0) is None

    def test_decisions_are_deterministic(self):
        plan = FaultPlan.parse("seed=7,crash:0.5")
        keys = [f"key{i:02d}" for i in range(64)]
        first = [plan.decide("eval", k, 0) is not None for k in keys]
        second = [plan.decide("eval", k, 0) is not None for k in keys]
        assert first == second
        # The dice are fair-ish: p=0.5 over 64 keys fires somewhere
        # strictly between never and always.
        assert 0 < sum(first) < len(keys)

    def test_seed_changes_the_draw(self):
        keys = [f"key{i:02d}" for i in range(64)]
        a = [FaultPlan.parse("seed=1,crash:0.5").decide("eval", k, 0)
             is not None for k in keys]
        b = [FaultPlan.parse("seed=2,crash:0.5").decide("eval", k, 0)
             is not None for k in keys]
        assert a != b

    def test_attempt_and_call_are_independent_draws(self):
        plan = FaultPlan.parse("seed=7,crash:0.5")
        keys = [f"key{i:02d}" for i in range(64)]
        by_attempt = {a: [plan.decide("eval", k, a) is not None
                          for k in keys] for a in (0, 1)}
        by_call = {c: [plan.decide("eval", k, 0, call=c) is not None
                       for k in keys] for c in (0, 1)}
        assert by_attempt[0] != by_attempt[1]
        assert by_call[0] != by_call[1]

    def test_first_matching_clause_wins(self):
        plan = FaultPlan.parse("hang:key=ab,crash:1")
        assert plan.decide("eval", "abcd", 0).kind == "hang"
        assert plan.decide("eval", "zzzz", 0).kind == "crash"

    def test_planned_oracle_matches_decide(self):
        plan = FaultPlan.parse("seed=7,crash:0.4:attempt<2")
        keys = [f"key{i:02d}" for i in range(32)]
        planned = set()
        for key, attempt, clause in plan.planned("eval", keys, attempts=2):
            assert clause.kind == "crash"
            planned.add((key, attempt))
        decided = {(k, a) for k in keys for a in range(2)
                   if plan.decide("eval", k, a) is not None}
        assert planned == decided


class TestHooks:
    def test_configure_exports_and_clears_env(self):
        plan = faults.configure("seed=3,crash:0.5")
        assert faults.enabled()
        assert os.environ[FAULTS_ENV] == plan.spec()
        assert FaultPlan.parse(os.environ[FAULTS_ENV]) == plan
        faults.configure(None)
        assert not faults.enabled()
        assert FAULTS_ENV not in os.environ

    def test_fire_is_inert_without_a_plan(self):
        faults.fire("eval", key="abcd", attempt=0)  # must not raise

    def test_crash_raises_injected_fault(self):
        faults.configure("crash")
        with pytest.raises(InjectedFault, match="injected crash at eval"):
            faults.fire("eval", key="abcd", attempt=0)

    def test_hang_and_die_degrade_to_crash_inline(self):
        # The test runner is not a pool worker: a real hang would stall
        # pytest forever and a real die would kill it. Both convert.
        faults.configure("hang")
        with pytest.raises(InjectedFault, match="converted to crash"):
            faults.fire("eval", key="abcd", attempt=0)
        faults.configure("die")
        with pytest.raises(InjectedFault, match="converted to crash"):
            faults.fire("eval", key="abcd", attempt=0)

    def test_slow_io_sleeps_for_slow_s(self):
        faults.configure("slow_s=0.05,slow_io:site=eval")
        start = time.perf_counter()
        faults.fire("eval", key="abcd", attempt=0)
        assert time.perf_counter() - start >= 0.05

    def test_deep_site_uses_point_context(self):
        faults.configure("crash:key=ab:site=gemm")
        faults.fire("gemm")  # no context bound: no-op
        faults.set_point_context("abcd", 0)
        with pytest.raises(InjectedFault):
            faults.fire("gemm")
        faults.clear_point_context()
        faults.fire("gemm")  # unbound again: no-op

    def test_store_write_fault_reports_torn_write(self):
        faults.configure("torn_write:key=ab")
        assert faults.store_write_fault("abcd") == "torn_write"
        assert faults.store_write_fault("zzzz") is None

    def test_store_write_ordinal_rerolls_per_append(self):
        # attempt<1 gates on the per-key *write ordinal* at the store
        # site, so only a key's first append is torn -- the re-append
        # after the resume re-evaluation lands intact.
        faults.configure("torn_write:key=ab:attempt<1")
        plan = faults.active_plan()
        assert plan.decide("store", "abcd", 0, call=0) is not None
        first = faults.store_write_fault("abcd")
        second = faults.store_write_fault("abcd")
        assert (first, second) == ("torn_write", None)


class TestServeSite:
    """The ``serve`` site: grammar, the kinds split, the read hook."""

    def test_serve_site_grammar_round_trips(self):
        spec = "seed=5,crash:0.5:site=serve,slow_io:1:attempt<1:site=serve"
        plan = FaultPlan.parse(spec)
        assert {clause.site for clause in plan.clauses} == {"serve"}
        assert FaultPlan.parse(plan.spec()) == plan

    @pytest.mark.parametrize("kind", ["crash", "hang", "die", "slow_io"])
    def test_process_and_io_kinds_allowed_at_serve(self, kind):
        (clause,) = FaultPlan.parse(f"{kind}:site=serve").clauses
        assert clause.site == "serve"

    def test_torn_write_rejected_at_serve(self):
        # Tearing is a store-append concern; the service's store writes
        # already go through the store site.
        with pytest.raises(ValueError):
            FaultPlan.parse("torn_write:site=serve")

    def test_kinds_filter_restricts_decisions(self):
        plan = FaultPlan.parse("crash:site=serve")
        assert plan.decide("serve", "abcd", 0) is not None
        assert plan.decide("serve", "abcd", 0,
                           kinds=("slow_io",)) is None
        assert plan.decide("serve", "abcd", 0,
                           kinds=("crash", "hang")) is not None

    def test_kinds_filter_falls_through_to_later_clauses(self):
        # The filter skips non-matching clauses rather than aborting:
        # a crash clause ahead of a slow_io clause must not shadow it
        # for the read hook.
        plan = FaultPlan.parse("crash:site=serve,slow_io:site=serve")
        decided = plan.decide("serve", "abcd", 0, kinds=("slow_io",))
        assert decided is not None and decided.kind == "slow_io"

    def test_serve_read_fault_fires_slow_io_only(self):
        faults.configure("slow_s=0.01,slow_io:site=serve")
        assert faults.serve_read_fault("abcd") == "slow_io"
        faults.configure("crash:site=serve")   # wrong half of the site
        assert faults.serve_read_fault("abcd") is None

    def test_serve_read_ordinal_gates_first_lookup_only(self):
        faults.configure("slow_s=0.01,slow_io:attempt<1:site=serve")
        first = faults.serve_read_fault("abcd")
        second = faults.serve_read_fault("abcd")
        assert (first, second) == ("slow_io", None)

    def test_fire_respects_kinds_at_shared_sites(self):
        faults.configure("slow_s=0.01,slow_io:site=serve")
        # The worker hook only executes process-breaking kinds; a
        # slow_io-only plan is invisible to it.
        faults.fire("serve", key="abcd", attempt=0,
                    kinds=("crash", "hang", "die"))  # must not stall/raise
        faults.configure("crash:site=serve")
        with pytest.raises(InjectedFault):
            faults.fire("serve", key="abcd", attempt=0,
                        kinds=("crash", "hang", "die"))
