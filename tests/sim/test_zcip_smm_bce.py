"""Tests for the ZCIP parser, the SMM and the BCE pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.compression import bcs_compress
from repro.sim.bce import BitColumnEngine
from repro.sim.smm import smm_column_sum, smm_partial_products
from repro.sim.zcip import ZeroColumnIndexParser


class TestZcip:
    def test_zero_index_is_empty_group(self):
        parsed = ZeroColumnIndexParser().parse(0x00)
        assert not parsed.sign_request
        assert parsed.shifts == ()
        assert parsed.sync_counter == 0

    def test_msb_is_sign_request(self):
        parsed = ZeroColumnIndexParser().parse(0x80)
        assert parsed.sign_request
        assert parsed.shifts == ()
        assert parsed.sync_counter == 1

    def test_shift_order_msb_first(self):
        # Index 0b0100_0101: magnitude columns at significances 6, 2, 0.
        parsed = ZeroColumnIndexParser().parse(0b0100_0101)
        assert parsed.shifts == (6, 2, 0)

    def test_full_index(self):
        parsed = ZeroColumnIndexParser().parse(0xFF)
        assert parsed.sign_request
        assert parsed.shifts == (6, 5, 4, 3, 2, 1, 0)
        assert parsed.sync_counter == 8

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            ZeroColumnIndexParser().parse(256)

    def test_matches_bcs_compression_indices(self):
        """The parser must agree with the compressor's accounting."""
        rng = np.random.default_rng(5)
        w = rng.integers(-127, 128, 64).astype(np.int8)
        w[w == -128] = -127
        compressed = bcs_compress(w, 8)
        parser = ZeroColumnIndexParser()
        total_columns = sum(
            parser.parse(int(b)).sync_counter for b in compressed.indices)
        # Payload columns + sign columns = total non-zero columns.
        assert total_columns * 8 == compressed.payload_bits

    def test_dense_mode_ignores_index(self):
        parser = ZeroColumnIndexParser(dense_precision=8)
        parsed = parser.parse(0x00)
        assert parsed.shifts == (6, 5, 4, 3, 2, 1, 0)
        assert parsed.sync_counter == 8

    def test_dense_mode_reduced_precision(self):
        parser = ZeroColumnIndexParser(dense_precision=4)
        parsed = parser.parse(0xFF)
        assert parsed.shifts == (2, 1, 0)
        assert parsed.sync_counter == 4

    def test_dense_mode_validates_precision(self):
        with pytest.raises(ValueError, match="precision"):
            ZeroColumnIndexParser(dense_precision=9)


class TestSmm:
    def test_bit_gates_product(self):
        acts = np.array([3, -5, 7, 2])
        bits = np.array([1, 0, 1, 0])
        signs = np.array([0, 0, 1, 1])
        products = smm_partial_products(acts, bits, signs)
        assert products.tolist() == [3, 0, -7, 0]

    def test_sign_rules(self):
        # (act sign, weight sign) -> product sign.
        acts = np.array([5, 5, -5, -5])
        bits = np.ones(4, dtype=int)
        signs = np.array([0, 1, 0, 1])
        products = smm_partial_products(acts, bits, signs)
        assert products.tolist() == [5, -5, -5, 5]

    def test_column_sum(self):
        acts = np.array([1, 2, 3, 4])
        bits = np.array([1, 1, 1, 1])
        signs = np.array([0, 1, 0, 1])
        assert smm_column_sum(acts, bits, signs) == 1 - 2 + 3 - 4

    def test_batched(self):
        acts = np.array([[1, 2], [3, 4]])
        bits = np.array([1, 1])
        signs = np.array([0, 0])
        assert smm_column_sum(acts, bits, signs).tolist() == [3, 7]


class TestBce:
    def _run_group(self, weights, acts):
        """Process one weight group through ZCIP + BCE."""
        from repro.core.signmag import sm_bitplanes

        weights = np.asarray(weights, dtype=np.int8)
        g = len(weights)
        planes = sm_bitplanes(weights[None, :], saturate=True)[0]  # (G, 8)
        planes = planes.T  # (8, G)
        nz = planes.any(axis=1)
        index = int((nz * (1 << np.arange(7, -1, -1))).sum())
        parser = ZeroColumnIndexParser()
        parsed = parser.parse(index)
        columns = planes[[7 - s for s in parsed.shifts], :]
        engine = BitColumnEngine(g)
        out = engine.process_group(np.asarray(acts), columns,
                                   planes[0], parsed)
        return out, engine

    def test_dot_product_exact(self):
        weights = np.array([3, -5, 0, 7], dtype=np.int8)
        acts = np.array([10, -2, 99, 1])
        out, _ = self._run_group(weights, acts)
        assert int(out) == int(np.dot(weights.astype(int), acts))

    @given(arrays(np.int8, 8, elements=st.integers(-127, 127)),
           arrays(np.int64, 8, elements=st.integers(-128, 127)))
    @settings(max_examples=50, deadline=None)
    def test_dot_product_property(self, weights, acts):
        out, _ = self._run_group(weights, acts)
        assert int(out) == int(np.dot(weights.astype(np.int64), acts))

    def test_cycles_equal_nonzero_columns(self):
        weights = np.array([1, 2, 4, -8], dtype=np.int8)
        acts = np.ones(4, dtype=np.int64)
        _, engine = self._run_group(weights, acts)
        # Magnitude columns 1,2,4,8 all distinct non-zero + sign column.
        assert engine.cycles == 5
        assert engine.column_ops == 4

    def test_zero_group_costs_nothing(self):
        weights = np.zeros(4, dtype=np.int8)
        acts = np.ones(4, dtype=np.int64)
        out, engine = self._run_group(weights, acts)
        assert int(out) == 0
        assert engine.cycles == 0

    def test_batch_contexts_share_cycles(self):
        """Spatially-parallel contexts don't add cycles (OXu lanes)."""
        weights = np.array([3, -5, 0, 7], dtype=np.int8)
        acts = np.arange(12).reshape(3, 4)
        out, engine = self._run_group(weights, acts)
        expected = acts @ weights.astype(np.int64)
        assert out.tolist() == expected.tolist()
        single_engine_cycles = engine.cycles
        _, engine2 = self._run_group(weights, acts[0])
        assert single_engine_cycles == engine2.cycles

    def test_group_size_mismatch(self):
        engine = BitColumnEngine(8)
        from repro.sim.zcip import ParsedIndex

        with pytest.raises(ValueError, match="activations"):
            engine.process_group(
                np.ones(4), np.zeros((0, 4)), np.zeros(4),
                ParsedIndex(False, (), 0))

    def test_column_shift_mismatch(self):
        engine = BitColumnEngine(4)
        from repro.sim.zcip import ParsedIndex

        with pytest.raises(ValueError, match="shifts"):
            engine.process_group(
                np.ones(4), np.zeros((2, 4)), np.zeros(4),
                ParsedIndex(False, (0,), 1))
