"""Reference vs vectorized backend: bit-identical outputs, identical
cycle/traffic/column accounting, and LUT-vs-scalar parser agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bce import BitPlaneEngine
from repro.sim.npu import BACKENDS, BitWaveNPU
from repro.sim.zcip import (
    MAGNITUDE_COLUMNS_LUT,
    PLANE_SELECT_LUT,
    SIGN_REQUEST_LUT,
    SYNC_COUNTER_LUT,
    ZeroColumnIndexParser,
    dense_plane_select,
)


def _weights(k, c, seed=0):
    rng = np.random.default_rng(seed)
    w = np.clip(np.round(rng.laplace(0, 12, (k, c))), -128, 127)
    return w.astype(np.int8)


def _acts(n, c, seed=1, low=-128, high=128):
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, (n, c)).astype(np.int64)


def _pair(**kwargs):
    return (BitWaveNPU(backend="reference", **kwargs),
            BitWaveNPU(backend="vectorized", **kwargs))


def assert_equivalent_fc(weights, acts, **kwargs):
    ref_npu, vec_npu = _pair(**kwargs)
    ref = ref_npu.run_fc(weights, acts)
    vec = vec_npu.run_fc(weights, acts)
    np.testing.assert_array_equal(ref.outputs, vec.outputs)
    assert ref.compute_cycles == vec.compute_cycles
    assert ref.fetch_cycles == vec.fetch_cycles
    assert ref.column_ops == vec.column_ops
    assert ref.weight_bits_fetched == vec.weight_bits_fetched
    assert ref.dense_weight_bits == vec.dense_weight_bits
    assert ref_npu.fetcher.report == vec_npu.fetcher.report
    assert ref_npu.dispatcher.weight_words == vec_npu.dispatcher.weight_words
    assert ref_npu.dispatcher.act_words == vec_npu.dispatcher.act_words
    return ref, vec


class TestLutAgainstScalarParser:
    def test_all_256_bytes(self):
        parser = ZeroColumnIndexParser()
        for byte in range(256):
            parsed = parser.parse(byte)
            assert SIGN_REQUEST_LUT[byte] == parsed.sign_request
            assert MAGNITUDE_COLUMNS_LUT[byte] == len(parsed.shifts)
            assert SYNC_COUNTER_LUT[byte] == parsed.sync_counter
            selected = {7 - s for s in parsed.shifts}
            if parsed.sign_request:
                selected.add(0)
            assert set(np.flatnonzero(PLANE_SELECT_LUT[byte])) == selected

    def test_luts_are_read_only(self):
        with pytest.raises(ValueError):
            SYNC_COUNTER_LUT[0] = 99

    @pytest.mark.parametrize("precision", range(1, 9))
    def test_dense_schedule_matches_scalar_parser(self, precision):
        parser = ZeroColumnIndexParser(dense_precision=precision)
        parsed = parser.parse(0x00)
        select = dense_plane_select(precision)
        assert select[0]  # sign plane always streams in dense mode
        assert set(np.flatnonzero(select[1:]) + 1) == {
            7 - s for s in parsed.shifts}
        batch = parser.parse_array(np.zeros((3, 2), dtype=np.uint8))
        assert batch.sync_counters.tolist() == [[precision] * 2] * 3
        assert batch.magnitude_columns.tolist() == [[precision - 1] * 2] * 3

    def test_parse_array_matches_parse_elementwise(self):
        rng = np.random.default_rng(7)
        index_bytes = rng.integers(0, 256, (5, 9)).astype(np.uint8)
        parser = ZeroColumnIndexParser()
        batch = parser.parse_array(index_bytes)
        for pos, byte in np.ndenumerate(index_bytes):
            parsed = parser.parse(int(byte))
            assert batch.sign_requests[pos] == parsed.sign_request
            assert batch.sync_counters[pos] == parsed.sync_counter
            assert batch.magnitude_columns[pos] == len(parsed.shifts)

    def test_parse_array_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            ZeroColumnIndexParser().parse_array(np.array([0, 300]))


class TestBackendEquivalence:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            BitWaveNPU(backend="fpga")

    def test_backends_are_published(self):
        assert set(BACKENDS) == {"vectorized", "reference"}

    @given(k=st.integers(1, 24), c=st.integers(1, 48),
           n=st.integers(1, 8), g=st.sampled_from([1, 4, 8, 13]))
    @settings(max_examples=30, deadline=None)
    def test_random_shapes_and_group_sizes(self, k, c, n, g):
        w = _weights(k, c, seed=k * 1000 + c)
        a = _acts(n, c, seed=n + 17)
        assert_equivalent_fc(w, a, group_size=g)

    @pytest.mark.parametrize("precision", range(1, 9))
    def test_dense_mode_precisions(self, precision):
        w = _weights(12, 40, seed=precision)
        a = _acts(3, 40, seed=precision + 50)
        ref, _ = assert_equivalent_fc(
            w, a, group_size=8, dense_mode_precision=precision)
        if precision == 8:
            expected = a.astype(np.int64) @ w.astype(np.int64).T
            np.testing.assert_array_equal(ref.outputs, expected)

    def test_padding_edge_cases(self):
        # C not a multiple of G on both sides of the group boundary.
        for c in (1, 7, 9, 13):
            assert_equivalent_fc(_weights(5, c, seed=c), _acts(2, c),
                                 group_size=8)
        # K not a multiple of the 8-kernel segment.
        assert_equivalent_fc(_weights(9, 16, seed=3), _acts(2, 16))

    def test_degenerate_inputs(self):
        assert_equivalent_fc(_weights(1, 1), _acts(1, 1), group_size=1)
        ref, vec = assert_equivalent_fc(
            np.zeros((4, 16), dtype=np.int8), _acts(2, 16))
        assert ref.compute_cycles == 0
        assert ref.column_ops == 0
        np.testing.assert_array_equal(vec.outputs, np.zeros((2, 4)))

    def test_saturated_minus_128_weights(self):
        w = np.full((4, 16), -128, dtype=np.int8)
        assert_equivalent_fc(w, _acts(2, 16))

    def test_huge_activations_use_exact_fallback(self):
        # Beyond the float64-exact bound the GEMM falls back to int64
        # (modular, like the reference accumulator).
        rng = np.random.default_rng(11)
        w = rng.integers(-127, 128, (6, 16)).astype(np.int8)
        a = rng.integers(-(2 ** 62), 2 ** 62, (2, 16)).astype(np.int64)
        assert_equivalent_fc(w, a)

    def test_oxu_serialization_identical(self):
        w = _weights(8, 32)
        for n in (15, 16, 17, 33):
            assert_equivalent_fc(w, _acts(n, 32), oxu=16)

    def test_conv_backends_identical(self):
        rng = np.random.default_rng(5)
        w = np.clip(np.round(rng.laplace(0, 10, (6, 5, 3, 3))),
                    -127, 127).astype(np.int8)
        x = rng.integers(-20, 20, (2, 5, 7, 7)).astype(np.int32)
        ref = BitWaveNPU(backend="reference").run_conv(
            w, x, stride=2, padding=1)
        vec = BitWaveNPU(backend="vectorized").run_conv(
            w, x, stride=2, padding=1)
        np.testing.assert_array_equal(ref.outputs, vec.outputs)
        assert ref.compute_cycles == vec.compute_cycles
        assert ref.fetch_cycles == vec.fetch_cycles
        assert ref.column_ops == vec.column_ops


class TestBitPlaneEngine:
    def test_group_size_mismatch(self):
        engine = BitPlaneEngine(8)
        with pytest.raises(ValueError, match="activations"):
            engine.process_layer(
                np.ones((1, 1, 4)), np.zeros((1, 1, 8, 4)),
                np.zeros((1, 1, 4)))

    def test_matches_plain_matmul(self):
        w = _weights(6, 24, seed=9)
        a = _acts(3, 24, seed=10)
        run = BitWaveNPU(backend="vectorized").run_fc(w, a)
        np.testing.assert_array_equal(
            run.outputs, a.astype(np.int64) @ w.astype(np.int64).T)
