"""Tests for the simulator's memory, fetcher and dispatcher models."""

import numpy as np
import pytest

from repro.sim.dispatcher import DataDispatcher
from repro.sim.fetcher import DataFetcher, SEGMENT_BITS
from repro.sim.memory import BankedSram, DramStream, SramBank


class TestSramBank:
    def test_write_read_roundtrip(self):
        bank = SramBank(256)
        payload = np.arange(16, dtype=np.uint8)
        bank.write(32, payload)
        assert np.array_equal(bank.read(32, 16), payload)

    def test_access_counters_in_words(self):
        bank = SramBank(256, word_bits=64)
        bank.write(0, np.zeros(16, dtype=np.uint8))  # 2 x 64b words
        bank.read(0, 8)                              # 1 word
        assert bank.writes == 2
        assert bank.reads == 1

    def test_partial_word_rounds_up(self):
        bank = SramBank(256, word_bits=64)
        bank.read(0, 3)
        assert bank.reads == 1

    def test_out_of_bounds(self):
        bank = SramBank(64)
        with pytest.raises(IndexError, match="outside bank"):
            bank.read(60, 8)

    def test_negative_address(self):
        bank = SramBank(64)
        with pytest.raises(IndexError):
            bank.read(-1, 4)

    def test_non_byte_word_width_rejected(self):
        with pytest.raises(ValueError, match="whole number of bytes"):
            SramBank(64, word_bits=12)


class TestBankedSram:
    def test_interleaving(self):
        banked = BankedSram(banks=4, bank_bytes=64)
        assert banked.bank_for(0) is banked.banks[0]
        assert banked.bank_for(5) is banked.banks[1]

    def test_total_counters(self):
        banked = BankedSram(banks=2, bank_bytes=64)
        banked.banks[0].read(0, 8)
        banked.banks[1].write(0, np.zeros(8, dtype=np.uint8))
        assert banked.total_reads == 1
        assert banked.total_writes == 1


class TestDramStream:
    def test_transfer_cycles(self):
        dram = DramStream(bits_per_cycle=512)
        dram.read(640)   # 10 cycles at 64 B/cycle
        dram.write(64)   # 1 cycle
        assert dram.transfer_cycles == pytest.approx(11.0)

    def test_counters(self):
        dram = DramStream()
        dram.read(100)
        dram.read(28)
        assert dram.bytes_read == 128


class TestDataFetcher:
    def test_weight_segments_rounded_up(self):
        fetcher = DataFetcher(weight_bw_bits=256, act_bw_bits=1024)
        cycles = fetcher.fetch_weight_columns(100)  # 2 segments
        assert fetcher.report.weight_segments == 2
        assert cycles == 1  # 4 segments/cycle available

    def test_weight_bw_limits_cycles(self):
        fetcher = DataFetcher(weight_bw_bits=64, act_bw_bits=1024)
        cycles = fetcher.fetch_weight_columns(SEGMENT_BITS * 10)
        assert cycles == 10

    def test_act_bandwidth(self):
        fetcher = DataFetcher(weight_bw_bits=256, act_bw_bits=64)
        cycles = fetcher.fetch_activations(32)  # 8 words/cycle
        assert cycles == 4

    def test_invalid_weight_bw(self):
        with pytest.raises(ValueError, match="multiple"):
            DataFetcher(weight_bw_bits=100, act_bw_bits=64)

    def test_report_accumulates(self):
        fetcher = DataFetcher(weight_bw_bits=256, act_bw_bits=1024)
        fetcher.fetch_weight_columns(64)
        fetcher.fetch_weight_columns(64)
        assert fetcher.report.weight_bits == 128


class TestDataDispatcher:
    def test_weight_plan_unicast(self):
        plan = DataDispatcher().weight_plan(cu=8, ku=32)
        assert plan.unicast_targets == 32
        assert plan.broadcast_factor == 1

    def test_activation_plan_broadcasts_over_k(self):
        plan = DataDispatcher().activation_plan(cu=8, oxu=16, ku=32)
        assert plan.broadcast_factor == 32
        assert plan.total_destinations == 16 * 32

    def test_word_counters(self):
        dispatcher = DataDispatcher()
        dispatcher.dispatch_weights(100)
        dispatcher.dispatch_activations(50)
        assert dispatcher.weight_words == 100
        assert dispatcher.act_words == 50
