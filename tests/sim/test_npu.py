"""Tests for the top-level NPU simulator: bit-exactness and cycles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sim.npu import BitWaveNPU


def _weights(k, c, seed=0):
    rng = np.random.default_rng(seed)
    w = np.clip(np.round(rng.laplace(0, 12, (k, c))), -127, 127)
    return w.astype(np.int8)


def _acts(n, c, seed=1):
    rng = np.random.default_rng(seed)
    return rng.integers(-128, 128, (n, c)).astype(np.int32)


class TestRunFc:
    def test_bit_exact_vs_matmul(self):
        w = _weights(16, 64)
        a = _acts(4, 64)
        run = BitWaveNPU(group_size=8).run_fc(w, a)
        expected = a.astype(np.int64) @ w.astype(np.int64).T
        assert np.array_equal(run.outputs, expected)

    @given(st.integers(1, 12), st.integers(1, 40), st.integers(1, 6),
           st.sampled_from([8, 16]))
    @settings(max_examples=20, deadline=None)
    def test_bit_exact_property(self, k, c, n, g):
        w = _weights(k, c, seed=k * 100 + c)
        a = _acts(n, c, seed=n)
        run = BitWaveNPU(group_size=g).run_fc(w, a)
        expected = a.astype(np.int64) @ w.astype(np.int64).T
        assert np.array_equal(run.outputs, expected)

    def test_unpadded_group_boundary(self):
        # C not a multiple of G exercises the zero-padding path.
        w = _weights(8, 13)
        a = _acts(2, 13)
        run = BitWaveNPU(group_size=8).run_fc(w, a)
        expected = a.astype(np.int64) @ w.astype(np.int64).T
        assert np.array_equal(run.outputs, expected)

    def test_rejects_float_activations(self):
        with pytest.raises(TypeError, match="integer"):
            BitWaveNPU().run_fc(_weights(4, 8), np.ones((2, 8)))

    def test_rejects_mismatched_widths(self):
        with pytest.raises(ValueError, match="activation width"):
            BitWaveNPU().run_fc(_weights(4, 8), _acts(2, 16))

    def test_compression_ratio_above_one_for_real_weights(self):
        run = BitWaveNPU(group_size=8).run_fc(_weights(32, 128), _acts(1, 128))
        assert run.compression_ratio > 1.0

    def test_sparse_weights_cost_fewer_cycles(self):
        w_dense = _weights(16, 64)
        w_sparse = w_dense.copy()
        w_sparse[np.abs(w_sparse) < 20] = 0
        a = _acts(4, 64)
        dense_run = BitWaveNPU(group_size=8).run_fc(w_dense, a)
        sparse_run = BitWaveNPU(group_size=8).run_fc(w_sparse, a)
        assert sparse_run.compute_cycles < dense_run.compute_cycles

    def test_dense_mode_same_outputs_more_cycles(self):
        w = _weights(16, 64)
        a = _acts(2, 64)
        sparse = BitWaveNPU(group_size=8).run_fc(w, a)
        dense = BitWaveNPU(group_size=8, dense_mode_precision=8).run_fc(w, a)
        assert np.array_equal(sparse.outputs, dense.outputs)
        assert dense.compute_cycles >= sparse.compute_cycles

    def test_more_output_contexts_than_oxu_serialize(self):
        w = _weights(8, 32)
        few = BitWaveNPU(group_size=8, oxu=16).run_fc(w, _acts(16, 32))
        many = BitWaveNPU(group_size=8, oxu=16).run_fc(w, _acts(32, 32))
        assert many.compute_cycles == 2 * few.compute_cycles


class TestRunConv:
    def test_bit_exact_vs_reference_conv(self):
        rng = np.random.default_rng(3)
        w = np.clip(np.round(rng.laplace(0, 10, (4, 3, 3, 3))),
                    -127, 127).astype(np.int8)
        x = rng.integers(-10, 10, (2, 3, 6, 6)).astype(np.int32)
        run = BitWaveNPU(group_size=8).run_conv(w, x, stride=1, padding=1)
        from repro.nn import functional as F

        expected = F.conv2d(x.astype(np.float64), w.astype(np.float64),
                            stride=1, padding=1)
        assert np.array_equal(run.outputs, expected.astype(np.int64))

    def test_strided(self):
        rng = np.random.default_rng(4)
        w = rng.integers(-20, 20, (2, 4, 3, 3)).astype(np.int8)
        x = rng.integers(-5, 5, (1, 4, 9, 9)).astype(np.int32)
        run = BitWaveNPU(group_size=8).run_conv(w, x, stride=2, padding=1)
        from repro.nn import functional as F

        expected = F.conv2d(x.astype(np.float64), w.astype(np.float64),
                            stride=2, padding=1)
        assert np.array_equal(run.outputs, expected.astype(np.int64))

    def test_output_shape(self):
        w = _weights(8, 4 * 9).reshape(8, 4, 3, 3)
        x = np.zeros((1, 4, 8, 8), dtype=np.int32)
        run = BitWaveNPU().run_conv(w, x, stride=1, padding=1)
        assert run.outputs.shape == (1, 8, 8, 8)


class TestSimulatorValidatesAnalyticalModel:
    """The paper validates its model against RTL at <6% deviation
    (Section V-B); we validate the analytical compute-cycle model
    against the structural simulator the same way."""

    @pytest.mark.parametrize("k,c,n", [(32, 64, 16), (64, 128, 16),
                                       (16, 256, 8)])
    def test_compute_cycles_within_6_percent(self, k, c, n):
        from repro.sparsity.stats import compute_layer_stats

        w = _weights(k, c, seed=k + c)
        a = _acts(n, c, seed=n)
        npu = BitWaveNPU(group_size=8, ku=32, oxu=16)
        run = npu.run_fc(w, a)

        stats = compute_layer_stats(w)
        # Analytical: one segment (8 kernels x one C-slice) costs the
        # expected max sync counter; Ku/8 segment streams run in
        # parallel; output contexts beyond OXu serialize.
        sync = 8  # 64-bit segment / G=8
        cpm = stats.expected_max_nz_columns(8, sync)
        n_segments = -(-k // 8) * -(-c // 8)
        contexts = -(-n // 16)
        streams = 32 // 8
        analytic = n_segments * cpm / streams * contexts
        deviation = abs(run.compute_cycles - analytic) / run.compute_cycles
        assert deviation < 0.06
