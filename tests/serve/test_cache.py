"""The hot tier: LRU semantics, capacity, and the disabled mode."""

import pytest

from repro.serve.cache import HotCache
from serve_helpers import fake_result, mini_request


def _result(tag: str):
    return fake_result(mini_request(), cycles=float(len(tag)))


class TestHotCache:
    def test_miss_then_hit(self):
        cache = HotCache(4)
        assert cache.get("a") is None
        result = _result("a")
        cache.put("a", result)
        assert cache.get("a") is result
        assert "a" in cache
        assert len(cache) == 1

    def test_evicts_coldest_past_capacity(self):
        cache = HotCache(2)
        cache.put("a", _result("a"))
        cache.put("b", _result("b"))
        cache.put("c", _result("c"))
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.get("c") is not None

    def test_get_refreshes_recency(self):
        cache = HotCache(2)
        cache.put("a", _result("a"))
        cache.put("b", _result("b"))
        cache.get("a")             # now "b" is the coldest
        cache.put("c", _result("c"))
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_put_overwrites_and_refreshes(self):
        cache = HotCache(2)
        first, second = _result("a"), _result("aa")
        cache.put("a", first)
        cache.put("b", _result("b"))
        cache.put("a", second)     # refresh + replace
        cache.put("c", _result("c"))
        assert cache.get("a") is second
        assert cache.get("b") is None

    def test_keys_coldest_first(self):
        cache = HotCache(4)
        for key in ("a", "b", "c"):
            cache.put(key, _result(key))
        cache.get("a")
        assert cache.keys() == ("b", "c", "a")

    def test_zero_capacity_disables_the_tier(self):
        cache = HotCache(0)
        cache.put("a", _result("a"))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = HotCache(4)
        cache.put("a", _result("a"))
        cache.clear()
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            HotCache(-1)
