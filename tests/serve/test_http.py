"""The HTTP front end, over a real socket on an ephemeral port.

Every test speaks actual HTTP/1.1 to an ``asyncio.start_server``
instance -- no handler-poking -- so the request parser, routing,
status mapping, and JSON serialization are all on the hook.
"""

from __future__ import annotations

import asyncio
from urllib.parse import quote, urlencode

from repro.serve.http import (
    outcome_status,
    request_from_query,
    spec_from_query,
    start_http,
)
from repro.serve.service import EvalService, Outcome
from serve_helpers import (
    MINI_WORKLOAD,
    counting_backend,
    fake_result,
    http_request,
    mini_request,
    run_async,
)

EVAL_PATH = "/eval?" + urlencode({"workload": MINI_WORKLOAD})


async def _served(root, **kwargs):
    service = EvalService(root, **kwargs)
    await service.start()
    server = await start_http(service, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    return service, server, port


async def _shutdown(service, server):
    server.close()
    await server.wait_closed()
    await service.drain(timeout_s=5)


class TestEndpoints:
    def test_healthz_eval_metrics_roundtrip(self, tmp_path, monkeypatch):
        counting_backend(monkeypatch, "model")

        async def main():
            service, server, port = await _served(tmp_path)
            health = await http_request(port, "GET", "/healthz")
            first = await http_request(port, "GET", EVAL_PATH)
            repeat = await http_request(port, "GET", EVAL_PATH)
            metrics = await http_request(port, "GET", "/metrics")
            await _shutdown(service, server)
            return health, first, repeat, metrics

        health, first, repeat, metrics = run_async(main())
        assert health[0] == 200 and health[2]["status"] == "ok"
        assert first[0] == 200
        assert first[2]["source"] == "computed"
        # The served result carries the canonical workload spelling
        # (parameters sorted), not necessarily the query's.
        assert first[2]["result"]["workload"] == mini_request().workload
        assert repeat[0] == 200 and repeat[2]["source"] == "hot"
        assert metrics[0] == 200
        counters = metrics[2]["counters"]
        assert counters["serve.cache.hot_hit"] == 1
        assert counters["serve.evaluated"] == 1
        assert metrics[2]["gauges"]["serve.hot_entries"] == 1
        assert metrics[2]["latency"]["count"] >= 2

    def test_batch_coalesces_identical_requests(self, tmp_path,
                                                monkeypatch):
        counting_backend(monkeypatch, "model")
        entry = mini_request().to_dict()

        async def main():
            service, server, port = await _served(tmp_path)
            batch = await http_request(port, "POST", "/eval/batch",
                                       body=[entry] * 8)
            metrics = await http_request(port, "GET", "/metrics")
            await _shutdown(service, server)
            return batch, metrics

        batch, metrics = run_async(main())
        assert batch[0] == 200
        assert batch[2]["count"] == 8
        assert all(item["ok"] and item["status"] == 200
                   for item in batch[2]["results"])
        counters = metrics[2]["counters"]
        assert counters["serve.coalesced"] == 7
        assert counters["serve.cache.miss"] == 1
        assert counters["serve.evaluated"] == 1

    def test_summary_and_pareto_over_served_results(self, tmp_path,
                                                    monkeypatch):
        counting_backend(monkeypatch, "model")
        grid = urlencode({"name": "mini", "accelerators": "BitWave",
                          "networks": MINI_WORKLOAD})

        async def main():
            service, server, port = await _served(tmp_path)
            await http_request(port, "GET", EVAL_PATH)  # prewarm 1 point
            summary = await http_request(port, "GET", f"/summary?{grid}")
            pareto = await http_request(
                port, "GET", f"/pareto?{grid}&x=cycles&y=energy")
            await _shutdown(service, server)
            return summary, pareto

        summary, pareto = run_async(main())
        assert summary[0] == 200
        assert summary[2]["campaign"] == "mini"
        (row,) = summary[2]["rows"]
        assert row["network"] == MINI_WORKLOAD
        assert row["cycles"] > 0
        assert pareto[0] == 200
        assert pareto[2]["x"] == "cycles"
        assert len(pareto[2]["rows"]) == 1

    def test_dashboard_served_as_html(self, tmp_path):
        async def main():
            service, server, port = await _served(tmp_path)
            root = await http_request(port, "GET", "/")
            dash = await http_request(port, "GET", "/dashboard")
            await _shutdown(service, server)
            return root, dash

        root, dash = run_async(main())
        for status, headers, text in (root, dash):
            assert status == 200
            assert headers["content-type"].startswith("text/html")
            assert "repro.serve" in text
            assert "/metrics" in text       # it polls the JSON API


class TestErrorMapping:
    def test_missing_workload_is_400(self, tmp_path):
        async def main():
            service, server, port = await _served(tmp_path)
            reply = await http_request(port, "GET", "/eval")
            bad_int = await http_request(
                port, "GET", "/eval?workload=cnn_lstm&batch=two")
            await _shutdown(service, server)
            return reply, bad_int

        reply, bad_int = run_async(main())
        assert reply[0] == 400
        assert "workload" in reply[2]["error"]
        assert bad_int[0] == 400
        assert "batch" in bad_int[2]["error"]

    def test_unknown_path_404_wrong_method_405(self, tmp_path):
        async def main():
            service, server, port = await _served(tmp_path)
            missing = await http_request(port, "GET", "/nope")
            wrong = await http_request(port, "POST", "/healthz")
            get_batch = await http_request(port, "GET", "/eval/batch")
            await _shutdown(service, server)
            return missing, wrong, get_batch

        missing, wrong, get_batch = run_async(main())
        assert missing[0] == 404
        assert wrong[0] == 405
        assert get_batch[0] == 405

    def test_poison_request_is_422_with_last_error(self, tmp_path,
                                                   monkeypatch):
        def poison(request):
            raise ValueError("deterministically broken")

        counting_backend(monkeypatch, "model", fn=poison)

        async def main():
            service, server, port = await _served(tmp_path)
            reply = await http_request(port, "GET", EVAL_PATH)
            await _shutdown(service, server)
            return reply

        status, _, payload = run_async(main())
        assert status == 422
        assert payload["poisoned"] is True
        assert "deterministically broken" in payload["last_error"]
        assert payload["etype"] == "ValueError"

    def test_draining_healthz_503_and_misses_rejected(self, tmp_path,
                                                      monkeypatch):
        counting_backend(monkeypatch, "model")

        async def main():
            service, server, port = await _served(tmp_path)
            await http_request(port, "GET", EVAL_PATH)   # warm the hot tier
            await service.drain(timeout_s=5)
            health = await http_request(port, "GET", "/healthz")
            warm = await http_request(port, "GET", EVAL_PATH)
            cold = await http_request(
                port, "GET",
                "/eval?workload=" + quote("cnn_lstm@frames=2+bins=32"
                                          "+hidden=32", safe=""))
            server.close()
            await server.wait_closed()
            return health, warm, cold

        health, warm, cold = run_async(main())
        assert health[0] == 503
        assert health[2]["status"] == "draining"
        assert warm[0] == 200 and warm[2]["source"] == "hot"
        assert cold[0] == 503
        assert "draining" in cold[2]["error"]

    def test_malformed_request_line_and_bad_batch_json(self, tmp_path):
        async def main():
            service, server, port = await _served(tmp_path)
            # Garbage on the wire: the parser answers 400, not a hang.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            bad_json = await http_request(port, "POST", "/eval/batch",
                                          body="not a list")
            empty = await http_request(port, "POST", "/eval/batch",
                                       body=[])
            await _shutdown(service, server)
            return raw, bad_json, empty

        raw, bad_json, empty = run_async(main())
        assert b"400" in raw.split(b"\r\n", 1)[0]
        assert bad_json[0] == 400
        assert empty[0] == 400


class TestQueryHelpers:
    def test_request_from_query_defaults_and_overrides(self):
        request = request_from_query({
            "workload": ["cnn_lstm"],
            "backend": ["sim-vectorized"],
            "batch": ["2"],
        })
        assert request.workload == "cnn_lstm"
        assert request.backend == "sim-vectorized"
        assert request.options.batch == 2
        assert request.accelerator == "BitWave"   # the default

    def test_spec_from_query_defaults_to_paper_grid(self):
        spec = spec_from_query({})
        assert spec.accelerators                  # the full grid
        assert spec.networks

    def test_spec_from_query_inline_axes(self):
        spec = spec_from_query({"name": ["mini"],
                                "accelerators": ["BitWave,SCNN"],
                                "networks": ["cnn_lstm"]})
        assert spec.name == "mini"
        assert spec.accelerators == ("BitWave", "SCNN")

    def test_outcome_status_mapping(self):
        ok = Outcome(key="k", result=fake_result(mini_request()))
        assert outcome_status(ok) == 200
        assert outcome_status(Outcome(key="k", kind="rejected")) == 503
        assert outcome_status(Outcome(key="k", kind="draining")) == 503
        assert outcome_status(Outcome(key="k", poisoned=True)) == 422
        assert outcome_status(Outcome(key="k", error="boom")) == 500
