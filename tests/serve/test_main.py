"""``python -m repro.serve``: the CLI, signals, and exit codes.

One real subprocess test (the signal path cannot be pinned in-process:
``asyncio.run`` + ``add_signal_handler`` + the 128+N exit convention
only compose for real in a child), plus parser-level checks.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.serve.__main__ import build_parser

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _spawn_server(tmp_path, *extra):
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
    env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--store", str(tmp_path / "store"), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)


def _await_port(proc, deadline_s=20.0):
    """Parse the listening port from the startup line on stderr."""
    deadline = time.monotonic() + deadline_s
    assert proc.stderr is not None
    while time.monotonic() < deadline:
        line = proc.stderr.readline().decode()
        if not line:
            assert proc.poll() is None, "server died during startup"
            continue
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise AssertionError("server never announced its port")


class TestServerProcess:
    def test_serves_then_drains_on_sigterm_with_128n_exit(self, tmp_path):
        proc = _spawn_server(tmp_path)
        try:
            port = _await_port(proc)
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=10) as reply:
                assert reply.status == 200
                assert json.load(reply)["status"] == "ok"
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/eval?workload=cnn_lstm"
                    f"%40frames%3D2%2Bbins%3D32%2Bhidden%3D32",
                    timeout=60) as reply:
                assert json.load(reply)["source"] == "computed"
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert code == 128 + signal.SIGTERM  # 143: the drain completed
        stderr = proc.stderr.read().decode() if proc.stderr else ""
        assert "draining" in stderr
        # The computed record persisted before shutdown.
        stored = list((tmp_path / "store").rglob("results.jsonl"))
        assert len(stored) == 1


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8351
        assert args.workers == 0
        assert args.store is None
        assert args.inject is None

    def test_all_flags_parse(self):
        args = build_parser().parse_args([
            "--host", "0.0.0.0", "--port", "0", "--store", "/tmp/s",
            "--workers", "4", "--hot-max", "16", "--queue-max", "8",
            "--max-attempts", "5", "--timeout", "60", "--backoff", "0.5",
            "--inject", "seed=7,crash:0.3:site=serve"])
        assert args.workers == 4
        assert args.hot_max == 16
        assert args.queue_max == 8
        assert args.max_attempts == 5
        assert args.timeout == 60.0
        assert args.inject.startswith("seed=7")

    def test_rejects_unknown_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--nope"])
