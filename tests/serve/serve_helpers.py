"""Shared helpers for the serving tests.

No ``pytest-asyncio`` in the image, so async tests run their coroutine
through :func:`run_async` (a thin ``asyncio.run``) inside ordinary
sync test functions -- each test gets a fresh event loop, which also
matches how the service is actually launched (one ``asyncio.run`` per
process).
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, TypeVar

import pytest

from repro.eval.request import EvalRequest
from repro.eval.result import EvalResult, LayerResult

T = TypeVar("T")

#: The parametrized CNN-LSTM small enough for every backend.
MINI_WORKLOAD = "cnn_lstm@frames=4+bins=64+hidden=64"


def run_async(coro: Awaitable[T]) -> T:
    return asyncio.run(coro)  # type: ignore[arg-type]


def mini_request(**overrides: Any) -> EvalRequest:
    return EvalRequest(workload=MINI_WORKLOAD, **overrides)


def fake_result(request: EvalRequest, cycles: float = 100.0) -> EvalResult:
    """A tiny but schema-complete result for stubbed backends."""
    return EvalResult(
        workload=request.workload,
        config_label=request.config_label,
        backend=request.backend,
        layers=(LayerResult(name="l0", macs=1000, cycles=cycles,
                            energy_pj=5.0,
                            energy={"dram": 2.0, "sram": 1.0,
                                    "reg": 1.0, "compute": 1.0}),),
    )


async def http_request(port: int, method: str, path: str,
                       body: Any = None,
                       ) -> tuple[int, dict[str, str], Any]:
    """One raw HTTP/1.1 exchange against a local server.

    Returns ``(status, headers, payload)`` with the payload JSON-decoded
    when the response says so.  ``path`` is sent verbatim -- callers
    quote their own query values.
    """
    import json

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = (b"" if body is None
                   else json.dumps(body).encode("utf-8"))
        head = f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
        if payload:
            head += (f"Content-Type: application/json\r\n"
                     f"Content-Length: {len(payload)}\r\n")
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    decoded: Any = body_bytes
    if headers.get("content-type", "").startswith("application/json"):
        decoded = json.loads(body_bytes.decode("utf-8"))
    else:
        decoded = body_bytes.decode("utf-8", errors="replace")
    return status, headers, decoded


def counting_backend(monkeypatch: pytest.MonkeyPatch, name: str,
                     fn: Callable[[EvalRequest], EvalResult] | None = None,
                     ) -> list[EvalRequest]:
    """Replace backend ``name``'s ``evaluate`` with a counting stub.

    Returns the (mutable) list of requests the stub has served; ``fn``
    overrides the answer (default: :func:`fake_result`).  Only valid
    for in-process execution (``workers=0``) -- a pool worker would
    re-import the unpatched backend.
    """
    from repro.eval.registry import get_backend

    backend = get_backend(name)
    calls: list[EvalRequest] = []

    def evaluate(request: EvalRequest) -> EvalResult:
        calls.append(request)
        return (fn or fake_result)(request)

    monkeypatch.setattr(backend, "evaluate", evaluate)
    return calls
