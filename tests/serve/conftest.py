"""Shared fixtures for the serving tests."""

from __future__ import annotations

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _clean_faults():
    """No fault plan leaks into the next test (or the exported env)."""
    yield
    faults.configure(None)
    faults.clear_point_context()
