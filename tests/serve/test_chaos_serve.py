"""Chaos at the serve site: injected faults against the live service.

The acceptance pin: a seeded ``crash:site=serve`` plan completes green
-- every request answered, the planned retry counters recorded -- in
both compute modes (inline and the supervised pool), and a
``slow_io:site=serve`` plan stalls exactly the store reads it
schedules, surfaced at ``/metrics`` as ``serve.faults.slow_read``.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro import faults
from repro.dse.retry import RetryPolicy
from repro.serve.service import EvalService
from serve_helpers import counting_backend, mini_request, run_async

FAST_RETRY = RetryPolicy(backoff_s=0.0, jitter=0.0)


def _store_records(root) -> list[dict]:
    records = []
    for path in root.rglob("results.jsonl"):
        for line in path.read_text().splitlines():
            if line.strip():
                records.append(json.loads(line))
    return records


async def _serve_one(root, request, **kwargs):
    service = EvalService(root, **kwargs)
    await service.start()
    outcome = await service.submit(request)
    await service.drain(timeout_s=10)
    return service, outcome


class TestCrashAtServe:
    def test_inline_crash_retries_to_green(self, tmp_path, monkeypatch):
        calls = counting_backend(monkeypatch, "model")
        request = mini_request()
        # Certainty crash on every first attempt; the retry (attempt 1)
        # is past the attempt<1 gate and sails through.
        faults.configure("seed=7,crash:1:attempt<1:site=serve")

        service, outcome = run_async(
            _serve_one(tmp_path, request, policy=FAST_RETRY))
        assert outcome.ok
        assert outcome.attempts == 2
        assert len(calls) == 1              # attempt 0 crashed pre-backend
        counts = service.metrics.counters()
        assert counts["serve.retried"] == 1
        assert counts["serve.faults.recovered"] == 1
        (record,) = _store_records(tmp_path)
        assert record["attempts"] == 2
        assert "InjectedFault" in record["last_error"]

    def test_pool_crash_retries_to_green(self, tmp_path):
        """The plan rides $REPRO_FAULTS into the pool's worker
        processes; the crash costs one attempt there, never the
        service."""
        request = mini_request()
        faults.configure("seed=7,crash:1:attempt<1:site=serve")

        service, outcome = run_async(
            _serve_one(tmp_path, request, workers=2, policy=FAST_RETRY))
        assert outcome.ok
        assert outcome.attempts == 2
        counts = service.metrics.counters()
        assert counts["serve.retried"] == 1
        assert counts["serve.faults.recovered"] == 1
        (record,) = _store_records(tmp_path)
        assert record["attempts"] == 2

    def test_crash_budget_exhaustion_settles_failed(self, tmp_path,
                                                    monkeypatch):
        counting_backend(monkeypatch, "model")
        faults.configure("seed=7,crash:1:site=serve")  # every attempt

        service, outcome = run_async(
            _serve_one(tmp_path, mini_request(),
                       policy=FAST_RETRY.with_overrides(max_attempts=2)))
        assert not outcome.ok
        assert not outcome.poisoned         # injected crashes are transient
        assert outcome.attempts == 2
        assert outcome.etype == "InjectedFault"
        assert service.metrics.count("serve.failed") == 1
        assert _store_records(tmp_path) == []


class TestSlowIoAtServe:
    def test_first_store_read_stalls_and_is_counted(self, tmp_path,
                                                    monkeypatch):
        counting_backend(monkeypatch, "model")
        request = mini_request()
        # attempt<1 at the serve site gates on the per-key *read
        # ordinal*: only the first lookup of a key stalls.
        faults.configure("seed=7,slow_s=0.1,slow_io:1:attempt<1:site=serve")

        async def main():
            service = EvalService(tmp_path, hot_max=0)  # force store reads
            await service.start()
            start = time.perf_counter()
            first = await service.submit(request)
            first_s = time.perf_counter() - start
            start = time.perf_counter()
            second = await service.submit(request)
            second_s = time.perf_counter() - start
            await service.drain(timeout_s=10)
            return service, first, second, first_s, second_s

        service, first, second, first_s, second_s = run_async(main())
        assert first.ok and second.ok
        assert first_s >= 0.1               # the scheduled stall
        assert second_s < 0.1               # ordinal 1 is past the gate
        assert service.metrics.count("serve.faults.slow_read") == 1

    def test_crash_plan_does_not_touch_the_read_path(self, tmp_path,
                                                     monkeypatch):
        """The serve site's kinds are split between its two hooks: a
        crash-only plan fires in the worker, never the store read."""
        counting_backend(monkeypatch, "model")
        faults.configure("seed=7,crash:1:attempt<1:site=serve")

        service, outcome = run_async(
            _serve_one(tmp_path, mini_request(), policy=FAST_RETRY))
        assert outcome.ok
        assert service.metrics.count("serve.faults.slow_read") == 0


class TestChaosDeterminism:
    def test_same_plan_same_outcome(self, tmp_path, monkeypatch):
        """Chaos runs are reproducible: the same seeded plan against
        the same request yields the same attempt count and answer."""
        counting_backend(monkeypatch, "model")
        request = mini_request()

        def once(root):
            faults.configure("seed=11,crash:0.5:attempt<2:site=serve")
            service, outcome = run_async(
                _serve_one(root, request, policy=FAST_RETRY))
            faults.configure(None)
            return outcome

        a = once(tmp_path / "a")
        b = once(tmp_path / "b")
        assert a.ok == b.ok
        assert a.attempts == b.attempts
        if a.ok:
            assert a.result.to_dict() == b.result.to_dict()
