"""The evaluation service: coalescing, cache tiers, retries, drain.

The acceptance pins: (1) N=8 concurrent identical sim-backed requests
produce exactly one backend call, one store append, and 8 identical
responses, with the counters matching (``serve.coalesced == 7``);
(2) a repeat request hits the hot tier; (3) a saturated miss queue
answers ``rejected`` (503 at the HTTP layer) instead of hoarding
latency; (4) a poison request settles as ``poisoned`` with the last
error preserved; (5) two service instances over one store root share
results through the store tier.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.dse.retry import RetryPolicy
from repro.eval.request import EvalRequest
from repro.serve.service import EvalService, Outcome, ServeJob
from serve_helpers import counting_backend, fake_result, mini_request, run_async

#: A zero-wait retry policy so failure tests don't sleep.
FAST_RETRY = RetryPolicy(backoff_s=0.0, jitter=0.0)


async def _started(root, **kwargs) -> EvalService:
    service = EvalService(root, **kwargs)
    await service.start()
    return service


def _store_lines(root) -> list[dict]:
    lines = []
    for path in root.rglob("results.jsonl"):
        for line in path.read_text().splitlines():
            if line.strip():
                lines.append(json.loads(line))
    return lines


class TestCoalescing:
    def test_eight_identical_requests_one_evaluation(self, tmp_path,
                                                     monkeypatch):
        calls = counting_backend(monkeypatch, "sim-vectorized")
        request = mini_request(backend="sim-vectorized")

        async def main():
            service = await _started(tmp_path)
            outcomes = await asyncio.gather(
                *(service.submit(request) for _ in range(8)))
            await service.drain(timeout_s=5)
            return outcomes

        outcomes = run_async(main())
        assert len(calls) == 1                      # one backend call
        assert len(_store_lines(tmp_path)) == 1     # one store append
        assert all(o.ok for o in outcomes)
        dicts = [o.result.to_dict() for o in outcomes]
        assert all(d == dicts[0] for d in dicts)    # 8 identical answers
        assert sorted(o.source for o in outcomes) == \
            ["coalesced"] * 7 + ["computed"]

    def test_coalescing_counters(self, tmp_path, monkeypatch):
        counting_backend(monkeypatch, "sim-vectorized")
        request = mini_request(backend="sim-vectorized")

        async def main():
            service = await _started(tmp_path)
            await asyncio.gather(
                *(service.submit(request) for _ in range(8)))
            # A repeat after settlement is a hot-tier hit.
            repeat = await service.submit(request)
            await service.drain(timeout_s=5)
            return service, repeat

        service, repeat = run_async(main())
        counts = service.metrics.counters()
        assert counts["serve.coalesced"] == 7
        assert counts["serve.cache.miss"] == 1
        assert counts["serve.evaluated"] == 1
        assert counts["serve.requests"] == 9
        assert counts["serve.cache.hot_hit"] == 1
        assert repeat.source == "hot"

    def test_different_requests_do_not_coalesce(self, tmp_path,
                                                monkeypatch):
        calls = counting_backend(monkeypatch, "model")
        a = mini_request()
        b = EvalRequest(workload="cnn_lstm@frames=2+bins=32+hidden=32")

        async def main():
            service = await _started(tmp_path)
            outcomes = await asyncio.gather(service.submit(a),
                                            service.submit(b))
            await service.drain(timeout_s=5)
            return service, outcomes

        service, outcomes = run_async(main())
        assert len(calls) == 2
        assert all(o.ok for o in outcomes)
        assert service.metrics.count("serve.coalesced") == 0
        assert len(_store_lines(tmp_path)) == 2


class TestCacheTiers:
    def test_store_tier_across_instances(self, tmp_path, monkeypatch):
        calls = counting_backend(monkeypatch, "model")
        request = mini_request()

        async def first():
            service = await _started(tmp_path)
            outcome = await service.submit(request)
            await service.drain(timeout_s=5)
            return outcome

        async def second():
            # A fresh instance: cold hot tier, warm store.
            service = await _started(tmp_path)
            outcome = await service.submit(request)
            counters = service.metrics.counters()
            await service.drain(timeout_s=5)
            return outcome, counters

        computed = run_async(first())
        stored, counters = run_async(second())
        assert len(calls) == 1                     # store answered run 2
        assert computed.source == "computed"
        assert stored.source == "store"
        assert counters["serve.cache.store_hit"] == 1
        assert stored.result.to_dict() == computed.result.to_dict()

    def test_hot_tier_disabled_falls_back_to_store(self, tmp_path,
                                                   monkeypatch):
        counting_backend(monkeypatch, "model")
        request = mini_request()

        async def main():
            service = await _started(tmp_path, hot_max=0)
            first = await service.submit(request)
            second = await service.submit(request)
            await service.drain(timeout_s=5)
            return service, first, second

        service, first, second = run_async(main())
        assert first.source == "computed"
        assert second.source == "store"
        assert service.metrics.count("serve.cache.hot_hit") == 0


class TestBackpressure:
    def test_saturated_queue_rejects(self, tmp_path, monkeypatch):
        release = threading.Event()

        def slow(request):
            release.wait(timeout=10)
            return fake_result(request)

        counting_backend(monkeypatch, "model", fn=slow)
        reqs = [EvalRequest(
            workload=f"cnn_lstm@frames=2+bins=32+hidden={h}")
            for h in (16, 32, 64)]

        async def main():
            service = await _started(tmp_path, queue_max=1)
            # First miss: dispatched, blocks the batch thread.
            t1 = asyncio.create_task(service.submit(reqs[0]))
            await asyncio.sleep(0.1)
            # Second miss: parks in the (size-1) queue.
            t2 = asyncio.create_task(service.submit(reqs[1]))
            await asyncio.sleep(0.05)
            # Third miss: queue full -> settled 'rejected' immediately.
            rejected = await service.submit(reqs[2])
            release.set()
            first, second = await asyncio.gather(t1, t2)
            await service.drain(timeout_s=5)
            return service, first, second, rejected

        service, first, second, rejected = run_async(main())
        assert first.ok and second.ok
        assert not rejected.ok
        assert rejected.kind == "rejected"
        assert "saturated" in rejected.error
        assert service.metrics.count("serve.rejected") == 1


class TestFailures:
    def test_poison_request_fails_fast_with_last_error(self, tmp_path,
                                                       monkeypatch):
        def poison(request):
            raise ValueError("deterministically broken config")

        counting_backend(monkeypatch, "model", fn=poison)

        async def main():
            service = await _started(tmp_path, policy=FAST_RETRY)
            outcome = await service.submit(mini_request())
            await service.drain(timeout_s=5)
            return service, outcome

        service, outcome = run_async(main())
        assert not outcome.ok
        assert outcome.poisoned
        assert outcome.attempts == 1               # no retry on poison
        assert outcome.etype == "ValueError"
        assert "deterministically broken" in outcome.error
        assert service.metrics.count("serve.poisoned") == 1
        assert service.metrics.count("serve.failed") == 1
        assert _store_lines(tmp_path) == []        # failures don't persist

    def test_transient_failure_retries_then_commits(self, tmp_path,
                                                    monkeypatch):
        attempts = {"n": 0}

        def flaky(request):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise OSError("transient infrastructure weather")
            return fake_result(request)

        counting_backend(monkeypatch, "model", fn=flaky)

        async def main():
            service = await _started(tmp_path, policy=FAST_RETRY)
            outcome = await service.submit(mini_request())
            await service.drain(timeout_s=5)
            return service, outcome

        service, outcome = run_async(main())
        assert outcome.ok
        assert outcome.attempts == 2
        assert service.metrics.count("serve.retried") == 1
        (record,) = _store_lines(tmp_path)
        assert record["attempts"] == 2
        assert "transient" in record["last_error"]

    def test_retry_budget_exhausts(self, tmp_path, monkeypatch):
        def always_down(request):
            raise OSError("the disk is on fire")

        counting_backend(monkeypatch, "model", fn=always_down)

        async def main():
            service = await _started(
                tmp_path, policy=FAST_RETRY.with_overrides(max_attempts=2))
            outcome = await service.submit(mini_request())
            await service.drain(timeout_s=5)
            return service, outcome

        service, outcome = run_async(main())
        assert not outcome.ok
        assert not outcome.poisoned                # transient, not poison
        assert outcome.attempts == 2
        assert service.metrics.count("serve.failed") == 1


class TestDrain:
    def test_drain_rejects_new_misses_serves_caches(self, tmp_path,
                                                    monkeypatch):
        counting_backend(monkeypatch, "model")
        warm = mini_request()
        cold = EvalRequest(workload="cnn_lstm@frames=2+bins=32+hidden=32")

        async def main():
            service = await _started(tmp_path)
            await service.submit(warm)             # computed, hot now
            assert service.health()["status"] == "ok"
            settled = await service.drain(timeout_s=5)
            health = service.health()
            hot = await service.submit(warm)       # hot tier still answers
            miss = await service.submit(cold)      # new misses rejected
            return settled, health, hot, miss

        settled, health, hot, miss = run_async(main())
        assert settled
        assert health["status"] == "draining"
        assert hot.ok and hot.source == "hot"
        assert not miss.ok
        assert miss.kind == "draining"

    def test_drain_waits_for_inflight(self, tmp_path, monkeypatch):
        release = threading.Event()

        def slow(request):
            release.wait(timeout=10)
            return fake_result(request)

        counting_backend(monkeypatch, "model", fn=slow)

        async def main():
            service = await _started(tmp_path)
            task = asyncio.create_task(service.submit(mini_request()))
            await asyncio.sleep(0.1)               # dispatched, blocked
            drain = asyncio.create_task(service.drain(timeout_s=10))
            await asyncio.sleep(0.05)
            assert not drain.done()                # waiting on in-flight
            release.set()
            outcome = await task
            settled = await drain
            return settled, outcome

        settled, outcome = run_async(main())
        assert settled
        assert outcome.ok                          # finished, not dropped


class TestTwoClients:
    def test_two_services_one_store(self, tmp_path, monkeypatch):
        """Two service instances (two event loops, as two processes
        would be) against one store root: one computes, the other reads
        the committed record through the store tier, and concurrent
        distinct keys from both all persist."""
        calls = counting_backend(monkeypatch, "model")
        shared = mini_request()
        only_a = EvalRequest(workload="cnn_lstm@frames=2+bins=32+hidden=16")
        only_b = EvalRequest(workload="cnn_lstm@frames=2+bins=32+hidden=32")

        async def client(extra):
            service = await _started(tmp_path)
            outcomes = await asyncio.gather(service.submit(shared),
                                            service.submit(extra))
            await service.drain(timeout_s=5)
            return outcomes

        a_shared, a_extra = run_async(client(only_a))
        b_shared, b_extra = run_async(client(only_b))
        assert a_shared.source == "computed"
        assert b_shared.source == "store"          # client 2 reads client 1
        assert a_extra.ok and b_extra.ok
        assert a_shared.result.to_dict() == b_shared.result.to_dict()
        assert len(calls) == 3                     # shared computed once
        assert len(_store_lines(tmp_path)) == 3


class TestValidation:
    def test_invalid_request_raises_value_error(self, tmp_path):
        async def main():
            service = await _started(tmp_path)
            try:
                with pytest.raises(ValueError, match="unknown"):
                    await service.submit(
                        EvalRequest(workload="no_such_net"))
            finally:
                await service.drain(timeout_s=5)

        run_async(main())

    def test_submit_before_start_raises(self, tmp_path):
        async def main():
            service = EvalService(tmp_path)
            with pytest.raises(RuntimeError, match="not started"):
                await service.submit(mini_request())

        run_async(main())

    def test_constructor_bounds(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            EvalService(tmp_path, workers=-1)
        with pytest.raises(ValueError, match="queue_max"):
            EvalService(tmp_path, queue_max=0)

    def test_outcome_and_job_shapes(self):
        request = mini_request()
        job = ServeJob(request)
        assert job.key() == request.key()
        assert job.label == request.label
        assert job.to_dict() == request.to_dict()
        assert not Outcome(key="k").ok
        assert Outcome(key="k", result=fake_result(request)).ok


class TestPoolMode:
    def test_pool_workers_compute_and_commit(self, tmp_path):
        """workers>=1 runs misses through the supervised WatchdogPool
        (real subprocesses, unpatched backends)."""
        request = mini_request()                   # model backend: fast

        async def main():
            service = await _started(tmp_path, workers=2,
                                     policy=FAST_RETRY)
            outcomes = await asyncio.gather(
                *(service.submit(request) for _ in range(4)))
            await service.drain(timeout_s=10)
            return service, outcomes

        service, outcomes = run_async(main())
        assert all(o.ok for o in outcomes)
        assert sorted(o.source for o in outcomes) == \
            ["coalesced"] * 3 + ["computed"]
        assert service.metrics.count("serve.evaluated") == 1
        assert len(_store_lines(tmp_path)) == 1
