"""Service metrics: counters, the latency window, and obs mirroring."""

from repro import obs
from repro.serve.metrics import ServeMetrics


class TestCounters:
    def test_incr_accumulates(self):
        metrics = ServeMetrics()
        metrics.incr("serve.requests")
        metrics.incr("serve.requests", n=2)
        assert metrics.count("serve.requests") == 3
        assert metrics.count("serve.never") == 0

    def test_counters_snapshot_sorted(self):
        metrics = ServeMetrics()
        metrics.incr("serve.zz")
        metrics.incr("serve.aa")
        assert list(metrics.counters()) == ["serve.aa", "serve.zz"]

    def test_mirrored_to_obs(self, tmp_path):
        """A traced service leaves its serve.* counters in the trace
        files -- one name, two sinks."""
        from repro.obs.report import aggregate, iter_events

        directory = obs.configure(tmp_path / "trace")
        try:
            metrics = ServeMetrics()
            metrics.incr("serve.requests", n=4)
            obs.flush()
            data = aggregate(iter_events(directory))
            assert data["counters"]["serve.requests"]["total"] == 4
        finally:
            obs.configure(None)


class TestLatency:
    def test_empty_window(self):
        assert ServeMetrics().latency() == {"count": 0}

    def test_percentiles_over_known_samples(self):
        metrics = ServeMetrics()
        for ms in range(1, 101):           # 1ms .. 100ms
            metrics.observe_latency(ms / 1e3)
        stats = metrics.latency()
        assert stats["count"] == 100
        assert stats["max_ms"] == 100.0
        assert abs(stats["p50_ms"] - 50.0) <= 1.0
        assert abs(stats["p95_ms"] - 95.0) <= 1.0
        assert abs(stats["mean_ms"] - 50.5) < 1e-9

    def test_window_is_bounded(self):
        metrics = ServeMetrics(window=8)
        for i in range(100):
            metrics.observe_latency(float(i))
        stats = metrics.latency()
        assert stats["count"] == 8
        assert stats["max_ms"] == 99.0 * 1e3
        # The window holds only the most recent 8 samples.
        assert stats["p50_ms"] >= 92.0 * 1e3
