"""Cross-module integration tests: the full offline-to-silicon story.

Each test exercises a complete user journey spanning several packages,
mirroring how the paper's system would be used end to end.
"""

import numpy as np
import pytest

from repro.core.bitflip import flip_layer
from repro.core.compression import bcs_compress, bcs_decompress
from repro.core.pipeline import BitWavePipeline
from repro.models import build_cnn_lstm
from repro.models.fidelity import make_evaluator
from repro.sim.npu import BitWaveNPU


class TestFlipCompressDeploySimulate:
    """Int8 weights -> Bit-Flip -> BCS compress -> simulate the NPU on
    the compressed network -> outputs match the flipped weights."""

    def test_end_to_end(self):
        rng = np.random.default_rng(42)
        weights = np.clip(np.round(rng.laplace(0, 10, (16, 64))),
                          -127, 127).astype(np.int8)
        acts = rng.integers(-64, 64, (4, 64)).astype(np.int32)

        flipped = flip_layer(weights, 5, 16).weights
        compressed = bcs_compress(flipped, 16)
        restored = bcs_decompress(compressed)
        assert np.array_equal(restored, flipped)

        run = BitWaveNPU(group_size=16).run_fc(restored, acts)
        expected = acts.astype(np.int64) @ flipped.astype(np.int64).T
        assert np.array_equal(run.outputs, expected)

    def test_flip_reduces_both_cycles_and_bits(self):
        rng = np.random.default_rng(43)
        weights = np.clip(np.round(rng.laplace(0, 10, (16, 64))),
                          -127, 127).astype(np.int8)
        acts = rng.integers(-64, 64, (4, 64)).astype(np.int32)

        base_run = BitWaveNPU(group_size=16).run_fc(weights, acts)
        flipped = flip_layer(weights, 5, 16).weights
        flip_run = BitWaveNPU(group_size=16).run_fc(flipped, acts)
        assert flip_run.compute_cycles < base_run.compute_cycles
        assert flip_run.weight_bits_fetched < base_run.weight_bits_fetched


class TestModelWeightsThroughPipeline:
    """A real benchmark model's weights flow through the pipeline and
    back into the model with fidelity accounted for."""

    def test_cnn_lstm_roundtrip(self):
        model = build_cnn_lstm("tiny")
        inputs = model.sample_inputs(2)
        evaluate = make_evaluator(model, inputs)
        weights = model.weights_int8()

        pipeline = BitWavePipeline(
            group_size=16,
            zero_column_targets={"LSTM.0": 4, "LSTM.1": 4},
        )
        report = pipeline.deploy(weights)
        assert report.compression_ratio > 1.0

        # Decompressed weights are exactly the flipped weights.
        for name, layer in report.layers.items():
            assert np.array_equal(
                bcs_decompress(layer.compressed), layer.weights)

        # Installing the deployed weights keeps fidelity high.
        fidelity = evaluate(report.flipped_weights())
        assert fidelity > 3.5  # PESQ proxy scale [1, 4.5]

    def test_deeper_flips_trade_fidelity_for_cr(self):
        model = build_cnn_lstm("tiny")
        inputs = model.sample_inputs(2)
        evaluate = make_evaluator(model, inputs)
        weights = model.weights_int8()

        shallow = BitWavePipeline(
            group_size=16,
            zero_column_targets={n: 3 for n in weights}).deploy(weights)
        deep = BitWavePipeline(
            group_size=16,
            zero_column_targets={n: 7 for n in weights}).deploy(weights)
        assert deep.compression_ratio > shallow.compression_ratio
        assert evaluate(deep.flipped_weights()) <= \
            evaluate(shallow.flipped_weights()) + 1e-9


class TestAnalyticalModelConsumesPipelineStats:
    """The accelerator model's Bit-Flip statistics agree with what the
    pipeline actually produces on real tensors."""

    def test_cr_agreement(self):
        from repro.sparsity.stats import compute_layer_stats

        rng = np.random.default_rng(44)
        weights = np.clip(np.round(rng.laplace(0, 10, (64, 256))),
                          -127, 127).astype(np.int8)
        target, g = 5, 16

        stats_cr = compute_layer_stats(weights).with_bitflip(target).bcs_cr[g]
        deployed = BitWavePipeline(
            group_size=g, zero_column_targets={"w": target}).deploy(
                {"w": weights})
        real_cr = deployed.layers["w"].compression_ratio
        # Analytic transform is a (tight) conservative bound.
        assert stats_cr == pytest.approx(real_cr, rel=0.05)
        assert real_cr >= stats_cr * 0.999
