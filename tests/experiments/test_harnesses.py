"""Tests for the lightweight experiment harnesses (structure + claims).

The heavyweight accelerator-grid figures are covered by the benchmark
suite and tests/accelerators/test_paper_shape.py; here we unit-test the
cheap harnesses and the output formatting of all of them.
"""

import pytest

from repro.experiments import (
    fig01_sparsity,
    fig04_bcs_2c_vs_sm,
    fig05_compression,
    fig09_utilization,
    fig18_area_power,
    tab3_sota,
    tab4_pe_types,
    validation_sim_vs_model,
)


class TestFig01:
    def test_single_network(self):
        results = fig01_sparsity.run(("cnn_lstm",))
        assert set(results) == {"cnn_lstm"}
        summary = results["cnn_lstm"]
        assert summary["bit_sparsity_sm"] > summary["bit_sparsity_2c"] \
            > summary["value_sparsity"]

    def test_main_prints_table(self, capsys):
        fig01_sparsity.main()
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "resnet18" in out


class TestFig04:
    def test_sm_beats_2c(self):
        result = fig04_bcs_2c_vs_sm.run()
        assert result["column_sparsity_sm"] > result["column_sparsity_2c"]
        assert result["improvement"] > 1.0

    def test_group_size_parameter(self):
        g4 = fig04_bcs_2c_vs_sm.run(group_size=4)
        g32 = fig04_bcs_2c_vs_sm.run(group_size=32)
        # Larger groups see fewer co-occurring zeros.
        assert g32["column_sparsity_sm"] <= g4["column_sparsity_sm"]


class TestFig05:
    @pytest.fixture(scope="class")
    def results(self):
        return fig05_compression.run()

    def test_all_group_sizes_present(self, results):
        assert set(results["bcs"]) == set(fig05_compression.GROUP_SIZES)

    def test_real_cr_has_interior_peak(self, results):
        reals = [results["bcs"][g]["real"]
                 for g in fig05_compression.GROUP_SIZES]
        best = max(range(len(reals)), key=lambda i: reals[i])
        assert 0 < best < len(reals) - 1  # neither G=1 nor G=64


class TestFig09:
    def test_structure(self):
        results = fig09_utilization.run()
        assert len(results) == 6
        for values in results.values():
            for util in values.values():
                assert 0.0 < util <= 1.0


class TestAreaTables:
    def test_tab3_contains_all_designs(self):
        rows = tab3_sota.run()
        for design in ("Stripes", "Pragmatic", "SCNN", "Bitlet",
                       "HUAA", "BitWave"):
            assert design in rows

    def test_fig18_components(self):
        results = fig18_area_power.run()
        assert set(results["area_mm2"]) == set(results["power_mw"])

    def test_tab4_ratios_attached(self):
        table = tab4_pe_types.run()
        for values in table.values():
            assert "area_ratio" in values
            assert "power_ratio" in values


class TestValidation:
    def test_all_layers_within_paper_bound(self):
        for row in validation_sim_vs_model.run():
            assert row["deviation"] < 0.06

    def test_main_prints(self, capsys):
        validation_sim_vs_model.main()
        assert "deviation" in capsys.readouterr().out


class TestMainsPrint:
    @pytest.mark.parametrize("module", [
        fig04_bcs_2c_vs_sm, fig05_compression, fig09_utilization,
        tab3_sota, fig18_area_power, tab4_pe_types,
    ])
    def test_main_returns_table(self, module, capsys):
        table = module.main()
        assert isinstance(table, str)
        assert capsys.readouterr().out.strip()
