"""Tests for the ablation harness and the Fig. 12 workload table."""

import pytest

from repro.experiments import ablations, fig12_workloads


class TestFig12:
    def test_published_budgets(self):
        results = fig12_workloads.run()
        # ResNet18 @224: ~1.8 GMACs / 11.7M params.
        assert results["resnet18"]["gmacs"] == pytest.approx(1.82, rel=0.1)
        assert results["resnet18"]["mparams"] == pytest.approx(11.7, rel=0.05)
        # MobileNetV2 @224: ~0.3 GMACs / 3.4M params.
        assert results["mobilenetv2"]["gmacs"] == pytest.approx(0.31, rel=0.15)
        # BERT-Base encoder: ~85M params.
        assert results["bert_base"]["mparams"] == pytest.approx(85, rel=0.02)

    def test_main_prints(self, capsys):
        fig12_workloads.main()
        assert "GMACs" in capsys.readouterr().out


class TestAblationHarness:
    def test_group_size_keys(self):
        results = ablations.group_size_ablation("cnn_lstm")
        assert set(results) == {8, 16, 32}

    def test_sync_domain_monotone(self):
        results = ablations.sync_domain_ablation(
            "cnn_lstm", domains=(1, 8, 64))
        values = [results[m] for m in (1, 8, 64)]
        assert values == sorted(values)

    def test_dense_precision_endpoints(self):
        results = ablations.dense_precision_ablation(
            "cnn_lstm", precisions=(8, 4))
        assert results[8] == 1.0
        assert results[4] > 1.0

    def test_bitflip_depth_monotone(self):
        results = ablations.bitflip_depth_ablation(
            "cnn_lstm", targets=(0, 3, 6))
        assert results[0]["speedup"] == pytest.approx(1.0)
        assert results[6]["speedup"] > results[3]["speedup"]
