"""Built-in evaluation backends: the analytical model and the simulator.

- ``model`` answers requests through the STEP1-STEP4 analytical
  pipeline (:class:`repro.accelerators.base.Accelerator`), for any of
  the six modelled accelerators and every BitWave ablation rung.
- ``sim-vectorized`` / ``sim-reference`` lower each workload layer onto
  a :class:`repro.sim.npu.BitWaveNPU` run (see
  :mod:`repro.eval.lowering`) -- whole-network layer tables simulated
  structurally, not just modelled.  Simulator results report cycles,
  traffic *and* energy (the counters priced with the arch's
  :class:`repro.arch.TechSpec`) plus, per layer, the matched analytical
  compute-cycle and energy predictions and their deviations, so every
  sim-backed result doubles as a Section V-B style model-validation
  point.

Both backends construct their machine from the request's ``arch`` axis
(:mod:`repro.arch`): the model prices with the arch's technology and
SRAM port widths, the simulator executes the arch's PE-array geometry.
"""

from __future__ import annotations

from repro.accelerators import build_accelerator, build_bitwave_variant
from repro.accelerators.base import Accelerator, NetworkEvaluation
from repro.arch import ArchSpec, parse_arch
from repro.eval.fingerprints import code_fingerprint, sim_backend_fingerprint
from repro.eval.lowering import (
    analytic_compute_cycles,
    analytic_energy_pj,
    energy_deviation,
    layer_matmul_weights,
    layer_stats_for_sim,
    matmul_reduction,
    model_vs_sim_deviation,
    simulate_layer,
)
from repro.eval.registry import register_backend
from repro.obs import trace
from repro.eval.request import EvalOptions, EvalRequest
from repro.eval.result import EvalResult, LayerResult, from_network_evaluation
from repro.sim.npu import BitWaveNPU
from repro.workloads.nets import network_layers


def build_request_accelerator(request: EvalRequest) -> Accelerator:
    """The accelerator instance a request's configuration names."""
    arch = parse_arch(request.arch)
    if request.variant is None:
        return build_accelerator(request.accelerator, arch)
    return build_bitwave_variant(request.variant, arch)


def model_network_evaluation(
    accelerator: Accelerator,
    workload: str,
    options: EvalOptions = EvalOptions(),
) -> NetworkEvaluation:
    """The analytical pipeline on an accelerator *instance*.

    This is the computation formerly inlined in
    ``Accelerator.evaluate_network`` (now a deprecation shim over this
    function); instance-level entry so ad-hoc accelerator builds that
    have no registry name still evaluate through ``repro.eval``.
    """
    specs = network_layers(workload, batch=options.batch)
    return accelerator.evaluate_workload(
        specs, accelerator.layer_stats(workload), workload)


class ModelBackend:
    """The analytical STEP1-STEP4 model as an :class:`EvalBackend`."""

    name = "model"

    def fingerprint(self) -> str:
        return code_fingerprint()

    def evaluate(self, request: EvalRequest) -> EvalResult:
        request.validate()
        accelerator = build_request_accelerator(request)
        with trace("eval.model", workload=request.workload,
                   config=request.config_label):
            evaluation = model_network_evaluation(
                accelerator, request.workload, request.options)
        return from_network_evaluation(
            evaluation, backend=self.name,
            clock_hz=accelerator.arch.tech.clock_frequency_hz)


class SimBackend:
    """One structural-simulator datapath as an :class:`EvalBackend`."""

    def __init__(self, datapath: str) -> None:
        self.datapath = datapath
        self.name = f"sim-{datapath}"

    def fingerprint(self) -> str:
        return sim_backend_fingerprint()

    def evaluate(self, request: EvalRequest) -> EvalResult:
        request.validate()
        options = request.options
        arch: ArchSpec = parse_arch(request.arch)
        layers = []
        for spec in network_layers(request.workload, batch=options.batch):
            npu = BitWaveNPU(arch=arch, backend=self.datapath)
            with trace("eval.lower.weights", layer=spec.name):
                weights = layer_matmul_weights(spec)
            run = simulate_layer(spec, npu,
                                 max_contexts=options.sim_max_contexts,
                                 weights=weights)
            with trace("eval.lower.stats", layer=spec.name):
                stats = layer_stats_for_sim(spec, arch.group_size,
                                            weights=weights)
            analytic = analytic_compute_cycles(
                stats,
                k=spec.k,
                reduction=matmul_reduction(spec),
                rows=run.total_rows,
                group_size=arch.group_size,
                ku=arch.ku,
                oxu=arch.oxu,
                dense_precision=(arch.dense_precision
                                 if arch.columns == "dense" else None),
            )
            deviation = model_vs_sim_deviation(run.compute_cycles, analytic)
            analytic_pj = analytic_energy_pj(
                stats, spec,
                k=spec.k,
                reduction=matmul_reduction(spec),
                rows=run.total_rows,
                arch=arch,
            )
            layers.append(LayerResult(
                name=spec.name,
                macs=spec.macs,
                cycles=float(run.total_cycles),
                energy_pj=run.energy.total_pj,
                energy=run.energy.components(),
                traffic={
                    "weight_bits_fetched": float(run.weight_bits_fetched),
                    "dense_weight_bits": float(run.dense_weight_bits),
                    "act_words_fetched": float(run.act_words),
                },
                detail={
                    "kind": spec.kind,
                    "compute_cycles": run.compute_cycles,
                    "fetch_cycles": run.fetch_cycles,
                    "column_ops": run.column_ops,
                    "analytic_cycles": analytic,
                    "model_deviation": deviation,
                    "analytic_energy_pj": analytic_pj,
                    "energy_deviation": energy_deviation(
                        run.energy.total_pj, analytic_pj),
                    "simulated_rows": run.simulated_rows,
                    "total_rows": run.total_rows,
                },
            ))
        return EvalResult(
            workload=request.workload,
            config_label=request.config_label,
            backend=self.name,
            clock_hz=arch.tech.clock_frequency_hz,
            layers=tuple(layers),
        )


#: Built-in backends, registered at import.
MODEL_BACKEND_INSTANCE = register_backend(ModelBackend())
SIM_VECTORIZED_BACKEND = register_backend(SimBackend("vectorized"))
SIM_REFERENCE_BACKEND = register_backend(SimBackend("reference"))
