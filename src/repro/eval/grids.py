"""Shared evaluation grids for the experiment harnesses.

The Fig. 13-17 harnesses all consume the same 6 accelerators x 4
networks grid (plus the Fig. 13 BitWave ablation ladder), now expressed
as :class:`EvalRequest` batches through :func:`repro.eval.evaluate` --
so harness runs, DSE campaigns, and ad-hoc calls share one store-backed
result set.  ``prewarm_grids`` fans the grid out over the DSE pool
executor to fill the store (and this process's memo) in parallel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.accelerators import BITWAVE_VARIANTS, SOTA_ACCELERATORS
from repro.arch import DEFAULT_ARCH
from repro.eval.api import evaluate
from repro.eval.request import EvalRequest
from repro.eval.result import EvalResult
from repro.workloads.nets import NETWORKS

if TYPE_CHECKING:
    from repro.dse.executor import CampaignRun

#: The Fig. 13 ablation ladder, in presentation order.
BREAKDOWN_VARIANTS = BITWAVE_VARIANTS


def evaluation(
    workload: str,
    accelerator: str = "BitWave",
    variant: "str | None" = None,
    backend: str = "model",
    arch: str = DEFAULT_ARCH,
) -> EvalResult:
    """One cached evaluation (thin :func:`evaluate` wrapper)."""
    return evaluate(EvalRequest(
        workload=workload, accelerator=accelerator,
        variant=variant, backend=backend, arch=arch))


def sota_grid(
    networks: tuple[str, ...] = NETWORKS,
    accelerators: "tuple[str, ...] | None" = None,
    backend: str = "model",
    arch: str = DEFAULT_ARCH,
) -> dict[tuple[str, str], EvalResult]:
    """``(accelerator, network) -> result`` for a sub-grid."""
    accelerators = SOTA_ACCELERATORS if accelerators is None else accelerators
    return {
        (acc, net): evaluation(net, accelerator=acc, backend=backend,
                               arch=arch)
        for net in networks
        for acc in accelerators
    }


def breakdown_grid(
    networks: tuple[str, ...] = NETWORKS,
    variants: tuple[str, ...] = BREAKDOWN_VARIANTS,
    arch: str = DEFAULT_ARCH,
) -> dict[tuple[str, str], EvalResult]:
    """``(variant, network) -> result`` for the ablation ladder."""
    return {
        (variant, net): evaluation(net, accelerator="BitWave",
                                   variant=variant, arch=arch)
        for net in networks
        for variant in variants
    }


def prewarm_grids(
    networks: tuple[str, ...] = NETWORKS,
    jobs: int = 1,
    progress: "Callable[..., None] | None" = None,
) -> "CampaignRun | None":
    """Populate store + memo for the full Fig. 13-17 grids, optionally
    in parallel.  Returns ``None`` when no store is available (parallel
    results could not be handed back to this process's memo cheaply, so
    the harnesses would recompute serially anyway)."""
    from repro.dse.executor import run_campaign
    from repro.dse.spec import CampaignSpec
    from repro.eval import api
    from repro.eval.registry import get_backend

    store = api.default_store(get_backend("model"))
    if store is None:
        return None
    spec = CampaignSpec(
        name="experiments-grid",
        accelerators=SOTA_ACCELERATORS,
        networks=networks,
        variants=BREAKDOWN_VARIANTS,
    )
    run = run_campaign(spec, store, jobs=jobs, progress=progress)
    if run.failed:
        # The executor tolerates per-point faults, but a prewarm must
        # hand the harnesses a complete grid.
        raise RuntimeError(
            f"{len(run.failed)} prewarm points failed: "
            + ", ".join(sorted(run.failed_labels())))
    for point in run.points:
        api.memoize(point.request(), run.results[point.key()])
    return run
