"""Typed evaluation requests: the question half of the ``repro.eval`` API.

An :class:`EvalRequest` names one *(workload, accelerator configuration,
backend)* evaluation plus its options, and hashes to the stable key the
result store caches under.  The same request object drives every
backend -- the analytical model and both structural-simulator datapaths
-- so campaign grids, experiment harnesses, and ad-hoc calls all share
one cache keyspace.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.workloads.nets import canonical_network, parse_network

#: Bump when the meaning of a request's fields changes (keys include it).
REQUEST_VERSION = 2

#: The default backend (the analytical STEP1-STEP4 model).
MODEL_BACKEND = "model"

#: The ablation rung equal to ``BitWave()``'s constructor defaults.
FULL_BITWAVE_VARIANT = "+DF+SM+BF"


def config_hash(config: Mapping[str, Any]) -> str:
    """Stable 16-hex-char digest of a JSON-serializable config mapping.

    Canonical JSON (sorted keys, tight separators) makes the digest
    independent of dict insertion order, process, and
    ``PYTHONHASHSEED``.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class EvalOptions:
    """Backend-tunable evaluation knobs.

    ``batch`` scales every layer of the workload; the ``sim_*`` fields
    configure the structural simulator (ignored by the ``model``
    backend) -- BCS group size, kernel/spatial unrolls, and the cap on
    simulated output contexts per layer.  Context blocks beyond
    ``sim_max_contexts`` serialize identically in the datapath, so the
    simulator runs a truncated activation set and rescales the cycle
    and traffic counts exactly (see :mod:`repro.eval.lowering`);
    ``0`` simulates every context.
    """

    batch: int = 1
    sim_group_size: int = 8
    sim_ku: int = 32
    sim_oxu: int = 16
    sim_max_contexts: int = 64

    def validate(self) -> None:
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        for name in ("sim_group_size", "sim_ku", "sim_oxu"):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"{name} must be >= 1, got {getattr(self, name)}")
        if self.sim_max_contexts < 0:
            raise ValueError(
                f"sim_max_contexts must be >= 0, got {self.sim_max_contexts}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "batch": self.batch,
            "sim_group_size": self.sim_group_size,
            "sim_ku": self.sim_ku,
            "sim_oxu": self.sim_oxu,
            "sim_max_contexts": self.sim_max_contexts,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvalOptions":
        return cls(**{name: data[name] for name in cls.__dataclass_fields__
                      if name in data})


@dataclass(frozen=True)
class EvalRequest:
    """One workload x accelerator-configuration x backend evaluation.

    ``workload`` is a network name from the :data:`repro.workloads.nets`
    registry, optionally parametrized (``"bert_base@tokens=128"``).
    ``variant`` selects a rung of the BitWave ablation ladder; ``None``
    is the fully-enabled comparison build.  ``backend`` names a
    registered :class:`repro.eval.registry.EvalBackend`.
    """

    workload: str
    accelerator: str = "BitWave"
    variant: str | None = None
    backend: str = MODEL_BACKEND
    options: EvalOptions = field(default_factory=EvalOptions)

    def __post_init__(self) -> None:
        # The fully-enabled ablation rung IS the SotA comparison build
        # (BitWave's constructor defaults), so both spellings
        # canonicalize to one request and share one store entry.
        if self.accelerator == "BitWave" and self.variant == FULL_BITWAVE_VARIANT:
            object.__setattr__(self, "variant", None)
        # Likewise parametrized workload spellings: defaults dropped,
        # parameters sorted, so "bert_base@tokens=4" == "bert_base".
        try:
            object.__setattr__(self, "workload",
                               canonical_network(self.workload))
        except ValueError:
            pass  # left verbatim; validate() reports the real error

    def validate(self) -> None:
        from repro.accelerators import BITWAVE_VARIANTS, SOTA_ACCELERATORS
        from repro.eval.registry import backend_names

        parse_network(self.workload)  # raises on unknown/bad parameters
        self.options.validate()
        if self.backend not in backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"one of {backend_names()}")
        if self.variant is None:
            if self.accelerator not in SOTA_ACCELERATORS:
                raise ValueError(
                    f"unknown accelerator {self.accelerator!r}; "
                    f"one of {SOTA_ACCELERATORS}")
        else:
            if self.accelerator != "BitWave":
                raise ValueError(
                    f"variants are BitWave ablations; got "
                    f"accelerator={self.accelerator!r}")
            if self.variant not in BITWAVE_VARIANTS:
                raise ValueError(
                    f"unknown BitWave variant {self.variant!r}; "
                    f"one of {BITWAVE_VARIANTS}")
        if self.backend != MODEL_BACKEND:
            # The structural simulator implements the BitWave datapath;
            # ablation rungs have no simulator counterpart.
            if self.accelerator != "BitWave" or self.variant is not None:
                raise ValueError(
                    f"backend {self.backend!r} simulates the fully-enabled "
                    f"BitWave datapath only; got "
                    f"{self.config_label}")

    @property
    def config_label(self) -> str:
        """Display label for the accelerator-configuration axis."""
        label = self.accelerator
        if self.variant is not None:
            label = f"BitWave[{self.variant}]"
        if self.backend != MODEL_BACKEND:
            label = f"{label}@{self.backend}"
        return label

    @property
    def label(self) -> str:
        return f"{self.config_label}/{self.workload}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": REQUEST_VERSION,
            "workload": self.workload,
            "accelerator": self.accelerator,
            "variant": self.variant,
            "backend": self.backend,
            "options": self.options.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvalRequest":
        return cls(
            workload=data["workload"],
            accelerator=data["accelerator"],
            variant=data.get("variant"),
            backend=data.get("backend", MODEL_BACKEND),
            options=EvalOptions.from_dict(data.get("options", {})),
        )

    def key(self) -> str:
        """Stable result-store key for this request."""
        return config_hash(self.to_dict())
