"""Typed evaluation requests: the question half of the ``repro.eval`` API.

An :class:`EvalRequest` names one *(workload, accelerator configuration,
backend)* evaluation plus its options, and hashes to the stable key the
result store caches under.  The same request object drives every
backend -- the analytical model and both structural-simulator datapaths
-- so campaign grids, experiment harnesses, and ad-hoc calls all share
one cache keyspace.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.arch import DEFAULT_ARCH, canonical_arch, parse_arch
from repro.workloads.nets import canonical_network, parse_network

#: Bump when the meaning of a request's fields changes (keys include it).
REQUEST_VERSION = 3

#: The default backend (the analytical STEP1-STEP4 model).
MODEL_BACKEND = "model"

#: The ablation rung equal to ``BitWave()``'s constructor defaults.
FULL_BITWAVE_VARIANT = "+DF+SM+BF"


def config_hash(config: Mapping[str, Any]) -> str:
    """Stable 16-hex-char digest of a JSON-serializable config mapping.

    Canonical JSON (sorted keys, tight separators) makes the digest
    independent of dict insertion order, process, and
    ``PYTHONHASHSEED``.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class EvalOptions:
    """Backend-tunable *evaluation* knobs (not hardware).

    ``batch`` scales every layer of the workload.  ``sim_max_contexts``
    caps the output contexts the structural simulator actually runs per
    layer: context blocks beyond the cap serialize identically in the
    datapath, so the simulator runs a truncated activation set and
    rescales the cycle/traffic/energy counts exactly (see
    :mod:`repro.eval.lowering`); ``0`` simulates every context.

    The hardware itself -- BCS group size, kernel/spatial unrolls,
    bandwidths, technology -- is the request's ``arch`` axis
    (:mod:`repro.arch`), shared by every backend.
    """

    batch: int = 1
    sim_max_contexts: int = 64

    def validate(self) -> None:
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.sim_max_contexts < 0:
            raise ValueError(
                f"sim_max_contexts must be >= 0, got {self.sim_max_contexts}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "batch": self.batch,
            "sim_max_contexts": self.sim_max_contexts,
        }

    #: Pre-arch option keys whose meaning moved to the request's arch
    #: axis; deserializing them silently onto default hardware would
    #: change the numbers, so the migration is loud instead.
    _MOVED_TO_ARCH = ("sim_group_size", "sim_ku", "sim_oxu")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvalOptions":
        moved = [name for name in cls._MOVED_TO_ARCH if name in data]
        if moved:
            raise ValueError(
                f"legacy option keys {moved} now live on the arch axis; "
                f"respell the request with e.g. "
                f"arch='bitwave-16nm@group=16+ku=64+oxu=8'")
        return cls(**{name: data[name] for name in cls.__dataclass_fields__
                      if name in data})


@dataclass(frozen=True)
class EvalRequest:
    """One workload x accelerator-configuration x backend evaluation.

    ``workload`` is a network name from the :data:`repro.workloads.nets`
    registry, optionally parametrized (``"bert_base@tokens=128"``).
    ``variant`` selects a rung of the BitWave ablation ladder; ``None``
    is the fully-enabled comparison build.  ``backend`` names a
    registered :class:`repro.eval.registry.EvalBackend`.  ``arch`` is
    the hardware description both backends evaluate on -- an
    :mod:`repro.arch` preset name, optionally overridden
    (``"bitwave-16nm@sram_pj=0.5+group=16"``); it folds into the
    request's cache key, so overridden-arch results never collide with
    cached defaults.
    """

    workload: str
    accelerator: str = "BitWave"
    variant: str | None = None
    backend: str = MODEL_BACKEND
    arch: str = DEFAULT_ARCH
    options: EvalOptions = field(default_factory=EvalOptions)

    def __post_init__(self) -> None:
        # The fully-enabled ablation rung IS the SotA comparison build
        # (BitWave's constructor defaults), so both spellings
        # canonicalize to one request and share one store entry.
        if self.accelerator == "BitWave" and self.variant == FULL_BITWAVE_VARIANT:
            object.__setattr__(self, "variant", None)
        # Likewise parametrized workload spellings: defaults dropped,
        # parameters sorted, so "bert_base@tokens=4" == "bert_base".
        try:
            object.__setattr__(self, "workload",
                               canonical_network(self.workload))
        except ValueError:
            pass  # left verbatim; validate() reports the real error
        # And arch spellings: no-op overrides dropped, the rest sorted,
        # so "bitwave-16nm@group=8" == "bitwave-16nm".
        try:
            object.__setattr__(self, "arch", canonical_arch(self.arch))
        except ValueError:
            pass  # left verbatim; validate() reports the real error

    def validate(self) -> None:
        from repro.accelerators import BITWAVE_VARIANTS, SOTA_ACCELERATORS
        from repro.eval.registry import backend_names

        parse_network(self.workload)  # raises on unknown/bad parameters
        parse_arch(self.arch)  # raises on unknown presets/fields/values
        self.options.validate()
        if self.backend not in backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"one of {backend_names()}")
        if self.variant is None:
            if self.accelerator not in SOTA_ACCELERATORS:
                raise ValueError(
                    f"unknown accelerator {self.accelerator!r}; "
                    f"one of {SOTA_ACCELERATORS}")
        else:
            if self.accelerator != "BitWave":
                raise ValueError(
                    f"variants are BitWave ablations; got "
                    f"accelerator={self.accelerator!r}")
            if self.variant not in BITWAVE_VARIANTS:
                raise ValueError(
                    f"unknown BitWave variant {self.variant!r}; "
                    f"one of {BITWAVE_VARIANTS}")
        if self.backend != MODEL_BACKEND:
            # The structural simulator implements the BitWave datapath;
            # ablation rungs have no simulator counterpart.
            if self.accelerator != "BitWave" or self.variant is not None:
                raise ValueError(
                    f"backend {self.backend!r} simulates the fully-enabled "
                    f"BitWave datapath only; got "
                    f"{self.config_label}")

    @property
    def config_label(self) -> str:
        """Display label for the accelerator-configuration axis."""
        label = self.accelerator
        if self.variant is not None:
            label = f"BitWave[{self.variant}]"
        if self.backend != MODEL_BACKEND:
            label = f"{label}@{self.backend}"
        if self.arch != DEFAULT_ARCH:
            label = f"{label}({self.arch})"
        return label

    @property
    def label(self) -> str:
        return f"{self.config_label}/{self.workload}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": REQUEST_VERSION,
            "workload": self.workload,
            "accelerator": self.accelerator,
            "variant": self.variant,
            "backend": self.backend,
            "arch": self.arch,
            "options": self.options.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvalRequest":
        return cls(
            workload=data["workload"],
            accelerator=data["accelerator"],
            variant=data.get("variant"),
            backend=data.get("backend", MODEL_BACKEND),
            arch=data.get("arch", DEFAULT_ARCH),
            options=EvalOptions.from_dict(data.get("options", {})),
        )

    def key(self) -> str:
        """Stable result-store key for this request."""
        return config_hash(self.to_dict())
