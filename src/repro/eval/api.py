"""``evaluate(request) -> EvalResult``: the single evaluation entry point.

Every evaluation round-trips a persistent, fingerprint-namespaced
result store (memo -> store -> backend compute), so repeated calls --
including across processes -- are incremental.  A per-process memo on
top keeps object identity and avoids repeated deserialization.

The store layout is the :class:`repro.dse.store.ResultStore` JSONL
machinery; each backend gets its own namespace from its source
fingerprint, so editing the analytical model invalidates model-backed
results while simulator-backed results (and vice versa) stay warm.

**Concurrency.** This module is written for one sequential caller per
process.  The memo and store-handle dicts are mutated without locks,
and -- the sharper edge -- concurrent :func:`evaluate` calls for the
same not-yet-cached request each run the full backend computation and
each append a store record (last write wins; correct but wasteful,
and profiling-heavy backends make it *very* wasteful).  Python threads
and asyncio tasks both hit this: the memo check and the memo fill are
separated by the entire evaluation, so every concurrent caller misses.
Do not bolt a lock on here; route concurrent callers through
:class:`repro.serve.EvalService`, whose single-flight layer coalesces
identical in-flight requests onto one evaluation and owns all store
writes.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.eval.registry import EvalBackend, get_backend
from repro.obs import counter, trace

if TYPE_CHECKING:  # runtime import would cycle through repro.dse
    from repro.dse.store import ResultStore
from repro.eval.request import EvalRequest
from repro.eval.result import EvalResult

#: Per-process memo: (backend name, request key) -> result.
_MEMO: dict[tuple[str, str], EvalResult] = {}
#: Per-namespace default stores; ``None`` marks an unusable store
#: (e.g. a read-only filesystem -- evaluation then skips persistence).
_STORES: dict[str, "ResultStore | None"] = {}


def eval_store(backend: EvalBackend | str,
               root: "str | Path | None" = None) -> "ResultStore":
    """A result store namespaced by ``backend``'s source fingerprint."""
    from repro.dse.store import ResultStore

    if isinstance(backend, str):
        backend = get_backend(backend)
    return ResultStore(root, namespace=backend.fingerprint())


def default_store(backend: EvalBackend) -> "ResultStore | None":
    """The process-wide store for ``backend``, or ``None`` if broken."""
    namespace = backend.fingerprint()
    if namespace not in _STORES:
        _STORES[namespace] = eval_store(backend)
    return _STORES[namespace]


def reset_cache() -> None:
    """Drop the per-process memo and store handles (used by tests)."""
    _MEMO.clear()
    _STORES.clear()


def memoize(request: EvalRequest, result: EvalResult) -> EvalResult:
    """Install ``result`` as the process-wide answer for ``request``.

    The one place that knows the memo's key layout; used by
    :func:`evaluate` and by bulk producers (campaign prewarm) handing
    their results to later single-request calls.  Single-caller only,
    like the rest of this module -- the serving path keeps its own
    coalescing layer and never touches this memo.
    """
    _MEMO[(request.backend, request.key())] = result
    return result


def evaluate(request: EvalRequest,
             store: "ResultStore | None" = None,
             *,
             force: bool = False) -> EvalResult:
    """Answer ``request`` through memo -> store -> backend compute.

    ``store`` overrides the default fingerprint-namespaced store for
    this call, for both the read and the write (its records are still
    keyed by ``request.key()``); explicit-store calls bypass the
    per-process memo so the given store is really consulted.  ``force``
    bypasses memo and store reads; the fresh result is still persisted.

    Not safe for concurrent callers (threads or asyncio tasks): the
    memo is checked and filled without locks on either side of the
    whole computation, so identical concurrent requests all miss and
    all recompute.  Concurrent use goes through
    :class:`repro.serve.EvalService`, which coalesces in-flight
    duplicates (see the module docstring).
    """
    from repro.dse.records import make_record

    request.validate()
    backend = get_backend(request.backend)
    key = request.key()
    explicit = store is not None
    if not explicit:
        if not force and (request.backend, key) in _MEMO:
            counter("eval.cache", result="memo", backend=request.backend)
            return _MEMO[(request.backend, key)]
        store = default_store(backend)

    result = None
    if store is not None and not force:
        with trace("eval.store_lookup", backend=request.backend):
            result = store.result(key)
    if result is None:
        counter("eval.cache", result="miss", backend=request.backend)
        with trace("eval.evaluate", backend=request.backend,
                   workload=request.workload):
            result = backend.evaluate(request)
        if store is not None:
            record = make_record(request, result,
                                 fingerprint=backend.fingerprint())
            try:
                with trace("eval.persist", backend=request.backend):
                    store.put(key, record)
            except OSError:
                if not explicit:  # degrade: stop retrying this namespace
                    _STORES[backend.fingerprint()] = None
    else:
        counter("eval.cache", result="store", backend=request.backend)
    if not explicit:
        memoize(request, result)
    return result
