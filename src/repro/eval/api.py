"""``evaluate(request) -> EvalResult``: the single evaluation entry point.

Every evaluation round-trips a persistent, fingerprint-namespaced
result store (memo -> store -> backend compute), so repeated calls --
including across processes -- are incremental.  A per-process memo on
top keeps object identity and avoids repeated deserialization.

The store layout is the :class:`repro.dse.store.ResultStore` JSONL
machinery; each backend gets its own namespace from its source
fingerprint, so editing the analytical model invalidates model-backed
results while simulator-backed results (and vice versa) stay warm.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.eval.registry import EvalBackend, get_backend
from repro.obs import counter, trace

if TYPE_CHECKING:  # runtime import would cycle through repro.dse
    from repro.dse.store import ResultStore
from repro.eval.request import EvalRequest
from repro.eval.result import EvalResult

#: Per-process memo: (backend name, request key) -> result.
_MEMO: dict[tuple[str, str], EvalResult] = {}
#: Per-namespace default stores; ``None`` marks an unusable store
#: (e.g. a read-only filesystem -- evaluation then skips persistence).
_STORES: dict[str, "ResultStore | None"] = {}


def eval_store(backend: EvalBackend | str,
               root: "str | Path | None" = None) -> "ResultStore":
    """A result store namespaced by ``backend``'s source fingerprint."""
    from repro.dse.store import ResultStore

    if isinstance(backend, str):
        backend = get_backend(backend)
    return ResultStore(root, namespace=backend.fingerprint())


def default_store(backend: EvalBackend) -> "ResultStore | None":
    """The process-wide store for ``backend``, or ``None`` if broken."""
    namespace = backend.fingerprint()
    if namespace not in _STORES:
        _STORES[namespace] = eval_store(backend)
    return _STORES[namespace]


def reset_cache() -> None:
    """Drop the per-process memo and store handles (used by tests)."""
    _MEMO.clear()
    _STORES.clear()


def memoize(request: EvalRequest, result: EvalResult) -> EvalResult:
    """Install ``result`` as the process-wide answer for ``request``.

    The one place that knows the memo's key layout; used by
    :func:`evaluate` and by bulk producers (campaign prewarm) handing
    their results to later single-request calls.
    """
    _MEMO[(request.backend, request.key())] = result
    return result


def evaluate(request: EvalRequest,
             store: "ResultStore | None" = None,
             *,
             force: bool = False) -> EvalResult:
    """Answer ``request`` through memo -> store -> backend compute.

    ``store`` overrides the default fingerprint-namespaced store for
    this call, for both the read and the write (its records are still
    keyed by ``request.key()``); explicit-store calls bypass the
    per-process memo so the given store is really consulted.  ``force``
    bypasses memo and store reads; the fresh result is still persisted.
    """
    from repro.dse.records import make_record

    request.validate()
    backend = get_backend(request.backend)
    key = request.key()
    explicit = store is not None
    if not explicit:
        if not force and (request.backend, key) in _MEMO:
            counter("eval.cache", result="memo", backend=request.backend)
            return _MEMO[(request.backend, key)]
        store = default_store(backend)

    result = None
    if store is not None and not force:
        with trace("eval.store_lookup", backend=request.backend):
            result = store.result(key)
    if result is None:
        counter("eval.cache", result="miss", backend=request.backend)
        with trace("eval.evaluate", backend=request.backend,
                   workload=request.workload):
            result = backend.evaluate(request)
        if store is not None:
            record = make_record(request, result,
                                 fingerprint=backend.fingerprint())
            try:
                with trace("eval.persist", backend=request.backend):
                    store.put(key, record)
            except OSError:
                if not explicit:  # degrade: stop retrying this namespace
                    _STORES[backend.fingerprint()] = None
    else:
        counter("eval.cache", result="store", backend=request.backend)
    if not explicit:
        memoize(request, result)
    return result
