"""``repro.eval``: one backend-agnostic evaluation API.

The repository has two engines that can answer "what does workload W
cost on accelerator A": the analytical STEP1-STEP4 model and the
structural BitWave NPU simulator.  This package is the contract both
plug into:

- :class:`EvalRequest` -- workload x accelerator/variant x backend x
  arch x options, hashing to a stable store key (the canonical
  :mod:`repro.arch` spelling folds in, so overridden-arch results
  never collide with cached defaults);
- :class:`EvalResult` -- the canonical metrics schema (cycles,
  energy_pj, macs, per-layer breakdowns, traffic, the arch's clock)
  with ``effective_tops`` / ``efficiency_tops_per_w`` derived
  uniformly;
- :class:`EvalBackend` + a registry with three built-ins (``model``,
  ``sim-vectorized``, ``sim-reference``);
- :func:`evaluate` -- the single entry point, with store-backed caching
  keyed by request hash and namespaced by backend source fingerprints.

The DSE campaigns (:mod:`repro.dse`) and the experiment harnesses
(:mod:`repro.experiments`) are consumers of this API; the legacy
``Accelerator.evaluate_network`` / ``experiments.common`` entry points
are deprecation shims over it.
"""

from repro.eval.api import default_store, eval_store, evaluate, reset_cache
from repro.eval.fingerprints import code_fingerprint, sim_backend_fingerprint
from repro.eval.registry import (
    EvalBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.eval.request import EvalOptions, EvalRequest, config_hash
from repro.eval.result import (
    ENERGY_COMPONENTS,
    EvalResult,
    LayerResult,
    from_network_evaluation,
    to_network_evaluation,
)

__all__ = [
    "ENERGY_COMPONENTS",
    "EvalBackend",
    "EvalOptions",
    "EvalRequest",
    "EvalResult",
    "LayerResult",
    "backend_names",
    "code_fingerprint",
    "config_hash",
    "default_store",
    "eval_store",
    "evaluate",
    "from_network_evaluation",
    "get_backend",
    "register_backend",
    "reset_cache",
    "sim_backend_fingerprint",
    "to_network_evaluation",
]
