"""Source fingerprints namespacing the persistent result store.

Persisted results are only valid for the code that produced them; each
backend namespaces its store files by a digest of exactly the source
feeding its numbers, so editing the analytical model (or the simulator
datapath) invalidates that backend's stale caches automatically instead
of silently serving results from an older implementation.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path
from types import ModuleType


def _digest_tree(digest: "hashlib._Hash", package: ModuleType) -> None:
    root = Path(package.__file__).parent  # type: ignore[arg-type]
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the model/accelerator source feeding an evaluation."""
    import repro.accelerators
    import repro.arch
    import repro.core
    import repro.model
    import repro.sparsity
    import repro.workloads

    digest = hashlib.sha256()
    for package in (repro.model, repro.accelerators, repro.sparsity,
                    repro.workloads, repro.core, repro.arch):
        _digest_tree(digest, package)
    return digest.hexdigest()[:12]


def live_fingerprints() -> frozenset[str]:
    """Store namespaces the current source tree can still produce.

    One entry per registered evaluation backend (the analytical model
    and the simulator datapaths).  Everything else under a store root
    was written by an earlier revision of the code and can only ever be
    read again by checking that revision out -- the GC treats such
    namespaces as stale eviction candidates.  Note the sim-*validation*
    campaigns (:mod:`repro.dse.simcampaign`) add their own namespace on
    top of these; :func:`repro.dse.gc.live_namespaces` is the full set.
    """
    from repro.eval.registry import backend_names, get_backend

    return frozenset(
        get_backend(name).fingerprint() for name in backend_names())


@lru_cache(maxsize=1)
def opt_fingerprint() -> str:
    """Digest namespacing the guided co-search's probe records.

    Co-search probes (:mod:`repro.opt.cosearch`) price *strategies*,
    not plain eval requests, so they live in their own ``opt-``
    namespace.  Their numbers come from the same model/accelerator
    source as an evaluation (:func:`code_fingerprint`) plus the tiny
    executable networks and fidelity proxies feeding the accuracy side
    (:mod:`repro.models`) -- editing either invalidates the cache.
    """
    import repro.models

    digest = hashlib.sha256()
    digest.update(code_fingerprint().encode("utf-8"))
    _digest_tree(digest, repro.models)
    return "opt-" + digest.hexdigest()[:12]


@lru_cache(maxsize=1)
def sim_backend_fingerprint() -> str:
    """Digest of the source feeding simulator-backed evaluations.

    Covers the structural datapath, the hardware-description package
    whose specs configure (and whose technology prices) it, the
    workload tables and synthetic weights it streams, the sparsity
    statistics behind the deviation metrics, and the lowering itself.
    """
    import repro.arch
    import repro.eval.lowering
    import repro.sim
    import repro.sparsity
    import repro.workloads

    digest = hashlib.sha256()
    for package in (repro.sim, repro.workloads, repro.sparsity, repro.arch):
        _digest_tree(digest, package)
    digest.update(Path(repro.eval.lowering.__file__).read_bytes())
    return "simnet-" + digest.hexdigest()[:12]
