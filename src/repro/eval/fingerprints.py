"""Source fingerprints namespacing the persistent result store.

Persisted results are only valid for the code that produced them; each
backend namespaces its store files by a digest of exactly the source
feeding its numbers, so editing the analytical model (or the simulator
datapath) invalidates that backend's stale caches automatically instead
of silently serving results from an older implementation.

Two digest strategies coexist:

- the **default** (package-list) digests a hand-maintained set of
  package trees per backend -- bit-identical to what every store on
  disk was written under, so it stays the default;
- the **dependency-cone** strategy (opt-in via
  ``REPRO_CONE_FINGERPRINTS=1``) digests exactly the modules in the
  backend entry points' import cone
  (:meth:`repro.analysis.graph.ImportGraph.dependency_cone`).  The
  cone is both *tighter* across layers -- an edit under ``repro.dse``
  or ``repro.serve`` never rotates a backend namespace, because no
  backend imports them -- and *safer* within them: helpers the static
  package list misses (``repro.utils.bits`` feeds every bit-plane
  codec) are in the cone, so editing them rotates the cache instead of
  silently serving stale numbers.

The flag changes namespaces (a one-time cold start when first
enabled), never result bits; workers inherit it through the
environment like ``REPRO_TRACE``.
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from pathlib import Path
from types import ModuleType

#: Opt-in switch for dependency-cone namespacing (any value but
#: ``""``/``"0"`` enables; inherited by worker processes).
CONE_ENV = "REPRO_CONE_FINGERPRINTS"

#: Entry points whose import cone feeds the analytical model's numbers.
MODEL_CONE_ENTRIES = (
    "repro.model", "repro.accelerators", "repro.sparsity",
    "repro.workloads", "repro.core", "repro.arch",
)

#: Back-reference cut for the model cone: the deprecated
#: ``Accelerator.evaluate_network`` shim lazily delegates *up* into
#: ``repro.eval``, which would otherwise drag the eval/sim layers into
#: the analytical model's namespace.  The eval layer's own source is
#: not what the model backend's cached numbers are computed from.
MODEL_CONE_PRUNE = ("repro.eval",)

#: Entry points whose import cone feeds simulator-backed evaluations.
SIM_CONE_ENTRIES = (
    "repro.sim", "repro.workloads", "repro.sparsity", "repro.arch",
    "repro.eval.lowering",
)


def cone_fingerprints_enabled() -> bool:
    """Whether store namespaces derive from import cones."""
    return os.environ.get(CONE_ENV, "") not in ("", "0")


def cone_fingerprint(*entries: str, root: str | Path | None = None,
                     prefix: str = "",
                     prune: tuple[str, ...] = ()) -> str:
    """Digest of every module in the entry points' dependency cone.

    ``entries`` are modules or packages (``"repro.sim"`` seeds its
    whole subtree); the digest covers the *transitive* import closure,
    so it changes exactly when a file that can feed the entry points'
    numbers changes.  ``root`` defaults to the installed tree; tests
    pass a scratch copy to pin cone behavior under edits.  ``prune``
    cuts intentional back-references out of the walk
    (:meth:`repro.analysis.graph.ImportGraph.dependency_cone`).
    """
    from repro.analysis.graph import build_graph, repo_graph

    graph = repo_graph() if root is None else build_graph(root)
    digest = hashlib.sha256()
    for name in sorted(graph.dependency_cone(*entries, prune=prune)):
        digest.update(name.encode("utf-8"))
        digest.update(graph.modules[name].path.read_bytes())
    return prefix + digest.hexdigest()[:12]


def _digest_tree(digest: "hashlib._Hash", package: ModuleType) -> None:
    root = Path(package.__file__).parent  # type: ignore[arg-type]
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())


@lru_cache(maxsize=2)
def _code_fingerprint(cone: bool) -> str:
    if cone:
        return cone_fingerprint(*MODEL_CONE_ENTRIES,
                                prune=MODEL_CONE_PRUNE)
    import repro.accelerators
    import repro.arch
    import repro.core
    import repro.model
    import repro.sparsity
    import repro.workloads

    digest = hashlib.sha256()
    for package in (repro.model, repro.accelerators, repro.sparsity,
                    repro.workloads, repro.core, repro.arch):
        _digest_tree(digest, package)
    return digest.hexdigest()[:12]


def code_fingerprint() -> str:
    """Digest of the model/accelerator source feeding an evaluation."""
    return _code_fingerprint(cone_fingerprints_enabled())


def live_fingerprints() -> frozenset[str]:
    """Store namespaces the current source tree can still produce.

    One entry per registered evaluation backend (the analytical model
    and the simulator datapaths).  Everything else under a store root
    was written by an earlier revision of the code and can only ever be
    read again by checking that revision out -- the GC treats such
    namespaces as stale eviction candidates.  Note the sim-*validation*
    campaigns (:mod:`repro.dse.simcampaign`) add their own namespace on
    top of these; :func:`repro.dse.gc.live_namespaces` is the full set.
    """
    from repro.eval.registry import backend_names, get_backend

    return frozenset(
        get_backend(name).fingerprint() for name in backend_names())


@lru_cache(maxsize=2)
def _opt_fingerprint(cone: bool) -> str:
    import repro.models

    digest = hashlib.sha256()
    digest.update(_code_fingerprint(cone).encode("utf-8"))
    if cone:
        digest.update(
            cone_fingerprint("repro.models").encode("utf-8"))
    else:
        _digest_tree(digest, repro.models)
    return "opt-" + digest.hexdigest()[:12]


def opt_fingerprint() -> str:
    """Digest namespacing the guided co-search's probe records.

    Co-search probes (:mod:`repro.opt.cosearch`) price *strategies*,
    not plain eval requests, so they live in their own ``opt-``
    namespace.  Their numbers come from the same model/accelerator
    source as an evaluation (:func:`code_fingerprint`) plus the tiny
    executable networks and fidelity proxies feeding the accuracy side
    (:mod:`repro.models`) -- editing either invalidates the cache.
    """
    return _opt_fingerprint(cone_fingerprints_enabled())


@lru_cache(maxsize=2)
def _sim_backend_fingerprint(cone: bool) -> str:
    if cone:
        return cone_fingerprint(*SIM_CONE_ENTRIES, prefix="simnet-")
    import repro.arch
    import repro.eval.lowering
    import repro.sim
    import repro.sparsity
    import repro.workloads

    digest = hashlib.sha256()
    for package in (repro.sim, repro.workloads, repro.sparsity, repro.arch):
        _digest_tree(digest, package)
    digest.update(Path(repro.eval.lowering.__file__).read_bytes())
    return "simnet-" + digest.hexdigest()[:12]


def sim_backend_fingerprint() -> str:
    """Digest of the source feeding simulator-backed evaluations.

    Covers the structural datapath, the hardware-description package
    whose specs configure (and whose technology prices) it, the
    workload tables and synthetic weights it streams, the sparsity
    statistics behind the deviation metrics, and the lowering itself.
    """
    return _sim_backend_fingerprint(cone_fingerprints_enabled())
