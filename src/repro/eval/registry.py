"""The backend protocol and registry of ``repro.eval``.

A backend is anything that can answer an :class:`EvalRequest` with a
canonical :class:`EvalResult`: the analytical model, a structural
simulator datapath, or (later) an RTL trace reader or remote service.
Backends self-describe with a ``fingerprint`` -- a digest of the source
that produced their numbers -- which namespaces the result store so
editing a backend invalidates exactly its own cached results.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.eval.request import EvalRequest
from repro.eval.result import EvalResult


@runtime_checkable
class EvalBackend(Protocol):
    """What a registered evaluation backend must provide."""

    #: Registry name (``"model"``, ``"sim-vectorized"``, ...).
    name: str

    def fingerprint(self) -> str:
        """Digest of the source feeding this backend's numbers."""
        ...

    def evaluate(self, request: EvalRequest) -> EvalResult:
        """Compute (never cache) the result for ``request``."""
        ...


_REGISTRY: dict[str, EvalBackend] = {}
_BUILTINS_LOADED = False


def register_backend(backend: EvalBackend) -> EvalBackend:
    """Add ``backend`` to the registry (last registration wins)."""
    if not backend.name:
        raise ValueError("backend must have a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    _ensure_builtin_backends()
    return tuple(_REGISTRY)


def get_backend(name: str) -> EvalBackend:
    _ensure_builtin_backends()
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown backend {name!r}; one of {tuple(_REGISTRY)}")
    return _REGISTRY[name]


def _ensure_builtin_backends() -> None:
    """Lazily register the built-in backends (import-cycle-free)."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.eval.backends  # noqa: F401  (registers on import)
