"""Canonical evaluation results: the answer half of the ``repro.eval`` API.

Every backend returns the same :class:`EvalResult` schema -- per-layer
``cycles`` / ``energy_pj`` / ``macs`` plus traffic counters and a
backend-specific ``detail`` mapping -- with ``effective_tops`` and
``efficiency_tops_per_w`` derived uniformly from the totals.  Results
serialize to JSON exactly (every numeric field is a Python float/int
and ``json`` round-trips floats shortest-repr), so a deserialized
result is bit-identical to the freshly computed one -- the property the
harness-equivalence tests pin.

Model-backend results carry the full STEP1-STEP4 breakdown in each
layer's ``detail`` and convert losslessly to/from the legacy
:class:`repro.accelerators.base.NetworkEvaluation`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.accelerators.base import LayerEvaluation, NetworkEvaluation
from repro.model.energy import EnergyBreakdown
from repro.model.latency import LatencyBreakdown
from repro.model.technology import CLOCK_FREQUENCY_HZ
from repro.model.zigzag import ActivityCounts

#: Bump when the result layout changes (stored records include it).
RESULT_VERSION = 3

#: Energy component keys (Fig. 16's categories), in reporting order.
ENERGY_COMPONENTS = ("dram", "sram", "reg", "compute")


@dataclass(frozen=True)
class LayerResult:
    """Canonical per-layer metrics, uniform across backends.

    ``energy`` maps :data:`ENERGY_COMPONENTS` to picojoules (empty when
    the backend does not model energy).  ``traffic`` holds the
    backend's data-movement counters (documented per backend).
    ``detail`` carries the backend's full breakdown -- enough for the
    model backend to reconstruct a :class:`LayerEvaluation` exactly.
    """

    name: str
    macs: int
    cycles: float
    energy_pj: float
    energy: dict[str, float] = field(default_factory=dict)
    traffic: dict[str, float] = field(default_factory=dict)
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "macs": self.macs,
            "cycles": self.cycles,
            "energy_pj": self.energy_pj,
            "energy": dict(self.energy),
            "traffic": dict(self.traffic),
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LayerResult":
        return cls(
            name=data["name"],
            macs=data["macs"],
            cycles=data["cycles"],
            energy_pj=data["energy_pj"],
            energy=dict(data.get("energy", {})),
            traffic=dict(data.get("traffic", {})),
            detail=dict(data.get("detail", {})),
        )


@dataclass(frozen=True)
class EvalResult:
    """Whole-workload evaluation under one backend.

    Totals and derived metrics are computed uniformly from the layer
    list, in layer order, so two backends (or a result and its store
    round-trip) agree bit-for-bit whenever their layers agree.
    """

    workload: str
    config_label: str
    backend: str
    layers: tuple[LayerResult, ...] = ()
    #: Clock the cycle counts run at (the arch's TechSpec); runtime and
    #: TOPS derive from it, so clock sweeps move every derived metric.
    clock_hz: float = CLOCK_FREQUENCY_HZ

    def __post_init__(self) -> None:
        object.__setattr__(self, "layers", tuple(self.layers))

    # -- canonical totals ----------------------------------------------
    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_energy_pj(self) -> float:
        return sum(layer.energy_pj for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    # -- derived metrics (uniform across backends) ---------------------
    @property
    def models_energy(self) -> bool:
        """Whether this result carries priced energy.

        Every current backend prices energy (the structural simulator
        gained its epilog with ``repro.arch``); ``False`` only for
        genuinely unpriced records -- results deserialized from stores
        written before the sim-energy epilog existed.  Consumers
        ranking or serializing energy metrics should treat unpriced
        energy as missing, not as zero."""
        return any(layer.energy for layer in self.layers)

    @property
    def runtime_s(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def effective_tops(self) -> float:
        """Workload operations (2 x MACs) over runtime."""
        return 2.0 * self.total_macs / self.runtime_s / 1e12

    @property
    def efficiency_tops_per_w(self) -> float:
        """Useful operations per joule (Fig. 17's metric).

        ``inf`` only for legacy unpriced results (see
        :attr:`models_energy`); consumers should gate on that flag.
        """
        joules = self.total_energy_pj * 1e-12
        if joules == 0.0:
            return float("inf")
        return 2.0 * self.total_macs / joules / 1e12

    def energy_shares(self) -> dict[str, float]:
        total = self.total_energy_pj
        if total == 0:
            return {component: 0.0 for component in ENERGY_COMPONENTS}
        return {
            component: sum(layer.energy.get(component, 0.0)
                           for layer in self.layers) / total
            for component in ENERGY_COMPONENTS
        }

    def traffic_totals(self) -> dict[str, float]:
        """Summed traffic counters over all layers."""
        totals: dict[str, float] = {}
        for layer in self.layers:
            for key, value in layer.traffic.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "config_label": self.config_label,
            "backend": self.backend,
            "clock_hz": self.clock_hz,
            "layers": [layer.to_dict() for layer in self.layers],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvalResult":
        return cls(
            workload=data["workload"],
            config_label=data["config_label"],
            backend=data.get("backend", "model"),
            clock_hz=data.get("clock_hz", CLOCK_FREQUENCY_HZ),
            layers=tuple(LayerResult.from_dict(entry)
                         for entry in data["layers"]),
        )


# ---------------------------------------------------------------------
# Legacy NetworkEvaluation conversion (model backend only).
# ---------------------------------------------------------------------
def layer_from_evaluation(layer: LayerEvaluation) -> LayerResult:
    """Canonicalize one model-backend layer, keeping the full breakdown."""
    energy = layer.energy
    counts = layer.counts
    return LayerResult(
        name=layer.layer,
        macs=counts.n_mac,
        cycles=layer.latency.total,
        energy_pj=energy.total_pj,
        energy={
            "dram": energy.dram_pj,
            "sram": energy.sram_pj,
            "reg": energy.reg_pj,
            "compute": energy.compute_pj,
        },
        traffic={
            "dram_elems": counts.dram_traffic,
            "sram_read_weight_elems": counts.sram_read_weight,
            "sram_read_input_elems": counts.sram_read_input,
            "sram_write_output_elems": counts.sram_write_output,
        },
        detail={
            "su_name": layer.su_name,
            "counts": asdict(counts),
            "latency": asdict(layer.latency),
        },
    )


def from_network_evaluation(
    evaluation: NetworkEvaluation, backend: str = "model",
    clock_hz: float | None = None,
) -> EvalResult:
    """Wrap a legacy :class:`NetworkEvaluation` in the canonical schema.

    The clock defaults to the evaluation's own (set from the
    accelerator's arch), so clock-overridden evaluations round-trip
    losslessly.
    """
    return EvalResult(
        workload=evaluation.network,
        config_label=evaluation.accelerator,
        backend=backend,
        clock_hz=clock_hz if clock_hz is not None else evaluation.clock_hz,
        layers=tuple(layer_from_evaluation(layer)
                     for layer in evaluation.layers),
    )


def to_network_evaluation(result: EvalResult) -> NetworkEvaluation:
    """Reconstruct the legacy object from a model-backend result.

    Exact inverse of :func:`from_network_evaluation`; raises
    ``KeyError`` for results whose layers lack the model breakdown
    (e.g. simulator-backed results, which have no energy model).
    """
    layers = []
    for layer in result.layers:
        detail = layer.detail
        layers.append(LayerEvaluation(
            layer=layer.name,
            su_name=detail["su_name"],
            counts=ActivityCounts(**detail["counts"]),
            latency=LatencyBreakdown(**detail["latency"]),
            energy=EnergyBreakdown(
                dram_pj=layer.energy["dram"],
                sram_pj=layer.energy["sram"],
                reg_pj=layer.energy["reg"],
                compute_pj=layer.energy["compute"],
            ),
        ))
    return NetworkEvaluation(
        accelerator=result.config_label,
        network=result.workload,
        layers=layers,
        clock_hz=result.clock_hz,
    )
