"""Lowering workload layers onto the structural BitWave NPU.

The simulator executes matmuls: an FC layer runs directly, and every
convolution lowers to its im2col matrix (the layout
:func:`repro.workloads.synthetic.synthetic_weights` already uses).
This module turns a :class:`repro.workloads.spec.LayerSpec` into one
:meth:`BitWaveNPU.run_fc` call and rescales the cycle/traffic counts to
the layer's full output-context count.

The rescale is exact, not an approximation: the datapath serializes
output contexts over the spatial ``OXu`` unroll, so
``compute_cycles = per_block_cycles * n_blocks`` (see
:meth:`repro.sim.npu.BitWaveNPU.run_fc`).  Simulating ``max_contexts``
rows measures ``per_block_cycles`` bit-exactly; multiplying by the full
block count reproduces the cycles a full simulation would report.
Weight traffic is context-independent; activation traffic scales with
the true row count.

:func:`analytic_compute_cycles` is the matching analytical-model half
(BitWave's lock-stepped column cycle formula), shared by the Section
V-B validation harness and the cross-backend deviation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch import ArchSpec
from repro.obs import trace
from repro.sim.energy import (
    SimEnergyBreakdown,
    fused_dram_elems,
    price_matmul,
    weight_stream_passes,
)
from repro.sim.fetcher import DataFetcher
from repro.sim.npu import SEGMENT_KERNELS, BitWaveNPU
from repro.sparsity.stats import LayerWeightStats, compute_layer_stats
from repro.utils.rng import seeded_rng
from repro.workloads.spec import LayerSpec
from repro.workloads.synthetic import synthetic_weights


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _sram_capacities(arch: ArchSpec) -> tuple[int, int]:
    """(weight SRAM bytes, activation fusion-tile bytes) of a spec.

    Both thresholds come from the spec's own accessors -- the same
    split the analytical mapper consumes -- so the fusion/re-stream
    rules cannot drift between the backends.
    """
    return arch.weight_sram_bytes(), arch.act_fusion_tile_bytes()


@dataclass(frozen=True)
class SimLayerRun:
    """Full-layer counters reconstructed from a truncated simulation."""

    #: Datapath compute cycles for every output context of the layer.
    compute_cycles: int
    #: Fetcher cycles (weights + full activation stream).
    fetch_cycles: int
    #: ZCIP column operations (context-independent).
    column_ops: int
    #: Compressed weight stream, index bytes included (bits).
    weight_bits_fetched: int
    #: Uncompressed weight footprint (bits).
    dense_weight_bits: int
    #: Activation words of the full layer.
    act_words: int
    #: Output contexts actually simulated / in the full layer.
    simulated_rows: int
    total_rows: int
    #: Full-layer counters priced with the spec's technology
    #: (:mod:`repro.sim.energy`).
    energy: SimEnergyBreakdown

    @property
    def total_cycles(self) -> int:
        """Compute and fetch overlap; the longer stream dominates."""
        return max(self.compute_cycles, self.fetch_cycles)

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj


def matmul_reduction(spec: LayerSpec) -> int:
    """Reduction width of the layer's lowered matmul."""
    if spec.kind == "dwconv":
        return spec.fy * spec.fx
    return spec.fy * spec.fx * spec.c


def layer_matmul_weights(spec: LayerSpec) -> np.ndarray:
    """The ``(K, reduction)`` int8 matrix the simulator streams.

    Identical weights to the analytical model's sparsity profiles
    (:mod:`repro.sparsity.profiles`), so model-vs-sim comparisons see
    the same bit patterns.
    """
    return synthetic_weights(spec)


def layer_matmul_activations(spec: LayerSpec, rows: int) -> np.ndarray:
    """Deterministic int8-range activations for ``rows`` contexts."""
    rng = seeded_rng("eval-sim-acts", spec.network, spec.name)
    return rng.integers(-128, 128,
                        (rows, matmul_reduction(spec))).astype(np.int32)


def output_rows(spec: LayerSpec) -> int:
    """Output contexts the datapath serializes over ``OXu``."""
    return spec.b * spec.ox * spec.oy


def simulate_layer(
    spec: LayerSpec,
    npu: BitWaveNPU,
    max_contexts: int = 64,
    weights: np.ndarray | None = None,
) -> SimLayerRun:
    """Run one layer's matmul on ``npu``, rescaled to full contexts.

    ``weights`` lets a caller that already materialized the layer's
    synthetic weights (they are not cached) reuse them.  Each call
    emits an ``eval.lower.layer`` span (with the simulator dispatch
    under ``eval.lower.sim_call``) when tracing is on.
    """
    with trace("eval.lower.layer", layer=spec.name, network=spec.network,
               kind=spec.kind):
        return _simulate_layer(spec, npu, max_contexts, weights)


def _simulate_layer(
    spec: LayerSpec,
    npu: BitWaveNPU,
    max_contexts: int,
    weights: np.ndarray | None,
) -> SimLayerRun:
    if weights is None:
        with trace("eval.lower.weights", layer=spec.name):
            weights = layer_matmul_weights(spec)
    rows = output_rows(spec)
    sim_rows = rows if max_contexts == 0 else min(rows, max_contexts)
    with trace("eval.lower.sim_call", layer=spec.name):
        run = npu.run_fc(weights, layer_matmul_activations(spec, sim_rows))

    blocks_sim = _ceil_div(sim_rows, npu.oxu)
    blocks_full = _ceil_div(rows, npu.oxu)
    # run.compute_cycles is an exact multiple of blocks_sim (per-block
    # cycles times the simulated block count), so this is lossless.
    compute_cycles = run.compute_cycles // blocks_sim * blocks_full

    k, reduction = weights.shape
    act_words = rows * reduction
    fetcher = DataFetcher(npu.fetcher.weight_bw_bits, npu.fetcher.act_bw_bits)
    fetch_cycles = fetcher.fetch_weight_columns(run.weight_bits_fetched)
    fetch_cycles += fetcher.fetch_activations(act_words)

    # Energy epilog at full-layer counts.  The ZCIP payload is row-
    # independent (weight_bits_fetched minus the per-group index bytes);
    # every streamed column engages G lanes once per output context.
    n_groups = _ceil_div(reduction, npu.group_size)
    payload_bits = run.weight_bits_fetched - 8 * k * n_groups
    weight_sram_bytes, act_tile_bytes = _sram_capacities(npu.arch)
    energy = price_matmul(
        npu.tech,
        lane_cycles=float(payload_bits) * rows,
        weight_stream_bytes=run.weight_bits_fetched / 8.0,
        dram_act_in_elems=fused_dram_elems(spec.input_count, act_tile_bytes),
        dram_act_out_elems=fused_dram_elems(spec.output_count,
                                            act_tile_bytes),
        act_elems=float(act_words),
        out_elems=float(rows * k),
        n_mac=float(rows) * k * reduction,
        weight_passes=weight_stream_passes(
            k * reduction, spec.input_count,
            weight_sram_bytes, act_tile_bytes),
    )

    return SimLayerRun(
        compute_cycles=int(compute_cycles),
        fetch_cycles=int(fetch_cycles),
        column_ops=int(run.column_ops),
        weight_bits_fetched=int(run.weight_bits_fetched),
        dense_weight_bits=int(run.dense_weight_bits),
        act_words=int(act_words),
        simulated_rows=int(sim_rows),
        total_rows=int(rows),
        energy=energy,
    )


def analytic_compute_cycles(
    stats: LayerWeightStats,
    k: int,
    reduction: int,
    rows: int,
    group_size: int = 8,
    ku: int = 32,
    oxu: int = 16,
    dense_precision: int | None = None,
) -> float:
    """BitWave's analytical compute-cycle model for one matmul.

    Segments of :data:`SEGMENT_KERNELS` kernels advance in lockstep, so
    a segment context costs the expected *maximum* non-zero-column
    count over its ``64 / G`` groups; ``Ku / 8`` segments stream through
    parallel banks and contexts beyond ``OXu`` serialize.  This is the
    model half of the paper's Section V-B validation (<6% vs RTL).
    ``dense_precision`` models the ZCIP dense mode instead (every group
    streams exactly that many columns, no skipping).
    """
    if dense_precision is not None:
        cpm = float(dense_precision)
    else:
        sync_domain = max(64 // group_size, 1)
        cpm = stats.expected_max_nz_columns(group_size, sync_domain)
    n_segments = (_ceil_div(k, SEGMENT_KERNELS)
                  * _ceil_div(reduction, group_size))
    streams = max(ku // SEGMENT_KERNELS, 1)
    contexts = _ceil_div(rows, oxu)
    return n_segments * cpm / streams * contexts


def layer_stats_for_sim(
    spec: LayerSpec,
    group_size: int,
    weights: np.ndarray | None = None,
) -> LayerWeightStats:
    """Sparsity profile of the simulated weights at one group size."""
    if weights is None:
        weights = layer_matmul_weights(spec)
    return compute_layer_stats(weights, group_sizes=(group_size,))


def analytic_energy_pj(
    stats: LayerWeightStats,
    spec: LayerSpec,
    k: int,
    reduction: int,
    rows: int,
    arch: ArchSpec,
) -> float:
    """The analytical model's energy for one lowered matmul (eq. (4)).

    The statistics-derived half of the sim-energy validation: BCS
    compression from ``stats.bcs_cr`` instead of the counted stream,
    mean non-zero columns instead of the summed sync counters, the same
    fusion thresholds and unit energies.  The per-layer deviation from
    the simulator's counter-priced energy is reported next to the
    compute-cycle deviation (:func:`model_vs_sim_deviation`).
    """
    group_size = arch.group_size
    n_mac = float(rows) * k * reduction
    if arch.columns == "dense":
        # ZCIP dense mode: every group streams exactly the configured
        # precision; the packed stream keeps its per-group index byte
        # (matching the simulator's fetch counters).
        mean_columns = float(arch.dense_precision)
        weight_elems = (k * reduction * arch.dense_precision / 8.0
                        + k * _ceil_div(reduction, group_size))
    else:
        mean_columns = max(stats.mean_nz_columns(group_size), 0.0)
        weight_elems = k * reduction / stats.bcs_cr[group_size]
    weight_sram_bytes, act_tile_bytes = _sram_capacities(arch)
    # Same pricing function as the simulator's epilog -- only the
    # inputs differ (statistics-derived instead of counted).
    return price_matmul(
        arch.technology(),
        lane_cycles=n_mac * mean_columns,
        weight_stream_bytes=weight_elems,
        dram_act_in_elems=fused_dram_elems(spec.input_count, act_tile_bytes),
        dram_act_out_elems=fused_dram_elems(spec.output_count,
                                            act_tile_bytes),
        act_elems=float(rows) * reduction,
        out_elems=float(rows) * k,
        n_mac=n_mac,
        weight_passes=weight_stream_passes(
            k * reduction, spec.input_count,
            weight_sram_bytes, act_tile_bytes),
    ).total_pj


def model_vs_sim_deviation(simulated_cycles: int, analytic: float) -> float:
    """Relative deviation of the analytical model from the simulator."""
    return abs(simulated_cycles - analytic) / simulated_cycles


def energy_deviation(simulated_pj: float, analytic_pj: float) -> float:
    """Relative deviation of the analytical energy from the simulator's."""
    if simulated_pj == 0.0:
        return 0.0 if analytic_pj == 0.0 else float("inf")
    return abs(simulated_pj - analytic_pj) / simulated_pj
