"""Bound-expanding scalar search for single-axis tuning.

The objective-callback / tolerance / auto-expanding-bounds shape of
OpenNVRAM's characterizer binary search, adapted to our cached
``evaluate()``: give it a monotonic ``fn(x) -> value`` and a target
value, and it brackets the target (widening the bounds geometrically
when the initial ones miss it), then bisects until the value is within
tolerance or the try budget runs out.  Probes are failure-tolerant:
an ``fn`` that raises is retried under a
:class:`repro.dse.retry.RetryPolicy` (deterministic backoff), and a
probe that stays broken ends the search with the best point found so
far rather than an exception.

:func:`tune_arch_field` adapts the driver to one hardware-description
axis: probe ``x`` becomes the arch override ``"<base>@<field>=<x>"``,
evaluated through the shared result store (origin ``opt:tune``), so
tuning runs populate the same cache campaigns read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.arch import DEFAULT_ARCH
from repro.dse.retry import RetryPolicy
from repro.dse.spec import EvalPoint
from repro.dse.store import ResultStore
from repro.dse.summary import resolve_metric
from repro.obs import counter, trace
from repro.opt.objective import Objective

#: Provenance tag stamped into records a tuning run writes.
TUNE_ORIGIN = "opt:tune"


@dataclass(frozen=True)
class ScalarSearchResult:
    """Outcome of one bound-expanding search."""

    #: Probe input whose value landed closest to the target.
    best_x: float
    #: ``fn(best_x)``.
    best_value: float
    target: float
    #: Whether ``|best_value - target| <= tolerance``.
    converged: bool
    #: Every ``(x, value)`` probed, in order; a failed probe records
    #: ``value=None``.  Pinned by the determinism tests.
    probes: tuple[tuple[float, float | None], ...]
    #: Bound widenings performed before the target was bracketed.
    expansions: int
    #: Final bracket.
    lo: float
    hi: float

    @property
    def tries(self) -> int:
        return len(self.probes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "best_x": self.best_x,
            "best_value": self.best_value,
            "target": self.target,
            "converged": self.converged,
            "probes": [list(p) for p in self.probes],
            "expansions": self.expansions,
            "lo": self.lo,
            "hi": self.hi,
        }


def bound_expanding_search(
    fn: Callable[[float], float | None],
    target: float,
    *,
    lo: float,
    hi: float,
    tolerance: float,
    max_tries: int = 32,
    expand_factor: float = 2.0,
    max_expansions: int = 8,
    increasing: bool = True,
    integer: bool = False,
    policy: RetryPolicy | None = None,
    sleep: bool = True,
) -> ScalarSearchResult:
    """Find ``x`` in (an expansion of) ``[lo, hi]`` with
    ``fn(x) ~ target``.

    ``fn`` must be monotonic over the searched range -- increasing by
    default, ``increasing=False`` for objectives that fall as ``x``
    grows (cycles vs. a widening unroll).  When the initial bounds do
    not bracket the target, the deficient bound is pushed outward
    geometrically (``expand_factor``) up to ``max_expansions`` times --
    the auto-widening that lets callers start from a guess instead of a
    guarantee.  ``integer=True`` snaps probes to integers and stops
    when the bracket closes to adjacent integers.

    A probe that raises is retried under ``policy`` (deterministic
    backoff keyed by the probe value); one that exhausts the budget --
    or returns ``None`` -- is recorded as failed, and the search ends
    early with the best point found so far (``converged`` reflects the
    tolerance, not the interruption).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if max_tries < 2:
        raise ValueError(f"max_tries must be >= 2, got {max_tries}")
    if expand_factor <= 1.0:
        raise ValueError(
            f"expand_factor must be > 1, got {expand_factor}")
    if not lo < hi:
        raise ValueError(f"need lo < hi, got [{lo}, {hi}]")
    policy = policy or RetryPolicy()
    sense = 1.0 if increasing else -1.0

    probes: list[tuple[float, float | None]] = []
    best: tuple[float, float] | None = None  # (|value-target|, x) winner

    def snap(x: float) -> float:
        return float(round(x)) if integer else x

    def probe(x: float) -> float | None:
        x = snap(x)
        attempt = 0
        while True:
            try:
                value = fn(x)
            except Exception as exc:
                etype = type(exc).__name__
                counter("opt.probe_errors", origin=TUNE_ORIGIN, etype=etype)
                if (attempt + 1 >= policy.max_attempts
                        or not policy.is_retryable(etype)):
                    value = None
                else:
                    backoff = policy.backoff_for(f"scalar|{x!r}", attempt)
                    if sleep and backoff > 0:
                        time.sleep(backoff)
                    attempt += 1
                    continue
            break
        probes.append((x, value))
        nonlocal best
        if value is not None:
            gap = abs(value - target)
            if best is None or gap < abs(best[1] - target):
                best = (x, value)
        return value

    def finish(lo: float, hi: float, expansions: int) -> ScalarSearchResult:
        if best is None:
            # Every probe failed; report the midpoint with an infinite
            # gap so the caller can tell nothing was measured.
            return ScalarSearchResult(
                best_x=snap((lo + hi) / 2.0), best_value=float("nan"),
                target=target, converged=False, probes=tuple(probes),
                expansions=expansions, lo=lo, hi=hi)
        return ScalarSearchResult(
            best_x=best[0], best_value=best[1], target=target,
            converged=abs(best[1] - target) <= tolerance,
            probes=tuple(probes), expansions=expansions, lo=lo, hi=hi)

    with trace("opt.scalar", target=target, increasing=increasing):
        f_lo = probe(lo)
        if f_lo is None:
            return finish(lo, hi, 0)
        if abs(f_lo - target) <= tolerance:
            return finish(lo, hi, 0)
        f_hi = probe(hi)
        if f_hi is None:
            return finish(lo, hi, 0)

        # Auto-widen until [f(lo), f(hi)] brackets the target (in the
        # monotone sense): push hi out while f(hi) is still short of
        # the target, lo out while f(lo) already overshoots it.
        expansions = 0
        span = hi - lo
        while sense * (f_hi - target) < 0 and expansions < max_expansions:
            span *= expand_factor
            hi = snap(lo + span)
            expansions += 1
            f_hi = probe(hi)
            if f_hi is None:
                return finish(lo, hi, expansions)
        while sense * (f_lo - target) > 0 and expansions < max_expansions:
            span *= expand_factor
            lo = snap(hi - span)
            expansions += 1
            f_lo = probe(lo)
            if f_lo is None:
                return finish(lo, hi, expansions)
        if sense * (f_lo - target) > 0 or sense * (f_hi - target) < 0:
            # Expansion budget exhausted without a bracket.
            return finish(lo, hi, expansions)

        while len(probes) < max_tries:
            if integer and hi - lo <= 1:
                break
            mid = snap((lo + hi) / 2.0)
            if integer and mid in (lo, hi):
                break
            value = probe(mid)
            if value is None:
                return finish(lo, hi, expansions)
            if abs(value - target) <= tolerance:
                break
            if sense * (value - target) < 0:
                lo = mid
            else:
                hi = mid
        return finish(lo, hi, expansions)


def tune_arch_field(
    field: str,
    target: float,
    store: ResultStore,
    *,
    network: str,
    metric: str = "cycles",
    accelerator: str = "BitWave",
    backend: str = "model",
    base_arch: str = DEFAULT_ARCH,
    lo: float,
    hi: float,
    tolerance: float,
    max_tries: int = 32,
    expand_factor: float = 2.0,
    max_expansions: int = 8,
    increasing: bool = True,
    integer: bool = True,
    policy: RetryPolicy | None = None,
) -> ScalarSearchResult:
    """Tune one arch-override axis toward a target metric value.

    Probe ``x`` evaluates ``base_arch@field=x`` on ``network`` through
    the shared store (records stamped ``origin=opt:tune``), extracting
    ``metric`` from the result.  An unparseable override value raises
    immediately (poison, not weather); an evaluation failure is retried
    by the underlying :class:`~repro.opt.objective.Objective`.
    """
    resolved = resolve_metric(metric)
    objective = Objective(store, origin=TUNE_ORIGIN, policy=policy)

    def fn(x: float) -> float | None:
        spelled = f"{int(x)}" if integer else f"{x:g}"
        point = EvalPoint(
            accelerator=accelerator, network=network, backend=backend,
            arch=f"{base_arch}@{field}={spelled}")
        probe = objective.probe(point)
        if probe.result is None:
            return None
        return resolved.extract(probe.result)

    return bound_expanding_search(
        fn, target, lo=lo, hi=hi, tolerance=tolerance,
        max_tries=max_tries, expand_factor=expand_factor,
        max_expansions=max_expansions, increasing=increasing,
        integer=integer, policy=policy)
