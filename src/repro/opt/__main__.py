"""``python -m repro.opt``: guided search over the cached eval grid.

Examples::

    # Seeded successive halving over an inline campaign space: probe a
    # 12-point sample of the grid, promote the best half each round,
    # report the Pareto front of everything probed at full fidelity.
    python -m repro.opt sh --name smoke \\
        --accelerators SCNN,BitWave --networks cnn_lstm,cnn_lstm@frames=64 \\
        --seed 73 --sample 12 --metric cycles --x cycles --y tops_per_w

    # The pinned acceptance space (36 points; CI asserts the guided
    # front matches the exhaustive one from 12 evaluations).
    python -m repro.opt sh --smoke --format json

    # Single-axis tuning: find the group size where BitWave's cycles
    # cross a target, auto-widening the bounds if they miss it.
    python -m repro.opt tune --network cnn_lstm --field group \\
        --target 5e6 --lo 4 --hi 32 --tolerance 1e5 --decreasing

    # Accuracy x hardware co-search: greedy Bit-Flip strategies priced
    # under candidate archs, emitting an accuracy-vs-TOPS/W frontier.
    python -m repro.opt cosearch --network cnn_lstm \\
        --archs bitwave-16nm,bitwave-dense-16nm --min-accuracy 3.5

    # Guided runs share the exhaustive store: after `repro.dse run`
    # over the same grid, `sh` performs zero new evaluations.  Tracing
    # and chaos flags work exactly as on campaigns.
    python -m repro.opt sh --smoke --store /tmp/s --trace --inject \\
        'seed=7,crash:0.3:attempt<1:site=opt'
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro import obs
from repro.dse.__main__ import (
    _activate_faults,
    _activate_tracing,
    _add_format_argument,
    _add_resilience_arguments,
    _add_trace_argument,
    _csv,
    _load_spec,
    _policy_from_args,
    _store,
)
from repro.dse.retry import RetryPolicy
from repro.dse.summary import METRICS
from repro.dse.spec import CampaignSpec
from repro.opt.cosearch import CosearchConfig, cosearch
from repro.opt.halving import (
    SMOKE_SAMPLE,
    SMOKE_SEED,
    HalvingConfig,
    smoke_space,
    successive_halving,
)
from repro.opt.scalar import tune_arch_field
from repro.utils.tables import format_table


def _emit_json(payload: object) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _add_spec_like_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.dse.__main__ import _add_spec_arguments

    _add_spec_arguments(parser)
    parser.add_argument("--smoke", action="store_true",
                        help="use the pinned acceptance space instead "
                             "of --spec/inline flags (36 points, "
                             f"seed {SMOKE_SEED}, sample {SMOKE_SAMPLE})")


def _sh_spec(args: argparse.Namespace) -> CampaignSpec:
    if args.smoke:
        if args.spec or args.accelerators or args.networks \
                or args.variants or args.backends or args.archs:
            raise SystemExit("--smoke and --spec/inline flags are exclusive")
        return smoke_space()
    return _load_spec(args)


def _finish_trace(trace_dir: Any) -> None:
    if trace_dir is not None:
        obs.flush()
        print(f"trace: {trace_dir} "
              f"(aggregate: python -m repro.obs report {trace_dir})",
              file=sys.stderr)


def _cmd_sh(args: argparse.Namespace) -> int:
    spec = _sh_spec(args)
    store = _store(args)
    trace_dir = _activate_tracing(args, f"opt-{spec.name}", store.root)
    _activate_faults(args)
    config = HalvingConfig(
        metric=args.metric, x=args.x, y=args.y,
        seed=args.seed, sample=args.sample, eta=args.eta,
        min_survivors=args.min_survivors,
        sim_contexts=args.sim_contexts,
    )
    result = successive_halving(
        spec, store, config, policy=_policy_from_args(args, spec.retry))
    _finish_trace(trace_dir)
    if args.format == "json":
        _emit_json(result.to_dict())
        return 1 if result.counts.get("failed") else 0
    counts = result.counts
    print(f"successive halving over {spec.name}: "
          f"{counts['probes']} probes ({counts['evaluated']} evaluated, "
          f"{counts['saved']} cache hits, {counts['failed']} failed) "
          f"across {len(result.rounds)} rounds; grid size "
          f"{result.grid_size}")
    rows = [
        [row["config"], row["network"], row[config.x], row[config.y]]
        for row in result.front
    ]
    print(format_table(
        ["config", "network", config.x, config.y],
        rows,
        title=(f"Guided Pareto front over ({config.x}, {config.y}), "
               f"{len(rows)} points from "
               f"{counts['evaluated']}/{result.grid_size} evaluations"),
    ))
    return 1 if counts.get("failed") else 0


def _cmd_tune(args: argparse.Namespace) -> int:
    store = _store(args)
    trace_dir = _activate_tracing(args, f"opt-tune-{args.field}", store.root)
    _activate_faults(args)
    result = tune_arch_field(
        args.field, args.target, store,
        network=args.network, metric=args.metric,
        accelerator=args.accelerator, backend=args.backend,
        base_arch=args.arch,
        lo=args.lo, hi=args.hi, tolerance=args.tolerance,
        max_tries=args.max_tries, expand_factor=args.expand_factor,
        max_expansions=args.max_expansions,
        increasing=not args.decreasing, integer=not args.float,
        policy=_policy_from_args(args, None))
    _finish_trace(trace_dir)
    if args.format == "json":
        _emit_json(result.to_dict())
        return 0 if result.converged else 1
    status = "converged" if result.converged else "NOT converged"
    print(f"tune {args.field} on {args.network}: best "
          f"{args.field}={result.best_x:g} -> {args.metric}="
          f"{result.best_value:g} (target {args.target:g}, {status}, "
          f"{result.tries} probes, {result.expansions} bound expansions)")
    return 0 if result.converged else 1


def _cmd_cosearch(args: argparse.Namespace) -> int:
    store = _store(args)
    trace_dir = _activate_tracing(args, "opt-cosearch", store.root)
    _activate_faults(args)
    config = CosearchConfig(
        network=args.network, preset=args.preset, archs=args.archs,
        min_accuracy=args.min_accuracy, max_moves=args.max_moves,
        group_sizes=args.group_sizes, batch=args.batch, seed=args.seed)
    result = cosearch(store, config,
                      policy=_policy_from_args(args, None))
    _finish_trace(trace_dir)
    if args.format == "json":
        _emit_json(result.to_dict())
        return 1 if result.counts.get("failed") else 0
    counts = result.counts
    print(f"cosearch on {config.network} ({config.preset}): "
          f"{len(result.history)} accepted moves, {counts['probes']} "
          f"pricing probes ({counts['evaluated']} evaluated, "
          f"{counts['saved']} cache hits, {counts['failed']} failed)")
    rows = [
        [row["moves"], row["arch"], f"{row['accuracy']:.4f}",
         f"{row['tops_per_w']:.4f}"]
        for row in result.front
    ]
    print(format_table(
        ["moves", "arch", "accuracy", "TOPS/W"],
        rows,
        title=(f"Accuracy-vs-TOPS/W frontier over "
               f"{{strategy x arch}}, {len(rows)} of {len(result.rows)} "
               f"archive points"),
    ))
    return 1 if counts.get("failed") else 0


def _int_csv(value: str) -> tuple[int, ...]:
    return tuple(int(part) for part in value.split(",") if part)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.opt",
        description="guided design-space search and accuracy x hardware "
                    "co-search over the cached evaluation grid",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sh = sub.add_parser(
        "sh", help="seeded successive halving over a campaign space")
    _add_spec_like_arguments(p_sh)
    p_sh.add_argument("--seed", type=int, default=SMOKE_SEED,
                      help=f"candidate-draw seed (default {SMOKE_SEED})")
    p_sh.add_argument("--sample", type=int, default=SMOKE_SAMPLE,
                      help="candidates drawn from the grid "
                           f"(default {SMOKE_SAMPLE}; 0 = whole grid)")
    p_sh.add_argument("--eta", type=int, default=2,
                      help="survivor fraction per round (default 2)")
    p_sh.add_argument("--min-survivors", type=int, default=1,
                      help="stop when this many candidates remain")
    p_sh.add_argument("--metric", default="cycles",
                      choices=sorted(METRICS),
                      help="promotion ranking metric (default: cycles)")
    p_sh.add_argument("--x", default="cycles", choices=sorted(METRICS),
                      help="first front objective (default: cycles)")
    p_sh.add_argument("--y", default="tops_per_w",
                      choices=sorted(METRICS),
                      help="second front objective (default: tops_per_w)")
    p_sh.add_argument("--sim-contexts", type=_int_csv, default=(),
                      metavar="C,D",
                      help="fidelity ladder for sim-backed points: round "
                           "r probes with sim_max_contexts=C[r] while "
                           "the ladder lasts (default: none)")
    _add_format_argument(p_sh)
    _add_trace_argument(p_sh)
    _add_resilience_arguments(p_sh)
    p_sh.set_defaults(func=_cmd_sh)

    p_tune = sub.add_parser(
        "tune", help="bound-expanding scalar search over one arch axis")
    p_tune.add_argument("--network", required=True)
    p_tune.add_argument("--field", required=True,
                        help="arch override field to tune (e.g. group, "
                             "sram_pj)")
    p_tune.add_argument("--target", type=float, required=True,
                        help="metric value to hit")
    p_tune.add_argument("--metric", default="cycles",
                        choices=sorted(METRICS))
    p_tune.add_argument("--accelerator", default="BitWave")
    p_tune.add_argument("--backend", default="model")
    p_tune.add_argument("--arch", default="bitwave-16nm",
                        help="base arch the tuned field overrides")
    p_tune.add_argument("--lo", type=float, required=True)
    p_tune.add_argument("--hi", type=float, required=True)
    p_tune.add_argument("--tolerance", type=float, required=True)
    p_tune.add_argument("--max-tries", type=int, default=32)
    p_tune.add_argument("--expand-factor", type=float, default=2.0)
    p_tune.add_argument("--max-expansions", type=int, default=8)
    p_tune.add_argument("--decreasing", action="store_true",
                        help="the metric falls as the field grows")
    p_tune.add_argument("--float", action="store_true",
                        help="tune a float-valued field (default: "
                             "integer, snapped and spelled as int)")
    p_tune.add_argument("--store", metavar="DIR", default=None,
                        help="result-store root (default: "
                             "$REPRO_DSE_STORE or ~/.cache/repro-dse)")
    _add_format_argument(p_tune)
    _add_trace_argument(p_tune)
    _add_resilience_arguments(p_tune)
    p_tune.set_defaults(func=_cmd_tune)

    p_co = sub.add_parser(
        "cosearch", help="joint accuracy x hardware Pareto search over "
                         "{strategy x arch}")
    p_co.add_argument("--network", default="cnn_lstm",
                      help="benchmark network (default: cnn_lstm)")
    p_co.add_argument("--preset", default="tiny",
                      help="executable model preset for the fidelity "
                           "proxy (default: tiny)")
    p_co.add_argument("--archs", type=_csv,
                      default=("bitwave-16nm", "bitwave-dense-16nm"),
                      metavar="A,B",
                      help="candidate hardware design points")
    p_co.add_argument("--min-accuracy", type=float, default=3.5,
                      help="Algorithm 1 stopping constraint on the "
                           "fidelity-proxy scale (default 3.5)")
    p_co.add_argument("--max-moves", type=int, default=3,
                      help="accepted greedy moves to explore (default 3)")
    p_co.add_argument("--group-sizes", type=_int_csv, default=(16,),
                      metavar="G,H",
                      help="group sizes the strategy search may flip at "
                           "(default: 16)")
    p_co.add_argument("--batch", type=int, default=2,
                      help="calibration-input batch (default 2)")
    p_co.add_argument("--seed", type=int, default=0,
                      help="calibration-input seed (default 0)")
    p_co.add_argument("--store", metavar="DIR", default=None,
                      help="result-store root (default: "
                           "$REPRO_DSE_STORE or ~/.cache/repro-dse)")
    _add_format_argument(p_co)
    _add_trace_argument(p_co)
    _add_resilience_arguments(p_co)
    p_co.set_defaults(func=_cmd_cosearch)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
