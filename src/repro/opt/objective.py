"""The failure-tolerant, cache-sharing objective behind every probe.

An :class:`Objective` turns ``repro.eval.evaluate``'s machinery into a
deterministic callback for guided drivers: store lookup first (guided
and exhaustive runs share the fingerprint-namespaced cache keyspace),
backend compute on a miss with bounded retries under a
:class:`repro.dse.retry.RetryPolicy`, and a store record stamped with
search provenance (``origin`` and round index in ``extra``) so mixed
guided+exhaustive stores stay auditable.

Probes are chaos-testable: each attempt binds the fault-injection point
context and fires the ``opt`` site, so an ``--inject
'crash:…:site=opt'`` plan exercises the retry loop exactly like real
infrastructure weather.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro import faults
from repro.dse.records import make_record
from repro.dse.retry import RetryPolicy
from repro.dse.spec import EvalPoint
from repro.dse.store import ResultStore, StoreRouter
from repro.eval.registry import get_backend
from repro.eval.request import EvalOptions, EvalRequest
from repro.eval.result import EvalResult
from repro.obs import counter, trace


@dataclass(frozen=True)
class Probe:
    """One objective evaluation: what was asked and what came back."""

    point: EvalPoint
    request: EvalRequest
    result: EvalResult | None
    #: ``True`` when the result came from the store (no evaluation ran).
    cached: bool
    #: Backend evaluation attempts this probe consumed (0 for a hit).
    attempts: int
    #: The terminal error for a failed probe (``result is None``).
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


class Objective:
    """Deterministic, failure-tolerant ``probe(point) -> Probe`` callback.

    ``origin`` names the driver (``"opt:sh"``, ``"opt:cosearch"``, ...)
    and is stamped into every record this objective writes.  The
    ``trajectory`` lists every probed request key in call order --
    cache hits included -- so two runs of a seeded driver can be
    checked for bit-identical probe sequences.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        origin: str,
        policy: RetryPolicy | None = None,
        sleep: bool = True,
    ) -> None:
        self.router = StoreRouter(store)
        self.origin = origin
        self.policy = policy or RetryPolicy()
        #: Suppress real backoff sleeps (tests pin trajectories, not
        #: wall clock; the backoff durations stay deterministic either
        #: way).
        self.sleep = sleep
        self.trajectory: list[str] = []
        self.evaluated = 0
        self.saved = 0
        self.failed = 0

    def request_for(self, point: EvalPoint,
                    options: EvalOptions | None = None) -> EvalRequest:
        """The (possibly fidelity-overridden) request a probe answers.

        ``options`` folds into the cache key unconditionally, so
        reduced-fidelity rungs get their own records and never
        masquerade as full-fidelity results -- drivers must probe with
        default options wherever they want exhaustive-run cache hits.
        """
        request = point.request()
        if options is not None:
            request = replace(request, options=options)
        return request

    def probe(
        self,
        point: EvalPoint,
        *,
        round_index: int = 0,
        options: EvalOptions | None = None,
    ) -> Probe:
        """Answer one point: store hit, or evaluate-with-retries.

        Never raises on evaluation failure -- a probe that exhausts its
        retry budget (or hits a poison error) returns with
        ``result=None`` and the driver ranks it last.  This is what
        lets a guided run keep converging while infrastructure
        misbehaves under it.
        """
        request = self.request_for(point, options)
        request.validate()
        key = request.key()
        self.trajectory.append(key)
        store = self.router.for_point(point)
        with trace("opt.probe", origin=self.origin, round=round_index,
                   backend=point.backend, workload=point.network):
            cached = store.result(key)
            if cached is not None:
                self.saved += 1
                counter("opt.probes.saved", origin=self.origin)
                return Probe(point=point, request=request, result=cached,
                             cached=True, attempts=0)
            return self._evaluate(point, request, key, store, round_index)

    def _evaluate(
        self,
        point: EvalPoint,
        request: EvalRequest,
        key: str,
        store: ResultStore,
        round_index: int,
    ) -> Probe:
        backend = get_backend(request.backend)
        last_error: str | None = None
        attempt = 0
        while True:
            faults.set_point_context(key, attempt)
            try:
                faults.fire("opt")
                start = time.perf_counter()
                result = backend.evaluate(request)
                elapsed = time.perf_counter() - start
            except Exception as exc:
                etype = type(exc).__name__
                last_error = f"{etype}: {exc}"
                counter("opt.probe_errors", origin=self.origin, etype=etype)
                if (attempt + 1 >= self.policy.max_attempts
                        or not self.policy.is_retryable(etype)):
                    self.failed += 1
                    counter("opt.probes.failed", origin=self.origin)
                    return Probe(point=point, request=request, result=None,
                                 cached=False, attempts=attempt + 1,
                                 error=last_error)
                backoff = self.policy.backoff_for(key, attempt)
                if self.sleep and backoff > 0:
                    time.sleep(backoff)
                attempt += 1
                continue
            finally:
                faults.clear_point_context()
            record = make_record(
                request, result, elapsed_s=elapsed,
                fingerprint=backend.fingerprint(),
                attempts=attempt + 1 if attempt else None,
                last_error=last_error if attempt else None,
                extra={"origin": self.origin, "round": round_index},
            )
            store.put(key, record)
            self.evaluated += 1
            counter("opt.probes.evaluated", origin=self.origin)
            return Probe(point=point, request=request, result=result,
                         cached=False, attempts=attempt + 1)

    def counts(self) -> dict[str, int]:
        """Probe accounting for reports and BENCH artifacts."""
        return {
            "probes": len(self.trajectory),
            "evaluated": self.evaluated,
            "saved": self.saved,
            "failed": self.failed,
        }
