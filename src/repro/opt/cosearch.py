"""Joint accuracy x hardware co-search over ``{strategy x arch}``.

The paper's Algorithm 1 (:func:`repro.core.search.greedy_bitflip_search`)
searches Bit-Flip strategies for *fidelity only*; this module closes
the loop it leaves open.  The greedy search supplies a trajectory of
strategy snapshots (one per accepted move, scored by a data-free
fidelity proxy on the tiny executable network), and each snapshot is
priced in hardware by the analytical BitWave model under every
candidate arch: the snapshot's per-layer zero-column targets cap the
workload's weight statistics exactly
(:meth:`~repro.sparsity.stats.LayerWeightStats.with_bitflip`), so
cycles/energy reflect the strategy, not the default flip table.  A
nondominated archive over ``(accuracy, TOPS/W)`` -- via
:func:`repro.core.pareto.pareto_front` -- emits the accuracy-vs-TOPS/W
frontier across ``{strategy x arch}``.

Pricing probes persist in an ``opt-`` fingerprinted namespace of the
shared store root (keys hash the strategy + arch + workload), so
re-running a co-search re-prices nothing, and records carry
``origin="opt:cosearch"`` provenance like every guided probe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro import faults
from repro.accelerators import build_accelerator
from repro.arch import canonical_arch, parse_arch
from repro.core.pareto import pareto_front
from repro.core.search import (
    Strategy,
    apply_strategy,
    empty_strategy,
    greedy_bitflip_search,
)
from repro.dse.records import make_record
from repro.dse.retry import RetryPolicy
from repro.dse.store import ResultStore
from repro.dse.summary import METRICS
from repro.eval.backends import model_network_evaluation
from repro.eval.fingerprints import opt_fingerprint
from repro.eval.request import config_hash
from repro.eval.result import EvalResult, from_network_evaluation
from repro.models import BUILDERS
from repro.models.fidelity import make_evaluator
from repro.obs import counter, trace
from repro.sparsity.profiles import network_weight_stats
from repro.workloads.nets import network_layers

#: Provenance tag stamped into every record a co-search writes.
COSEARCH_ORIGIN = "opt:cosearch"

#: Bump when the probe key layout or pricing semantics change.
COSEARCH_PROBE_VERSION = 1


def strategy_signature(strategy: Strategy) -> dict[str, dict[str, int]]:
    """Canonical JSON shape of a strategy: nonzero targets only, string
    group-size keys, deterministically ordered by ``config_hash``'s
    sorted-key serialization."""
    signature: dict[str, dict[str, int]] = {}
    for layer in sorted(strategy):
        targets = {str(gs): z for gs, z in sorted(strategy[layer].items())
                   if z > 0}
        if targets:
            signature[layer] = targets
    return signature


def effective_zero_columns(strategy: Strategy) -> dict[str, int]:
    """Per-layer zero-column cap a strategy guarantees in hardware.

    Flips at several group sizes compose (each pass only adds zero
    columns at its own granularity), so the strongest single-granularity
    target lower-bounds the zero columns every group of that layer
    carries -- the cap the BCS statistics price with.
    """
    return {layer: max(targets.values())
            for layer, targets in strategy.items()
            if targets and max(targets.values()) > 0}


@dataclass(frozen=True)
class CosearchProbe:
    """One ``{strategy x arch}`` pricing request (a store-keyable point).

    Satisfies the record protocol (``key()`` / ``to_dict()``) so
    :func:`repro.dse.records.make_record` persists it like any
    evaluation point.
    """

    workload: str
    arch: str
    preset: str
    strategy: Strategy

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "cosearch-probe",
            "version": COSEARCH_PROBE_VERSION,
            "workload": self.workload,
            "arch": canonical_arch(self.arch),
            "preset": self.preset,
            "strategy": strategy_signature(self.strategy),
        }

    def key(self) -> str:
        return config_hash(self.to_dict())


@dataclass(frozen=True)
class CosearchConfig:
    """Knobs of one co-search run (all deterministic)."""

    #: Benchmark network: accuracy side runs its tiny executable build,
    #: hardware side prices its workload layer table (names match).
    network: str = "cnn_lstm"
    preset: str = "tiny"
    #: Candidate hardware design points.
    archs: tuple[str, ...] = ("bitwave-16nm", "bitwave-dense-16nm")
    #: Algorithm 1's ``macc`` stopping constraint, on the network's
    #: fidelity-proxy scale (PESQ-shaped [1, 4.5] for cnn_lstm).
    min_accuracy: float = 3.5
    #: Accepted greedy moves to explore (each yields one snapshot).
    max_moves: int = 3
    group_sizes: tuple[int, ...] = (16,)
    #: Calibration-input batch and seed for the fidelity proxy.
    batch: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.network not in BUILDERS:
            raise ValueError(
                f"unknown network {self.network!r}; one of "
                f"{tuple(BUILDERS)}")
        if not self.archs:
            raise ValueError("cosearch needs at least one arch")
        object.__setattr__(self, "archs", tuple(self.archs))
        object.__setattr__(self, "group_sizes", tuple(self.group_sizes))
        for arch in self.archs:
            canonical_arch(arch)  # raises on unknown presets/fields
        if self.max_moves < 0:
            raise ValueError(f"max_moves must be >= 0, got {self.max_moves}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")


@dataclass(frozen=True)
class CosearchResult:
    """The co-search's archive, frontier, and accounting."""

    config: CosearchConfig
    #: Accepted greedy moves: ``(layer, group_size, new_target,
    #: accuracy)`` -- paper Algorithm 1's trajectory.
    history: tuple[tuple[str, int, int, float], ...]
    #: Every ``{strategy x arch}`` row priced (the archive).
    rows: tuple[dict[str, Any], ...]
    #: Nondominated rows over (accuracy, TOPS/W), both maximized.
    front: tuple[dict[str, Any], ...]
    #: Probe keys in call order (cache hits included).
    trajectory: tuple[str, ...]
    counts: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "origin": COSEARCH_ORIGIN,
            "network": self.config.network,
            "preset": self.config.preset,
            "archs": list(self.config.archs),
            "min_accuracy": self.config.min_accuracy,
            "seed": self.config.seed,
            "history": [list(move) for move in self.history],
            "rows": [dict(row) for row in self.rows],
            "front": [dict(row) for row in self.front],
            "trajectory": list(self.trajectory),
            "counts": dict(self.counts),
        }


def _price(probe: CosearchProbe) -> EvalResult:
    """Hardware-price one strategy snapshot under one arch.

    The fully-enabled BitWave model evaluates the workload against
    weight statistics capped by the *strategy's* zero-column targets
    (layers the strategy leaves alone keep their profiled statistics
    -- no default flip table is applied).
    """
    arch = parse_arch(probe.arch)
    accelerator = build_accelerator("BitWave", arch)
    stats = dict(network_weight_stats(probe.workload))
    for layer, z in effective_zero_columns(probe.strategy).items():
        if layer in stats:
            stats[layer] = stats[layer].with_bitflip(z)
    specs = network_layers(probe.workload)
    evaluation = accelerator.evaluate_workload(
        specs, stats, probe.workload)
    return from_network_evaluation(
        evaluation, backend="model",
        clock_hz=accelerator.arch.tech.clock_frequency_hz)


class _ProbeCache:
    """Store-backed pricing with retry/fault/provenance discipline.

    The co-search analogue of :class:`repro.opt.objective.Objective`:
    same counters, same ``opt`` fault site, same record stamping --
    but keyed by :class:`CosearchProbe` (strategies are not grid
    points) and namespaced by :func:`opt_fingerprint`.
    """

    def __init__(self, store: ResultStore, policy: RetryPolicy) -> None:
        self.store = ResultStore(store.root, namespace=opt_fingerprint())
        self.policy = policy
        self.trajectory: list[str] = []
        self.evaluated = 0
        self.saved = 0
        self.failed = 0

    def price(self, probe: CosearchProbe,
              round_index: int) -> EvalResult | None:
        key = probe.key()
        self.trajectory.append(key)
        with trace("opt.probe", origin=COSEARCH_ORIGIN, round=round_index,
                   backend="model", workload=probe.workload):
            cached = self.store.result(key)
            if cached is not None:
                self.saved += 1
                counter("opt.probes.saved", origin=COSEARCH_ORIGIN)
                return cached
            attempt = 0
            last_error: str | None = None
            while True:
                faults.set_point_context(key, attempt)
                try:
                    faults.fire("opt")
                    start = time.perf_counter()
                    result = _price(probe)
                    elapsed = time.perf_counter() - start
                except Exception as exc:
                    etype = type(exc).__name__
                    last_error = f"{etype}: {exc}"
                    counter("opt.probe_errors", origin=COSEARCH_ORIGIN,
                            etype=etype)
                    if (attempt + 1 >= self.policy.max_attempts
                            or not self.policy.is_retryable(etype)):
                        self.failed += 1
                        counter("opt.probes.failed", origin=COSEARCH_ORIGIN)
                        return None
                    backoff = self.policy.backoff_for(key, attempt)
                    if backoff > 0:
                        time.sleep(backoff)
                    attempt += 1
                    continue
                finally:
                    faults.clear_point_context()
                record = make_record(
                    probe, result, elapsed_s=elapsed,
                    fingerprint=opt_fingerprint(),
                    attempts=attempt + 1 if attempt else None,
                    last_error=last_error if attempt else None,
                    extra={"origin": COSEARCH_ORIGIN, "round": round_index},
                )
                self.store.put(key, record)
                self.evaluated += 1
                counter("opt.probes.evaluated", origin=COSEARCH_ORIGIN)
                return result

    def counts(self) -> dict[str, int]:
        return {
            "probes": len(self.trajectory),
            "evaluated": self.evaluated,
            "saved": self.saved,
            "failed": self.failed,
        }


def cosearch(
    store: ResultStore,
    config: CosearchConfig | None = None,
    policy: RetryPolicy | None = None,
) -> CosearchResult:
    """Run the accuracy x hardware co-search.

    Deterministic end to end: the model's weights and calibration
    inputs are seeded, Algorithm 1 is deterministic given both, and
    pricing is analytic -- so the same config replays the identical
    move history, probe trajectory, archive, and frontier.
    """
    config = config or CosearchConfig()
    policy = policy or RetryPolicy()
    cache = _ProbeCache(store, policy)

    with trace("opt.round", origin=COSEARCH_ORIGIN, round=0,
               phase="accuracy-search"):
        model = BUILDERS[config.network](config.preset)
        inputs = model.sample_inputs(config.batch, seed=config.seed)
        evaluate = make_evaluator(model, inputs)
        weights = model.weights_int8()
        baseline = evaluate(apply_strategy(weights, empty_strategy(weights)))
        search = greedy_bitflip_search(
            weights, evaluate, config.min_accuracy,
            group_sizes=config.group_sizes, max_moves=config.max_moves)
    counter("opt.cosearch.moves", n=len(search.history))

    # Snapshot trajectory: the empty strategy, then the strategy after
    # each accepted move -- every rung of the accuracy ladder gets
    # priced, not just the end point.
    snapshots: list[tuple[Strategy, float]] = [
        (empty_strategy(weights), baseline)]
    replay = empty_strategy(weights)
    for layer, gs, new_z, accuracy in search.history:
        replay = {name: dict(t) for name, t in replay.items()}
        replay[layer][gs] = new_z
        snapshots.append((replay, accuracy))

    tops_per_w = METRICS["tops_per_w"]
    cycles = METRICS["cycles"]
    energy = METRICS["energy"]
    rows: list[dict[str, Any]] = []
    archive: list[tuple[float, float, dict[str, Any]]] = []
    for round_index, (strategy, accuracy) in enumerate(snapshots):
        with trace("opt.round", origin=COSEARCH_ORIGIN, round=round_index,
                   phase="pricing", archs=len(config.archs)):
            for arch in config.archs:
                probe = CosearchProbe(
                    workload=config.network, arch=arch,
                    preset=config.preset, strategy=strategy)
                result = cache.price(probe, round_index)
                if result is None:
                    continue
                efficiency = tops_per_w.extract(result)
                row = {
                    "key": probe.key(),
                    "moves": round_index,
                    "arch": canonical_arch(arch),
                    "strategy": strategy_signature(strategy),
                    "accuracy": accuracy,
                    "tops_per_w": efficiency,
                    "cycles": cycles.extract(result),
                    "energy": energy.extract(result),
                }
                rows.append(row)
                if efficiency is not None:
                    archive.append((accuracy, efficiency, row))

    front = pareto_front(archive, maximize=(True, True))
    counter("opt.cosearch.front", n=len(front))
    return CosearchResult(
        config=config,
        history=tuple(search.history),
        rows=tuple(rows),
        front=tuple(row for _, _, row in front),
        trajectory=tuple(cache.trajectory),
        counts=cache.counts(),
    )
