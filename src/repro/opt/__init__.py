"""Guided design-space search over the cached evaluation grid.

Campaigns (:mod:`repro.dse`) enumerate full cross-product grids; this
package drives :mod:`repro.eval` as an *objective function* instead, so
a search touches only the points it needs -- while recording every
probe into the same fingerprint-namespaced result store, so guided and
exhaustive runs share one cache (a guided run after an exhaustive one
performs zero new evaluations, and vice versa).

Three drivers:

- :func:`successive_halving` -- sample a :class:`repro.dse.CampaignSpec`
  space, rank by a named metric, promote the top half through rungs of
  increasing fidelity until one survivor set remains, and report the
  Pareto front of everything probed;
- :func:`bound_expanding_search` -- scalar search (tolerance, max
  tries, auto-widening bounds, failure-tolerant probes) in the
  objective-callback style of OpenNVRAM's characterizer, with
  :func:`tune_arch_field` adapting it to a single arch-override axis;
- :func:`cosearch` -- the accuracy x hardware co-search: the paper's
  greedy Bit-Flip strategy search (:mod:`repro.core.search`) supplies
  accuracy-side candidates, the eval backends price them in
  cycles/energy, and a nondominated archive over ``{strategy x arch}``
  emits an accuracy-vs-TOPS/W frontier.

Every probe goes through :class:`Objective`, which stamps records with
``origin``/``round`` provenance, counts cache hits vs fresh
evaluations (``opt.probes.*`` counters), and retries transient
failures under the campaign :class:`repro.dse.retry.RetryPolicy` --
including faults injected at the ``opt`` site by ``--inject`` plans.
Seeds thread end-to-end: the same seed replays the identical probe
trajectory.
"""

from repro.opt.cosearch import CosearchConfig, CosearchResult, cosearch
from repro.opt.halving import (
    HalvingConfig,
    HalvingResult,
    smoke_space,
    successive_halving,
)
from repro.opt.objective import Objective, Probe
from repro.opt.scalar import (
    ScalarSearchResult,
    bound_expanding_search,
    tune_arch_field,
)

__all__ = [
    "CosearchConfig",
    "CosearchResult",
    "HalvingConfig",
    "HalvingResult",
    "Objective",
    "Probe",
    "ScalarSearchResult",
    "bound_expanding_search",
    "cosearch",
    "smoke_space",
    "successive_halving",
    "tune_arch_field",
]
