"""Successive halving over a sampled campaign space.

Draw a deterministic sample from a :class:`repro.dse.CampaignSpec`
grid, probe every candidate, keep the best ``1/eta`` fraction under a
named ranking metric, and repeat until one survivor set remains.
Because every full-fidelity probe lands in the shared result store,
the search costs only the *fresh* evaluations -- round-two probes of
round-one survivors are pure cache hits, and a halving run launched
after an exhaustive campaign evaluates nothing at all.

An optional fidelity ladder (``sim_contexts``) probes early rounds of
simulator-backed points at reduced ``sim_max_contexts``; reduced-
fidelity records get their own cache keys (options fold into the key)
and are excluded from the reported Pareto archive, so cheap rungs
never masquerade as full-fidelity results.  Model-backed points always
probe at default options -- their keys must match exhaustive runs.

The Pareto front is taken over *every* full-fidelity probe the run
made (the archive), not just the last survivors: round one already
prices the whole sample, so the front loses nothing to the halving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.pareto import pareto_front
from repro.dse.retry import RetryPolicy
from repro.dse.spec import CampaignSpec, EvalPoint
from repro.dse.store import ResultStore
from repro.dse.summary import Metric, resolve_metric
from repro.eval.request import MODEL_BACKEND, EvalOptions
from repro.obs import counter, trace
from repro.opt.objective import Objective, Probe

#: Provenance tag stamped into every record a halving run writes.
SH_ORIGIN = "opt:sh"

#: Pinned seed/sample for the acceptance smoke: with this draw the
#: sample contains every point of the exhaustive Pareto front, so the
#: guided run recovers it bit-identically from 12 of 36 grid points.
SMOKE_SEED = 73
SMOKE_SAMPLE = 12


def smoke_space(name: str = "opt-smoke") -> CampaignSpec:
    """The pinned ~3-axis acceptance space (36 points, all model-backed).

    Six accelerators x three CNN-LSTM parametrizations of escalating
    size x two arch design points.  Small enough for CI (every point
    evaluates in milliseconds), rich enough that the
    (cycles, TOPS/W) front is a genuine 3-point trade-off curve.
    """
    return CampaignSpec(
        name=name,
        accelerators=("SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA",
                      "BitWave"),
        networks=("cnn_lstm@frames=2+bins=32+hidden=32",
                  "cnn_lstm@frames=32+hidden=256",
                  "cnn_lstm@frames=64"),
        archs=("bitwave-16nm", "bitwave-dense-16nm"),
    )


@dataclass(frozen=True)
class HalvingConfig:
    """Knobs of one successive-halving run (all deterministic)."""

    #: Ranking metric for promotion between rounds.
    metric: str = "cycles"
    #: Archive/front objectives.
    x: str = "cycles"
    y: str = "tops_per_w"
    seed: int = SMOKE_SEED
    #: Candidates drawn from the grid (0 = the whole grid).
    sample: int = SMOKE_SAMPLE
    #: Survivor fraction: each round keeps ``ceil(n / eta)``.
    eta: int = 2
    min_survivors: int = 1
    #: Fidelity ladder for sim-backed points: round ``r`` probes with
    #: ``sim_max_contexts=sim_contexts[r]`` while the ladder lasts;
    #: rounds past its end (and model-backed points always) probe at
    #: full fidelity.  Empty = no ladder.
    sim_contexts: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        resolve_metric(self.metric)
        resolve_metric(self.x)
        resolve_metric(self.y)
        if self.sample < 0:
            raise ValueError(f"sample must be >= 0, got {self.sample}")
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")
        if self.min_survivors < 1:
            raise ValueError(
                f"min_survivors must be >= 1, got {self.min_survivors}")
        object.__setattr__(self, "sim_contexts", tuple(self.sim_contexts))


@dataclass(frozen=True)
class HalvingResult:
    """Everything a halving run decided, probed, and found."""

    spec_name: str
    config: HalvingConfig
    grid_size: int
    #: Request keys of the sampled candidates, in draw order.
    sampled: tuple[str, ...]
    #: Per-round summaries: candidates in, survivors out.
    rounds: tuple[dict[str, Any], ...]
    #: Keys of the final survivor set, best-ranked first.
    survivors: tuple[str, ...]
    #: Every probed request key, in call order (cache hits included).
    trajectory: tuple[str, ...]
    #: Pareto rows over (x, y) across all full-fidelity probes.
    front: tuple[dict[str, Any], ...]
    counts: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec_name,
            "origin": SH_ORIGIN,
            "metric": self.config.metric,
            "objectives": [self.config.x, self.config.y],
            "seed": self.config.seed,
            "grid_size": self.grid_size,
            "sampled": list(self.sampled),
            "rounds": [dict(r) for r in self.rounds],
            "survivors": list(self.survivors),
            "trajectory": list(self.trajectory),
            "front": [dict(row) for row in self.front],
            "counts": dict(self.counts),
        }


def sample_candidates(spec: CampaignSpec, seed: int,
                      sample: int) -> list[EvalPoint]:
    """The deterministic candidate draw a seed names.

    The pool is sorted by request key before sampling, so the draw
    depends only on ``(grid contents, seed, sample)`` -- never on grid
    expansion order or ``PYTHONHASHSEED``.
    """
    pool = sorted(spec.points(), key=lambda p: p.key())
    if sample == 0 or sample >= len(pool):
        return pool
    return random.Random(seed).sample(pool, sample)


def _rank(probes: list[Probe], metric: Metric) -> list[Probe]:
    """Best-first order under ``metric``; failed/unpriced probes rank
    last, ties break by request key -- fully deterministic."""
    def sort_key(probe: Probe) -> tuple[int, float, str]:
        value = (None if probe.result is None
                 else metric.extract(probe.result))
        if value is None or value != value:
            return (1, 0.0, probe.request.key())
        ranked = -value if metric.maximize else value
        return (0, ranked, probe.request.key())
    return sorted(probes, key=sort_key)


def _front_rows(archive: list[Probe], config: HalvingConfig,
                ) -> tuple[dict[str, Any], ...]:
    """Pareto rows (shaped like ``dse.summary.pareto_data``) over the
    full-fidelity archive."""
    mx, my = resolve_metric(config.x), resolve_metric(config.y)
    points = []
    for probe in archive:
        if probe.result is None:
            continue
        vx, vy = mx.extract(probe.result), my.extract(probe.result)
        if vx is None or vy is None:
            continue
        points.append((vx, vy, probe.point))
    front = pareto_front(points, maximize=(mx.maximize, my.maximize))
    return tuple(
        {
            "key": point.key(),
            "config": point.config_label,
            "network": point.network,
            "backend": point.backend,
            "arch": point.arch,
            config.x: vx,
            config.y: vy,
        }
        for vx, vy, point in front
    )


def successive_halving(
    spec: CampaignSpec,
    store: ResultStore,
    config: HalvingConfig | None = None,
    policy: RetryPolicy | None = None,
) -> HalvingResult:
    """Run seeded successive halving over ``spec``'s grid.

    Deterministic end to end: the same ``(spec, config)`` replays the
    identical candidate draw, probe trajectory, and survivor sets --
    whatever the store already holds only changes which probes are
    cache hits, never which probes are made.
    """
    config = config or HalvingConfig()
    policy = policy or spec.retry or RetryPolicy()
    objective = Objective(store, origin=SH_ORIGIN, policy=policy)
    metric = resolve_metric(config.metric)
    grid_size = len(spec.points())
    candidates = sample_candidates(spec, config.seed, config.sample)
    counter("opt.grid.size", n=grid_size, origin=SH_ORIGIN)
    counter("opt.sampled", n=len(candidates), origin=SH_ORIGIN)

    sampled = tuple(point.key() for point in candidates)
    archive: list[Probe] = []
    archived: set[str] = set()
    rounds: list[dict[str, Any]] = []
    round_index = 0
    while True:
        with trace("opt.round", origin=SH_ORIGIN, round=round_index,
                   candidates=len(candidates)):
            probes = []
            for point in candidates:
                options = _round_options(point, round_index, config)
                probe = objective.probe(point, round_index=round_index,
                                        options=options)
                probes.append(probe)
                if options is None and probe.ok \
                        and probe.request.key() not in archived:
                    archived.add(probe.request.key())
                    archive.append(probe)
            ranked = _rank(probes, metric)
            keep = max((len(ranked) + config.eta - 1) // config.eta,
                       config.min_survivors)
            survivors = ranked[:keep]
        rounds.append({
            "round": round_index,
            "candidates": len(candidates),
            "survivors": [p.point.key() for p in survivors],
            "fidelity": ("full" if not _laddered(round_index, config)
                         else f"sim_max_contexts="
                              f"{config.sim_contexts[round_index]}"),
        })
        candidates = [probe.point for probe in survivors]
        round_index += 1
        if len(candidates) <= config.min_survivors:
            break
    counter("opt.rounds", n=len(rounds), origin=SH_ORIGIN)

    return HalvingResult(
        spec_name=spec.name,
        config=config,
        grid_size=grid_size,
        sampled=sampled,
        rounds=tuple(rounds),
        survivors=tuple(point.key() for point in candidates),
        trajectory=tuple(objective.trajectory),
        front=_front_rows(archive, config),
        counts=objective.counts(),
    )


def _laddered(round_index: int, config: HalvingConfig) -> bool:
    return round_index < len(config.sim_contexts)


def _round_options(point: EvalPoint, round_index: int,
                   config: HalvingConfig) -> EvalOptions | None:
    """The fidelity override for this probe (``None`` = full fidelity).

    Only simulator-backed points ride the ladder: model-backed probes
    must keep default options so their cache keys match exhaustive
    campaign records.
    """
    if point.backend == MODEL_BACKEND or not _laddered(round_index, config):
        return None
    return EvalOptions(sim_max_contexts=config.sim_contexts[round_index])
