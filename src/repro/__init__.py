"""BitWave (HPCA 2024) reproduction.

A production-quality Python library reproducing *BitWave: Exploiting
Column-Based Bit-Level Sparsity for Deep Learning Acceleration*
(Shi et al., HPCA 2024).

The package is organised as:

- :mod:`repro.core` -- the paper's contribution: bit-column sparsity,
  sign-magnitude codecs, BCS compression, Bit-Flip optimization and the
  greedy network-wide search (Algorithm 1).
- :mod:`repro.nn` / :mod:`repro.models` -- a pure-NumPy DNN substrate with
  the four benchmark networks (ResNet18, MobileNetV2, CNN-LSTM, BERT-Base).
- :mod:`repro.quant` -- Int8 post-training quantization.
- :mod:`repro.sparsity` -- value/bit/column sparsity statistics.
- :mod:`repro.workloads` -- layer-shape databases for the benchmarks.
- :mod:`repro.model` -- the analytical (ZigZag/Sparseloop-style)
  performance, energy and area model, equations (1)-(5) of the paper.
- :mod:`repro.accelerators` -- BitWave and the five SotA baselines
  (Dense, HUAA, Stripes, Pragmatic, Bitlet, SCNN).
- :mod:`repro.sim` -- a cycle-approximate simulator of the BitWave
  datapath (ZCIP, SMM, BCE, fetcher, dispatcher).
- :mod:`repro.experiments` -- one harness per paper table/figure.
"""

from repro.core.bitcolumn import (
    bit_sparsity,
    column_sparsity,
    group_weights,
    nonzero_column_counts,
    value_sparsity,
    zero_column_mask,
)
from repro.core.bitflip import flip_group, flip_layer
from repro.core.compression import (
    bcs_compress,
    bcs_compression_ratio,
    bcs_decompress,
)
from repro.core.pipeline import BitWavePipeline
from repro.core.signmag import (
    from_sign_magnitude,
    sm_bitplanes,
    to_sign_magnitude,
    twos_complement_bitplanes,
)

__version__ = "1.0.0"

__all__ = [
    "BitWavePipeline",
    "bcs_compress",
    "bcs_compression_ratio",
    "bcs_decompress",
    "bit_sparsity",
    "column_sparsity",
    "flip_group",
    "flip_layer",
    "from_sign_magnitude",
    "group_weights",
    "nonzero_column_counts",
    "sm_bitplanes",
    "to_sign_magnitude",
    "twos_complement_bitplanes",
    "value_sparsity",
    "zero_column_mask",
]
