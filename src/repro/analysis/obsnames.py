"""The checked-in registry of observability event names.

Every span, counter, and gauge name the tree emits
(:mod:`repro.obs`: ``trace`` / ``observe`` / ``counter`` / ``gauge``,
plus the serving layer's mirrored ``ServeMetrics.incr``) must follow
one grammar -- ``layer.noun`` or ``layer.noun.verb``, lowercase
``snake_case`` segments -- and appear here.  The ``obs-names`` lint
rule (:mod:`repro.analysis.rules`) enforces both, so a typo'd or
ad-hoc metric name fails ``python -m repro.analysis check`` instead of
silently fragmenting the trace reports and the CI counter assertions
that pin exact values against these names.

Adding an instrumentation point is a two-line change: emit the event,
add its name to the matching set below.  The obs report CLI and the CI
smokes key on these exact strings, so the registry doubles as the
single place to see every signal the system can produce.
"""

from __future__ import annotations

import re

#: ``layer.noun`` or ``layer.noun.verb``: 2-3 lowercase snake segments.
NAME_GRAMMAR = re.compile(
    r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)?$")

#: Span names (``trace(...)`` context managers and caller-timed
#: ``observe(...)`` durations; both land in the per-phase tables).
SPAN_NAMES = frozenset({
    "dse.cache_scan",
    "dse.drive",
    "dse.persist",
    "dse.point",
    "dse.retry.backoff",
    "dse.worker.queue_wait",
    "eval.evaluate",
    "eval.lower.layer",
    "eval.lower.sim_call",
    "eval.lower.stats",
    "eval.lower.weights",
    "eval.model",
    "eval.persist",
    "eval.store_lookup",
    "opt.probe",
    "opt.round",
    "opt.scalar",
    "serve.persist",
    "serve.point",
    "serve.request",
    "serve.retry.backoff",
    "serve.store_error",
    "serve.store_lookup",
    "sim.compute",
    "sim.decode",
    "sim.encode",
    "sim.energy_epilog",
    "sim.plane_gemm",
    "store.load",
    "store.lock_wait",
    "store.put",
})

#: Counter names (monotonic event counts; includes the names the
#: campaign executor emits from its run-summary table and the
#: ``serve.*`` counters ``ServeMetrics`` mirrors into repro.obs).
COUNTER_NAMES = frozenset({
    "dse.interrupted",
    "dse.point.exception",
    "dse.point.poison",
    "dse.point.recovered",
    "dse.points.cached",
    "dse.points.evaluated",
    "dse.points.failed",
    "dse.points.persist_failures",
    "dse.points.poisoned",
    "dse.points.recommits",
    "dse.points.retried",
    "dse.points.timed_out",
    "dse.points.total",
    "dse.worker.killed",
    "eval.cache",
    "faults.injected",
    "opt.cosearch.front",
    "opt.cosearch.moves",
    "opt.grid.size",
    "opt.probe_errors",
    "opt.probes.evaluated",
    "opt.probes.failed",
    "opt.probes.saved",
    "opt.rounds",
    "opt.sampled",
    "serve.batch_errors",
    "serve.cache.hot_hit",
    "serve.cache.miss",
    "serve.cache.store_hit",
    "serve.coalesced",
    "serve.evaluated",
    "serve.failed",
    "serve.faults.recovered",
    "serve.faults.slow_read",
    "serve.http.errors",
    "serve.persist_failures",
    "serve.poisoned",
    "serve.rejected",
    "serve.requests",
    "serve.retried",
    "serve.store_errors",
    "serve.timed_out",
    "sim.column_ops",
    "sim.kernel_dispatch",
    "store.corrupt_lines",
})

#: Gauge names (sampled values; none emitted yet -- the rule keeps the
#: set honest the day one lands).
GAUGE_NAMES: frozenset[str] = frozenset()

#: Every registered observability name, for membership checks.
ALL_NAMES = SPAN_NAMES | COUNTER_NAMES | GAUGE_NAMES


def valid_grammar(name: str) -> bool:
    """Whether ``name`` spells ``layer.noun[.verb]`` in snake_case."""
    return NAME_GRAMMAR.fullmatch(name) is not None


def registered(name: str) -> bool:
    """Whether ``name`` is in the checked-in registry."""
    return name in ALL_NAMES
