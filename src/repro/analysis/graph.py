"""AST-based import graph of the ``repro`` source tree.

The repository's hardest-won invariants -- layer separation, cache
namespaces that rotate exactly when the code feeding them changes --
are properties of the *import graph*, so this module builds that graph
once, statically, and everything else consumes it: the lint rules
(:mod:`repro.analysis.rules`) check layering and acyclicity over its
edges, and the dependency-cone fingerprints
(:func:`repro.eval.fingerprints.cone_fingerprint`) digest exactly the
files in :meth:`ImportGraph.dependency_cone` of a backend entry point,
in the spirit of OpenNVRAM's ``base/dependency_graph.py`` path tracing.

Nothing is imported to build the graph: every ``*.py`` file under the
package root is parsed with :mod:`ast`, and ``import`` / ``from ...
import`` statements are resolved against the set of modules the tree
itself defines (external imports -- numpy, stdlib -- are dropped).
Imports are classified as *top-level* (module scope) or *deferred*
(inside a function or method body, or under an ``if TYPE_CHECKING:``
guard that never executes at runtime): deferred imports still count
toward dependency cones and layering -- a lazy or annotation-only
import is a real source dependency -- but not toward cycle detection,
because a deferred edge cannot deadlock module initialization.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Iterator, Mapping


@dataclass(frozen=True)
class ImportEdge:
    """One resolved internal import statement."""

    target: str  #: imported module, e.g. ``"repro.sim.npu"``
    line: int  #: 1-based line of the import statement
    deferred: bool  #: inside a function body (lazy import)


@dataclass(frozen=True)
class ModuleInfo:
    """One module of the tree plus its resolved internal imports."""

    name: str  #: dotted module name (packages use their bare name)
    path: Path  #: source file (``__init__.py`` for packages)
    edges: tuple[ImportEdge, ...]

    def imports(self, include_deferred: bool = True) -> frozenset[str]:
        return frozenset(edge.target for edge in self.edges
                         if include_deferred or not edge.deferred)


class ImportGraph:
    """The internal import graph of one package tree."""

    def __init__(self, package: str,
                 modules: Mapping[str, ModuleInfo]) -> None:
        self.package = package
        self.modules = dict(modules)

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def module_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.modules))

    def edges(self, include_deferred: bool = True) -> dict[str, frozenset[str]]:
        """Adjacency: module -> set of internal modules it imports."""
        return {name: info.imports(include_deferred)
                for name, info in self.modules.items()}

    def _seeds(self, entry: str) -> list[str]:
        """The modules an entry names: itself, or a package's subtree."""
        if entry in self.modules:
            seeds = [entry]
        else:
            seeds = []
        prefix = entry + "."
        seeds.extend(name for name in self.modules
                     if name.startswith(prefix))
        if not seeds:
            raise KeyError(
                f"unknown module or package {entry!r} "
                f"(tree root: {self.package})")
        return seeds

    def dependency_cone(
        self, *entries: str, include_deferred: bool = True,
        prune: tuple[str, ...] = (),
    ) -> frozenset[str]:
        """Every internal module reachable from the entry points.

        An entry may be a single module (``"repro.eval.lowering"``) or
        a package (``"repro.sim"``: the whole subtree seeds the walk).
        The cone includes the seeds themselves.  Deferred (in-function)
        imports are followed by default: a lazily imported module still
        feeds the numbers of whatever imported it.

        ``prune`` names packages (or modules) the walk neither enters
        nor includes -- the cut for *intentional back-references*: a
        lower layer's deferred import of an upper-layer facade (e.g. a
        deprecated shim delegating up into ``repro.eval``) would
        otherwise drag the whole operational world into a numeric
        cone.
        """
        def pruned(name: str) -> bool:
            return any(name == cut or name.startswith(cut + ".")
                       for cut in prune)

        stack: list[str] = []
        for entry in entries:
            stack.extend(self._seeds(entry))
        cone: set[str] = set()
        while stack:
            name = stack.pop()
            if name in cone or pruned(name):
                continue
            cone.add(name)
            stack.extend(self.modules[name].imports(include_deferred)
                         - cone)
        return frozenset(cone)

    def cone_files(self, *entries: str, include_deferred: bool = True,
                   prune: tuple[str, ...] = ()) -> tuple[Path, ...]:
        """Source files of the cone, sorted by module name."""
        cone = self.dependency_cone(
            *entries, include_deferred=include_deferred, prune=prune)
        return tuple(self.modules[name].path for name in sorted(cone))

    def cycles(self) -> list[tuple[str, ...]]:
        """Import cycles among *top-level* imports, as sorted SCCs.

        Tarjan's strongly-connected components over the module-scope
        edges; only components with more than one module (or a
        self-loop) are returned.  Deferred imports are excluded: the
        repository breaks its intentional back-references (e.g. the
        registry importing its built-ins) by deferring them, and this
        rule is what keeps that discipline honest.
        """
        adjacency = self.edges(include_deferred=False)
        index_counter = [0]
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        components: list[tuple[str, ...]] = []

        def strongconnect(node: str) -> None:
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for neighbor in adjacency[node]:
                if neighbor not in index:
                    strongconnect(neighbor)
                    lowlink[node] = min(lowlink[node], lowlink[neighbor])
                elif neighbor in on_stack:
                    lowlink[node] = min(lowlink[node], index[neighbor])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if (len(component) > 1
                        or node in adjacency[node]):
                    components.append(tuple(sorted(component)))

        for name in sorted(adjacency):
            if name not in index:
                strongconnect(name)
        return sorted(components)


def _module_name(root: Path, package: str, path: Path) -> str:
    relative = path.relative_to(root).with_suffix("")
    parts = [package, *relative.parts]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _resolve(raw: str, known: set[str], package: str) -> str | None:
    """Map a dotted import target onto a module the tree defines.

    ``from repro.eval import request`` arrives as ``repro.eval.request``
    (handled by the caller); names that resolve to nothing internal
    (stdlib, numpy, a symbol rather than a submodule) fall back to the
    longest known prefix, or ``None`` for genuinely external imports.
    """
    if not (raw == package or raw.startswith(package + ".")):
        return None
    name = raw
    while name:
        if name in known:
            return name
        if "." not in name:
            return None
        name = name.rsplit(".", 1)[0]
    return None


def _iter_imports(
    tree: ast.Module, module: str, is_package: bool,
    known: set[str], package: str,
) -> Iterator[ImportEdge]:
    """Resolved internal import edges of one parsed module."""

    def _type_checking_guard(node: ast.AST) -> bool:
        if not isinstance(node, ast.If):
            return False
        test = node.test
        if isinstance(test, ast.Name):
            return test.id == "TYPE_CHECKING"
        return (isinstance(test, ast.Attribute)
                and test.attr == "TYPE_CHECKING")

    def walk(node: ast.AST, deferred: bool) -> Iterator[ImportEdge]:
        for child in ast.iter_child_nodes(node):
            child_deferred = deferred or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) or _type_checking_guard(child)
            if isinstance(child, ast.Import):
                for alias in child.names:
                    target = _resolve(alias.name, known, package)
                    if target is not None and target != module:
                        yield ImportEdge(target, child.lineno, deferred)
            elif isinstance(child, ast.ImportFrom):
                base = child.module or ""
                if child.level:  # relative import
                    anchor = module if is_package else (
                        module.rsplit(".", 1)[0] if "." in module else "")
                    for _ in range(child.level - 1):
                        anchor = (anchor.rsplit(".", 1)[0]
                                  if "." in anchor else "")
                    base = f"{anchor}.{base}" if base else anchor
                for alias in child.names:
                    candidate = f"{base}.{alias.name}" if base else alias.name
                    target = _resolve(candidate, known, package)
                    if target is not None and target != module:
                        yield ImportEdge(target, child.lineno, deferred)
            else:
                yield from walk(child, child_deferred)

    yield from walk(tree, False)


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).parent  # type: ignore[arg-type]


def iter_source_files(root: Path) -> Iterable[Path]:
    return sorted(root.rglob("*.py"))


def build_graph(root: str | Path | None = None,
                package: str = "repro") -> ImportGraph:
    """Parse every module under ``root`` and resolve internal imports.

    ``root`` defaults to the installed ``repro`` package directory, so
    the graph always describes the code that would actually run.  Pass
    an explicit root to analyze a copy (the fingerprint tests edit a
    scratch tree and re-derive cones from it).
    """
    base = Path(root).expanduser() if root is not None else default_root()
    if not base.is_dir():
        raise FileNotFoundError(f"package root {base} is not a directory")
    paths = list(iter_source_files(base))
    names = {path: _module_name(base, package, path) for path in paths}
    known = set(names.values())
    modules: dict[str, ModuleInfo] = {}
    for path in paths:
        name = names[path]
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        edges = tuple(_iter_imports(
            tree, name, path.name == "__init__.py", known, package))
        modules[name] = ModuleInfo(name=name, path=path, edges=edges)
    return ImportGraph(package, modules)


@lru_cache(maxsize=1)
def repo_graph() -> ImportGraph:
    """The (cached) import graph of the installed source tree."""
    return build_graph()
