"""The lint engine: rule registry, allowlists, and the check runner.

A *rule* inspects the parsed source tree (through a shared
:class:`CheckContext`) and yields :class:`Violation` findings.  Rules
are registered declaratively (:func:`register_rule`) and each carries
its own **allowlist**: ``(module, reason)`` pairs that suppress the
rule in exactly that module, with the justification checked in next to
the rule so an exemption can never outlive its explanation silently --
an allowlist entry whose module exists in the tree but triggers
nothing is itself reported as *stale*, keeping the exemption set tight
as violations get fixed.

``python -m repro.analysis check`` drives :func:`run_checks` and exits
nonzero on any finding; tests drive individual rules over synthetic
package trees (fixture snippets) through the same context object.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.analysis.graph import ImportGraph, build_graph


@dataclass(frozen=True)
class Violation:
    """One finding of one rule, anchored to a source line."""

    rule: str
    module: str
    path: str
    line: int
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Allow:
    """One justified exemption: suppress a rule inside one module."""

    module: str
    reason: str

    def __post_init__(self) -> None:
        if not self.reason.strip():
            raise ValueError(
                f"allowlist entry for {self.module} needs a justification")


class CheckContext:
    """Shared parse state one check run hands to every rule."""

    def __init__(self, graph: ImportGraph) -> None:
        self.graph = graph
        self._trees: dict[str, ast.Module] = {}

    def modules(self) -> tuple[str, ...]:
        return self.graph.module_names()

    def path(self, module: str) -> Path:
        return self.graph.modules[module].path

    def tree(self, module: str) -> ast.Module:
        """The (cached) parsed AST of one module."""
        if module not in self._trees:
            path = self.path(module)
            self._trees[module] = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path))
        return self._trees[module]

    def violation(self, rule: str, module: str, line: int,
                  message: str) -> Violation:
        return Violation(rule=rule, module=module,
                         path=str(self.path(module)), line=line,
                         message=message)


Checker = Callable[["LintRule", CheckContext], Iterator[Violation]]


@dataclass(frozen=True)
class LintRule:
    """One named invariant plus its justified exemptions."""

    name: str
    description: str
    checker: Checker
    allow: tuple[Allow, ...] = ()

    def allowed_modules(self) -> frozenset[str]:
        return frozenset(entry.module for entry in self.allow)

    def check(self, ctx: CheckContext) -> Iterator[Violation]:
        return self.checker(self, ctx)


_RULES: dict[str, LintRule] = {}


def register_rule(rule: LintRule) -> LintRule:
    if rule.name in _RULES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _RULES[rule.name] = rule
    return rule


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, in registration order."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    return tuple(_RULES.values())


def get_rule(name: str) -> LintRule:
    rules = {rule.name: rule for rule in all_rules()}
    if name not in rules:
        raise ValueError(f"unknown rule {name!r}; one of {tuple(rules)}")
    return rules[name]


@dataclass
class CheckReport:
    """Outcome of one ``check`` run."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0  #: findings an allowlist entry absorbed
    rules: tuple[str, ...] = ()
    modules: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "modules": self.modules,
            "rules": list(self.rules),
            "suppressed": self.suppressed,
            "violations": [v.to_dict() for v in self.violations],
        }


def run_rule(rule: LintRule, ctx: CheckContext,
             report: CheckReport) -> None:
    """Run one rule, folding allowlist suppression into the report."""
    allowed = rule.allowed_modules()
    used: set[str] = set()
    for violation in rule.check(ctx):
        if violation.module in allowed:
            used.add(violation.module)
            report.suppressed += 1
        else:
            report.violations.append(violation)
    for entry in rule.allow:
        if entry.module in used or entry.module not in ctx.graph:
            continue
        report.violations.append(ctx.violation(
            rule.name, entry.module, 1,
            f"stale allowlist entry: {entry.module} no longer triggers "
            f"this rule (was allowed because: {entry.reason}); remove "
            f"the exemption"))


def run_checks(
    root: str | Path | None = None,
    rules: Iterable[LintRule] | None = None,
    graph: ImportGraph | None = None,
) -> CheckReport:
    """Run every (or the given) rule over one package tree."""
    if graph is None:
        graph = build_graph(root)
    ctx = CheckContext(graph)
    selected = tuple(rules) if rules is not None else all_rules()
    report = CheckReport(rules=tuple(rule.name for rule in selected),
                         modules=len(graph.modules))
    for rule in selected:
        run_rule(rule, ctx, report)
    report.violations.sort(
        key=lambda v: (v.path, v.line, v.rule, v.message))
    return report
