"""Schema-version guard: field sets pinned against version constants.

Every persisted schema in the tree carries a version constant
(``RECORD_VERSION``, ``SPEC_VERSION``, ``REQUEST_VERSION``,
``RESULT_VERSION``, ``SIM_SPEC_VERSION``, ``COSEARCH_PROBE_VERSION``)
that store keys and record loaders key on -- but nothing used to stop
a PR from adding a serialized field while leaving the constant alone,
silently colliding new-shape records with old-shape caches.

This module hashes each schema's *serialized field set* (the keys its
``to_dict`` actually emits, probed at runtime on representative
instances) and pins ``(version, fields_hash)`` pairs in a checked-in
baseline file.  ``python -m repro.analysis versions`` recomputes and
compares: a changed field set with an unchanged version fails loudly
("bump the constant"), and any intentional change is committed by
rerunning with ``--update`` *after* the bump -- so the baseline diff
and the version bump always travel in the same commit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

#: Where the pinned (version, fields_hash) pairs live.
BASELINE_PATH = Path(__file__).parent / "version_baselines.json"


@dataclass(frozen=True)
class SchemaProbe:
    """How to measure one versioned schema's serialized surface."""

    name: str  #: the version constant, e.g. ``"RECORD_VERSION"``
    module: str  #: where the constant lives
    version: Callable[[], int]
    fields: Callable[[], tuple[str, ...]]


@dataclass(frozen=True)
class SchemaState:
    """One schema's measured (version, field set) state."""

    name: str
    module: str
    version: int
    fields: tuple[str, ...]

    @property
    def fields_hash(self) -> str:
        payload = json.dumps(sorted(self.fields), separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------
# Field-set extractors.  Each probes a representative instance and
# flattens nested serialized mappings with dotted prefixes, so adding,
# renaming, or nesting a key all change the hash.
# ---------------------------------------------------------------------
def _request_fields() -> tuple[str, ...]:
    from repro.eval.request import EvalRequest

    data = EvalRequest(workload="cnn_lstm").to_dict()
    return tuple(sorted(set(data) - {"options"})
                 + sorted(f"options.{key}" for key in data["options"]))


def _result_fields() -> tuple[str, ...]:
    from repro.eval.result import EvalResult, LayerResult

    data = EvalResult(workload="w", config_label="c",
                      backend="model").to_dict()
    layer = LayerResult(name="l", macs=0, cycles=0.0,
                        energy_pj=0.0).to_dict()
    return tuple(sorted(set(data) - {"layers"})
                 + sorted(f"layer.{key}" for key in layer))


class _ProbePoint:
    """A minimal record-protocol point for probing make_record."""

    def key(self) -> str:
        return "probe"

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "probe"}


def _record_fields() -> tuple[str, ...]:
    from repro.dse.records import make_record

    record = make_record(
        _ProbePoint(), {"probe": True}, elapsed_s=0.0,
        fingerprint="probe", attempts=2, last_error="err", extra={})
    return tuple(sorted(record))


def _spec_fields() -> tuple[str, ...]:
    from repro.dse.retry import RetryPolicy
    from repro.dse.spec import CampaignSpec, EvalPoint

    point = EvalPoint(accelerator="BitWave", network="cnn_lstm").to_dict()
    campaign = CampaignSpec(
        name="probe", accelerators=("BitWave",), networks=("cnn_lstm",),
        retry=RetryPolicy()).to_dict()
    retry = campaign.get("retry") or {}
    return tuple(
        sorted(point)
        + sorted(f"campaign.{key}" for key in set(campaign) - {"retry"})
        + sorted(f"campaign.retry.{key}" for key in retry))


def _sim_spec_fields() -> tuple[str, ...]:
    from repro.dse.simcampaign import SimPoint

    return tuple(sorted(SimPoint().to_dict()))


def _cosearch_fields() -> tuple[str, ...]:
    from repro.arch import DEFAULT_ARCH
    from repro.opt.cosearch import CosearchProbe

    probe = CosearchProbe(workload="cnn_lstm", arch=DEFAULT_ARCH,
                          preset="bitwave-16nm", strategy={})
    return tuple(sorted(probe.to_dict()))


def _constant(module: str, name: str) -> Callable[[], int]:
    def read() -> int:
        import importlib

        return int(getattr(importlib.import_module(module), name))

    return read


def default_probes() -> tuple[SchemaProbe, ...]:
    """The guarded schemas, one probe per version constant."""
    return (
        SchemaProbe("REQUEST_VERSION", "repro.eval.request",
                    _constant("repro.eval.request", "REQUEST_VERSION"),
                    _request_fields),
        SchemaProbe("RESULT_VERSION", "repro.eval.result",
                    _constant("repro.eval.result", "RESULT_VERSION"),
                    _result_fields),
        SchemaProbe("RECORD_VERSION", "repro.dse.records",
                    _constant("repro.dse.records", "RECORD_VERSION"),
                    _record_fields),
        SchemaProbe("SPEC_VERSION", "repro.dse.spec",
                    _constant("repro.dse.spec", "SPEC_VERSION"),
                    _spec_fields),
        SchemaProbe("SIM_SPEC_VERSION", "repro.dse.simcampaign",
                    _constant("repro.dse.simcampaign", "SIM_SPEC_VERSION"),
                    _sim_spec_fields),
        SchemaProbe("COSEARCH_PROBE_VERSION", "repro.opt.cosearch",
                    _constant("repro.opt.cosearch",
                              "COSEARCH_PROBE_VERSION"),
                    _cosearch_fields),
    )


def schema_states(
    probes: tuple[SchemaProbe, ...] | None = None,
) -> tuple[SchemaState, ...]:
    """Measure every guarded schema's current state."""
    return tuple(
        SchemaState(name=probe.name, module=probe.module,
                    version=probe.version(), fields=probe.fields())
        for probe in (probes if probes is not None else default_probes()))


def load_baselines(
    path: str | Path | None = None,
) -> dict[str, dict[str, Any]]:
    baseline_path = Path(path) if path is not None else BASELINE_PATH
    if not baseline_path.exists():
        return {}
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    return data if isinstance(data, dict) else {}


def write_baselines(
    path: str | Path | None = None,
    probes: tuple[SchemaProbe, ...] | None = None,
) -> Path:
    """Repin every schema's (version, fields_hash) baseline."""
    baseline_path = Path(path) if path is not None else BASELINE_PATH
    payload = {
        state.name: {
            "module": state.module,
            "version": state.version,
            "fields_hash": state.fields_hash,
            "fields": list(state.fields),
        }
        for state in schema_states(probes)
    }
    baseline_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return baseline_path


@dataclass(frozen=True)
class VersionFinding:
    """One schema's comparison against its pinned baseline."""

    name: str
    module: str
    status: str  #: ``ok`` / ``changed`` / ``stale-pin`` / ``unpinned``
    version: int
    fields_hash: str
    pinned_version: int | None
    pinned_hash: str | None
    advice: str

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "module": self.module,
            "status": self.status,
            "version": self.version,
            "fields_hash": self.fields_hash,
            "pinned_version": self.pinned_version,
            "pinned_hash": self.pinned_hash,
            "advice": self.advice,
        }


def _compare(state: SchemaState,
             pinned: Mapping[str, Any] | None) -> VersionFinding:
    if pinned is None:
        return VersionFinding(
            state.name, state.module, "unpinned", state.version,
            state.fields_hash, None, None,
            f"no baseline for {state.name}; run `python -m "
            f"repro.analysis versions --update` to pin it")
    pinned_version = int(pinned["version"])
    pinned_hash = str(pinned["fields_hash"])
    if (state.version == pinned_version
            and state.fields_hash == pinned_hash):
        status, advice = "ok", ""
    elif state.version == pinned_version:
        status = "changed"
        advice = (f"serialized field set of {state.module} changed but "
                  f"{state.name} is still {state.version}: bump the "
                  f"constant, then rerun `python -m repro.analysis "
                  f"versions --update` in the same commit")
    else:
        status = "stale-pin"
        advice = (f"{state.name} is {state.version} but the baseline "
                  f"pins {pinned_version}: rerun `python -m "
                  f"repro.analysis versions --update` to commit the "
                  f"new pin")
    return VersionFinding(
        state.name, state.module, status, state.version,
        state.fields_hash, pinned_version, pinned_hash, advice)


@dataclass
class VersionReport:
    """Outcome of one ``versions`` run."""

    findings: tuple[VersionFinding, ...]

    @property
    def ok(self) -> bool:
        return all(finding.ok for finding in self.findings)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "schemas": [finding.to_dict() for finding in self.findings],
        }


def check_versions(
    probes: tuple[SchemaProbe, ...] | None = None,
    baselines: Mapping[str, Mapping[str, Any]] | None = None,
) -> VersionReport:
    """Compare every guarded schema against its pinned baseline."""
    if baselines is None:
        baselines = load_baselines()
    findings = tuple(
        _compare(state, baselines.get(state.name))
        for state in schema_states(probes))
    return VersionReport(findings=findings)
