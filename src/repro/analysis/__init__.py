"""``repro.analysis``: static analysis of the repro source tree.

Three first-class consumers share one AST-derived import graph
(:mod:`repro.analysis.graph`):

- the **invariant linter** (``python -m repro.analysis check``): a
  rule registry (:mod:`repro.analysis.rules`) enforcing layering
  acyclicity, determinism, fcntl lock discipline, frozen-dataclass
  mutation scope, and observability-name hygiene, with per-rule
  justified allowlists and ``--format json``;
- the **schema-version guard** (``python -m repro.analysis
  versions``): serialized-field-set hashes pinned against the
  ``*_VERSION`` constants, so changing a persisted schema without
  bumping its version fails CI (:mod:`repro.analysis.versions`);
- the **dependency-cone fingerprints**
  (:func:`repro.eval.fingerprints.cone_fingerprint`): store
  namespaces derived from each backend's import cone, so a
  ``dse``-only edit no longer rotates the ``sim`` cache namespace.

Everything is computed from source text with :mod:`ast` -- nothing is
imported to be analyzed -- so the tools run identically in CI and on
half-broken working trees.
"""

from repro.analysis.engine import (
    Allow,
    CheckContext,
    CheckReport,
    LintRule,
    Violation,
    all_rules,
    get_rule,
    register_rule,
    run_checks,
)
from repro.analysis.graph import (
    ImportEdge,
    ImportGraph,
    ModuleInfo,
    build_graph,
    repo_graph,
)
from repro.analysis.versions import (
    BASELINE_PATH,
    SchemaProbe,
    SchemaState,
    VersionFinding,
    VersionReport,
    check_versions,
    default_probes,
    schema_states,
    write_baselines,
)

__all__ = [
    "Allow",
    "BASELINE_PATH",
    "CheckContext",
    "CheckReport",
    "ImportEdge",
    "ImportGraph",
    "LintRule",
    "ModuleInfo",
    "SchemaProbe",
    "SchemaState",
    "VersionFinding",
    "VersionReport",
    "Violation",
    "all_rules",
    "build_graph",
    "check_versions",
    "default_probes",
    "get_rule",
    "register_rule",
    "repo_graph",
    "run_checks",
    "schema_states",
    "write_baselines",
]
