"""``python -m repro.analysis``: the static-analysis CLI.

Examples::

    # Lint the installed tree against every registered invariant.
    python -m repro.analysis check
    python -m repro.analysis check --format json
    python -m repro.analysis check --rule determinism --rule obs-names

    # Verify serialized schemas against their pinned version baselines
    # (and repin after an intentional, version-bumped change).
    python -m repro.analysis versions
    python -m repro.analysis versions --update

    # Inspect a dependency cone (what a backend's fingerprint covers).
    python -m repro.analysis cone repro.sim
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.engine import all_rules, get_rule, run_checks
from repro.analysis.graph import build_graph
from repro.analysis.versions import check_versions, write_baselines
from repro.utils.tables import format_table


def _cmd_check(args: argparse.Namespace) -> int:
    rules = (tuple(get_rule(name) for name in args.rule)
             if args.rule else None)
    report = run_checks(root=args.root, rules=rules)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    for violation in report.violations:
        print(violation.render())
    summary = (f"checked {report.modules} modules against "
               f"{len(report.rules)} rules: "
               f"{len(report.violations)} violations "
               f"({report.suppressed} allowlisted)")
    if report.ok:
        print(f"OK: {summary}")
        return 0
    print(f"FAIL: {summary}", file=sys.stderr)
    return 1


def _cmd_versions(args: argparse.Namespace) -> int:
    if args.update:
        path = write_baselines()
        print(f"repinned schema baselines -> {path}")
    report = check_versions()
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    rows = [
        (finding.name, str(finding.version),
         str(finding.pinned_version) if finding.pinned_version is not None
         else "-",
         finding.fields_hash, finding.pinned_hash or "-", finding.status)
        for finding in report.findings
    ]
    print(format_table(
        ("schema", "version", "pinned", "fields", "pinned_fields",
         "status"), rows))
    for finding in report.findings:
        if not finding.ok:
            print(f"FAIL {finding.name}: {finding.advice}",
                  file=sys.stderr)
    if report.ok:
        print(f"OK: {len(report.findings)} schemas match their pins")
        return 0
    return 1


def _cmd_cone(args: argparse.Namespace) -> int:
    graph = build_graph(args.root)
    cone = sorted(graph.dependency_cone(*args.entry))
    if args.format == "json":
        print(json.dumps({"entries": args.entry, "cone": cone},
                         indent=2))
        return 0
    for name in cone:
        print(name)
    print(f"# {len(cone)} modules in the cone of {', '.join(args.entry)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="import-graph linter, schema-version guard, and "
                    "dependency-cone inspector for the repro tree",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rule_names = ", ".join(rule.name for rule in all_rules())
    p_check = sub.add_parser(
        "check", help="lint the tree against the registered invariants")
    p_check.add_argument("--root", default=None, metavar="DIR",
                         help="package root to analyze (default: the "
                              "installed repro package)")
    p_check.add_argument("--rule", action="append", default=[],
                         metavar="NAME",
                         help=f"run only this rule (repeatable); "
                              f"one of: {rule_names}")
    p_check.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="output format (default: text)")
    p_check.set_defaults(func=_cmd_check)

    p_versions = sub.add_parser(
        "versions", help="verify serialized schemas against their "
                         "pinned version baselines")
    p_versions.add_argument("--update", action="store_true",
                            help="repin the baselines to the current "
                                 "tree (after bumping the version "
                                 "constant)")
    p_versions.add_argument("--format", choices=("table", "json"),
                            default="table",
                            help="output format (default: table)")
    p_versions.set_defaults(func=_cmd_versions)

    p_cone = sub.add_parser(
        "cone", help="print the dependency cone of modules/packages")
    p_cone.add_argument("entry", nargs="+",
                        help="module or package names "
                             "(e.g. repro.sim repro.eval.lowering)")
    p_cone.add_argument("--root", default=None, metavar="DIR",
                        help="package root to analyze")
    p_cone.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (default: text)")
    p_cone.set_defaults(func=_cmd_cone)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
