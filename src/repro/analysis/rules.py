"""The built-in lint rules: the repository's invariants, executable.

Each rule encodes a convention the repo previously enforced only by
review and after-the-fact test pinning:

- ``layering``          -- the numeric layers (``core`` / ``sim`` /
  ``model`` / ``arch``) must not import the operational layers
  (``dse`` / ``eval`` / ``opt`` / ``serve``), in either top-level or
  deferred form;
- ``cycles``            -- no module-scope import cycles anywhere
  (intentional back-references must be deferred into functions);
- ``determinism``       -- no wall-clock or unseeded randomness
  (``time.time()``, ``random.*``, ``np.random.*``) outside the
  allowlisted timestamp/rng sites, so identical inputs keep producing
  identical records;
- ``lock-discipline``   -- ``fcntl`` only in the store module, and no
  write-mode file opens in the campaign/serving/optimizer layers
  outside the store's locked append path;
- ``frozen-mutation``   -- ``object.__setattr__`` (the frozen-dataclass
  escape hatch) only inside ``__post_init__``-style constructors;
- ``obs-names``         -- every span/counter/gauge name literal obeys
  the ``layer.noun[.verb]`` grammar and the checked-in registry
  (:mod:`repro.analysis.obsnames`).

Allowlist entries carry their justification inline; a stale entry (the
module stopped triggering the rule) is itself reported, so the
exemption set can only shrink as the tree heals.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    Allow,
    CheckContext,
    LintRule,
    Violation,
    register_rule,
)
from repro.analysis.obsnames import (
    COUNTER_NAMES,
    GAUGE_NAMES,
    SPAN_NAMES,
    valid_grammar,
)

# ---------------------------------------------------------------------
# layering + cycles (graph-level rules)
# ---------------------------------------------------------------------

#: Layers that feed cached numbers: they may use utilities and obs, but
#: never the operational machinery built on top of them.
RESTRICTED_LAYERS = ("repro.arch", "repro.core", "repro.model", "repro.sim")

#: The operational layers the numeric layers must stay below.
FORBIDDEN_TARGETS = ("repro.dse", "repro.eval", "repro.opt", "repro.serve")


def _in_package(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


def _check_layering(rule: LintRule,
                    ctx: CheckContext) -> Iterator[Violation]:
    for module in ctx.modules():
        if not any(_in_package(module, layer)
                   for layer in RESTRICTED_LAYERS):
            continue
        for edge in ctx.graph.modules[module].edges:
            hit = [target for target in FORBIDDEN_TARGETS
                   if _in_package(edge.target, target)]
            if hit:
                kind = "deferred " if edge.deferred else ""
                yield ctx.violation(
                    rule.name, module, edge.line,
                    f"{module} ({kind}import) depends on {edge.target}: "
                    f"the numeric layers must not import the "
                    f"operational layers {FORBIDDEN_TARGETS}")


def _check_cycles(rule: LintRule, ctx: CheckContext) -> Iterator[Violation]:
    for component in ctx.graph.cycles():
        yield ctx.violation(
            rule.name, component[0], 1,
            f"module-scope import cycle: {' <-> '.join(component)}; "
            f"defer one direction into a function body")


register_rule(LintRule(
    name="layering",
    description="numeric layers (arch/core/model/sim) must not import "
                "the operational layers (dse/eval/opt/serve)",
    checker=_check_layering,
))

register_rule(LintRule(
    name="cycles",
    description="no module-scope import cycles (back-references must "
                "be deferred)",
    checker=_check_cycles,
))


# ---------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------
def _is_name(node: ast.expr, *names: str) -> bool:
    return isinstance(node, ast.Name) and node.id in names


def _check_determinism(rule: LintRule,
                       ctx: CheckContext) -> Iterator[Violation]:
    for module in ctx.modules():
        for node in ast.walk(ctx.tree(module)):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    yield ctx.violation(
                        rule.name, module, node.lineno,
                        "import random functions via the module "
                        "(`random.Random(seed)`) or use "
                        "repro.utils.rng.seeded_rng; bare `from random "
                        "import ...` hides unseeded call sites")
                elif node.module == "numpy.random":
                    yield ctx.violation(
                        rule.name, module, node.lineno,
                        "use repro.utils.rng.seeded_rng instead of "
                        "importing numpy.random directly")
            elif isinstance(node, ast.Attribute):
                value = node.value
                if (isinstance(value, ast.Attribute)
                        and value.attr == "random"
                        and _is_name(value.value, "np", "numpy")):
                    yield ctx.violation(
                        rule.name, module, node.lineno,
                        f"np.random.{node.attr}: derive generators "
                        f"from repro.utils.rng.seeded_rng so every "
                        f"stream is reproducibly seeded")
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if (func.attr in ("time", "time_ns")
                        and _is_name(func.value, "time")):
                    yield ctx.violation(
                        rule.name, module, node.lineno,
                        f"time.{func.attr}() breaks record determinism; "
                        f"use time.perf_counter() for durations or "
                        f"allowlist a genuine timestamp site")
                elif (func.attr in ("now", "utcnow", "today")
                        and (_is_name(func.value, "datetime", "date")
                             or (isinstance(func.value, ast.Attribute)
                                 and func.value.attr == "datetime"))):
                    yield ctx.violation(
                        rule.name, module, node.lineno,
                        f"datetime.{func.attr}() reads the wall clock; "
                        f"thread timestamps in explicitly")
                elif _is_name(func.value, "random"):
                    if func.attr == "Random" and (node.args
                                                  or node.keywords):
                        continue  # explicitly seeded generator: fine
                    yield ctx.violation(
                        rule.name, module, node.lineno,
                        f"random.{func.attr}(): unseeded randomness; "
                        f"construct random.Random(seed) or use "
                        f"repro.utils.rng.seeded_rng")


register_rule(LintRule(
    name="determinism",
    description="no wall-clock timestamps or unseeded randomness "
                "outside allowlisted sites",
    checker=_check_determinism,
    allow=(
        Allow("repro.utils.rng",
              "the one sanctioned rng constructor: hashes tokens into "
              "a seed for np.random.default_rng"),
        Allow("repro.obs.tracer",
              "trace events carry wall-clock `ts` fields by design; "
              "they are observability metadata, never cached results"),
        Allow("repro.dse.records",
              "`created_at` is provenance metadata on store records, "
              "excluded from keys and result payloads"),
        Allow("repro.dse.gc",
              "age-based eviction compares mtimes against now; the "
              "clock is injectable (`now=`) and tests inject it"),
        Allow("repro.dse.store",
              "corrupt-line sidecar filenames embed a quarantine "
              "timestamp so repeated compactions never collide"),
    ),
))


# ---------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------

#: The only module allowed to touch fcntl: every other layer reaches
#: the advisory lock through ResultStore's locked append/compact path.
APPROVED_FCNTL = ("repro.dse.store",)

#: Packages whose file writes must route through the locked store.
WRITE_SCOPED_PACKAGES = ("repro.dse", "repro.opt", "repro.serve")

_WRITE_MODES = frozenset("wax+")


def _write_mode(call: ast.Call, mode_position: int) -> str | None:
    """The constant write-ish mode string of an open() call, if any."""
    mode: ast.expr | None = None
    if len(call.args) > mode_position:
        mode = call.args[mode_position]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if (isinstance(mode, ast.Constant) and isinstance(mode.value, str)
            and _WRITE_MODES & set(mode.value)):
        return mode.value
    return None


def _check_lock_discipline(rule: LintRule,
                           ctx: CheckContext) -> Iterator[Violation]:
    for module in ctx.modules():
        in_scope = any(_in_package(module, package)
                       for package in WRITE_SCOPED_PACKAGES)
        store_exempt = module in APPROVED_FCNTL
        for node in ast.walk(ctx.tree(module)):
            if isinstance(node, ast.Import):
                if (any(alias.name == "fcntl" for alias in node.names)
                        and not store_exempt):
                    yield ctx.violation(
                        rule.name, module, node.lineno,
                        f"fcntl imported outside {APPROVED_FCNTL}: all "
                        f"advisory locking goes through the store's "
                        f"locked append path")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "fcntl" and not store_exempt:
                    yield ctx.violation(
                        rule.name, module, node.lineno,
                        f"fcntl imported outside {APPROVED_FCNTL}")
            elif (isinstance(node, ast.Call) and in_scope
                    and not store_exempt):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "open":
                    mode = _write_mode(node, mode_position=1)
                    if mode is not None:
                        yield ctx.violation(
                            rule.name, module, node.lineno,
                            f"open(..., {mode!r}) in {module}: store-"
                            f"layer writes must go through the locked "
                            f"ResultStore append path")
                elif isinstance(func, ast.Attribute):
                    if func.attr == "open" and _is_name(func.value, "os"):
                        yield ctx.violation(
                            rule.name, module, node.lineno,
                            f"os.open() in {module}: raw fds bypass "
                            f"the store's advisory lock entirely")
                    elif func.attr == "open":
                        mode = _write_mode(node, mode_position=0)
                        if mode is not None:
                            yield ctx.violation(
                                rule.name, module, node.lineno,
                                f".open({mode!r}) in {module}: writes "
                                f"must go through the locked ResultStore "
                                f"append path")
                    elif func.attr in ("write_text", "write_bytes"):
                        yield ctx.violation(
                            rule.name, module, node.lineno,
                            f".{func.attr}() in {module}: writes must "
                            f"go through the locked ResultStore append "
                            f"path")


register_rule(LintRule(
    name="lock-discipline",
    description="fcntl only in the store module; no write-mode file "
                "opens in dse/opt/serve outside the locked append path",
    checker=_check_lock_discipline,
    allow=(
        Allow("repro.dse.spec",
              "CampaignSpec.save writes a spec JSON the user asked "
              "for at the path they named -- not a store record, no "
              "concurrent writers"),
    ),
))


# ---------------------------------------------------------------------
# frozen-mutation
# ---------------------------------------------------------------------

#: Constructor-shaped methods where frozen fields may still be shaped.
FROZEN_MUTATION_SCOPES = frozenset(
    {"__post_init__", "__init__", "__new__", "__setstate__"})


def _check_frozen_mutation(rule: LintRule,
                           ctx: CheckContext) -> Iterator[Violation]:
    def walk(node: ast.AST, scope: str | None,
             module: str) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_scope = child.name
            if isinstance(child, ast.Call):
                func = child.func
                if (isinstance(func, ast.Attribute)
                        and func.attr == "__setattr__"
                        and _is_name(func.value, "object")
                        and scope not in FROZEN_MUTATION_SCOPES):
                    where = scope or "module scope"
                    yield ctx.violation(
                        rule.name, module, child.lineno,
                        f"object.__setattr__ in {where}: frozen "
                        f"dataclasses may only be shaped inside "
                        f"{sorted(FROZEN_MUTATION_SCOPES)}")
            yield from walk(child, child_scope, module)

    for module in ctx.modules():
        yield from walk(ctx.tree(module), None, module)


register_rule(LintRule(
    name="frozen-mutation",
    description="object.__setattr__ only inside __post_init__-style "
                "constructors",
    checker=_check_frozen_mutation,
))


# ---------------------------------------------------------------------
# obs-names
# ---------------------------------------------------------------------

#: The repro.obs entry points that take an event name first.
_OBS_FUNCS = frozenset({"trace", "counter", "gauge", "observe"})

#: Which registry each entry point's names live in.
_NAME_SETS = {
    "trace": ("span", SPAN_NAMES),
    "observe": ("span", SPAN_NAMES),
    "counter": ("counter", COUNTER_NAMES),
    "incr": ("counter", COUNTER_NAMES),
    "gauge": ("gauge", GAUGE_NAMES),
}


def _obs_aliases(tree: ast.Module) -> dict[str, str]:
    """Local names bound to repro.obs entry points in one module."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if (isinstance(node, ast.ImportFrom) and node.level == 0
                and node.module in ("repro.obs", "repro.obs.tracer")):
            for alias in node.names:
                if alias.name in _OBS_FUNCS:
                    aliases[alias.asname or alias.name] = alias.name
    return aliases


def _obs_call_kind(node: ast.Call, aliases: dict[str, str],
                   module: str) -> str | None:
    """Which obs entry point (if any) a call targets."""
    func = node.func
    if isinstance(func, ast.Name):
        return aliases.get(func.id)
    if isinstance(func, ast.Attribute):
        if (func.attr in _OBS_FUNCS
                and isinstance(func.value, ast.Name)
                and func.value.id == "obs"):
            return func.attr
        # ServeMetrics.incr mirrors into the same counter namespace.
        if func.attr == "incr" and _in_package(module, "repro.serve"):
            return "incr"
    return None


def _check_obs_names(rule: LintRule,
                     ctx: CheckContext) -> Iterator[Violation]:
    for module in ctx.modules():
        tree = ctx.tree(module)
        aliases = _obs_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _obs_call_kind(node, aliases, module)
            if kind is None or kind not in _NAME_SETS:
                continue
            if not node.args:
                continue
            first = node.args[0]
            family, names = _NAME_SETS[kind]
            if not (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)):
                yield ctx.violation(
                    rule.name, module, node.lineno,
                    f"non-literal {family} name passed to {kind}(); "
                    f"emit registry names directly (or allowlist the "
                    f"one aggregation site that fans out a table)")
                continue
            name = first.value
            if not valid_grammar(name):
                yield ctx.violation(
                    rule.name, module, node.lineno,
                    f"{family} name {name!r} violates the "
                    f"layer.noun[.verb] grammar (2-3 lowercase "
                    f"snake_case segments)")
            elif name not in names:
                yield ctx.violation(
                    rule.name, module, node.lineno,
                    f"{family} name {name!r} is not in the checked-in "
                    f"registry (repro.analysis.obsnames); add it there "
                    f"alongside the emit site")


register_rule(LintRule(
    name="obs-names",
    description="span/counter/gauge name literals follow the "
                "layer.noun[.verb] grammar and the checked-in registry",
    checker=_check_obs_names,
    allow=(
        Allow("repro.dse.executor",
              "the end-of-run accounting loop emits the dse.points.* "
              "counter table from (name, value) pairs; every name in "
              "the table is itself registered"),
        Allow("repro.serve.metrics",
              "ServeMetrics.incr mirrors its (registered, literal-"
              "checked at the call sites) counter names into repro.obs "
              "through one variable"),
    ),
))
