"""Stripes (MICRO'16 [15]): bit-serial, no bit-level sparsity handling.

4096 1x8b serial lanes (throughput-equivalent to 512 8x8 PEs when
dense) under one fixed spatial unrolling.  Every weight is processed
over all 8 bit positions regardless of content, so Stripes pays the full
8 cycles per MAC; its benefit in the original paper is precision
scaling, which the common Int8 benchmark setting never exercises.
"""

from __future__ import annotations

from repro.accelerators.base import Accelerator
from repro.model.mapping import SpatialUnrolling
from repro.sparsity.stats import LayerWeightStats
from repro.workloads.spec import LayerSpec

#: Bits of a dense Int8 weight the serial datapath walks through.
SERIAL_BITS = 8


class Stripes(Accelerator):
    name = "Stripes"
    sus = (SpatialUnrolling("fixed-16x16x16", {"K": 16, "C": 16, "OX": 16}),)

    def compute_cycles(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        # Each MAC occupies one lane for all 8 bit-cycles.
        return spec.macs * SERIAL_BITS / max(su.macs_per_cycle(spec), 1e-12)

    def compute_energy_pj(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        lane_cycles = spec.macs * SERIAL_BITS
        return lane_cycles * self.tech.mac_bit_serial_cycle_pj
