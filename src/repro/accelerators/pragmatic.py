"""Pragmatic (MICRO'17 [2]): essential-bit skipping on weights.

Pragmatic processes only the non-zero ("essential") bits of each serial
operand.  Lanes sharing a synchronization group must wait for the lane
with the most essential bits, so the per-MAC cycle count is the expected
*maximum* essential-bit count over the sync group -- the workload
imbalance the paper calls out ("an obstacle arises in the form of
workload imbalance, tempering hardware utilization").

Weights stay uncompressed in memory (the skip offsets are computed
online), so Pragmatic gains nothing on the memory side.
"""

from __future__ import annotations

from repro.accelerators.base import Accelerator
from repro.model.mapping import SpatialUnrolling
from repro.sparsity.stats import LayerWeightStats
from repro.workloads.spec import LayerSpec

#: Lanes locked to a common bit schedule (one weight-register file row).
SYNC_GROUP = 16


class Pragmatic(Accelerator):
    name = "Pragmatic"
    sus = (SpatialUnrolling("fixed-16x16x16", {"K": 16, "C": 16, "OX": 16}),)

    def cycles_per_mac(self, stats: LayerWeightStats) -> float:
        """E[max essential bits] over the sync group, >= 1 (zero-guard)."""
        return max(stats.expected_max_essential_bits(SYNC_GROUP), 1.0)

    def compute_cycles(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        cpm = self.cycles_per_mac(stats)
        return spec.macs * cpm / max(su.macs_per_cycle(spec), 1e-12)

    def compute_energy_pj(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        # Lanes burn energy only on their own essential bits (idle lanes
        # waiting on the sync group are clock-gated), plus the oscillator
        # overhead of the 4-bit offset adders (folded into the per-cycle
        # unit cost derived from Table IV's bit-serial PE).
        lane_cycles = spec.macs * stats.essential_bits_mean
        return lane_cycles * self.tech.mac_bit_serial_cycle_pj

    def sram_weight_overhead(self) -> float:
        # Online offset generation re-reads the zero-bit positions.
        return 1.0625
