"""HUAA: the Hardware-Utilization-Aware Accelerator (ISSCC'23 [9]).

Bit-parallel, 512 8x8 MACs, *dynamic dataflow* (the trait BitWave
inherits) but no sparsity handling of any kind.  Its SU set spans the
three parallelism styles the paper's Fig. 9 discusses: CK-parallel for
deep layers, XY-parallel for wide layers, and a channel-per-lane mapping
for depthwise convolutions.
"""

from __future__ import annotations

from repro.accelerators.base import Accelerator
from repro.model.mapping import SpatialUnrolling

HUAA_SUS = (
    SpatialUnrolling("CK-32x16", {"K": 32, "C": 16}, fold_reduction=True),
    SpatialUnrolling("CK-16x32", {"K": 16, "C": 32}, fold_reduction=True),
    SpatialUnrolling("CK-64x8", {"K": 64, "C": 8}, fold_reduction=True),
    SpatialUnrolling("CKX-16x8x4", {"K": 16, "C": 8, "OX": 4},
                     fold_reduction=True),
    SpatialUnrolling("XY-16x8", {"OX": 16, "OY": 8, "K": 4}),
    SpatialUnrolling("XFx-8x4", {"OX": 8, "FX": 4, "K": 16}),
    SpatialUnrolling("DW-64x8", {"K": 64, "OX": 8}),
)


class HUAA(Accelerator):
    name = "HUAA"
    sus = HUAA_SUS
