"""SCNN (ISCA'17 [25]): value-sparsity-aware accelerator.

SCNN multiplies only non-zero weight x non-zero activation pairs
(equation (1): ``Nmac,e = Nmac x (1 - Sa) x (1 - Sw)``) and stores both
tensors in ZRE-compressed form.  Two effects temper the wins, exactly as
Section V-C describes:

- *index overheads*: ZRE's run-length fields inflate traffic when value
  sparsity is scarce ("the overheads of the required flexible indexing
  undo any performance gains"), captured by the *real* ZRE compression
  ratio (which drops below 1 for dense tensors);
- *load imbalance*: PEs own fixed tensor slices, so the crossbar stalls
  on the PE with the most non-zeros; modelled as the expected maximum
  non-zero count over the PE tiles versus the mean.
"""

from __future__ import annotations

import numpy as np
from math import comb

from repro.accelerators.base import Accelerator
from repro.model.mapping import SpatialUnrolling
from repro.sparsity.stats import LayerWeightStats, expected_max_of_sample
from repro.workloads.spec import LayerSpec

#: Weights per PE work tile and PEs sharing a synchronization barrier.
TILE = 16
N_PE_SYNC = 32

#: ZRE run-length field width (bits per stored entry).
ZRE_INDEX_BITS = 4


def zre_cr_from_sparsity(sparsity: float) -> float:
    """Analytic real ZRE compression ratio for a given value sparsity.

    Stored entries approximately equal the non-zero count (escape
    entries are negligible below ~94% sparsity); each entry costs
    8 payload + 4 index bits.
    """
    density = max(1.0 - sparsity, 1e-3)
    return 8.0 / ((8.0 + ZRE_INDEX_BITS) * density)


def load_imbalance(sparsity: float, tile: int = TILE,
                   n_pe: int = N_PE_SYNC) -> float:
    """E[max non-zeros over n_pe Binomial(tile, density) tiles] / mean."""
    density = max(1.0 - sparsity, 1e-6)
    pmf = np.array([
        comb(tile, k) * density ** k * (1 - density) ** (tile - k)
        for k in range(tile + 1)
    ])
    expected_max = expected_max_of_sample(pmf, n_pe)
    mean = tile * density
    return max(expected_max / mean, 1.0) if mean > 0 else 1.0


#: Fraction of multiplier-array slots SCNN fills once coordinate
#: computation and crossbar arbitration are accounted for; the SCNN
#: paper itself reports ~59% average multiplier utilization on its best
#: workloads, degrading on small/irregular layers.
COORDINATE_EFFICIENCY = 0.55

#: Input-vector width of the per-PE cartesian product (4 spatial
#: positions x 4 weights).
F_I_VECTOR = 4


class SCNN(Accelerator):
    name = "SCNN"
    sus = (SpatialUnrolling("fixed-8x8x8", {"K": 8, "C": 8, "OX": 8}),)

    def effective_macs(self, spec: LayerSpec, stats: LayerWeightStats) -> float:
        return spec.macs * (1.0 - stats.value_sparsity) * \
            (1.0 - spec.input_value_sparsity)

    def dataflow_efficiency(self, spec: LayerSpec) -> float:
        """Cartesian-product front-end efficiency on this layer shape.

        An SCNN PE multiplies a 4-vector of weights (same input channel,
        distinct kernel-spatial positions) with a 4-vector of input
        activations (same channel, distinct spatial positions): all 16
        products land on distinct outputs only for convolutions.  Layers
        without kernel-spatial extent (1x1 / fully-connected) can fill
        the weight vector only with the single matching-channel weight,
        and layers without output-spatial extent cannot fill the input
        vector -- the design targets convolutions (the SCNN paper's own
        scope).
        """
        weight_fill = min(spec.fx * spec.fy, F_I_VECTOR) / F_I_VECTOR
        input_fill = min(spec.ox * spec.oy * spec.b, F_I_VECTOR) / F_I_VECTOR
        return COORDINATE_EFFICIENCY * weight_fill * input_fill

    def compute_cycles(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        imbalance = load_imbalance(stats.value_sparsity)
        throughput = su.macs_per_cycle(spec) * self.dataflow_efficiency(spec)
        return self.effective_macs(spec, stats) * imbalance / max(
            throughput, 1e-12)

    def compute_energy_pj(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        return self.effective_macs(spec, stats) * self.tech.mac_bit_parallel_pj

    def weight_cr(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        return zre_cr_from_sparsity(stats.value_sparsity)

    def act_cr(self, spec: LayerSpec, stats: LayerWeightStats) -> float:
        return zre_cr_from_sparsity(spec.input_value_sparsity)

    def sram_weight_overhead(self) -> float:
        # Coordinate computation re-touches index metadata on chip.
        return 1.125
