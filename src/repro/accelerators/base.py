"""Accelerator evaluation engine (the paper's STEP1-STEP4 pipeline).

Every modelled accelerator subclasses :class:`Accelerator` and overrides
the hooks that differ between designs:

- the spatial-unrolling set (fixed vs. dynamic dataflow),
- the effective compute-cycle model (equations (1)-(2), with the
  design's sparsity-skipping semantics and load-imbalance behaviour),
- the compute energy model (bit-parallel MACs vs. bit-serial
  lane-cycles, priced per Table IV),
- the weight/activation compression ratios dividing memory traffic
  (equation (3)) and any SRAM metadata overheads.

The engine maps each layer (STEP1, :func:`repro.model.zigzag.map_layer`),
pulls the layer's sparsity profile (STEP2, :mod:`repro.sparsity`),
combines them (STEP3, the hooks) and prices the result (STEP4,
:mod:`repro.model.latency` / :mod:`repro.model.energy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch import ArchSpec, default_arch
from repro.model.energy import EnergyBreakdown, total_energy
from repro.model.latency import LatencyBreakdown, total_cycles
from repro.model.mapping import SpatialUnrolling
from repro.model.technology import CLOCK_FREQUENCY_HZ, Technology
from repro.model.zigzag import ActivityCounts, map_layer
from repro.sparsity.profiles import network_weight_stats
from repro.sparsity.stats import LayerWeightStats
from repro.workloads.spec import LayerSpec


@dataclass(frozen=True)
class LayerEvaluation:
    """One (accelerator, layer) modelling result."""

    layer: str
    su_name: str
    counts: ActivityCounts
    latency: LatencyBreakdown
    energy: EnergyBreakdown

    @property
    def cycles(self) -> float:
        return self.latency.total

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj


@dataclass
class NetworkEvaluation:
    """Whole-network totals for one accelerator."""

    accelerator: str
    network: str
    layers: list[LayerEvaluation] = field(default_factory=list)
    #: Clock the cycle counts run at (the evaluating accelerator's
    #: arch); runtime and TOPS derive from it.
    clock_hz: float = CLOCK_FREQUENCY_HZ

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_energy_pj(self) -> float:
        return sum(layer.energy_pj for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.counts.n_mac for layer in self.layers)

    @property
    def runtime_s(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def effective_tops(self) -> float:
        """Workload operations (2 x MACs) over runtime."""
        return 2.0 * self.total_macs / self.runtime_s / 1e12

    @property
    def efficiency_tops_per_w(self) -> float:
        """Useful operations per joule (Fig. 17's metric)."""
        joules = self.total_energy_pj * 1e-12
        return 2.0 * self.total_macs / joules / 1e12

    def energy_shares(self) -> dict[str, float]:
        total = self.total_energy_pj
        if total == 0:
            return {"dram": 0.0, "sram": 0.0, "reg": 0.0, "compute": 0.0}
        return {
            "dram": sum(l.energy.dram_pj for l in self.layers) / total,
            "sram": sum(l.energy.sram_pj for l in self.layers) / total,
            "reg": sum(l.energy.reg_pj for l in self.layers) / total,
            "compute": sum(l.energy.compute_pj for l in self.layers) / total,
        }


class Accelerator:
    """Base accelerator model; subclasses override the starred hooks.

    Every design constructs from an :class:`repro.arch.ArchSpec` (the
    typed hardware description): the technology point prices STEP4, the
    spec's SRAM port widths serialize the latency model's on-chip
    streams.  ``tech`` remains accepted as an explicit override for
    ad-hoc what-if pricing.
    """

    #: Display name (subclasses set this).
    name: str = "abstract"
    #: Spatial-unrolling set; >1 entry means dynamic dataflow.
    sus: tuple[SpatialUnrolling, ...] = ()

    def __init__(self, arch: ArchSpec | None = None,
                 tech: Technology | None = None) -> None:
        if arch is not None and not isinstance(arch, ArchSpec):
            # Catch pre-refactor positional callers (the first slot
            # used to be the Technology) with an actionable error.
            raise TypeError(
                f"arch must be a repro.arch.ArchSpec, got "
                f"{type(arch).__name__}; pass a Technology via the "
                f"tech= keyword")
        self.arch = arch if arch is not None else default_arch()
        self.tech = tech if tech is not None else self.arch.technology()
        #: Weight-SRAM port width in bits/cycle (Table I for BitWave).
        self.sram_w_bits = self.arch.sram_w_bits
        #: Activation-SRAM port width in bits/cycle.
        self.sram_a_bits = self.arch.sram_a_bits

    # ------------------------------------------------------------------
    # Hooks (STEP3): subclasses specialise these.
    # ------------------------------------------------------------------
    def select_su(
        self, spec: LayerSpec, stats: LayerWeightStats
    ) -> SpatialUnrolling:
        """Pick the SU minimizing effective compute cycles for the layer."""
        if not self.sus:
            raise ValueError(f"{self.name} has no spatial unrollings")
        return min(
            self.sus,
            key=lambda su: self.compute_cycles(spec, stats, su),
        )

    def compute_cycles(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        """*Effective* compute cycles CC_mac,e (equations (1)-(2)).

        Default: dense bit-parallel, one MAC per lane per cycle.
        """
        return spec.macs / max(su.macs_per_cycle(spec), 1e-12)

    def compute_energy_pj(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        """Compute energy; default prices every MAC at bit-parallel cost."""
        return spec.macs * self.tech.mac_bit_parallel_pj

    def weight_cr(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        """Weight compression ratio dividing weight traffic (eq. (3))."""
        return 1.0

    def act_cr(self, spec: LayerSpec, stats: LayerWeightStats) -> float:
        """Activation compression ratio dividing activation traffic."""
        return 1.0

    def sram_weight_overhead(self) -> float:
        """Multiplier >= 1 on SRAM weight reads for runtime metadata."""
        return 1.0

    # ------------------------------------------------------------------
    # Engine (STEP1 + STEP4)
    # ------------------------------------------------------------------
    def evaluate_layer(
        self, spec: LayerSpec, stats: LayerWeightStats
    ) -> LayerEvaluation:
        su = self.select_su(spec, stats)
        counts = map_layer(spec, su,
                           weight_sram_bytes=self.arch.weight_sram_bytes(),
                           act_sram_bytes=self.arch.act_sram_bytes())
        cc_mac_e = self.compute_cycles(spec, stats, su)
        compute_pj = self.compute_energy_pj(spec, stats, su)
        w_cr = self.weight_cr(spec, stats, su)
        a_cr = self.act_cr(spec, stats)
        overhead = self.sram_weight_overhead()
        latency = total_cycles(
            counts, cc_mac_e, w_cr, a_cr, overhead, self.tech,
            sram_w_bits_per_cycle=self.sram_w_bits,
            sram_a_bits_per_cycle=self.sram_a_bits,
        )
        energy = total_energy(
            counts, compute_pj, w_cr, a_cr, overhead, self.tech)
        return LayerEvaluation(
            layer=spec.name, su_name=su.name, counts=counts,
            latency=latency, energy=energy,
        )

    def layer_stats(self, network: str) -> dict[str, LayerWeightStats]:
        """Sparsity profiles used by this accelerator (hookable)."""
        return network_weight_stats(network)

    def evaluate_workload(
        self,
        specs: list[LayerSpec],
        stats_map: dict[str, LayerWeightStats],
        label: str = "custom",
    ) -> NetworkEvaluation:
        """Evaluate an arbitrary layer list (e.g. a token-size sweep)."""
        result = NetworkEvaluation(
            accelerator=self.name, network=label,
            clock_hz=self.arch.tech.clock_frequency_hz)
        for spec in specs:
            result.layers.append(
                self.evaluate_layer(spec, stats_map[spec.name]))
        return result

    def evaluate_network(self, network: str) -> NetworkEvaluation:
        """Deprecated: evaluate through :mod:`repro.eval` instead.

        ``repro.eval.evaluate(EvalRequest(workload=network,
        accelerator=...))`` adds store-backed caching and backend
        selection; this shim keeps old callers working (bit-identical
        numbers, no caching) by delegating to the same model-backend
        lowering.
        """
        import warnings

        warnings.warn(
            "Accelerator.evaluate_network is deprecated; use "
            "repro.eval.evaluate(EvalRequest(...)) (or "
            "repro.eval.backends.model_network_evaluation for ad-hoc "
            "accelerator instances)",
            DeprecationWarning, stacklevel=2)
        from repro.eval.backends import model_network_evaluation

        return model_network_evaluation(self, network)
