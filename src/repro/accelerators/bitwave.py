"""BitWave: the paper's bit-column-serial NPU (Section IV).

4096 1x8b sign-magnitude multipliers organised as 512 BCEs, driven by
the seven reconfigurable spatial unrollings of Table I.  Each SU ties
the column group size to its ``Cu`` unroll (the bit column spans the
spatially-unrolled input channels, Section IV-B), so SU selection also
selects the layer's BCS group size.

Cycle model: a weight group's contexts occupy a BCE for as many cycles
as the group has non-zero columns (the ZCIP ``Sync.ctr``).  Groups
fetched in the same cycle window advance in lockstep, so the effective
cycles-per-group is the expected *maximum* non-zero-column count over
the ``(Cu x Ku) / G`` lock-stepped groups -- which is precisely the
imbalance Bit-Flip removes by equalising zero columns across each layer.

The class exposes the Fig. 13 ablation axes:

- ``dataflow``: ``"fixed"`` (the Dense baseline's [Cu=64, Ku=64])
  or ``"dynamic"`` (the Table I SU set);
- ``columns``: ``"dense"`` (stream all 8 columns) or ``"sm"`` (skip
  zero sign-magnitude columns and compress weights with BCS);
- ``bitflip``: apply the paper's per-network Bit-Flip strategy before
  deriving the column statistics.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass

from repro.accelerators.base import Accelerator
from repro.arch import SERIAL_COLUMNS, ArchSpec
from repro.model.mapping import SpatialUnrolling
from repro.model.technology import Technology
from repro.sparsity.profiles import network_weight_stats
from repro.sparsity.stats import LayerWeightStats
from repro.workloads.nets import parse_network
from repro.workloads.spec import LayerSpec


@dataclass(frozen=True)
class BitWaveSU:
    """One Table I entry: the SU plus its column group size and bandwidth."""

    su: SpatialUnrolling
    group_size: int
    weight_bw_bits: int
    act_bw_bits: int

    @property
    def name(self) -> str:
        return self.su.name

    @property
    def sync_groups(self) -> int:
        """Column groups advancing in lockstep.

        The fetcher delivers packed 64-bit segments whose 64 weight bits
        share one significance (Fig. 10), so the groups inside a segment
        share the parser's shift schedule: 64 / G groups per segment.
        BCEs on *different* segments skew independently behind their own
        activation registers, so the segment is the sync domain.
        """
        return max(64 // self.group_size, 1)


#: Table I, in preference order.
TABLE_I = (
    BitWaveSU(SpatialUnrolling("SU1", {"C": 8, "OX": 16, "K": 32}), 8, 256, 1024),
    BitWaveSU(SpatialUnrolling("SU2", {"C": 16, "OX": 8, "K": 32}), 16, 512, 1024),
    BitWaveSU(SpatialUnrolling("SU3", {"C": 32, "OX": 4, "K": 32}), 32, 1024, 1024),
    BitWaveSU(SpatialUnrolling("SU4", {"C": 8, "K": 128}), 8, 1024, 64),
    BitWaveSU(SpatialUnrolling("SU5", {"C": 16, "K": 64}), 16, 1024, 128),
    BitWaveSU(SpatialUnrolling("SU6", {"C": 32, "K": 32}), 32, 1024, 256),
    # SU7 (depthwise): the column group spans 64 channels; each BCE's
    # eight SMM rows sweep eight adjacent output rows under the shared
    # weight column, engaging 64 x 2 x 8 = 1024 SMMs.
    BitWaveSU(SpatialUnrolling("SU7", {"G": 64, "OX": 2, "OY": 8}),
              64, 64, 1024),
)

#: The Fig. 13 Dense baseline's fixed unrolling [Ku = 64, Cu = 64]
#: ("a commonly-used SU in previous works") -- strict channel lanes,
#: which is exactly what starves it on shallow and depthwise layers.
DENSE_SU = BitWaveSU(
    SpatialUnrolling("dense-64x64", {"C": 64, "K": 64}), 64, 4096, 64)

#: Paper Bit-Flip strategies (Fig. 6): glob pattern -> target zero
#: columns.  Two tiers, as in the network-wide optimization of Section
#: III-D: weight-heavy flip-insensitive layers take 4-7 zero columns
#: (we use 5), every other non-sensitive layer takes 1-4 (we use 3,
#: backed by Fig. 6(a)'s "most layers exhibit negligible accuracy
#: degradation when the entire layer is forced to have less than four
#: zero columns"), and sensitive layers (first convs, BERT's early
#: blocks) are left shallow or untouched.  First matching pattern wins.
DEFAULT_BITFLIP_TARGETS: dict[str, dict[str, int]] = {
    "resnet18": {"conv1": 0, "layer4.*": 5, "fc": 5, "layer*": 3},
    "mobilenetv2": {"L.0": 0, "L.47": 5, "L.48": 5, "L.50": 5, "L.51": 5,
                    "fc": 5, "L.*": 3},
    "cnn_lstm": {"LSTM.0": 5, "LSTM.1": 5, "conv.*": 3, "fc": 3},
    "bert_base": {"Layer.1.*": 2, "Layer.2.*": 2, "Layer.3.*": 2,
                  "Layer.*": 5},
}


#: The Fig. 13 ablation ladder: variant name -> (dataflow, columns,
#: bitflip) constructor knobs, in presentation order.
BREAKDOWN_CONFIGS: dict[str, tuple[str, str, bool]] = {
    "Dense": ("fixed", "dense", False),
    "+DF": ("dynamic", "dense", False),
    "+DF+SM": ("dynamic", "sm", False),
    "+DF+SM+BF": ("dynamic", "sm", True),
}

#: Variant names in presentation order (Fig. 13's x axis).
BITWAVE_VARIANTS = tuple(BREAKDOWN_CONFIGS)


def build_bitwave_variant(variant: str,
                          arch: ArchSpec | None = None) -> "BitWave":
    """Construct one rung of the Fig. 13 ablation ladder by name."""
    if variant not in BREAKDOWN_CONFIGS:
        raise ValueError(
            f"unknown BitWave variant {variant!r}; one of {BITWAVE_VARIANTS}")
    dataflow, columns, bitflip = BREAKDOWN_CONFIGS[variant]
    return BitWave(dataflow, columns, bitflip, arch=arch)


def bitflip_targets_for(network: str, layer_names: list[str]) -> dict[str, int]:
    """Resolve the per-network glob strategy to concrete layer targets.

    First matching pattern wins (so BERT's sensitive-layer entries
    shadow the catch-all ``Layer.*``).
    """
    patterns = DEFAULT_BITFLIP_TARGETS.get(network, {})
    targets: dict[str, int] = {}
    for name in layer_names:
        for pattern, z in patterns.items():
            if fnmatch.fnmatchcase(name, pattern):
                targets[name] = z
                break
    return targets


class BitWave(Accelerator):
    def __init__(
        self,
        dataflow: str = "dynamic",
        columns: str | None = None,
        bitflip: bool | None = None,
        dense_precision: int | None = None,
        arch: ArchSpec | None = None,
        tech: Technology | None = None,
    ) -> None:
        """``columns`` and ``bitflip`` default to the
        :class:`ArchSpec`'s precision/columns mode (``"sm"`` on the
        paper preset, with Bit-Flip enabled; a ``columns="dense"`` spec
        disables both skipping and flipping).  ``dense_precision``
        enables the ZCIP dense mode's precision scaling (Section IV-A:
        "In dense mode, it generates shift control locally based on
        precision configuration"): with ``columns="dense"`` and weights
        PTQ'd to fewer bits, the array streams only ``dense_precision``
        columns per group and the packed weight stream shrinks by
        ``8 / dense_precision``."""
        super().__init__(arch, tech)
        if columns is None:
            columns = self.arch.columns
        if bitflip is None:
            bitflip = columns == "sm"
        if dataflow not in ("fixed", "dynamic"):
            raise ValueError(f"dataflow must be fixed|dynamic, got {dataflow!r}")
        if columns not in ("dense", "sm"):
            raise ValueError(f"columns must be dense|sm, got {columns!r}")
        if bitflip and columns == "dense":
            raise ValueError("bitflip requires sign-magnitude columns")
        if dense_precision is None:
            dense_precision = (self.arch.dense_precision
                               if columns == "dense" else SERIAL_COLUMNS)
        if not 1 <= dense_precision <= 8:
            raise ValueError(
                f"dense_precision must be in [1, 8], got {dense_precision}")
        if dense_precision != 8 and columns != "dense":
            raise ValueError("precision scaling applies to dense mode only")
        self.dataflow = dataflow
        self.columns = columns
        self.bitflip = bitflip
        self.dense_precision = dense_precision
        self.bw_sus = (DENSE_SU,) if dataflow == "fixed" else TABLE_I
        self.sus = tuple(entry.su for entry in self.bw_sus)

    @property
    def name(self) -> str:  # type: ignore[override]
        if self.dataflow == "fixed":
            return "BitWave-Dense"
        parts = ["BitWave", "DF"]
        if self.columns == "sm":
            parts.append("SM")
        if self.bitflip:
            parts.append("BF")
        return "+".join(parts) if len(parts) > 2 else "BitWave+DF"

    # -- SU selection ----------------------------------------------------
    def _entry(self, su: SpatialUnrolling) -> BitWaveSU:
        for entry in self.bw_sus:
            if entry.su is su:
                return entry
        raise ValueError(f"SU {su.name} not part of this configuration")

    def cycles_per_group(
        self, stats: LayerWeightStats, entry: BitWaveSU
    ) -> float:
        """Lock-step cycles per group context (the ZCIP sync counter)."""
        if self.columns == "dense":
            return float(self.dense_precision)
        return max(
            stats.expected_max_nz_columns(entry.group_size, entry.sync_groups),
            1.0,
        )

    def compute_cycles(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        entry = self._entry(su)
        cpm = self.cycles_per_group(stats, entry)
        return spec.macs * cpm / max(su.macs_per_cycle(spec), 1e-12)

    def compute_energy_pj(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        entry = self._entry(su)
        if self.columns == "dense":
            mean_columns = float(self.dense_precision)
        else:
            # Lanes are active only for their own group's non-zero
            # columns; sync-stall cycles are clock-gated.
            mean_columns = max(stats.mean_nz_columns(entry.group_size), 1.0)
        lane_cycles = spec.macs * mean_columns
        return lane_cycles * self.tech.bce_column_cycle_pj

    def weight_cr(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        if self.columns == "dense":
            # Dense-mode weights pack at the configured precision.
            return 8.0 / self.dense_precision
        return stats.bcs_cr[self._entry(su).group_size]

    # -- Bit-Flip statistics ----------------------------------------------
    def layer_stats(self, network: str) -> dict[str, LayerWeightStats]:
        base = network_weight_stats(network)
        if not self.bitflip:
            return base
        # Parametrized workloads ("bert_base@tokens=128") share the base
        # network's flip strategy -- the patterns match layer names,
        # which do not depend on the parameters.
        targets = bitflip_targets_for(parse_network(network)[0], list(base))
        return {
            name: stats.with_bitflip(targets[name]) if name in targets else stats
            for name, stats in base.items()
        }
