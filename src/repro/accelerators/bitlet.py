"""Bitlet (MICRO'21 [23]): bit-interleaved weight-bit-sparsity exploitation.

Bitlet packs the non-zero bits of ``M`` interleaved weights by bit
significance: each cycle retires at most one non-zero bit per
significance lane.  The cycle count for an interleave group is therefore
the *maximum population count across significances* -- and because real
weight distributions concentrate ones in the low significances, those
"teeming" positions dominate ("the computational cycle count suffers
from the bit-significance teeming with non-zero bits", Section V-C).

Per-significance populations are modelled as Binomial(M, p_j) with
``p_j`` the measured occupancy of bit position ``j``; the expected max
across the 8 positions uses independence across significances.

Bitlet also pays a runtime metadata cost: non-zero bit indices are
extracted online, inflating SRAM weight traffic ("necessitates extensive
runtime processing to extract the indices ... significantly increasing
memory overhead").
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.accelerators.base import Accelerator
from repro.model.mapping import SpatialUnrolling
from repro.sparsity.stats import LayerWeightStats
from repro.workloads.spec import LayerSpec

#: Weights interleaved per Bitlet PE.
INTERLEAVE = 8


def _binomial_cdf(v: np.ndarray, n: int, p: float) -> np.ndarray:
    """CDF of Binomial(n, p) at integer points ``v``."""
    out = np.zeros(len(v))
    for i, vi in enumerate(v):
        k = np.arange(0, min(int(vi), n) + 1)
        out[i] = float(np.sum(
            [comb(n, int(kk)) * p ** kk * (1 - p) ** (n - kk) for kk in k]))
    return np.minimum(out, 1.0)


def expected_max_significance_population(
    occupancy: np.ndarray, m: int = INTERLEAVE
) -> float:
    """E[max over significances of Binomial(m, p_j)]."""
    values = np.arange(0, m + 1)
    cdf_product = np.ones(m + 1)
    for p in occupancy:
        cdf_product *= _binomial_cdf(values, m, float(p))
    pmf = np.diff(np.concatenate([[0.0], cdf_product]))
    return float((values * pmf).sum())


class Bitlet(Accelerator):
    name = "Bitlet"
    sus = (SpatialUnrolling("fixed-32x8x16", {"K": 32, "C": 8, "OX": 16}),)

    def cycles_per_interleave_group(self, stats: LayerWeightStats) -> float:
        return max(
            expected_max_significance_population(
                stats.significance_occupancy, INTERLEAVE),
            1.0,
        )

    def compute_cycles(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        # An interleave group of M weights (M MACs against one input
        # context) retires in E[max population] cycles on M lanes; the
        # per-MAC lane-cycle count is therefore the same expectation.
        cpm = self.cycles_per_interleave_group(stats)
        return spec.macs * cpm / max(su.macs_per_cycle(spec), 1e-12)

    def compute_energy_pj(
        self, spec: LayerSpec, stats: LayerWeightStats, su: SpatialUnrolling
    ) -> float:
        # Active lane-cycles are the actual non-zero bits processed.
        lane_cycles = spec.macs * stats.essential_bits_mean
        return lane_cycles * self.tech.mac_bit_serial_cycle_pj

    def sram_weight_overhead(self) -> float:
        return 1.25
