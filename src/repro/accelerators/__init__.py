"""The six modelled accelerators (Section V-B, Fig. 12 right)."""

from repro.accelerators.base import (
    Accelerator,
    LayerEvaluation,
    NetworkEvaluation,
)
from repro.accelerators.bitlet import Bitlet
from repro.accelerators.bitwave import (
    BITWAVE_VARIANTS,
    BREAKDOWN_CONFIGS,
    BitWave,
    DEFAULT_BITFLIP_TARGETS,
    bitflip_targets_for,
    build_bitwave_variant,
)
from repro.accelerators.huaa import HUAA
from repro.accelerators.pragmatic import Pragmatic
from repro.accelerators.scnn import SCNN
from repro.accelerators.stripes import Stripes

#: The Fig. 14/15/17 comparison set, in the paper's plotting order.
SOTA_ACCELERATORS = ("SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA", "BitWave")


def build_accelerator(name: str) -> Accelerator:
    """Factory for the comparison benchmarks (BitWave fully enabled)."""
    builders = {
        "SCNN": SCNN,
        "Stripes": Stripes,
        "Pragmatic": Pragmatic,
        "Bitlet": Bitlet,
        "HUAA": HUAA,
        "BitWave": BitWave,
    }
    if name not in builders:
        raise ValueError(f"unknown accelerator {name!r}; one of {SOTA_ACCELERATORS}")
    return builders[name]()


__all__ = [
    "Accelerator",
    "BITWAVE_VARIANTS",
    "BREAKDOWN_CONFIGS",
    "BitWave",
    "Bitlet",
    "DEFAULT_BITFLIP_TARGETS",
    "HUAA",
    "LayerEvaluation",
    "NetworkEvaluation",
    "Pragmatic",
    "SCNN",
    "SOTA_ACCELERATORS",
    "Stripes",
    "bitflip_targets_for",
    "build_accelerator",
    "build_bitwave_variant",
]
