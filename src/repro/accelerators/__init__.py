"""The six modelled accelerators (Section V-B, Fig. 12 right)."""

from repro.accelerators.base import (
    Accelerator,
    LayerEvaluation,
    NetworkEvaluation,
)
from repro.arch import ArchSpec
from repro.accelerators.bitlet import Bitlet
from repro.accelerators.bitwave import (
    BITWAVE_VARIANTS,
    BREAKDOWN_CONFIGS,
    BitWave,
    DEFAULT_BITFLIP_TARGETS,
    bitflip_targets_for,
    build_bitwave_variant,
)
from repro.accelerators.huaa import HUAA
from repro.accelerators.pragmatic import Pragmatic
from repro.accelerators.scnn import SCNN
from repro.accelerators.stripes import Stripes

#: The Fig. 14/15/17 comparison set, in the paper's plotting order.
SOTA_ACCELERATORS = ("SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA", "BitWave")


def build_accelerator(name: str, arch: "ArchSpec | None" = None) -> Accelerator:
    """Factory for the comparison benchmarks (BitWave fully enabled).

    ``arch`` is the :class:`repro.arch.ArchSpec` the instance prices
    with (technology point, SRAM port widths); every design accepts it,
    so technology-sensitivity sweeps move the whole comparison set.
    """
    builders = {
        "SCNN": SCNN,
        "Stripes": Stripes,
        "Pragmatic": Pragmatic,
        "Bitlet": Bitlet,
        "HUAA": HUAA,
        "BitWave": BitWave,
    }
    if name not in builders:
        raise ValueError(f"unknown accelerator {name!r}; one of {SOTA_ACCELERATORS}")
    return builders[name](arch=arch)


__all__ = [
    "Accelerator",
    "BITWAVE_VARIANTS",
    "BREAKDOWN_CONFIGS",
    "BitWave",
    "Bitlet",
    "DEFAULT_BITFLIP_TARGETS",
    "HUAA",
    "LayerEvaluation",
    "NetworkEvaluation",
    "Pragmatic",
    "SCNN",
    "SOTA_ACCELERATORS",
    "Stripes",
    "bitflip_targets_for",
    "build_accelerator",
    "build_bitwave_variant",
]
