"""``python -m repro.dse``: define, run, resume, and summarize campaigns.

Examples::

    # Write a template spec (defaults to the full paper grid).
    python -m repro.dse init --out campaign.json

    # Run/resume it on 4 workers (cached points are skipped).
    python -m repro.dse run --spec campaign.json --jobs 4

    # Inline specs work too, for quick sweeps and CI smoke tests.
    python -m repro.dse run --name smoke \\
        --accelerators SCNN,Stripes --networks cnn_lstm --jobs 2

    # The evaluation backend is a campaign axis: sim-backed points run
    # the structural NPU simulator (repro.eval's sim-* backends) and
    # land in a store namespace keyed by the simulator fingerprint.
    python -m repro.dse run --name simgrid --accelerators BitWave \\
        --networks cnn_lstm --backends model,sim-vectorized

    # Parametrized workloads make token sweeps ordinary grid axes.
    python -m repro.dse run --name tokens --accelerators BitWave \\
        --networks bert_base@tokens=4,bert_base@tokens=64

    # The hardware description is a campaign axis (repro.arch): sweep
    # technology parameters and PE-array geometry over both backends,
    # one distinctly-hashed record per arch override.
    python -m repro.dse run --name tech-sense --accelerators BitWave \\
        --networks cnn_lstm --backends model,sim-vectorized \\
        --archs bitwave-16nm,bitwave-16nm@dram_pj=30+group=16

    # Summaries read the store only -- no evaluation.  --format json
    # emits machine-readable rows for scripting and dashboards.
    python -m repro.dse summary --spec campaign.json --format json
    python -m repro.dse pareto --spec campaign.json --x cycles --y energy

    # Shard a campaign across hosts/processes: each shard evaluates a
    # disjoint, deterministic slice of the grid (split by config hash)
    # against the same fingerprint namespace.  Merge folds shard
    # stores (or a results.jsonl copied from another host) into one,
    # last-wins by key and idempotent under re-merge.
    python -m repro.dse run --spec campaign.json --shard 0/2 --store a
    python -m repro.dse run --spec campaign.json --shard 1/2 --store b
    python -m repro.dse merge --store a b
    python -m repro.dse summary --spec campaign.json --store a

    # Store lifecycle: compact live namespaces, evict stale ones
    # (fingerprints superseded by code edits) by age/size budget.
    python -m repro.dse gc --dry-run
    python -m repro.dse gc --max-age-days 7 --max-bytes 100000000

    # Structured tracing (repro.obs): where did the wall-clock go?
    # --trace records spans/counters from every worker process into a
    # per-run directory; the obs CLI aggregates per-phase latency,
    # cache hit/miss counters and the slowest points.
    python -m repro.dse run --spec campaign.json --jobs 4 --trace
    python -m repro.obs report ~/.cache/repro-dse/traces/<run-dir>

    # Sim-backed validation campaigns sweep the structural simulator's
    # configuration (group size, unrolls, datapath backend) and run the
    # Section V-B validation suite at every point.
    python -m repro.dse sim --group-sizes 4,8 --oxus 8,16 --jobs 4

    # Self-healing: failed attempts retry with exponential backoff
    # (poison errors are quarantined at once), a per-point --timeout
    # arms the hung-worker watchdog, and SIGINT/SIGTERM stop the run
    # gracefully (completed results are committed; rerun to resume).
    python -m repro.dse run --spec campaign.json --jobs 4 \\
        --max-attempts 5 --timeout 600

    # Chaos-test the machinery itself: deterministic fault injection
    # (repro.faults).  Same seed, same campaign => same faults, so CI
    # can assert the exact retry/timeout counters a plan must produce.
    python -m repro.dse run --name chaos --accelerators SCNN \\
        --networks cnn_lstm --jobs 2 --timeout 30 \\
        --inject 'seed=7,crash:0.2:attempt<1,torn_write:0.3'
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Sequence

from pathlib import Path

from repro import faults, obs

from repro.arch import arch_names
from repro.dse.executor import CampaignRun, run_campaign
from repro.dse.gc import DEFAULT_MAX_AGE_DAYS, collect_garbage, gc_table
from repro.dse.retry import RetryPolicy
from repro.dse.simcampaign import (
    SimCampaignSpec,
    run_sim_campaign,
    sim_store,
    sim_summary_data,
    sim_summary_rows,
)
from repro.dse.spec import CampaignSpec, Shard, paper_grid
from repro.dse.store import ResultStore, default_store_root
from repro.eval.fingerprints import code_fingerprint
from repro.dse.summary import (
    METRICS,
    pareto_data,
    pareto_table,
    summary_data,
    summary_table,
)
from repro.eval.registry import backend_names
from repro.sim.npu import BACKENDS
from repro.utils.progress import ProgressPrinter
from repro.utils.tables import format_table


def _csv(value: str) -> tuple[str, ...]:
    return tuple(part for part in value.split(",") if part)


def _int_csv(value: str) -> tuple[int, ...]:
    return tuple(int(part) for part in value.split(",") if part)


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--name", default="adhoc",
                        help="campaign name for inline specs")
    parser.add_argument("--accelerators", type=_csv, default=(),
                        metavar="A,B", help="comma-separated accelerators")
    parser.add_argument("--networks", type=_csv, default=(),
                        metavar="N,M",
                        help="comma-separated networks, optionally "
                             "parametrized (bert_base@tokens=128)")
    parser.add_argument("--variants", type=_csv, default=(),
                        metavar="V,W", help="comma-separated BitWave variants")
    parser.add_argument("--backends", type=_csv, default=(),
                        metavar="B,C",
                        help="comma-separated evaluation backends "
                             f"(default: model; known: "
                             f"{','.join(backend_names())})")
    parser.add_argument("--archs", type=_csv, default=(),
                        metavar="A,B",
                        help="comma-separated hardware design points "
                             "(repro.arch preset spellings, e.g. "
                             "bitwave-16nm@sram_pj=0.5+group=16; "
                             f"presets: {','.join(arch_names())}; "
                             "default: bitwave-16nm)")


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spec", metavar="FILE",
                        help="campaign spec JSON (from `init`)")
    _add_grid_arguments(parser)
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="result-store root (default: "
                             "$REPRO_DSE_STORE or ~/.cache/repro-dse)")


def _add_format_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="output format (default: table)")


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", nargs="?", const="auto", default=None,
                        metavar="DIR",
                        help="emit structured trace events (repro.obs "
                             "spans/counters) into DIR; with no DIR, a "
                             "per-run directory under <store>/traces. "
                             "Aggregate with `python -m repro.obs "
                             "report DIR`")


def _activate_tracing(args: argparse.Namespace, name: str,
                      store_root: Path) -> Path | None:
    """Enable tracing for this run (and its pool workers) if requested.

    ``--trace`` with no value picks a fresh per-run directory under the
    store root; the resolved directory is exported via ``REPRO_TRACE``
    so forked/spawned workers write their own per-process files there.
    """
    if args.trace is None:
        return None
    if args.trace == "auto":
        stamp = time.strftime("%Y%m%d-%H%M%S")
        directory = store_root / "traces" / f"{name}-{stamp}-{os.getpid()}"
    else:
        directory = Path(args.trace)
    return obs.configure(directory)


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-attempts", type=int, default=None,
                        metavar="N",
                        help="attempts per point before it is quarantined "
                             "as failed (default: the spec's retry policy, "
                             f"else {RetryPolicy().max_attempts}; 1 = "
                             "never retry)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-point wall-clock deadline; a worker "
                             "past it is killed by the watchdog and the "
                             "point retried (default: none)")
    parser.add_argument("--backoff", type=float, default=None, metavar="S",
                        help="first retry backoff, doubled per attempt "
                             "with deterministic jitter (default: "
                             f"{RetryPolicy().backoff_s:g})")
    parser.add_argument("--inject", metavar="SPEC", default=None,
                        help="deterministic fault injection (chaos "
                             "testing), e.g. "
                             "'seed=7,crash:0.2:attempt<1,torn_write:0.3'"
                             "; kinds: "
                             + ",".join(faults.FAULT_KINDS))


def _activate_faults(args: argparse.Namespace) -> None:
    """Arm fault injection for this run (and its pool workers).

    The parsed plan's canonical spec is exported via ``REPRO_FAULTS``
    so forked/spawned workers inject from the identical plan.
    """
    if args.inject is None:
        return
    plan = faults.configure(args.inject)
    assert plan is not None
    print(f"fault injection armed: {plan.spec()}", file=sys.stderr)


def _policy_from_args(args: argparse.Namespace,
                      base: RetryPolicy | None) -> RetryPolicy:
    """CLI retry flags layered over the spec's stored policy."""
    return (base or RetryPolicy()).with_overrides(
        max_attempts=args.max_attempts,
        timeout_s=args.timeout,
        backoff_s=args.backoff,
    )


def _run_exit_code(run: "CampaignRun[Any, Any]") -> int:
    """Campaign exit status: 0 clean, 1 failed points, 128+N signal."""
    if run.interrupted:
        return 128 + (run.interrupt_signum or 0)
    return 1 if run.failed else 0


def _add_shard_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shard", type=Shard.parse, default=None,
                        metavar="I/N",
                        help="restrict to deterministic shard I of N "
                             "(0-based, split by config hash); N "
                             "processes/hosts given the same spec cover "
                             "the grid disjointly and `merge` folds "
                             "their stores back together")


def _inline_spec(args: argparse.Namespace) -> CampaignSpec:
    spec = CampaignSpec(
        name=args.name,
        accelerators=args.accelerators,
        networks=args.networks,
        variants=args.variants,
        backends=args.backends or ("model",),
        archs=args.archs,
    )
    spec.validate()
    return spec


def _load_spec(args: argparse.Namespace) -> CampaignSpec:
    if args.spec:
        if args.accelerators or args.networks or args.variants \
                or args.backends or args.archs:
            raise SystemExit("--spec and inline grid flags are exclusive")
        return CampaignSpec.from_json(args.spec)
    return _inline_spec(args)


def _store(args: argparse.Namespace) -> ResultStore:
    return ResultStore(args.store)


def _emit_json(payload: object) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_init(args: argparse.Namespace) -> int:
    if args.accelerators or args.networks or args.variants \
            or args.backends or args.archs:
        spec = _inline_spec(args)
    else:
        spec = paper_grid(args.name)
    spec.to_json(args.out)
    print(f"wrote {args.out}: {len(spec.points())} points "
          f"({spec.name})")
    return 0


def _cmd_points(args: argparse.Namespace) -> int:
    from repro.dse.store import StoreRouter

    spec = _load_spec(args)
    router = StoreRouter(_store(args))
    points = spec.points()
    if args.shard is not None:
        points = args.shard.select(points)
    if args.format == "json":
        _emit_json([
            {**point.to_dict(), "key": point.key(), "label": point.label,
             "cached": point.key() in router.for_point(point)}
            for point in points
        ])
        return 0
    for point in points:
        status = ("cached" if point.key() in router.for_point(point)
                  else "pending")
        print(f"{point.key()}  {status:8s}  {point.label}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    store = _store(args)
    trace_dir = _activate_tracing(args, spec.name, store.root)
    _activate_faults(args)
    progress = None if args.quiet else ProgressPrinter()
    run = run_campaign(
        spec, store, jobs=args.jobs, force=args.force, progress=progress,
        shard=args.shard, policy=_policy_from_args(args, spec.retry))
    print(run.summary_line)
    if trace_dir is not None:
        obs.flush()
        print(f"trace: {trace_dir} "
              f"(aggregate: python -m repro.obs report {trace_dir})")
    for point in run.points:
        error = run.failure_for(point)
        if error is not None:
            print(f"FAILED {point.label}: {error}", file=sys.stderr)
    if run.interrupted:
        print(f"interrupted: {run.remaining} points remain; rerun the "
              f"same command to resume from the store", file=sys.stderr)
    print()
    print(summary_table(spec, store, failures=run.failed))
    return _run_exit_code(run)


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.dse.store import scan_jsonl

    spec = _load_spec(args)
    store = _store(args)
    corrupt = len(scan_jsonl(store.path).corrupt)
    if args.format == "json":
        _emit_json(summary_data(spec, store))
    else:
        print(summary_table(spec, store))
    if corrupt:
        # Damage is worth a line even in table mode: torn lines mean a
        # writer crashed mid-append; `gc` quarantines them.
        print(f"WARNING: {corrupt} corrupt line(s) in {store.path}; "
              f"run `python -m repro.dse gc` to quarantine them",
              file=sys.stderr)
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    if args.format == "json":
        _emit_json(pareto_data(spec, _store(args), x=args.x, y=args.y))
        return 0
    print(pareto_table(spec, _store(args), x=args.x, y=args.y))
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    spec = SimCampaignSpec(
        name=args.name,
        group_sizes=args.group_sizes,
        kus=args.kus,
        oxus=args.oxus,
        backends=args.backends,
    )
    spec.validate()
    store = sim_store(args.store)
    trace_dir = _activate_tracing(args, spec.name, store.root)
    _activate_faults(args)
    progress = None if args.quiet else ProgressPrinter()
    run = run_sim_campaign(
        spec, store, jobs=args.jobs, force=args.force, progress=progress,
        policy=_policy_from_args(args, None))
    if trace_dir is not None:
        obs.flush()
        print(f"trace: {trace_dir} "
              f"(aggregate: python -m repro.obs report {trace_dir})",
              file=sys.stderr)
    if args.format == "json":
        _emit_json(sim_summary_data(run))
        return _run_exit_code(run)
    print(run.summary_line)
    print()
    print(format_table(
        ["config", "layers", "total cycles", "max deviation"],
        sim_summary_rows(run),
        title="Sim-backed validation campaign (paper bound: <6%)",
    ))
    return _run_exit_code(run)


def _cmd_merge(args: argparse.Namespace) -> int:
    dest_root = (Path(args.store).expanduser() if args.store
                 else default_store_root())
    total = 0
    for src in args.sources:
        path = Path(src).expanduser()
        if path.is_file():
            # A bare results.jsonl copied from another host: the
            # namespace is not recoverable from the file, and guessing
            # one would strand the records somewhere no reader looks
            # (e.g. sim records under the model fingerprint).
            if not args.namespace:
                raise ValueError(
                    f"merge source {src!r} is a bare results.jsonl; "
                    f"pass --namespace (its original parent-directory "
                    f"name, e.g. {code_fingerprint()!r} for "
                    f"model-backed records)")
            namespace = args.namespace
            merged = ResultStore(dest_root, namespace=namespace).merge(path)
            print(f"merged {merged} records from {path} "
                  f"into {namespace}")
            total += merged
        elif (path / "results.jsonl").is_file():
            # A single namespace directory.
            namespace = args.namespace or path.name
            merged = ResultStore(dest_root, namespace=namespace).merge(
                path / "results.jsonl")
            print(f"merged {merged} records from {path} "
                  f"into {namespace}")
            total += merged
        elif path.is_dir():
            # A whole store root: fold every namespace it holds.
            if args.namespace:
                raise ValueError(
                    f"--namespace applies to bare results.jsonl or "
                    f"single-namespace sources; {src!r} is a whole "
                    f"store root whose namespaces merge under their "
                    f"own names")
            for ns_dir in sorted(path.iterdir()):
                if not (ns_dir / "results.jsonl").is_file():
                    continue
                merged = ResultStore(dest_root, namespace=ns_dir.name).merge(
                    ns_dir / "results.jsonl")
                print(f"merged {merged} records from {ns_dir} "
                      f"into {ns_dir.name}")
                total += merged
        else:
            raise ValueError(
                f"merge source {src!r} is neither a store root, a "
                f"namespace directory, nor a results.jsonl file")
    print(f"merge complete: {total} records into {dest_root}")
    return 0


def _cmd_opt(args: argparse.Namespace) -> int:
    """Delegate to ``python -m repro.opt`` (guided search lives there)."""
    from repro.opt.__main__ import main as opt_main

    return opt_main(args.opt_args)


def _cmd_gc(args: argparse.Namespace) -> int:
    report = collect_garbage(
        args.store,
        max_age_days=args.max_age_days,
        max_bytes=args.max_bytes,
        dry_run=args.dry_run,
    )
    if args.format == "json":
        _emit_json(report.to_dict())
        return 0
    print(gc_table(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="design-space-exploration campaigns over the "
                    "accelerator evaluation grid",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser(
        "init", help="write a campaign spec JSON (default: full paper grid)")
    _add_grid_arguments(p_init)
    p_init.add_argument("--out", required=True, metavar="FILE")
    p_init.set_defaults(func=_cmd_init)

    p_points = sub.add_parser(
        "points", help="list the grid points, keys and cache status")
    _add_spec_arguments(p_points)
    _add_format_argument(p_points)
    _add_shard_argument(p_points)
    p_points.set_defaults(func=_cmd_points)

    p_run = sub.add_parser("run", help="run or resume a campaign")
    _add_spec_arguments(p_run)
    p_run.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (0 = all CPUs; default 1)")
    p_run.add_argument("--force", action="store_true",
                       help="re-evaluate points already in the store")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")
    _add_shard_argument(p_run)
    _add_trace_argument(p_run)
    _add_resilience_arguments(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_summary = sub.add_parser(
        "summary", help="print stored metrics for a campaign")
    _add_spec_arguments(p_summary)
    _add_format_argument(p_summary)
    p_summary.set_defaults(func=_cmd_summary)

    p_pareto = sub.add_parser(
        "pareto", help="extract the Pareto front over two metrics")
    _add_spec_arguments(p_pareto)
    _add_format_argument(p_pareto)
    p_pareto.add_argument("--x", default="cycles", choices=sorted(METRICS),
                          help="first objective (default: cycles)")
    p_pareto.add_argument("--y", default="energy", choices=sorted(METRICS),
                          help="second objective (default: energy)")
    p_pareto.set_defaults(func=_cmd_pareto)

    p_merge = sub.add_parser(
        "merge", help="fold shard stores (or copied results.jsonl "
                      "files) into a store, last-wins by key")
    p_merge.add_argument("sources", nargs="+", metavar="SRC",
                         help="store roots, namespace directories, or "
                              "bare results.jsonl files")
    p_merge.add_argument("--store", metavar="DIR", default=None,
                         help="destination store root (default: "
                              "$REPRO_DSE_STORE or ~/.cache/repro-dse)")
    p_merge.add_argument("--namespace", metavar="NS", default=None,
                         help="destination namespace; required for bare "
                              "results.jsonl sources (not recoverable "
                              "from the file), defaults to the source "
                              "directory name for namespace dirs")
    p_merge.set_defaults(func=_cmd_merge)

    p_gc = sub.add_parser(
        "gc", help="compact live store namespaces and evict stale "
                   "ones (superseded by code edits) by age/size budget")
    p_gc.add_argument("--store", metavar="DIR", default=None,
                      help="store root (default: $REPRO_DSE_STORE or "
                           "~/.cache/repro-dse)")
    p_gc.add_argument("--max-age-days", type=float,
                      default=DEFAULT_MAX_AGE_DAYS, metavar="D",
                      help="evict stale namespaces whose last append is "
                           f"older than D days (default: "
                           f"{DEFAULT_MAX_AGE_DAYS:g}; live namespaces "
                           "are never evicted)")
    p_gc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                      help="after the age pass, evict the oldest stale "
                           "namespaces until the root fits N bytes")
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be reclaimed, touch "
                           "nothing")
    _add_format_argument(p_gc)
    p_gc.set_defaults(func=_cmd_gc)

    p_opt = sub.add_parser(
        "opt", help="guided search over the grid (successive halving, "
                    "scalar tuning, accuracy x hardware co-search); "
                    "delegates to `python -m repro.opt`")
    p_opt.add_argument("opt_args", nargs=argparse.REMAINDER,
                       metavar="ARGS",
                       help="arguments for `python -m repro.opt` "
                            "(e.g. `sh --smoke --format json`)")
    p_opt.set_defaults(func=_cmd_opt)

    p_sim = sub.add_parser(
        "sim", help="run a sim-backed validation campaign over "
                    "simulator configurations")
    p_sim.add_argument("--name", default="sim-adhoc",
                       help="campaign name (reporting only)")
    p_sim.add_argument("--group-sizes", type=_int_csv, default=(8,),
                       metavar="G,H", help="BCS group sizes (default: 8)")
    p_sim.add_argument("--kus", type=_int_csv, default=(32,),
                       metavar="K,L", help="kernel unrolls (default: 32)")
    p_sim.add_argument("--oxus", type=_int_csv, default=(16,),
                       metavar="X,Y", help="spatial unrolls (default: 16)")
    p_sim.add_argument("--backends", type=_csv, default=("vectorized",),
                       metavar="B,C",
                       help=f"datapath backends, from {BACKENDS} "
                            "(default: vectorized)")
    p_sim.add_argument("--store", metavar="DIR", default=None,
                       help="result-store root (default: "
                            "$REPRO_DSE_STORE or ~/.cache/repro-dse)")
    p_sim.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (0 = all CPUs; default 1)")
    p_sim.add_argument("--force", action="store_true",
                       help="re-evaluate points already in the store")
    p_sim.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")
    _add_format_argument(p_sim)
    _add_trace_argument(p_sim)
    _add_resilience_arguments(p_sim)
    p_sim.set_defaults(func=_cmd_sim)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
