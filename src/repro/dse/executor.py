"""Parallel campaign execution over a ``multiprocessing`` pool.

The executor fans the campaign's evaluation points out over worker
processes, chunked so points sharing a network (and therefore its
expensive sparsity profile) tend to land on the same worker.  Workers
only compute; the parent process owns the result store and appends
records as results stream back, so resuming an interrupted campaign
re-evaluates only the missing points.

Points carry their evaluation backend (:mod:`repro.eval`), and records
land in per-backend stores: model-backed points go to the campaign's
store, simulator-backed points to a sibling namespace under the same
root keyed by the simulator's source fingerprint.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Generic, Protocol, TypeVar, cast

from repro.dse.records import make_record, result_from_dict, result_to_dict
from repro.dse.spec import CampaignSpec, EvalPoint, Shard
from repro.dse.store import ResultStore, StoreRouter
from repro.eval.registry import get_backend
from repro.eval.result import EvalResult
from repro.obs import counter, flush, observe, trace

#: ``progress(done, total, label, *, cached, elapsed_s)``
ProgressFn = Callable[..., None]


class CampaignPoint(Protocol):
    """What the shared driver needs from a grid point."""

    @property
    def label(self) -> str: ...

    def key(self) -> str: ...

    def to_dict(self) -> dict[str, Any]: ...


class NamedSpec(Protocol):
    """What a run needs from its campaign spec."""

    @property
    def name(self) -> str: ...


PointT = TypeVar("PointT", bound=CampaignPoint)
ResultT = TypeVar("ResultT")


def evaluate_point(point: EvalPoint) -> EvalResult:
    """Evaluate one grid point through its backend (no caching)."""
    return point.evaluate()


def _worker(point: EvalPoint) -> tuple[str, dict[str, Any], float]:
    start = time.perf_counter()
    result = evaluate_point(point)
    return point.key(), result_to_dict(result), time.perf_counter() - start


@dataclass(frozen=True)
class PointFailure:
    """A worker exception, streamed back in place of a result payload."""

    error: str


#: perf_counter stamp of this worker process's previous point, so the
#: gap to the next point (pool queue/dispatch wait plus chunk idling)
#: can be reported as ``dse.worker.queue_wait``.
_WORKER_LAST_DONE: float | None = None


class _FailureTolerant:
    """Picklable worker wrapper turning exceptions into failure payloads.

    One poisoned point must cost exactly that point, not the pool: an
    exception escaping a pool worker would abort ``imap_unordered`` in
    the parent and discard every not-yet-committed result of the
    campaign.

    Also the worker-side observability hook: each point runs under a
    ``dse.point`` span, the gap since the process's previous point is
    reported as ``dse.worker.queue_wait``, and buffered trace events
    are flushed after every point -- ``multiprocessing.Pool`` teardown
    does not run ``atexit`` hooks in workers, so unflushed events would
    otherwise vanish with the pool.
    """

    def __init__(self, worker: Callable[[Any], tuple[str, Any, float]]):
        self.worker = worker

    def __call__(self, point: CampaignPoint) -> tuple[str, Any, float]:
        global _WORKER_LAST_DONE
        start = time.perf_counter()
        if _WORKER_LAST_DONE is not None:
            observe("dse.worker.queue_wait", start - _WORKER_LAST_DONE)
        try:
            with trace("dse.point", label=point.label):
                return self.worker(point)
        except Exception as exc:  # noqa: BLE001 -- any worker fault
            counter("dse.point.exception", error=type(exc).__name__,
                    label=point.label)
            failure = PointFailure(f"{type(exc).__name__}: {exc}")
            return point.key(), failure, time.perf_counter() - start
        finally:
            _WORKER_LAST_DONE = time.perf_counter()
            flush()


@dataclass
class CampaignRun(Generic[PointT, ResultT]):
    """Outcome of one campaign-driver invocation.

    Shared by the evaluation grids (``CampaignRun[EvalPoint,
    EvalResult]``) and the sim-validation campaigns (``CampaignRun[
    SimPoint, dict]``); the type parameters keep each caller's
    ``results`` payload checked.
    """

    spec: NamedSpec
    store_path: Path
    points: list[PointT]
    total: int = 0
    cached: int = 0
    evaluated: int = 0
    #: Evaluations whose records could not be written (store down).
    persist_failures: int = 0
    #: Results for an already-committed key streaming back again
    #: (defensive: a driver bug, or a caller bypassing point dedupe).
    recommits: int = 0
    #: config-hash key -> worker error, points whose evaluation raised.
    failed: dict[str, str] = field(default_factory=dict)
    #: config-hash key -> deserialized/computed result, all points.
    results: dict[str, ResultT] = field(default_factory=dict)
    #: Worker-measured evaluation seconds, summed over fresh points.
    eval_seconds: float = 0.0
    #: Parent-measured store-persist seconds (record build + locked
    #: append), summed -- reported separately so a slow disk is not
    #: misattributed to the evaluation backends.
    persist_seconds: float = 0.0

    def result_for(self, point: PointT) -> ResultT:
        return self.results[point.key()]

    def failure_for(self, point: PointT) -> str | None:
        """The worker error for ``point``, or ``None`` if it succeeded."""
        return self.failed.get(point.key())

    def failed_labels(self) -> list[str]:
        """Display labels of the points whose evaluation raised."""
        return [point.label for point in self.points
                if point.key() in self.failed]

    def grid(self) -> dict[tuple[str, str], ResultT]:
        """``(config label, network) -> result`` (evaluation grids)."""
        if self.points and not isinstance(self.points[0], EvalPoint):
            raise TypeError(
                f"grid() is defined for evaluation-grid runs; this run's "
                f"points are {type(self.points[0]).__name__}")
        if self.failed:
            # Harness grids (Fig. 13-17) need every cell; a partial
            # grid would KeyError later with no hint of the cause.
            raise RuntimeError(
                f"{len(self.failed)} campaign points failed: "
                + ", ".join(sorted(self.failed_labels())))
        return {
            (cast(EvalPoint, point).config_label,
             cast(EvalPoint, point).network): self.result_for(point)
            for point in self.points
        }

    @property
    def summary_line(self) -> str:
        line = (
            f"campaign {self.spec.name}: total={self.total} "
            f"cached={self.cached} evaluated={self.evaluated} "
            f"failed={len(self.failed)} store={self.store_path}"
        )
        if self.evaluated:
            line += (f" (eval={self.eval_seconds:.2f}s "
                     f"persist={self.persist_seconds:.2f}s)")
        if self.recommits:
            line += f" (note: {self.recommits} re-committed results)"
        if self.persist_failures:
            line += f" (WARNING: {self.persist_failures} results not persisted)"
        if self.failed:
            line += (f" (ERROR: {len(self.failed)} points failed: "
                     + ", ".join(sorted(self.failed_labels())) + ")")
        return line


def resolve_jobs(jobs: int) -> int:
    """``0`` means one worker per available CPU."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs or os.cpu_count() or 1


def drive_points(
    points: list[PointT],
    run: CampaignRun[PointT, ResultT],
    *,
    jobs: int,
    worker: Callable[[PointT], tuple[str, Any, float]],
    cached_result: Callable[[PointT], ResultT | None],
    make_point_record: Callable[[PointT, Any, float], dict[str, Any]],
    decode_result: Callable[[Any], ResultT],
    store_for: Callable[[PointT], ResultStore],
    force: bool = False,
    chunksize: int | None = None,
    progress: ProgressFn | None = None,
) -> None:
    """Shared campaign driver: cache scan, pool fan-out, store commits.

    Used by both the evaluation grid (:func:`run_campaign`) and the
    sim-validation campaign (:mod:`repro.dse.simcampaign`) so resume and
    persistence semantics cannot diverge.  Parameterized by:

    - ``worker(point) -> (key, result_payload, elapsed_s)`` -- pool task;
    - ``cached_result(point)`` -- decoded stored value or ``None``;
    - ``make_point_record(point, payload, elapsed_s)`` -- store record;
    - ``decode_result(payload)`` -- worker payload to stored value;
    - ``store_for(point)`` -- the store a point's record lands in.

    ``run`` accumulates ``results``/``cached``/``evaluated``/``failed``/
    ``persist_failures`` in place.  The parent process owns all store
    writes; workers only compute.  A worker exception becomes a
    per-point entry in ``run.failed`` (the pool keeps draining and
    every completed result still persists); duplicate-key points are
    dropped up front with a warning so one result can never double-
    commit or overrun the progress accounting.
    """
    jobs = resolve_jobs(jobs)
    by_key: dict[str, PointT] = {}
    unique: list[PointT] = []
    for point in points:
        key = point.key()
        if key in by_key:
            warnings.warn(
                f"campaign point {point.label!r} duplicates the key of "
                f"{by_key[key].label!r} ({key}); dropping the duplicate",
                RuntimeWarning, stacklevel=2)
            continue
        by_key[key] = point
        unique.append(point)
    if len(unique) != len(points):
        # Keep the run's own view consistent too: reporting paths
        # (failed_labels, grid, per-point CLI lines) iterate run.points
        # and must not see one point twice.
        run.total = len(unique)
        run.points = list(unique)
    points = unique

    drive_start = time.perf_counter()
    pending = []
    done = 0
    with trace("dse.cache_scan", campaign=run.spec.name):
        for point in points:
            result = None if force else cached_result(point)
            if result is not None:
                run.results[point.key()] = result
                run.cached += 1
                done += 1
                if progress is not None:
                    progress(done, run.total, point.label,
                             cached=True, elapsed_s=None)
            else:
                pending.append(point)

    store_down = False

    def commit(key: str, payload: Any, elapsed: float) -> None:
        nonlocal done, store_down
        point = by_key[key]
        if isinstance(payload, PointFailure):
            run.failed[key] = payload.error
            done = min(done + 1, run.total)
            if progress is not None:
                # Mark the live line: an operator watching a long run
                # should see the fault when it happens, not only in the
                # final summary.
                progress(done, run.total,
                         f"FAILED {point.label}: {payload.error}",
                         cached=False, elapsed_s=elapsed)
            return
        recommit = key in run.results
        run.eval_seconds += elapsed
        if store_down:
            run.persist_failures += 1
        else:
            persist_start = time.perf_counter()
            try:
                with trace("dse.persist", label=point.label):
                    store_for(point).put(
                        key, make_point_record(point, payload, elapsed))
            except OSError:
                # An unwritable store costs persistence, not the run.
                store_down = True
                run.persist_failures += 1
            finally:
                run.persist_seconds += time.perf_counter() - persist_start
        run.results[key] = decode_result(payload)
        if recommit:
            # The same key streaming back twice must not inflate the
            # progress counters past run.total (101/100-style lines).
            run.recommits += 1
        else:
            run.evaluated += 1
            done = min(done + 1, run.total)
        if progress is not None:
            progress(done, run.total, point.label,
                     cached=False, elapsed_s=elapsed)

    safe_worker = _FailureTolerant(worker)
    if jobs <= 1 or len(pending) <= 1:
        for point in pending:
            commit(*safe_worker(point))
    elif pending:
        if chunksize is None:
            chunksize = max(1, len(pending) // (jobs * 4))
        workers = min(jobs, len(pending))
        with multiprocessing.Pool(processes=workers) as pool:
            for key, payload, elapsed in pool.imap_unordered(
                    safe_worker, pending, chunksize=chunksize):
                commit(key, payload, elapsed)

    # Run-level accounting, emitted by the parent (the one process that
    # owns the commit path) so the trace report's counters match the
    # campaign summary exactly.
    observe("dse.drive", time.perf_counter() - drive_start,
            campaign=run.spec.name)
    for name, value in (
        ("dse.points.total", run.total),
        ("dse.points.cached", run.cached),
        ("dse.points.evaluated", run.evaluated),
        ("dse.points.failed", len(run.failed)),
        ("dse.points.persist_failures", run.persist_failures),
        ("dse.points.recommits", run.recommits),
    ):
        counter(name, n=value, campaign=run.spec.name)
    flush()


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | None = None,
    *,
    jobs: int = 1,
    chunksize: int | None = None,
    force: bool = False,
    progress: ProgressFn | None = None,
    shard: Shard | None = None,
) -> CampaignRun[EvalPoint, EvalResult]:
    """Run (or resume) a campaign; returns the result grid.

    Points whose key already exists in their backend's store are served
    from disk unless ``force`` re-evaluates them.  ``jobs > 1``
    evaluates the pending points on a process pool; ``jobs=0`` uses
    every CPU.  ``store`` holds the model-backed records; points on
    other backends persist next to it under the backend's own
    fingerprint namespace.  ``shard`` restricts the run to one
    deterministic slice of the grid (see :class:`repro.dse.spec.Shard`)
    so N processes/hosts can split a campaign and later ``merge`` their
    stores.
    """
    spec.validate()
    if store is None:
        store = ResultStore()
    points = spec.points()
    if shard is not None:
        points = shard.select(points)
    run: CampaignRun[EvalPoint, EvalResult] = CampaignRun(
        spec=spec, store_path=store.path, points=points, total=len(points))
    router = StoreRouter(store)
    drive_points(
        points, run,
        jobs=jobs,
        worker=_worker,
        cached_result=router.result,
        make_point_record=lambda point, payload, elapsed: make_record(
            point, payload, elapsed,
            fingerprint=get_backend(point.backend).fingerprint()),
        decode_result=result_from_dict,
        store_for=router.for_point,
        force=force,
        chunksize=chunksize,
        progress=progress,
    )
    return run
