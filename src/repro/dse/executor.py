"""Parallel campaign execution over a ``multiprocessing`` pool.

The executor fans the campaign's evaluation points out over worker
processes, chunked so points sharing a network (and therefore its
expensive sparsity profile) tend to land on the same worker.  Workers
only compute; the parent process owns the result store and appends
records as results stream back, so resuming an interrupted campaign
re-evaluates only the missing points.

Points carry their evaluation backend (:mod:`repro.eval`), and records
land in per-backend stores: model-backed points go to the campaign's
store, simulator-backed points to a sibling namespace under the same
root keyed by the simulator's source fingerprint.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Generic, Protocol, TypeVar, cast

from repro.dse.records import make_record, result_from_dict, result_to_dict
from repro.dse.spec import CampaignSpec, EvalPoint
from repro.dse.store import ResultStore, StoreRouter
from repro.eval.registry import get_backend
from repro.eval.result import EvalResult

#: ``progress(done, total, label, *, cached, elapsed_s)``
ProgressFn = Callable[..., None]


class CampaignPoint(Protocol):
    """What the shared driver needs from a grid point."""

    @property
    def label(self) -> str: ...

    def key(self) -> str: ...

    def to_dict(self) -> dict[str, Any]: ...


class NamedSpec(Protocol):
    """What a run needs from its campaign spec."""

    @property
    def name(self) -> str: ...


PointT = TypeVar("PointT", bound=CampaignPoint)
ResultT = TypeVar("ResultT")


def evaluate_point(point: EvalPoint) -> EvalResult:
    """Evaluate one grid point through its backend (no caching)."""
    return point.evaluate()


def _worker(point: EvalPoint) -> tuple[str, dict[str, Any], float]:
    start = time.perf_counter()
    result = evaluate_point(point)
    return point.key(), result_to_dict(result), time.perf_counter() - start


@dataclass
class CampaignRun(Generic[PointT, ResultT]):
    """Outcome of one campaign-driver invocation.

    Shared by the evaluation grids (``CampaignRun[EvalPoint,
    EvalResult]``) and the sim-validation campaigns (``CampaignRun[
    SimPoint, dict]``); the type parameters keep each caller's
    ``results`` payload checked.
    """

    spec: NamedSpec
    store_path: Path
    points: list[PointT]
    total: int = 0
    cached: int = 0
    evaluated: int = 0
    #: Evaluations whose records could not be written (store down).
    persist_failures: int = 0
    #: config-hash key -> deserialized/computed result, all points.
    results: dict[str, ResultT] = field(default_factory=dict)

    def result_for(self, point: PointT) -> ResultT:
        return self.results[point.key()]

    def grid(self) -> dict[tuple[str, str], ResultT]:
        """``(config label, network) -> result`` (evaluation grids)."""
        if self.points and not isinstance(self.points[0], EvalPoint):
            raise TypeError(
                f"grid() is defined for evaluation-grid runs; this run's "
                f"points are {type(self.points[0]).__name__}")
        return {
            (cast(EvalPoint, point).config_label,
             cast(EvalPoint, point).network): self.result_for(point)
            for point in self.points
        }

    @property
    def summary_line(self) -> str:
        line = (
            f"campaign {self.spec.name}: total={self.total} "
            f"cached={self.cached} evaluated={self.evaluated} "
            f"store={self.store_path}"
        )
        if self.persist_failures:
            line += f" (WARNING: {self.persist_failures} results not persisted)"
        return line


def resolve_jobs(jobs: int) -> int:
    """``0`` means one worker per available CPU."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs or os.cpu_count() or 1


def drive_points(
    points: list[PointT],
    run: CampaignRun[PointT, ResultT],
    *,
    jobs: int,
    worker: Callable[[PointT], tuple[str, Any, float]],
    cached_result: Callable[[PointT], ResultT | None],
    make_point_record: Callable[[PointT, Any, float], dict[str, Any]],
    decode_result: Callable[[Any], ResultT],
    store_for: Callable[[PointT], ResultStore],
    force: bool = False,
    chunksize: int | None = None,
    progress: ProgressFn | None = None,
) -> None:
    """Shared campaign driver: cache scan, pool fan-out, store commits.

    Used by both the evaluation grid (:func:`run_campaign`) and the
    sim-validation campaign (:mod:`repro.dse.simcampaign`) so resume and
    persistence semantics cannot diverge.  Parameterized by:

    - ``worker(point) -> (key, result_payload, elapsed_s)`` -- pool task;
    - ``cached_result(point)`` -- decoded stored value or ``None``;
    - ``make_point_record(point, payload, elapsed_s)`` -- store record;
    - ``decode_result(payload)`` -- worker payload to stored value;
    - ``store_for(point)`` -- the store a point's record lands in.

    ``run`` accumulates ``results``/``cached``/``evaluated``/
    ``persist_failures`` in place.  The parent process owns all store
    writes; workers only compute.
    """
    jobs = resolve_jobs(jobs)
    by_key = {point.key(): point for point in points}

    pending = []
    done = 0
    for point in points:
        result = None if force else cached_result(point)
        if result is not None:
            run.results[point.key()] = result
            run.cached += 1
            done += 1
            if progress is not None:
                progress(done, run.total, point.label,
                         cached=True, elapsed_s=None)
        else:
            pending.append(point)

    store_down = False

    def commit(key: str, payload: Any, elapsed: float) -> None:
        nonlocal done, store_down
        point = by_key[key]
        if store_down:
            run.persist_failures += 1
        else:
            try:
                store_for(point).put(
                    key, make_point_record(point, payload, elapsed))
            except OSError:
                # An unwritable store costs persistence, not the run.
                store_down = True
                run.persist_failures += 1
        run.results[key] = decode_result(payload)
        run.evaluated += 1
        done += 1
        if progress is not None:
            progress(done, run.total, point.label,
                     cached=False, elapsed_s=elapsed)

    if jobs <= 1 or len(pending) <= 1:
        for point in pending:
            commit(*worker(point))
    elif pending:
        if chunksize is None:
            chunksize = max(1, len(pending) // (jobs * 4))
        workers = min(jobs, len(pending))
        with multiprocessing.Pool(processes=workers) as pool:
            for key, payload, elapsed in pool.imap_unordered(
                    worker, pending, chunksize=chunksize):
                commit(key, payload, elapsed)


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | None = None,
    *,
    jobs: int = 1,
    chunksize: int | None = None,
    force: bool = False,
    progress: ProgressFn | None = None,
) -> CampaignRun[EvalPoint, EvalResult]:
    """Run (or resume) a campaign; returns the full result grid.

    Points whose key already exists in their backend's store are served
    from disk unless ``force`` re-evaluates them.  ``jobs > 1``
    evaluates the pending points on a process pool; ``jobs=0`` uses
    every CPU.  ``store`` holds the model-backed records; points on
    other backends persist next to it under the backend's own
    fingerprint namespace.
    """
    spec.validate()
    if store is None:
        store = ResultStore()
    points = spec.points()
    run: CampaignRun[EvalPoint, EvalResult] = CampaignRun(
        spec=spec, store_path=store.path, points=points, total=len(points))
    router = StoreRouter(store)
    drive_points(
        points, run,
        jobs=jobs,
        worker=_worker,
        cached_result=router.result,
        make_point_record=lambda point, payload, elapsed: make_record(
            point, payload, elapsed,
            fingerprint=get_backend(point.backend).fingerprint()),
        decode_result=result_from_dict,
        store_for=router.for_point,
        force=force,
        chunksize=chunksize,
        progress=progress,
    )
    return run
