"""Self-healing parallel campaign execution.

The executor fans the campaign's evaluation points out over supervised
worker processes (:class:`~repro.dse.pool.WatchdogPool`).  Workers
only compute; the parent process owns the result store and appends
records as results stream back, so resuming an interrupted campaign
re-evaluates only the missing points.

Failure handling is layered so one bad point -- or one bad worker --
costs exactly itself:

- a worker exception streams back as a :class:`PointFailure` payload
  (the pool keeps draining, completed results still persist);
- a worker that hangs past the :class:`~repro.dse.retry.RetryPolicy`
  deadline, goes heartbeat-silent, or dies without a payload
  (OOM-killed) is detected by the parent-side watchdog, killed, and
  replaced;
- failed attempts are retried with exponential backoff up to the
  policy's budget, except *poison* errors (deterministic bugs that
  would fail identically every time), which are quarantined at once;
- SIGINT/SIGTERM stop dispatch gracefully: completed results are
  already on disk, the summary says how to resume, and the exit code
  is ``128 + signum``.

Points carry their evaluation backend (:mod:`repro.eval`), and records
land in per-backend stores: model-backed points go to the campaign's
store, simulator-backed points to a sibling namespace under the same
root keyed by the simulator's source fingerprint.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from types import FrameType
from typing import Any, Callable, Generic, Protocol, TypeVar, cast

from repro import faults
from repro.dse.pool import WatchdogPool
from repro.dse.records import make_record, result_from_dict, result_to_dict
from repro.dse.retry import RetryPolicy
from repro.dse.spec import CampaignSpec, EvalPoint, Shard
from repro.dse.store import ResultStore, StoreRouter
from repro.eval.registry import get_backend
from repro.eval.result import EvalResult
from repro.obs import counter, flush, observe, trace

#: ``progress(done, total, label, *, cached, elapsed_s)``
ProgressFn = Callable[..., None]


class CampaignPoint(Protocol):
    """What the shared driver needs from a grid point."""

    @property
    def label(self) -> str: ...

    def key(self) -> str: ...

    def to_dict(self) -> dict[str, Any]: ...


class NamedSpec(Protocol):
    """What a run needs from its campaign spec."""

    @property
    def name(self) -> str: ...


PointT = TypeVar("PointT", bound=CampaignPoint)
ResultT = TypeVar("ResultT")


def evaluate_point(point: EvalPoint) -> EvalResult:
    """Evaluate one grid point through its backend (no caching)."""
    return point.evaluate()


def _worker(point: EvalPoint) -> tuple[str, dict[str, Any], float]:
    start = time.perf_counter()
    result = evaluate_point(point)
    return point.key(), result_to_dict(result), time.perf_counter() - start


@dataclass(frozen=True)
class PointFailure:
    """A worker exception, streamed back in place of a result payload.

    ``etype`` (the exception class name) is what the retry policy
    classifies; ``kind`` distinguishes in-worker exceptions from
    failures the parent synthesized after killing a worker
    (:data:`~repro.dse.retry.WORKER_FAILURE_KINDS`).
    """

    error: str
    etype: str = ""
    kind: str = "exception"


#: perf_counter stamp of this worker process's previous point, so the
#: gap to the next point (pool queue/dispatch wait plus idling) can be
#: reported as ``dse.worker.queue_wait``.
_WORKER_LAST_DONE: float | None = None


class _FailureTolerant:
    """Picklable worker wrapper turning exceptions into failure payloads.

    One poisoned point must cost exactly that point, not the pool: an
    exception escaping a pool worker would kill the worker and force
    the watchdog to respawn it for nothing.

    Also the worker-side observability and fault-injection hook: each
    attempt runs under a ``dse.point`` span with the point bound as the
    fault-injection context (so ``eval`` and deep ``gemm`` site faults
    fire deterministically per ``(key, attempt)``), the gap since the
    process's previous point is reported as ``dse.worker.queue_wait``,
    and buffered trace events are flushed after every point -- worker
    teardown does not run ``atexit`` hooks, so unflushed events would
    otherwise vanish with the process.
    """

    def __init__(self, worker: Callable[[Any], tuple[str, Any, float]]):
        self.worker = worker

    def __call__(self, point: CampaignPoint,
                 attempt: int = 0) -> tuple[str, Any, float]:
        global _WORKER_LAST_DONE
        start = time.perf_counter()
        if _WORKER_LAST_DONE is not None:
            observe("dse.worker.queue_wait", start - _WORKER_LAST_DONE)
        faults.set_point_context(point.key(), attempt)
        try:
            with trace("dse.point", label=point.label, attempt=attempt):
                faults.fire("eval")
                return self.worker(point)
        except Exception as exc:  # noqa: BLE001 -- any worker fault
            counter("dse.point.exception", error=type(exc).__name__,
                    label=point.label)
            failure = PointFailure(
                error=f"{type(exc).__name__}: {exc}",
                etype=type(exc).__name__)
            return point.key(), failure, time.perf_counter() - start
        finally:
            faults.clear_point_context()
            _WORKER_LAST_DONE = time.perf_counter()
            flush()


class _SignalGuard:
    """Graceful SIGINT/SIGTERM: first signal requests a stop, second
    one force-quits.

    Installed only in the main thread of the parent process (workers
    ignore SIGINT themselves; see :func:`~repro.dse.pool._worker_main`).
    The campaign loop polls :meth:`stop_requested` between points, so
    every already-completed result is committed before the run returns
    with ``interrupted`` set.
    """

    def __init__(self) -> None:
        self.signum: int | None = None
        self._previous: dict[int, Any] = {}

    def _handle(self, signum: int, frame: FrameType | None) -> None:
        if self.signum is not None:
            # Second signal: the operator means it. Restore the default
            # disposition and end the process the conventional way.
            for sig, previous in self._previous.items():
                signal.signal(sig, previous)
            raise KeyboardInterrupt
        self.signum = signum

    def stop_requested(self) -> bool:
        return self.signum is not None

    def __enter__(self) -> "_SignalGuard":
        if threading.current_thread() is not threading.main_thread():
            return self  # signal.signal is main-thread-only
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[sig] = signal.signal(sig, self._handle)
            except (ValueError, OSError):  # pragma: no cover
                pass
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()


@dataclass
class CampaignRun(Generic[PointT, ResultT]):
    """Outcome of one campaign-driver invocation.

    Shared by the evaluation grids (``CampaignRun[EvalPoint,
    EvalResult]``) and the sim-validation campaigns (``CampaignRun[
    SimPoint, dict]``); the type parameters keep each caller's
    ``results`` payload checked.
    """

    spec: NamedSpec
    store_path: Path
    points: list[PointT]
    total: int = 0
    cached: int = 0
    evaluated: int = 0
    #: Evaluations whose records could not be written (store down).
    persist_failures: int = 0
    #: Results for an already-committed key streaming back again
    #: (defensive: a driver bug, or a caller bypassing point dedupe).
    recommits: int = 0
    #: Points whose final outcome needed more than one attempt.
    retried: int = 0
    #: Watchdog kill events (timeout or heartbeat silence), counted
    #: per event -- a point that timed out once and then succeeded
    #: still shows up here.
    timed_out: int = 0
    #: Points quarantined immediately because their error was
    #: classified poison (deterministic; retrying would be waste).
    poisoned: int = 0
    #: The run stopped early on SIGINT/SIGTERM; completed results are
    #: committed, the rest resume on the next invocation.
    interrupted: bool = False
    interrupt_signum: int | None = None
    #: config-hash key -> worker error, points whose evaluation failed
    #: for good (budget exhausted or poison).
    failed: dict[str, str] = field(default_factory=dict)
    #: config-hash key -> most recent error seen, including transient
    #: ones a later attempt recovered from.
    last_error: dict[str, str] = field(default_factory=dict)
    #: config-hash key -> attempts consumed (only settled points).
    attempts: dict[str, int] = field(default_factory=dict)
    #: config-hash key -> deserialized/computed result, all points.
    results: dict[str, ResultT] = field(default_factory=dict)
    #: Worker-measured evaluation seconds, summed over fresh points.
    eval_seconds: float = 0.0
    #: Parent-measured store-persist seconds (record build + locked
    #: append), summed -- reported separately so a slow disk is not
    #: misattributed to the evaluation backends.
    persist_seconds: float = 0.0

    def result_for(self, point: PointT) -> ResultT:
        return self.results[point.key()]

    def failure_for(self, point: PointT) -> str | None:
        """The worker error for ``point``, or ``None`` if it succeeded."""
        return self.failed.get(point.key())

    def failed_labels(self) -> list[str]:
        """Display labels of the points whose evaluation failed."""
        return [point.label for point in self.points
                if point.key() in self.failed]

    @property
    def remaining(self) -> int:
        """Points not yet settled (nonzero only after an interrupt)."""
        return self.total - self.cached - self.evaluated - len(self.failed)

    def grid(self) -> dict[tuple[str, str], ResultT]:
        """``(config label, network) -> result`` (evaluation grids)."""
        if self.points and not isinstance(self.points[0], EvalPoint):
            raise TypeError(
                f"grid() is defined for evaluation-grid runs; this run's "
                f"points are {type(self.points[0]).__name__}")
        if self.failed:
            # Harness grids (Fig. 13-17) need every cell; a partial
            # grid would KeyError later with no hint of the cause.
            raise RuntimeError(
                f"{len(self.failed)} campaign points failed: "
                + ", ".join(sorted(self.failed_labels())))
        return {
            (cast(EvalPoint, point).config_label,
             cast(EvalPoint, point).network): self.result_for(point)
            for point in self.points
        }

    @property
    def summary_line(self) -> str:
        line = (
            f"campaign {self.spec.name}: total={self.total} "
            f"cached={self.cached} evaluated={self.evaluated} "
            f"failed={len(self.failed)}"
        )
        # Self-healing accounting rides along only when it happened, so
        # a clean run's line stays byte-identical to what it always was.
        if self.retried:
            line += f" retried={self.retried}"
        if self.timed_out:
            line += f" timed_out={self.timed_out}"
        if self.poisoned:
            line += f" poisoned={self.poisoned}"
        line += f" store={self.store_path}"
        if self.evaluated:
            line += (f" (eval={self.eval_seconds:.2f}s "
                     f"persist={self.persist_seconds:.2f}s)")
        if self.recommits:
            line += f" (note: {self.recommits} re-committed results)"
        if self.persist_failures:
            line += f" (WARNING: {self.persist_failures} results not persisted)"
        if self.failed:
            line += (f" (ERROR: {len(self.failed)} points failed: "
                     + ", ".join(sorted(self.failed_labels())) + ")")
        if self.interrupted:
            line += (f" (INTERRUPTED: {self.remaining} points not "
                     f"evaluated; rerun the same command to resume)")
        return line


def resolve_jobs(jobs: int) -> int:
    """``0`` means one worker per available CPU."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs or os.cpu_count() or 1


def drive_points(
    points: list[PointT],
    run: CampaignRun[PointT, ResultT],
    *,
    jobs: int,
    worker: Callable[[PointT], tuple[str, Any, float]],
    cached_result: Callable[[PointT], ResultT | None],
    make_point_record: Callable[[PointT, Any, float], dict[str, Any]],
    decode_result: Callable[[Any], ResultT],
    store_for: Callable[[PointT], ResultStore],
    force: bool = False,
    chunksize: int | None = None,
    progress: ProgressFn | None = None,
    policy: RetryPolicy | None = None,
) -> None:
    """Shared campaign driver: cache scan, supervised fan-out, retries,
    store commits.

    Used by both the evaluation grid (:func:`run_campaign`) and the
    sim-validation campaign (:mod:`repro.dse.simcampaign`) so resume and
    persistence semantics cannot diverge.  Parameterized by:

    - ``worker(point) -> (key, result_payload, elapsed_s)`` -- pool task;
    - ``cached_result(point)`` -- decoded stored value or ``None``;
    - ``make_point_record(point, payload, elapsed_s)`` -- store record;
    - ``decode_result(payload)`` -- worker payload to stored value;
    - ``store_for(point)`` -- the store a point's record lands in.

    ``run`` accumulates ``results``/``cached``/``evaluated``/``failed``
    (and the self-healing counters) in place.  The parent process owns
    all store writes; workers only compute.  Failed attempts retry per
    ``policy`` (default :class:`~repro.dse.retry.RetryPolicy`); only
    terminal outcomes emit progress events, so a retried point still
    reports exactly once.  Duplicate-key points are dropped up front
    with a warning so one result can never double-commit or overrun
    the progress accounting.  ``chunksize`` is accepted for backward
    compatibility but unused: the watchdog pool dispatches one point
    per worker at a time so every in-flight point is attributable.
    """
    del chunksize  # superseded by single-point watchdog dispatch
    jobs = resolve_jobs(jobs)
    if policy is None:
        policy = RetryPolicy()
    by_key: dict[str, PointT] = {}
    unique: list[PointT] = []
    for point in points:
        key = point.key()
        if key in by_key:
            warnings.warn(
                f"campaign point {point.label!r} duplicates the key of "
                f"{by_key[key].label!r} ({key}); dropping the duplicate",
                RuntimeWarning, stacklevel=2)
            continue
        by_key[key] = point
        unique.append(point)
    if len(unique) != len(points):
        # Keep the run's own view consistent too: reporting paths
        # (failed_labels, grid, per-point CLI lines) iterate run.points
        # and must not see one point twice.
        run.total = len(unique)
        run.points = list(unique)
    points = unique

    drive_start = time.perf_counter()
    pending = []
    done = 0
    with trace("dse.cache_scan", campaign=run.spec.name):
        for point in points:
            result = None if force else cached_result(point)
            if result is not None:
                run.results[point.key()] = result
                run.cached += 1
                done += 1
                if progress is not None:
                    progress(done, run.total, point.label,
                             cached=True, elapsed_s=None)
            else:
                pending.append(point)

    store_down = False

    def commit(key: str, payload: Any, elapsed: float) -> None:
        """Persist and account one successful result (terminal)."""
        nonlocal done, store_down
        point = by_key[key]
        recommit = key in run.results
        run.eval_seconds += elapsed
        if store_down:
            run.persist_failures += 1
        else:
            persist_start = time.perf_counter()
            try:
                record = make_point_record(point, payload, elapsed)
                attempts = run.attempts.get(key, 1)
                if attempts > 1:
                    # The record remembers its bumpy history: attempt
                    # count and the transient error recovered from.
                    record = dict(record)
                    record["attempts"] = attempts
                    record["last_error"] = run.last_error.get(key)
                with trace("dse.persist", label=point.label):
                    store_for(point).put(key, record)
            except OSError:
                # An unwritable store costs persistence, not the run.
                store_down = True
                run.persist_failures += 1
            finally:
                run.persist_seconds += time.perf_counter() - persist_start
        run.results[key] = decode_result(payload)
        if recommit:
            # The same key streaming back twice must not inflate the
            # progress counters past run.total (101/100-style lines).
            run.recommits += 1
        else:
            run.evaluated += 1
            done = min(done + 1, run.total)
        if progress is not None:
            progress(done, run.total, point.label,
                     cached=False, elapsed_s=elapsed)

    def fail_point(key: str, failure: PointFailure, elapsed: float) -> None:
        """Account one settled (budget-exhausted or poison) failure."""
        nonlocal done
        point = by_key[key]
        run.failed[key] = failure.error
        done = min(done + 1, run.total)
        if progress is not None:
            # Mark the live line: an operator watching a long run
            # should see the fault when it happens, not only in the
            # final summary.
            progress(done, run.total,
                     f"FAILED {point.label}: {failure.error}",
                     cached=False, elapsed_s=elapsed)

    def on_outcome(point: Any, attempt: int, key: Any, payload: Any,
                   elapsed: float, reason: str) -> float | None:
        """Settle or reschedule one attempt; returns a backoff delay
        to retry, ``None`` when the point is settled.

        ``key`` is the worker-returned store key on ``"ok"`` outcomes
        (the committer trusts it, preserving the recommit-detection
        semantics of the plain-pool era); parent-synthesized failures
        carry no payload, so the point's own key stands in.
        """
        if key is None:
            key = point.key()
        if reason != "ok":
            # The parent killed (or buried) the worker; there is no
            # payload. Synthesize the failure the policy classifies.
            if reason in ("timeout", "heartbeat-silent"):
                run.timed_out += 1
            failure = PointFailure(
                error=f"{reason} after {elapsed:.1f}s "
                      f"(attempt {attempt + 1})",
                etype=reason, kind=reason)
        elif isinstance(payload, PointFailure):
            failure = payload
        else:
            run.attempts[key] = attempt + 1
            if attempt > 0:
                run.retried += 1
                counter("dse.point.recovered", label=point.label,
                        attempts=attempt + 1)
            commit(key, payload, elapsed)
            return None

        run.last_error[key] = failure.error
        retryable = policy.is_retryable(failure.etype, failure.kind)
        if retryable and attempt + 1 < policy.max_attempts:
            backoff = policy.backoff_for(key, attempt)
            observe("dse.retry.backoff", backoff, label=point.label,
                    attempt=attempt + 1, error=failure.etype)
            return backoff
        run.attempts[key] = attempt + 1
        if attempt > 0:
            run.retried += 1
        if not retryable and failure.kind == "exception":
            run.poisoned += 1
            counter("dse.point.poison", label=point.label,
                    error=failure.etype)
        fail_point(key, failure, elapsed)
        return None

    safe_worker = _FailureTolerant(worker)
    with _SignalGuard() as guard:
        use_pool = bool(pending) and (
            (jobs > 1 and len(pending) > 1) or policy.needs_watchdog())
        if use_pool:
            pool = WatchdogPool(safe_worker, min(jobs, len(pending)),
                                policy, should_stop=guard.stop_requested)
            completed = pool.run(pending, on_outcome)
            if not completed:
                run.interrupted = True
        else:
            for point in pending:
                if guard.stop_requested():
                    run.interrupted = True
                    break
                attempt = 0
                while True:
                    backoff = on_outcome(
                        point, attempt, *safe_worker(point, attempt), "ok")
                    if backoff is None:
                        break
                    if guard.stop_requested():
                        # Leave the point unsettled; the next run
                        # resumes it from a clean first attempt.
                        run.interrupted = True
                        break
                    time.sleep(backoff)
                    attempt += 1
                if run.interrupted:
                    break
        run.interrupt_signum = guard.signum

    # Run-level accounting, emitted by the parent (the one process that
    # owns the commit path) so the trace report's counters match the
    # campaign summary exactly.
    observe("dse.drive", time.perf_counter() - drive_start,
            campaign=run.spec.name)
    for name, value in (
        ("dse.points.total", run.total),
        ("dse.points.cached", run.cached),
        ("dse.points.evaluated", run.evaluated),
        ("dse.points.failed", len(run.failed)),
        ("dse.points.persist_failures", run.persist_failures),
        ("dse.points.recommits", run.recommits),
        ("dse.points.retried", run.retried),
        ("dse.points.timed_out", run.timed_out),
        ("dse.points.poisoned", run.poisoned),
    ):
        counter(name, n=value, campaign=run.spec.name)
    if run.interrupted:
        counter("dse.interrupted", signum=run.interrupt_signum,
                remaining=run.remaining, campaign=run.spec.name)
    flush()


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | None = None,
    *,
    jobs: int = 1,
    chunksize: int | None = None,
    force: bool = False,
    progress: ProgressFn | None = None,
    shard: Shard | None = None,
    policy: RetryPolicy | None = None,
) -> CampaignRun[EvalPoint, EvalResult]:
    """Run (or resume) a campaign; returns the result grid.

    Points whose key already exists in their backend's store are served
    from disk unless ``force`` re-evaluates them.  ``jobs > 1``
    evaluates the pending points on a supervised process pool;
    ``jobs=0`` uses every CPU.  ``store`` holds the model-backed
    records; points on other backends persist next to it under the
    backend's own fingerprint namespace.  ``shard`` restricts the run
    to one deterministic slice of the grid (see
    :class:`repro.dse.spec.Shard`) so N processes/hosts can split a
    campaign and later ``merge`` their stores.  ``policy`` (default:
    the spec's ``retry`` field, else :class:`RetryPolicy`'s defaults)
    governs retries, per-point timeouts, and poison quarantine.
    """
    spec.validate()
    if store is None:
        store = ResultStore()
    if policy is None:
        policy = spec.retry or RetryPolicy()
    points = spec.points()
    if shard is not None:
        points = shard.select(points)
    run: CampaignRun[EvalPoint, EvalResult] = CampaignRun(
        spec=spec, store_path=store.path, points=points, total=len(points))
    router = StoreRouter(store)
    drive_points(
        points, run,
        jobs=jobs,
        worker=_worker,
        cached_result=router.result,
        make_point_record=lambda point, payload, elapsed: make_record(
            point, payload, elapsed,
            fingerprint=get_backend(point.backend).fingerprint()),
        decode_result=result_from_dict,
        store_for=router.for_point,
        force=force,
        chunksize=chunksize,
        progress=progress,
        policy=policy,
    )
    return run
