"""Parallel campaign execution over a ``multiprocessing`` pool.

The executor fans the campaign's evaluation points out over worker
processes, chunked so points sharing a network (and therefore its
expensive sparsity profile) tend to land on the same worker.  Workers
only compute; the parent process owns the result store and appends
records as results stream back, so resuming an interrupted campaign
re-evaluates only the missing points.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.accelerators.base import NetworkEvaluation
from repro.dse.records import evaluation_from_dict, evaluation_to_dict, make_record
from repro.dse.spec import CampaignSpec, EvalPoint
from repro.dse.store import ResultStore

#: ``progress(done, total, label, *, cached, elapsed_s)``
ProgressFn = Callable[..., None]


def evaluate_point(point: EvalPoint) -> NetworkEvaluation:
    """Evaluate one grid point (STEP1-STEP4 for every layer)."""
    return point.evaluate()


def _worker(point: EvalPoint) -> tuple[str, dict[str, Any], float]:
    start = time.perf_counter()
    evaluation = evaluate_point(point)
    return point.key(), evaluation_to_dict(evaluation), time.perf_counter() - start


@dataclass
class CampaignRun:
    """Outcome of one :func:`run_campaign` invocation."""

    spec: CampaignSpec
    store_path: Path
    points: list[EvalPoint]
    total: int = 0
    cached: int = 0
    evaluated: int = 0
    #: Evaluations whose records could not be written (store down).
    persist_failures: int = 0
    #: config-hash key -> deserialized/computed evaluation, all points.
    results: dict[str, NetworkEvaluation] = field(default_factory=dict)

    def result_for(self, point: EvalPoint) -> NetworkEvaluation:
        return self.results[point.key()]

    def grid(self) -> dict[tuple[str, str], NetworkEvaluation]:
        """``(config label, network) -> evaluation`` for every point."""
        return {
            (point.config_label, point.network): self.result_for(point)
            for point in self.points
        }

    @property
    def summary_line(self) -> str:
        line = (
            f"campaign {self.spec.name}: total={self.total} "
            f"cached={self.cached} evaluated={self.evaluated} "
            f"store={self.store_path}"
        )
        if self.persist_failures:
            line += f" (WARNING: {self.persist_failures} results not persisted)"
        return line


def resolve_jobs(jobs: int) -> int:
    """``0`` means one worker per available CPU."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs or os.cpu_count() or 1


def drive_points(
    points,
    run,
    store,
    *,
    jobs: int,
    worker: Callable,
    cached_result: Callable,
    make_record: Callable,
    decode_result: Callable,
    force: bool = False,
    chunksize: int | None = None,
    progress: ProgressFn | None = None,
) -> None:
    """Shared campaign driver: cache scan, pool fan-out, store commits.

    Used by both the analytical grid (:func:`run_campaign`) and the
    sim-validation campaign (:mod:`repro.dse.simcampaign`) so resume and
    persistence semantics cannot diverge.  Parameterized by:

    - ``worker(point) -> (key, result_dict, elapsed_s)`` -- pool task;
    - ``cached_result(store, key)`` -- decoded stored value or ``None``;
    - ``make_record(point, result_dict, elapsed_s)`` -- store record;
    - ``decode_result(result_dict)`` -- worker payload to stored value.

    ``run`` accumulates ``results``/``cached``/``evaluated``/
    ``persist_failures`` in place.  The parent process owns all store
    writes; workers only compute.
    """
    jobs = resolve_jobs(jobs)
    by_key = {point.key(): point for point in points}

    pending = []
    done = 0
    for point in points:
        result = None if force else cached_result(store, point.key())
        if result is not None:
            run.results[point.key()] = result
            run.cached += 1
            done += 1
            if progress is not None:
                progress(done, run.total, point.label,
                         cached=True, elapsed_s=None)
        else:
            pending.append(point)

    store_down = False

    def commit(key: str, result: dict[str, Any], elapsed: float) -> None:
        nonlocal done, store_down
        point = by_key[key]
        if store_down:
            run.persist_failures += 1
        else:
            try:
                store.put(key, make_record(point, result, elapsed))
            except OSError:
                # An unwritable store costs persistence, not the run.
                store_down = True
                run.persist_failures += 1
        run.results[key] = decode_result(result)
        run.evaluated += 1
        done += 1
        if progress is not None:
            progress(done, run.total, point.label,
                     cached=False, elapsed_s=elapsed)

    if jobs <= 1 or len(pending) <= 1:
        for point in pending:
            commit(*worker(point))
    elif pending:
        if chunksize is None:
            chunksize = max(1, len(pending) // (jobs * 4))
        workers = min(jobs, len(pending))
        with multiprocessing.Pool(processes=workers) as pool:
            for key, result, elapsed in pool.imap_unordered(
                    worker, pending, chunksize=chunksize):
                commit(key, result, elapsed)


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | None = None,
    *,
    jobs: int = 1,
    chunksize: int | None = None,
    force: bool = False,
    progress: ProgressFn | None = None,
) -> CampaignRun:
    """Run (or resume) a campaign; returns the full result grid.

    Points whose key already exists in ``store`` are served from disk
    unless ``force`` re-evaluates them.  ``jobs > 1`` evaluates the
    pending points on a process pool; ``jobs=0`` uses every CPU.
    """
    spec.validate()
    if store is None:
        store = ResultStore()
    points = spec.points()
    run = CampaignRun(spec=spec, store_path=store.path, points=points,
                      total=len(points))
    drive_points(
        points, run, store,
        jobs=jobs,
        worker=_worker,
        cached_result=lambda st, key: st.evaluation(key),
        make_record=make_record,
        decode_result=evaluation_from_dict,
        force=force,
        chunksize=chunksize,
        progress=progress,
    )
    return run
