"""Sim-backed validation campaigns: sweep simulator configs in parallel.

The second campaign axis of the DSE engine.  Where :mod:`repro.dse.spec`
grids sweep evaluation *requests* (workload x accelerator x backend), a
sim campaign sweeps the *structural simulator* configuration -- group
size, kernel/spatial unrolls, datapath backend -- and runs the Section
V-B validation suite (:mod:`repro.experiments.validation_sim_vs_model`)
at every point, recording per-layer simulated/analytic cycles and the
model deviation.  Before the vectorized datapath this was impractical:
one reference-backend suite pass costs more than an entire vectorized
campaign.

Results persist through the same :class:`repro.dse.store.ResultStore` +
:func:`repro.dse.executor.drive_points` machinery as evaluation grids
(shared :class:`~repro.dse.executor.CampaignRun`, shared record
assembly), namespaced by a *validation-suite* fingerprint so editing
the datapath invalidates stale sim records automatically.

CLI: ``python -m repro.dse sim --group-sizes 4,8 --oxus 8,16 --jobs 4``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.dse.executor import CampaignRun, drive_points
from repro.dse.records import RECORD_VERSION, make_record
from repro.dse.retry import RetryPolicy
from repro.dse.store import ResultStore
from repro.eval.request import config_hash
from repro.experiments import validation_sim_vs_model
from repro.sim.npu import BACKENDS

#: Bump when the meaning of a sim point's fields changes.
SIM_SPEC_VERSION = 1

#: Discriminator stored in every sim point/record.
SIM_KIND = "sim-validation"

#: Kept as an alias: sim campaigns share the generic run object now.
SimCampaignRun = CampaignRun


@lru_cache(maxsize=1)
def sim_code_fingerprint() -> str:
    """Digest of the simulator + validation-suite source.

    The analogue of :func:`repro.eval.fingerprints.code_fingerprint`
    for sim campaigns: records are only valid for the datapath and
    suite that produced them.
    """
    import repro.sim

    digest = hashlib.sha256()
    root = Path(repro.sim.__file__).parent
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    digest.update(Path(validation_sim_vs_model.__file__).read_bytes())
    return "sim-" + digest.hexdigest()[:12]


def sim_store(root: str | Path | None = None) -> ResultStore:
    """A result store namespaced by the simulator fingerprint."""
    return ResultStore(root, namespace=sim_code_fingerprint())


@dataclass(frozen=True)
class SimPoint:
    """One simulator configuration to validate."""

    group_size: int = 8
    ku: int = 32
    oxu: int = 16
    backend: str = "vectorized"

    def validate(self) -> None:
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        if self.ku < 1:
            raise ValueError(f"ku must be >= 1, got {self.ku}")
        if self.oxu < 1:
            raise ValueError(f"oxu must be >= 1, got {self.oxu}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; one of {BACKENDS}")

    @property
    def label(self) -> str:
        return (f"sim[G={self.group_size},Ku={self.ku},OXu={self.oxu},"
                f"{self.backend}]")

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SIM_SPEC_VERSION,
            "kind": SIM_KIND,
            "group_size": self.group_size,
            "ku": self.ku,
            "oxu": self.oxu,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimPoint":
        return cls(
            group_size=data["group_size"],
            ku=data["ku"],
            oxu=data["oxu"],
            backend=data.get("backend", "vectorized"),
        )

    def key(self) -> str:
        """Stable result-store key for this configuration."""
        return config_hash(self.to_dict())

    def evaluate(self) -> dict[str, Any]:
        """Run the validation suite at this configuration."""
        self.validate()
        rows = validation_sim_vs_model.run(
            group_size=self.group_size, ku=self.ku, oxu=self.oxu,
            backend=self.backend)
        return {
            "rows": rows,
            "layers": len(rows),
            "max_deviation": max(r["deviation"] for r in rows),
            "total_simulated_cycles": sum(
                r["simulated_cycles"] for r in rows),
        }


@dataclass(frozen=True)
class SimCampaignSpec:
    """Cross product of simulator-configuration axes."""

    name: str
    group_sizes: tuple[int, ...] = (8,)
    kus: tuple[int, ...] = (32,)
    oxus: tuple[int, ...] = (16,)
    backends: tuple[str, ...] = ("vectorized",)

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_sizes", tuple(self.group_sizes))
        object.__setattr__(self, "kus", tuple(self.kus))
        object.__setattr__(self, "oxus", tuple(self.oxus))
        object.__setattr__(self, "backends", tuple(self.backends))

    def validate(self) -> None:
        for axis in ("group_sizes", "kus", "oxus", "backends"):
            values = getattr(self, axis)
            if not values:
                raise ValueError(f"sim campaign needs at least one {axis}")
            if len(set(values)) != len(values):
                raise ValueError(f"duplicate values in {axis}: {values}")

    def points(self) -> list[SimPoint]:
        self.validate()
        points = [
            SimPoint(group_size=g, ku=ku, oxu=oxu, backend=backend)
            for backend in self.backends
            for g in self.group_sizes
            for ku in self.kus
            for oxu in self.oxus
        ]
        for point in points:
            point.validate()
        return points


def stored_sim_result(store: ResultStore, key: str) -> dict[str, Any] | None:
    """The persisted suite result for ``key``, if layout-compatible."""
    record = store.get(key)
    if record is None or record.get("version") != RECORD_VERSION:
        return None
    if record.get("point", {}).get("kind") != SIM_KIND:
        return None
    return dict(record["result"])


def _sim_worker(point: SimPoint) -> tuple[str, dict[str, Any], float]:
    start = time.perf_counter()
    result = point.evaluate()
    return point.key(), result, time.perf_counter() - start


def run_sim_campaign(
    spec: SimCampaignSpec,
    store: ResultStore | None = None,
    *,
    jobs: int = 1,
    force: bool = False,
    progress: Any = None,
    policy: RetryPolicy | None = None,
) -> "CampaignRun[SimPoint, dict[str, Any]]":
    """Run (or resume) a sim-validation campaign over a process pool.

    Shares the :func:`repro.dse.executor.drive_points` driver and the
    :class:`~repro.dse.executor.CampaignRun` result object with the
    evaluation grids: cached points are served from the store, pending
    points fan out over ``jobs`` workers (``0`` = all CPUs), the parent
    process owns all store writes, and ``policy`` governs retries,
    per-point timeouts, and poison quarantine exactly as for
    :func:`~repro.dse.executor.run_campaign`.
    """
    spec.validate()
    if store is None:
        store = sim_store()
    points = spec.points()
    run: CampaignRun[SimPoint, dict[str, Any]] = CampaignRun(
        spec=spec, store_path=store.path, points=points, total=len(points))
    drive_points(
        points, run,
        jobs=jobs,
        worker=_sim_worker,
        cached_result=lambda point: stored_sim_result(store, point.key()),
        make_point_record=lambda point, payload, elapsed: make_record(
            point, payload, elapsed, fingerprint=sim_code_fingerprint()),
        decode_result=lambda payload: payload,
        store_for=lambda point: store,
        force=force,
        chunksize=1,
        progress=progress,
        policy=policy,
    )
    return run


def sim_summary_rows(
        run: "CampaignRun[SimPoint, dict[str, Any]]") -> list[Sequence[Any]]:
    """Table rows summarizing a sim campaign (one row per point).

    Points whose suite run raised (``run.failed``) report ``FAILED``
    instead of metrics, so a poisoned configuration cannot hide the
    rest of the campaign's results.
    """
    rows: list[Sequence[Any]] = []
    for point in run.points:
        error = run.failure_for(point)
        if error is not None:
            rows.append([point.label, "-", "-", f"FAILED: {error}"])
            continue
        result = run.result_for(point)
        rows.append([
            point.label,
            result["layers"],
            f"{result['total_simulated_cycles']:,}",
            f"{100 * result['max_deviation']:.2f}%",
        ])
    return rows


def sim_summary_data(
        run: "CampaignRun[SimPoint, dict[str, Any]]") -> list[dict[str, Any]]:
    """JSON-able summary (one entry per point), for ``--format json``."""
    entries = []
    for point in run.points:
        error = run.failure_for(point)
        if error is not None:
            entries.append({
                "point": point.to_dict(),
                "label": point.label,
                "error": error,
                "layers": None,
                "total_simulated_cycles": None,
                "max_deviation": None,
            })
            continue
        result = run.result_for(point)
        entries.append({
            "point": point.to_dict(),
            "label": point.label,
            "error": None,
            "layers": result["layers"],
            "total_simulated_cycles": result["total_simulated_cycles"],
            "max_deviation": result["max_deviation"],
        })
    return entries
