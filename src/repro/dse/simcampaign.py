"""Sim-backed validation campaigns: sweep simulator configs in parallel.

The second campaign axis of the DSE engine.  Where :mod:`repro.dse.spec`
grids sweep the *analytical model* over accelerators x networks, a sim
campaign sweeps the *structural simulator* configuration -- group size,
kernel/spatial unrolls, datapath backend -- and runs the Section V-B
validation suite (:mod:`repro.experiments.validation_sim_vs_model`) at
every point, recording per-layer simulated/analytic cycles and the
model deviation.  Before the vectorized datapath this was impractical:
one reference-backend suite pass costs more than an entire vectorized
campaign.

Results persist in the same :class:`repro.dse.store.ResultStore`
machinery, namespaced by a *simulator* code fingerprint (the store's
default fingerprint tracks the analytical model, not :mod:`repro.sim`),
so editing the datapath invalidates stale sim records automatically.

CLI: ``python -m repro.dse sim --group-sizes 4,8 --oxus 8,16 --jobs 4``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.dse.spec import config_hash
from repro.dse.store import ResultStore
from repro.experiments import validation_sim_vs_model
from repro.sim.npu import BACKENDS

#: Bump when the meaning of a sim point's fields changes.
SIM_SPEC_VERSION = 1

#: Record layout version for sim-validation store entries.
SIM_RECORD_VERSION = 1

#: Discriminator stored in every sim point/record.
SIM_KIND = "sim-validation"


@lru_cache(maxsize=1)
def sim_code_fingerprint() -> str:
    """Digest of the simulator + validation-suite source.

    The analogue of :func:`repro.dse.spec.code_fingerprint` for sim
    campaigns: records are only valid for the datapath and suite that
    produced them.
    """
    import repro.sim

    digest = hashlib.sha256()
    root = Path(repro.sim.__file__).parent
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    digest.update(Path(validation_sim_vs_model.__file__).read_bytes())
    return "sim-" + digest.hexdigest()[:12]


def sim_store(root: str | Path | None = None) -> ResultStore:
    """A result store namespaced by the simulator fingerprint."""
    return ResultStore(root, namespace=sim_code_fingerprint())


@dataclass(frozen=True)
class SimPoint:
    """One simulator configuration to validate."""

    group_size: int = 8
    ku: int = 32
    oxu: int = 16
    backend: str = "vectorized"

    def validate(self) -> None:
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        if self.ku < 1:
            raise ValueError(f"ku must be >= 1, got {self.ku}")
        if self.oxu < 1:
            raise ValueError(f"oxu must be >= 1, got {self.oxu}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; one of {BACKENDS}")

    @property
    def label(self) -> str:
        return (f"sim[G={self.group_size},Ku={self.ku},OXu={self.oxu},"
                f"{self.backend}]")

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SIM_SPEC_VERSION,
            "kind": SIM_KIND,
            "group_size": self.group_size,
            "ku": self.ku,
            "oxu": self.oxu,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimPoint":
        return cls(
            group_size=data["group_size"],
            ku=data["ku"],
            oxu=data["oxu"],
            backend=data.get("backend", "vectorized"),
        )

    def key(self) -> str:
        """Stable result-store key for this configuration."""
        return config_hash(self.to_dict())

    def evaluate(self) -> dict[str, Any]:
        """Run the validation suite at this configuration."""
        self.validate()
        rows = validation_sim_vs_model.run(
            group_size=self.group_size, ku=self.ku, oxu=self.oxu,
            backend=self.backend)
        return {
            "rows": rows,
            "layers": len(rows),
            "max_deviation": max(r["deviation"] for r in rows),
            "total_simulated_cycles": sum(
                r["simulated_cycles"] for r in rows),
        }


@dataclass(frozen=True)
class SimCampaignSpec:
    """Cross product of simulator-configuration axes."""

    name: str
    group_sizes: tuple[int, ...] = (8,)
    kus: tuple[int, ...] = (32,)
    oxus: tuple[int, ...] = (16,)
    backends: tuple[str, ...] = ("vectorized",)

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_sizes", tuple(self.group_sizes))
        object.__setattr__(self, "kus", tuple(self.kus))
        object.__setattr__(self, "oxus", tuple(self.oxus))
        object.__setattr__(self, "backends", tuple(self.backends))

    def validate(self) -> None:
        for axis in ("group_sizes", "kus", "oxus", "backends"):
            values = getattr(self, axis)
            if not values:
                raise ValueError(f"sim campaign needs at least one {axis}")
            if len(set(values)) != len(values):
                raise ValueError(f"duplicate values in {axis}: {values}")

    def points(self) -> list[SimPoint]:
        self.validate()
        points = [
            SimPoint(group_size=g, ku=ku, oxu=oxu, backend=backend)
            for backend in self.backends
            for g in self.group_sizes
            for ku in self.kus
            for oxu in self.oxus
        ]
        for point in points:
            point.validate()
        return points


def make_sim_record(point: SimPoint, result: Mapping[str, Any],
                    elapsed_s: float | None = None) -> dict[str, Any]:
    return {
        "version": SIM_RECORD_VERSION,
        "key": point.key(),
        "point": point.to_dict(),
        "fingerprint": sim_code_fingerprint(),
        "created_at": time.time(),
        "elapsed_s": elapsed_s,
        "result": dict(result),
    }


def stored_sim_result(store: ResultStore, key: str) -> dict[str, Any] | None:
    """The persisted suite result for ``key``, if layout-compatible."""
    record = store.get(key)
    if record is None or record.get("version") != SIM_RECORD_VERSION:
        return None
    if record.get("point", {}).get("kind") != SIM_KIND:
        return None
    return record["result"]


@dataclass
class SimCampaignRun:
    """Outcome of one :func:`run_sim_campaign` invocation."""

    spec: SimCampaignSpec
    store_path: Path
    points: list[SimPoint]
    total: int = 0
    cached: int = 0
    evaluated: int = 0
    persist_failures: int = 0
    #: config-hash key -> suite result dict, all points.
    results: dict[str, dict[str, Any]] = field(default_factory=dict)

    def result_for(self, point: SimPoint) -> dict[str, Any]:
        return self.results[point.key()]

    @property
    def summary_line(self) -> str:
        line = (
            f"sim campaign {self.spec.name}: total={self.total} "
            f"cached={self.cached} evaluated={self.evaluated} "
            f"store={self.store_path}"
        )
        if self.persist_failures:
            line += f" (WARNING: {self.persist_failures} results not persisted)"
        return line


def _sim_worker(point: SimPoint) -> tuple[str, dict[str, Any], float]:
    start = time.perf_counter()
    result = point.evaluate()
    return point.key(), result, time.perf_counter() - start


def run_sim_campaign(
    spec: SimCampaignSpec,
    store: ResultStore | None = None,
    *,
    jobs: int = 1,
    force: bool = False,
    progress=None,
) -> SimCampaignRun:
    """Run (or resume) a sim-validation campaign over a process pool.

    Shares the :func:`repro.dse.executor.drive_points` driver with the
    analytical grid: cached points are served from the store, pending
    points fan out over ``jobs`` workers (``0`` = all CPUs), and the
    parent process owns all store writes.
    """
    from repro.dse.executor import drive_points

    spec.validate()
    if store is None:
        store = sim_store()
    points = spec.points()
    run = SimCampaignRun(spec=spec, store_path=store.path, points=points,
                         total=len(points))
    drive_points(
        points, run, store,
        jobs=jobs,
        worker=_sim_worker,
        cached_result=stored_sim_result,
        make_record=make_sim_record,
        decode_result=lambda result: result,
        force=force,
        chunksize=1,
        progress=progress,
    )
    return run


def sim_summary_rows(run: SimCampaignRun) -> list[Sequence[Any]]:
    """Table rows summarizing a sim campaign (one row per point)."""
    rows = []
    for point in run.points:
        result = run.result_for(point)
        rows.append([
            point.label,
            result["layers"],
            f"{result['total_simulated_cycles']:,}",
            f"{100 * result['max_deviation']:.2f}%",
        ])
    return rows
