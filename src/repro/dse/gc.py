"""Store lifecycle: compact live namespaces, evict stale ones.

A store root accumulates one namespace directory per source
fingerprint that ever ran a campaign.  Editing the analytical model or
the simulator changes the fingerprint, so old namespaces silently stop
being read -- they are pure disk weight.  :func:`collect_garbage`
walks a root, compacts the namespaces the current source tree still
produces (dropping superseded ``--force`` duplicates and torn lines),
and evicts stale namespaces by age and an optional total-size budget.
Live namespaces are never evicted, whatever the budget.

CLI: ``python -m repro.dse gc [--dry-run] [--max-age-days D]
[--max-bytes N]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.dse.store import (
    CORRUPT_PREFIX,
    LOCK_FILENAME,
    ResultStore,
    default_store_root,
    encode_record,
    scan_jsonl,
)

#: Default age after which a stale namespace is evicted.
DEFAULT_MAX_AGE_DAYS = 30.0


def live_namespaces() -> frozenset[str]:
    """Every namespace the current source tree can still write to.

    The registered evaluation backends' fingerprints plus the
    sim-validation campaign's suite fingerprint and the guided
    co-search's probe namespace.
    """
    from repro.dse.simcampaign import sim_code_fingerprint
    from repro.eval.fingerprints import live_fingerprints, opt_fingerprint

    return live_fingerprints() | frozenset(
        (sim_code_fingerprint(), opt_fingerprint()))


@dataclass(frozen=True)
class NamespaceReport:
    """What the GC found -- and did -- in one namespace directory."""

    namespace: str
    live: bool
    records: int          #: raw JSONL lines (incl. superseded and torn)
    live_records: int     #: last-wins records
    size_bytes: int       #: results.jsonl size before the pass
    age_days: float       #: since the last append
    action: str           #: ``"keep"`` | ``"compact"`` | ``"evict"``
    reclaimed_bytes: int  #: what the action frees (0 for ``"keep"``)
    corrupt_lines: int = 0  #: torn/foreign lines found in results.jsonl

    def to_dict(self) -> dict[str, Any]:
        return {
            "namespace": self.namespace,
            "live": self.live,
            "records": self.records,
            "live_records": self.live_records,
            "size_bytes": self.size_bytes,
            "age_days": self.age_days,
            "action": self.action,
            "reclaimed_bytes": self.reclaimed_bytes,
            "corrupt_lines": self.corrupt_lines,
        }


@dataclass(frozen=True)
class GcReport:
    """Outcome of one :func:`collect_garbage` pass over a store root."""

    root: Path
    dry_run: bool
    namespaces: tuple[NamespaceReport, ...]

    @property
    def reclaimed_bytes(self) -> int:
        return sum(ns.reclaimed_bytes for ns in self.namespaces)

    @property
    def evicted(self) -> int:
        return sum(1 for ns in self.namespaces if ns.action == "evict")

    @property
    def compacted(self) -> int:
        return sum(1 for ns in self.namespaces if ns.action == "compact")

    def to_dict(self) -> dict[str, Any]:
        return {
            "root": str(self.root),
            "dry_run": self.dry_run,
            "namespaces": [ns.to_dict() for ns in self.namespaces],
            "evicted": self.evicted,
            "compacted": self.compacted,
            "reclaimed_bytes": self.reclaimed_bytes,
        }


def _compacted_size(records: dict[str, dict[str, Any]]) -> int:
    """Exact byte size of the file :meth:`ResultStore.compact` writes."""
    return sum(len(encode_record(record)) for record in records.values())


def _is_empty_namespace(ns_dir: Path) -> bool:
    """True when ``ns_dir`` holds nothing but store bookkeeping files.

    The shape a zero-live-record :meth:`ResultStore.compact` leaves
    behind: the directory, its lockfile (compact always creates one),
    possibly an abandoned rewrite temp, and possibly corrupt-line
    quarantine sidecars -- no ``results.jsonl``.  The lockfile is
    required: a merely empty directory under the root could belong to
    anything and is not ours to evict.
    """
    allowed = {LOCK_FILENAME, "results.jsonl", "results.jsonl.tmp"}
    names = {child.name for child in ns_dir.iterdir()}
    extras = {name for name in names
              if name.startswith(CORRUPT_PREFIX) and name.endswith(".jsonl")}
    return LOCK_FILENAME in names and names - extras <= allowed


def collect_garbage(
    root: str | Path | None = None,
    *,
    max_age_days: float = DEFAULT_MAX_AGE_DAYS,
    max_bytes: int | None = None,
    dry_run: bool = False,
    now: float | None = None,
) -> GcReport:
    """One GC pass over every namespace under ``root``.

    Policy, in order:

    1. live namespaces (producible by the current source) are compacted
       when that reclaims bytes, otherwise kept -- never evicted;
    2. stale namespaces older than ``max_age_days`` (since their last
       append) are evicted;
    3. if the root would still exceed ``max_bytes``, the remaining
       stale namespaces are evicted oldest-first until it fits.

    ``dry_run`` computes the identical report without touching disk.
    ``now`` pins the clock for tests.
    """
    if max_age_days < 0:
        raise ValueError(f"max_age_days must be >= 0, got {max_age_days}")
    if max_bytes is not None and max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    root = Path(root) if root is not None else default_store_root()
    clock = time.time() if now is None else now
    live = live_namespaces()

    scanned: list[dict[str, Any]] = []
    if root.is_dir():
        for ns_dir in sorted(root.iterdir()):
            path = ns_dir / "results.jsonl"
            if not ns_dir.is_dir():
                continue
            if not path.exists():
                # No results file -- only the husk a zero-live-record
                # compact() leaves behind (the dir and its lockfile)
                # counts as a namespace; anything else under the root
                # is not ours to evict.
                if not _is_empty_namespace(ns_dir):
                    continue
                stat = ns_dir.stat()
                scanned.append({
                    "namespace": ns_dir.name,
                    "dir": ns_dir,
                    "live": ns_dir.name in live,
                    "records": 0,
                    "live_records": 0,
                    "size_bytes": 0,
                    "age_days": max(
                        0.0, (clock - stat.st_mtime) / 86400.0),
                    "compacted_size": 0,
                    "corrupt_lines": 0,
                })
                continue
            stat = path.stat()
            records, raw_lines, corrupt = scan_jsonl(path)
            scanned.append({
                "namespace": ns_dir.name,
                "dir": ns_dir,
                "live": ns_dir.name in live,
                "records": raw_lines,
                "live_records": len(records),
                "size_bytes": stat.st_size,
                "age_days": max(0.0, (clock - stat.st_mtime) / 86400.0),
                "compacted_size": _compacted_size(records),
                "corrupt_lines": len(corrupt),
            })

    # Pass 1: age policy (plus unconditional compaction of live dirs).
    for entry in scanned:
        if entry["live"]:
            reclaim = entry["size_bytes"] - entry["compacted_size"]
            entry["action"] = "compact" if reclaim > 0 else "keep"
            entry["reclaimed_bytes"] = max(0, reclaim)
        elif entry["age_days"] > max_age_days:
            entry["action"] = "evict"
            entry["reclaimed_bytes"] = entry["size_bytes"]
        else:
            entry["action"] = "keep"
            entry["reclaimed_bytes"] = 0

    # Pass 2: size budget over whatever survives pass 1, oldest first.
    if max_bytes is not None:
        def surviving_size(entry: dict[str, Any]) -> int:
            if entry["action"] == "evict":
                return 0
            if entry["action"] == "compact":
                return entry["compacted_size"]
            return entry["size_bytes"]

        total = sum(surviving_size(entry) for entry in scanned)
        for entry in sorted(scanned, key=lambda e: -e["age_days"]):
            if total <= max_bytes:
                break
            if entry["live"] or entry["action"] == "evict":
                continue
            total -= entry["size_bytes"]
            entry["action"] = "evict"
            entry["reclaimed_bytes"] = entry["size_bytes"]

    if not dry_run:
        for entry in scanned:
            if entry["action"] == "evict":
                # destroy() takes the namespace lock, so an in-flight
                # writer (e.g. a campaign still running on the old
                # checkout that produced this fingerprint) finishes its
                # append before the directory goes.
                ResultStore(root, namespace=entry["namespace"]).destroy()
            elif entry["action"] == "compact":
                stats = ResultStore(
                    root, namespace=entry["namespace"]).compact()
                # Trust the rewrite over the estimate (another process
                # may have appended between the scan and the compact).
                entry["reclaimed_bytes"] = stats.reclaimed_bytes
                entry["live_records"] = stats.live_records

    return GcReport(
        root=root,
        dry_run=dry_run,
        namespaces=tuple(
            NamespaceReport(
                namespace=entry["namespace"],
                live=entry["live"],
                records=entry["records"],
                live_records=entry["live_records"],
                size_bytes=entry["size_bytes"],
                age_days=entry["age_days"],
                action=entry["action"],
                reclaimed_bytes=entry["reclaimed_bytes"],
                corrupt_lines=entry["corrupt_lines"],
            )
            for entry in scanned),
    )


def gc_table(report: GcReport) -> str:
    """Human-readable table for ``python -m repro.dse gc``."""
    from repro.utils.tables import format_table

    rows = [
        [
            ns.namespace,
            "yes" if ns.live else "no",
            ns.records,
            ns.live_records,
            ns.corrupt_lines,
            ns.size_bytes,
            f"{ns.age_days:.1f}",
            ns.action,
            ns.reclaimed_bytes,
        ]
        for ns in report.namespaces
    ]
    mode = "dry run -- nothing touched" if report.dry_run else "applied"
    total_corrupt = sum(ns.corrupt_lines for ns in report.namespaces)
    damage = (f", {total_corrupt} corrupt lines quarantined"
              if total_corrupt else "")
    return format_table(
        ["namespace", "live", "lines", "records", "corrupt", "bytes",
         "age (d)", "action", "reclaims"],
        rows,
        title=(f"Store GC {report.root} ({mode}): "
               f"{report.compacted} compacted, {report.evicted} evicted, "
               f"{report.reclaimed_bytes} bytes reclaimed{damage}"),
    )
