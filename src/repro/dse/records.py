"""JSON (de)serialization of evaluation results.

The result store persists canonical :class:`repro.eval.EvalResult`
objects (one schema for every backend -- analytical model and
simulator alike).  Every numeric field is a Python float/int, and
``json`` round-trips floats exactly (shortest-repr), so a deserialized
result is bit-identical to the freshly computed one -- the property
the harness-equivalence tests pin.

The legacy ``evaluation_to_dict`` / ``evaluation_from_dict`` helpers
remain as thin converters between the canonical schema and the old
:class:`repro.accelerators.base.NetworkEvaluation` object.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Protocol

from repro.accelerators.base import NetworkEvaluation
from repro.eval.fingerprints import code_fingerprint
from repro.eval.result import (
    EvalResult,
    from_network_evaluation,
    to_network_evaluation,
)

#: Bump when the record layout changes.
RECORD_VERSION = 2


class _Keyed(Protocol):
    """What a record needs from its evaluation point / request."""

    def key(self) -> str: ...

    def to_dict(self) -> dict[str, Any]: ...


def result_to_dict(result: EvalResult) -> dict[str, Any]:
    return result.to_dict()


def result_from_dict(data: Mapping[str, Any]) -> EvalResult:
    return EvalResult.from_dict(data)


def evaluation_to_dict(evaluation: NetworkEvaluation) -> dict[str, Any]:
    """Legacy-object convenience: canonical dict of an old evaluation."""
    return from_network_evaluation(evaluation).to_dict()


def evaluation_from_dict(data: Mapping[str, Any]) -> NetworkEvaluation:
    """Reconstruct the legacy object from a canonical result dict."""
    return to_network_evaluation(EvalResult.from_dict(data))


def make_record(
    point: _Keyed,
    result: EvalResult | Mapping[str, Any],
    elapsed_s: float | None = None,
    fingerprint: str | None = None,
    attempts: int | None = None,
    last_error: str | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one store record for ``point``'s result.

    ``fingerprint`` defaults to the analytical-model digest; backends
    with their own source fingerprint (the simulator) pass theirs.
    ``attempts``/``last_error`` record a bumpy evaluation history (the
    executor's retry path sets them when a point needed more than one
    attempt); omitted, the keys stay out of the record so pre-existing
    stores remain byte-compatible.  ``extra`` carries producer
    provenance (the guided optimizer sets ``origin``/``round`` so mixed
    guided+exhaustive stores stay auditable); like the retry keys it is
    omitted entirely when not given.
    """
    payload = (result.to_dict() if isinstance(result, EvalResult)
               else dict(result))
    record: dict[str, Any] = {
        "version": RECORD_VERSION,
        "key": point.key(),
        "point": point.to_dict(),
        "fingerprint": fingerprint or code_fingerprint(),
        "created_at": time.time(),
        "elapsed_s": elapsed_s,
        "result": payload,
    }
    if attempts is not None:
        record["attempts"] = attempts
        record["last_error"] = last_error
    if extra is not None:
        record["extra"] = dict(extra)
    return record
