"""JSON (de)serialization of evaluation results.

The result store persists :class:`repro.accelerators.base.NetworkEvaluation`
objects as JSON records.  Every numeric field is a Python float/int, and
``json`` round-trips floats exactly (shortest-repr), so a deserialized
evaluation is bit-identical to the freshly computed one -- the property
the harness-equivalence tests pin.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import Any, Mapping

from repro.accelerators.base import LayerEvaluation, NetworkEvaluation
from repro.dse.spec import EvalPoint, code_fingerprint
from repro.model.energy import EnergyBreakdown
from repro.model.latency import LatencyBreakdown
from repro.model.zigzag import ActivityCounts

#: Bump when the record layout changes.
RECORD_VERSION = 1


def evaluation_to_dict(evaluation: NetworkEvaluation) -> dict[str, Any]:
    return {
        "accelerator": evaluation.accelerator,
        "network": evaluation.network,
        "layers": [
            {
                "layer": layer.layer,
                "su_name": layer.su_name,
                "counts": asdict(layer.counts),
                "latency": asdict(layer.latency),
                "energy": asdict(layer.energy),
            }
            for layer in evaluation.layers
        ],
    }


def evaluation_from_dict(data: Mapping[str, Any]) -> NetworkEvaluation:
    layers = [
        LayerEvaluation(
            layer=entry["layer"],
            su_name=entry["su_name"],
            counts=ActivityCounts(**entry["counts"]),
            latency=LatencyBreakdown(**entry["latency"]),
            energy=EnergyBreakdown(**entry["energy"]),
        )
        for entry in data["layers"]
    ]
    return NetworkEvaluation(
        accelerator=data["accelerator"],
        network=data["network"],
        layers=layers,
    )


def make_record(
    point: EvalPoint,
    evaluation: NetworkEvaluation | Mapping[str, Any],
    elapsed_s: float | None = None,
) -> dict[str, Any]:
    """Assemble one store record for ``point``'s result."""
    result = (
        evaluation_to_dict(evaluation)
        if isinstance(evaluation, NetworkEvaluation)
        else dict(evaluation)
    )
    return {
        "version": RECORD_VERSION,
        "key": point.key(),
        "point": point.to_dict(),
        "fingerprint": code_fingerprint(),
        "created_at": time.time(),
        "elapsed_s": elapsed_s,
        "result": result,
    }
