"""Design-space exploration engine.

Declarative evaluation campaigns (:class:`CampaignSpec`) over the
accelerator x network x variant x backend grid (evaluated through
:mod:`repro.eval`), executed in parallel over a process pool
(:func:`run_campaign`) with canonical :class:`repro.eval.EvalResult`
records persisted in a :class:`ResultStore` keyed by stable config
hashes -- so re-runs are incremental and grids are shared across
processes and sessions.

A second campaign axis sweeps the *structural simulator* configuration
through the Section V-B validation suite (:mod:`repro.dse.simcampaign`),
made practical by the vectorized datapath backend.

Campaigns shard across processes/hosts deterministically
(:class:`Shard`, ``run --shard i/N``), shard stores fold back together
with :meth:`ResultStore.merge`, and :func:`repro.dse.gc.collect_garbage`
compacts live store namespaces and evicts stale ones.

Execution is self-healing (:class:`RetryPolicy` + the watchdog pool in
:mod:`repro.dse.pool`): worker exceptions become per-point failure
records instead of aborting the pool, transient failures retry with
exponential backoff, hung or dead workers are killed and respawned,
poison points are quarantined, and SIGINT/SIGTERM stop a run
gracefully with completed results committed.  The machinery is
chaos-tested through deterministic fault injection (:mod:`repro.faults`,
``run --inject``).

CLI: ``python -m repro.dse {init,points,run,summary,pareto,merge,gc,sim}``.
"""

from repro.dse.executor import (
    CampaignRun,
    PointFailure,
    evaluate_point,
    run_campaign,
)
from repro.dse.gc import collect_garbage, live_namespaces
from repro.dse.pool import WatchdogPool
from repro.dse.retry import RetryPolicy
from repro.dse.simcampaign import (
    SimCampaignRun,
    SimCampaignSpec,
    SimPoint,
    run_sim_campaign,
    sim_code_fingerprint,
    sim_store,
)
from repro.dse.records import (
    evaluation_from_dict,
    evaluation_to_dict,
    make_record,
    result_from_dict,
    result_to_dict,
)
from repro.dse.spec import (
    CampaignSpec,
    EvalPoint,
    Shard,
    code_fingerprint,
    config_hash,
    paper_grid,
)
from repro.dse.store import (
    CompactStats,
    ResultStore,
    ScanResult,
    default_store_root,
)
from repro.dse.summary import (
    METRICS,
    campaign_pareto,
    pareto_table,
    summary_table,
)

__all__ = [
    "METRICS",
    "CampaignRun",
    "CampaignSpec",
    "CompactStats",
    "EvalPoint",
    "PointFailure",
    "ResultStore",
    "RetryPolicy",
    "ScanResult",
    "Shard",
    "WatchdogPool",
    "SimCampaignRun",
    "SimCampaignSpec",
    "SimPoint",
    "campaign_pareto",
    "code_fingerprint",
    "collect_garbage",
    "config_hash",
    "default_store_root",
    "evaluate_point",
    "live_namespaces",
    "evaluation_from_dict",
    "evaluation_to_dict",
    "make_record",
    "paper_grid",
    "pareto_table",
    "result_from_dict",
    "result_to_dict",
    "run_campaign",
    "run_sim_campaign",
    "sim_code_fingerprint",
    "sim_store",
    "summary_table",
]
