"""Persistent on-disk result store (append-only JSONL).

Layout: ``<root>/<code-fingerprint>/results.jsonl`` -- one JSON record
per line, keyed by the evaluation point's config hash.  Namespacing by
:func:`repro.dse.spec.code_fingerprint` means editing the analytical
model silently starts a fresh namespace instead of serving stale
results, while re-runs under unchanged code are fully incremental.

Duplicate keys are legal (``--force`` re-evaluations append); the last
record wins on load.  A torn trailing line from an interrupted write is
skipped, so a crashed campaign resumes cleanly.  The intended write
discipline is single-writer: the campaign parent process appends while
pool workers only compute.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.accelerators.base import NetworkEvaluation
from repro.dse.records import (
    RECORD_VERSION,
    evaluation_from_dict,
    result_from_dict,
)
from repro.eval.fingerprints import code_fingerprint
from repro.eval.result import EvalResult

#: Environment variable overriding the default store root.
DEFAULT_ROOT_ENV = "REPRO_DSE_STORE"


def default_store_root() -> Path:
    """``$REPRO_DSE_STORE`` or ``~/.cache/repro-dse``."""
    override = os.environ.get(DEFAULT_ROOT_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-dse"


class ResultStore:
    """Keyed persistent storage for evaluation records."""

    def __init__(self, root: str | Path | None = None,
                 namespace: str | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.namespace = namespace or code_fingerprint()
        self.path = self.root / self.namespace / "results.jsonl"
        self._records: dict[str, dict[str, Any]] = {}
        self._loaded = False

    # -- loading ---------------------------------------------------------
    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from an interrupted campaign
                key = record.get("key")
                if key:
                    self._records[key] = record

    def refresh(self) -> None:
        """Re-read the backing file (e.g. after another process wrote)."""
        self._records.clear()
        self._loaded = False
        self._load()

    # -- mapping protocol ------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        self._load()
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        self._load()
        return key in self._records

    def __len__(self) -> int:
        self._load()
        return len(self._records)

    def keys(self) -> Iterator[str]:
        self._load()
        return iter(tuple(self._records))

    # -- writing ---------------------------------------------------------
    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Append one record and update the in-memory index.

        The line goes out as a single ``write()`` to an ``O_APPEND``
        descriptor, which local filesystems keep contiguous even if
        another process appends concurrently -- a stray second writer
        degrades to a duplicate/last-wins record instead of torn JSON.
        """
        self._load()
        record = {**record, "key": key}
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        self._records[key] = record

    def compact(self) -> int:
        """Rewrite the file without superseded duplicates; returns the
        number of live records."""
        self._load()
        if self._records:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".jsonl.tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                for record in self._records.values():
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            tmp.replace(self.path)
        return len(self._records)

    # -- convenience -----------------------------------------------------
    def result(self, key: str) -> EvalResult | None:
        """Deserialize the stored canonical result for ``key``.

        Records from an older layout (``version`` mismatch) count as
        misses, so a record-format change re-evaluates instead of
        feeding a stale dict to the deserializer.
        """
        record = self.get(key)
        if record is None or record.get("version") != RECORD_VERSION:
            return None
        payload = record.get("result")
        if not isinstance(payload, Mapping) or "workload" not in payload:
            return None  # e.g. a sim-validation suite record
        return result_from_dict(payload)

    def evaluation(self, key: str) -> NetworkEvaluation | None:
        """Legacy view of :meth:`result` (model-backed records only)."""
        record = self.get(key)
        if record is None or record.get("version") != RECORD_VERSION:
            return None
        payload = record.get("result")
        if not isinstance(payload, Mapping) or "workload" not in payload:
            return None  # e.g. a sim-validation suite record
        if payload.get("backend", "model") != "model":
            return None  # no analytical breakdown to reconstruct
        return evaluation_from_dict(payload)


class StoreRouter:
    """Routes each evaluation point to its backend's store namespace.

    Model-backed records live in the campaign's own store; every other
    backend gets a sibling namespace under the same root, keyed by the
    backend's source fingerprint -- so a mixed-backend campaign's
    executor, summaries, and CLI all agree on where records land.
    """

    def __init__(self, base: ResultStore) -> None:
        from repro.eval.request import MODEL_BACKEND

        self.base = base
        self._stores: dict[str, ResultStore] = {MODEL_BACKEND: base}

    def for_backend(self, backend: str) -> ResultStore:
        if backend not in self._stores:
            from repro.eval.registry import get_backend

            self._stores[backend] = ResultStore(
                self.base.root,
                namespace=get_backend(backend).fingerprint())
        return self._stores[backend]

    def for_point(self, point: Any) -> ResultStore:
        return self.for_backend(point.backend)

    def result(self, point: Any) -> EvalResult | None:
        return self.for_point(point).result(point.key())
