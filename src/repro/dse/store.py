"""Persistent on-disk result store (append-only JSONL).

Layout: ``<root>/<code-fingerprint>/results.jsonl`` -- one JSON record
per line, keyed by the evaluation point's config hash.  Namespacing by
:func:`repro.dse.spec.code_fingerprint` means editing the analytical
model silently starts a fresh namespace instead of serving stale
results, while re-runs under unchanged code are fully incremental.

Duplicate keys are legal (``--force`` re-evaluations append); the last
record wins on load.  A torn trailing line from an interrupted write is
skipped, so a crashed campaign resumes cleanly.  Writes are
multi-writer safe: every mutation (:meth:`ResultStore.put`,
:meth:`~ResultStore.compact`, :meth:`~ResultStore.merge`) takes an
advisory ``fcntl`` lock on a per-namespace lockfile, so N sharded
campaign processes may append to one namespace concurrently; readers
never lock (appends are atomic single writes and a torn trailing line
is tolerated).  :meth:`ResultStore.merge` folds another shard's store
-- or a ``results.jsonl`` copied from another host -- into this one,
last-wins by key and idempotent under re-merge.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, NamedTuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback: no locking
    fcntl = None  # type: ignore[assignment]

from repro import faults
from repro.accelerators.base import NetworkEvaluation
from repro.dse.records import (
    RECORD_VERSION,
    evaluation_from_dict,
    result_from_dict,
)
from repro.eval.fingerprints import code_fingerprint
from repro.eval.result import EvalResult
from repro.obs import counter, observe, trace

#: Environment variable overriding the default store root.
DEFAULT_ROOT_ENV = "REPRO_DSE_STORE"

#: Per-namespace lockfile serializing cross-process mutations.
LOCK_FILENAME = ".lock"

#: Quarantine sidecars written by :meth:`ResultStore.compact` for lines
#: that are not valid records (torn writes, foreign JSON).
CORRUPT_PREFIX = "corrupt-"


def default_store_root() -> Path:
    """``$REPRO_DSE_STORE`` or ``~/.cache/repro-dse``."""
    override = os.environ.get(DEFAULT_ROOT_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-dse"


class ScanResult(NamedTuple):
    """One pass over a ``results.jsonl``: records, bloat, and damage."""

    #: Last-wins ``key -> record`` map.
    records: dict[str, dict[str, Any]]
    #: Raw non-blank line count (superseded duplicates and corrupt
    #: lines included), so callers like the GC need not re-read the
    #: file to measure bloat.
    raw_lines: int
    #: Lines that are not valid records -- torn writes from crashed
    #: campaigns, foreign/non-dict JSON -- verbatim, for quarantine.
    corrupt: tuple[str, ...]


def scan_jsonl(path: Path) -> ScanResult:
    """One-pass parse of a ``results.jsonl``.

    A torn or otherwise corrupt line is skipped (and reported in
    ``corrupt``), never fatal, so a crashed campaign resumes cleanly;
    a missing file reads as empty.
    """
    records: dict[str, dict[str, Any]] = {}
    raw_lines = 0
    corrupt: list[str] = []
    if not path.exists():
        return ScanResult(records, raw_lines, ())
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw_lines += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                corrupt.append(line)  # torn write from a crashed run
                continue
            if not isinstance(record, dict):
                corrupt.append(line)  # valid JSON, not a record
                continue
            key = record.get("key")
            if key:
                records[key] = record
    return ScanResult(records, raw_lines, tuple(corrupt))


def load_jsonl_records(path: Path) -> dict[str, dict[str, Any]]:
    """The last-wins ``key -> record`` map of a ``results.jsonl``."""
    return scan_jsonl(path).records


def encode_record(record: Mapping[str, Any]) -> bytes:
    """The canonical on-disk line for one record (shared by ``put``,
    ``compact``, ``merge``, and the GC's dry-run size estimate)."""
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


class CompactStats(NamedTuple):
    """What a :meth:`ResultStore.compact` pass kept and reclaimed."""

    live_records: int
    reclaimed_bytes: int


class ResultStore:
    """Keyed persistent storage for evaluation records."""

    def __init__(self, root: str | Path | None = None,
                 namespace: str | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.namespace = namespace or code_fingerprint()
        self.path = self.root / self.namespace / "results.jsonl"
        self._records: dict[str, dict[str, Any]] = {}
        self._loaded = False

    # -- locking ---------------------------------------------------------
    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Advisory cross-process lock over this namespace's mutations.

        Readers never take it: appends land as atomic single writes and
        the loader tolerates a torn trailing line, so the lock only has
        to serialize writers (concurrent shard appends, ``compact``
        rewrites, ``merge`` folds).  On platforms without ``fcntl`` the
        store degrades to the old single-writer discipline.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        fd = os.open(self.path.parent / LOCK_FILENAME,
                     os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            # Lock *wait* (contention with other shard processes), not
            # the held duration; the campaign report splits them out.
            start = time.perf_counter()
            fcntl.flock(fd, fcntl.LOCK_EX)
            observe("store.lock_wait", time.perf_counter() - start,
                    namespace=self.namespace)
            yield
        finally:
            os.close(fd)  # closing the descriptor releases the lock

    # -- loading ---------------------------------------------------------
    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        with trace("store.load", namespace=self.namespace):
            scan = scan_jsonl(self.path)
            self._records.update(scan.records)
            if scan.corrupt:
                # Observable, not fatal: the summary/gc paths surface
                # the count so torn lines don't rot silently.
                counter("store.corrupt_lines", n=len(scan.corrupt),
                        namespace=self.namespace)

    def refresh(self) -> None:
        """Re-read the backing file (e.g. after another process wrote)."""
        self._records.clear()
        self._loaded = False
        self._load()

    # -- mapping protocol ------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        self._load()
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        self._load()
        return key in self._records

    def __len__(self) -> int:
        self._load()
        return len(self._records)

    def keys(self) -> Iterator[str]:
        self._load()
        return iter(tuple(self._records))

    # -- writing ---------------------------------------------------------
    def _append(self, lines: list[bytes]) -> None:
        """Append pre-serialized record lines as one atomic write.

        If the file ends mid-line (a torn write from a crashed
        campaign), the append starts on a fresh line -- otherwise the
        first new record would concatenate onto the torn fragment and
        be lost with it.
        """
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            data = b"".join(lines)
            size = os.fstat(fd).st_size
            if size:
                # lseek+read (not os.pread) keeps the probe portable to
                # platforms without fcntl; O_APPEND still sends the
                # write to end-of-file regardless of the read offset.
                os.lseek(fd, size - 1, os.SEEK_SET)
                if os.read(fd, 1) != b"\n":
                    data = b"\n" + data
            os.write(fd, data)
        finally:
            os.close(fd)

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Append one record and update the in-memory index.

        The line goes out as a single ``write()`` to an ``O_APPEND``
        descriptor under the namespace lock, so concurrent shard
        processes appending to one namespace interleave whole records
        -- a colliding key degrades to a duplicate/last-wins record
        instead of torn JSON.
        """
        self._load()
        record = {**record, "key": key}
        data = encode_record(record)
        if faults.enabled():
            # Chaos-testing hook: a `slow_io` fault stalls here, a
            # `torn_write` fault truncates the line mid-record exactly
            # like a writer crashing inside write() -- the record stays
            # in this process's memory but is lost on disk, so a resume
            # must re-evaluate it and compact() must quarantine the
            # fragment.
            if faults.store_write_fault(key) == "torn_write":
                data = data[:max(1, len(data) // 2)].rstrip(b"\n")
        with trace("store.put", namespace=self.namespace):
            with self._locked():
                self._append([data])
        self._records[key] = record

    def _quarantine(self, corrupt: tuple[str, ...]) -> None:
        """Move non-record lines into a ``corrupt-<ts>.jsonl`` sidecar.

        Called under the namespace lock (so the torn trailing line of
        an *in-flight* append can never be quarantined -- writers hold
        the same lock).  The fragments are preserved verbatim for
        post-mortems instead of silently discarded by the rewrite.
        """
        sidecar = self.path.parent / f"{CORRUPT_PREFIX}{int(time.time())}.jsonl"
        with sidecar.open("a", encoding="utf-8") as handle:
            for line in corrupt:
                handle.write(line + "\n")
        counter("store.corrupt_lines", n=len(corrupt),
                namespace=self.namespace, quarantined=True)

    def compact(self) -> CompactStats:
        """Rewrite the file without superseded duplicates.

        Runs under the namespace lock and re-reads the file inside it,
        so records appended by other processes survive the rewrite.
        Corrupt lines (torn writes, foreign JSON) are quarantined to a
        ``corrupt-<ts>.jsonl`` sidecar rather than silently dropped.
        When zero live records remain the stale file is unlinked (not
        left behind).  Returns the live-record count and the bytes
        reclaimed.
        """
        if not self.path.exists():
            # True no-op: don't create the namespace dir (and its
            # lockfile husk) just to discover there is nothing to do.
            self.refresh()
            return CompactStats(0, 0)
        with self._locked():
            scan = scan_jsonl(self.path)
            self._records.clear()
            self._records.update(scan.records)
            self._loaded = True
            if scan.corrupt:
                self._quarantine(scan.corrupt)
            before = self.path.stat().st_size if self.path.exists() else 0
            if not self._records:
                if self.path.exists():
                    self.path.unlink()
                return CompactStats(0, before)
            tmp = self.path.with_suffix(".jsonl.tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                for record in self._records.values():
                    handle.write(encode_record(record).decode("utf-8"))
            tmp.replace(self.path)
            after = self.path.stat().st_size
        return CompactStats(len(self._records), before - after)

    def destroy(self) -> None:
        """Remove the whole namespace directory (records, lockfile,
        rewrite temps) under the namespace lock.

        Serializing on the lock means an in-flight writer's append
        completes before the directory goes, so eviction never tears a
        record mid-write.  Eviction is still destructive by design: a
        writer that comes back afterwards recreates a fresh, empty
        namespace.
        """
        if not self.path.parent.is_dir():
            return
        with self._locked():
            shutil.rmtree(self.path.parent)
        self._records.clear()
        self._loaded = True

    def merge(self, source: "ResultStore | str | Path") -> int:
        """Fold another store's records into this one, last-wins by key.

        ``source`` may be a :class:`ResultStore`, a namespace directory,
        or a bare ``results.jsonl`` (e.g. copied from another shard
        host).  Records byte-identical to what this store already holds
        are skipped, so merging the same shard twice is a no-op and the
        operation is idempotent.  Returns the number of records written.
        """
        if isinstance(source, ResultStore):
            source_path = source.path
        else:
            source_path = Path(source)
            if source_path.is_dir():
                source_path = source_path / "results.jsonl"
        incoming = load_jsonl_records(source_path)
        if not incoming:
            return 0
        written = 0
        with self._locked():
            self.refresh()
            lines: list[bytes] = []
            for key, record in incoming.items():
                if self._records.get(key) == record:
                    continue
                lines.append(encode_record(record))
                self._records[key] = record
                written += 1
            if lines:
                self._append(lines)
        return written

    # -- convenience -----------------------------------------------------
    def result(self, key: str) -> EvalResult | None:
        """Deserialize the stored canonical result for ``key``.

        Records from an older layout (``version`` mismatch) count as
        misses, so a record-format change re-evaluates instead of
        feeding a stale dict to the deserializer.
        """
        record = self.get(key)
        if record is None or record.get("version") != RECORD_VERSION:
            return None
        payload = record.get("result")
        if not isinstance(payload, Mapping) or "workload" not in payload:
            return None  # e.g. a sim-validation suite record
        return result_from_dict(payload)

    def evaluation(self, key: str) -> NetworkEvaluation | None:
        """Legacy view of :meth:`result` (model-backed records only)."""
        record = self.get(key)
        if record is None or record.get("version") != RECORD_VERSION:
            return None
        payload = record.get("result")
        if not isinstance(payload, Mapping) or "workload" not in payload:
            return None  # e.g. a sim-validation suite record
        if payload.get("backend", "model") != "model":
            return None  # no analytical breakdown to reconstruct
        return evaluation_from_dict(payload)


class StoreRouter:
    """Routes each evaluation point to its backend's store namespace.

    Model-backed records live in the campaign's own store; every other
    backend gets a sibling namespace under the same root, keyed by the
    backend's source fingerprint -- so a mixed-backend campaign's
    executor, summaries, and CLI all agree on where records land.
    """

    def __init__(self, base: ResultStore) -> None:
        from repro.eval.request import MODEL_BACKEND

        self.base = base
        self._stores: dict[str, ResultStore] = {MODEL_BACKEND: base}

    def for_backend(self, backend: str) -> ResultStore:
        if backend not in self._stores:
            from repro.eval.registry import get_backend

            self._stores[backend] = ResultStore(
                self.base.root,
                namespace=get_backend(backend).fingerprint())
        return self._stores[backend]

    def for_point(self, point: Any) -> ResultStore:
        return self.for_backend(point.backend)

    def result(self, point: Any) -> EvalResult | None:
        return self.for_point(point).result(point.key())

    def record(self, point: Any) -> dict[str, Any] | None:
        """The raw stored record for ``point`` (provenance and all)."""
        return self.for_point(point).get(point.key())
