"""Campaign summarization: metric tables, JSON rows, Pareto extraction."""

from __future__ import annotations

from typing import Any, Callable, Mapping, NamedTuple

from repro.core.pareto import pareto_front
from repro.dse.spec import CampaignSpec, EvalPoint
from repro.dse.store import ResultStore, StoreRouter
from repro.eval.result import EvalResult
from repro.utils.tables import format_table


class Metric(NamedTuple):
    """A named summary column / Pareto objective.

    ``extract`` returns ``None`` when the record genuinely lacks the
    underlying quantity -- only results deserialized from stores
    written before the simulator gained its energy epilog
    (``EvalResult.models_energy`` is ``False``); every current backend
    prices energy.  Unpriced metrics read as *missing* -- never as a
    best-possible zero or a JSON-hostile infinity.
    """

    extract: Callable[[EvalResult], float | None]
    maximize: bool
    header: str


def _energy_pj(ev: EvalResult) -> float | None:
    return ev.total_energy_pj if ev.models_energy else None


def _tops_per_w(ev: EvalResult) -> float | None:
    return ev.efficiency_tops_per_w if ev.models_energy else None


#: Named metrics usable as summary columns and Pareto objectives.
METRICS: dict[str, Metric] = {
    "cycles": Metric(lambda ev: ev.total_cycles, False, "cycles"),
    "energy": Metric(_energy_pj, False, "energy (pJ)"),
    "runtime": Metric(lambda ev: ev.runtime_s, False, "runtime (s)"),
    "macs": Metric(lambda ev: float(ev.total_macs), True, "MACs"),
    "tops": Metric(lambda ev: ev.effective_tops, True, "eff. TOPS"),
    "tops_per_w": Metric(_tops_per_w, True, "TOPS/W"),
}

_TABLE_COLUMNS = ("cycles", "energy", "runtime", "tops", "tops_per_w")


def _provenance(record: Mapping[str, Any] | None) -> dict[str, Any]:
    """Search provenance carried by a stored record's ``extra`` block.

    Guided runs (:mod:`repro.opt`) stamp every probe with an ``origin``
    (``opt:sh``, ``opt:cosearch``, ...) and the round index that
    produced it; exhaustive-campaign records carry neither and read as
    ``origin=None`` -- so mixed guided+exhaustive stores stay auditable
    from the same JSON rows.
    """
    extra = record.get("extra") if record else None
    if not isinstance(extra, Mapping):
        return {"origin": None, "round": None}
    return {"origin": extra.get("origin"), "round": extra.get("round")}


def resolve_metric(name: str) -> Metric:
    if name not in METRICS:
        raise ValueError(
            f"unknown metric {name!r}; one of {tuple(METRICS)}")
    return METRICS[name]


def summary_data(
    spec: CampaignSpec,
    store: ResultStore,
    failures: Mapping[str, str] | None = None,
) -> list[dict[str, Any]]:
    """JSON-able per-point metric rows; missing points carry ``null``s.

    ``failures`` (config-hash key -> worker error, e.g.
    ``CampaignRun.failed``) annotates rows for points whose evaluation
    raised in the reporting run; every row carries an ``error`` field
    (``None`` when the point did not fail or no run context is given).
    """
    router = StoreRouter(store)
    failures = failures or {}
    rows: list[dict[str, Any]] = []
    for point in spec.points():
        record = router.record(point)
        result = router.result(point)
        entry: dict[str, Any] = {
            "key": point.key(),
            "config": point.config_label,
            "network": point.network,
            "backend": point.backend,
            "arch": point.arch,
            "stored": result is not None,
            "error": failures.get(point.key()),
            **_provenance(record),
        }
        for name in _TABLE_COLUMNS:
            entry[name] = (None if result is None
                           else METRICS[name].extract(result))
        rows.append(entry)
    return rows


def summary_table(
    spec: CampaignSpec,
    store: ResultStore,
    failures: Mapping[str, str] | None = None,
) -> str:
    """Per-point metric table; missing points (and metrics the point's
    backend does not model) show ``-``; points that failed in the
    reporting run show ``FAILED`` -- even when an older record is still
    stored (a ``--force`` re-evaluation that raised), in which case the
    stale metrics stay visible next to the status."""
    rows = []
    for entry in summary_data(spec, store, failures):
        if entry["stored"]:
            cells = [("-" if entry[name] is None else entry[name])
                     for name in _TABLE_COLUMNS]
            cells.append("FAILED" if entry["error"] else "yes")
        else:
            status = "FAILED" if entry["error"] else "missing"
            cells = ["-"] * len(_TABLE_COLUMNS) + [status]
        rows.append([entry["config"], entry["network"], *cells])
    return format_table(
        ["config", "network",
         *(METRICS[name].header for name in _TABLE_COLUMNS), "stored"],
        rows,
        title=f"Campaign {spec.name} -- {len(rows)} points",
    )


def campaign_pareto(
    spec: CampaignSpec,
    store: ResultStore,
    x: str = "cycles",
    y: str = "energy",
) -> list[tuple[float, float, EvalPoint]]:
    """Non-dominated points of the campaign under two named metrics.

    Each objective's sense comes from the metric registry (cycles and
    energy minimize; TOPS/W maximizes).  Points missing from the store
    -- or legacy records genuinely lacking one of the objectives (old
    unpriced sim-energy stores) -- are skipped rather than ranked on a
    fictitious value.
    """
    mx, my = resolve_metric(x), resolve_metric(y)
    router = StoreRouter(store)
    points = []
    for point in spec.points():
        result = router.result(point)
        if result is None:
            continue
        vx, vy = mx.extract(result), my.extract(result)
        if vx is None or vy is None:
            continue
        points.append((vx, vy, point))
    return pareto_front(points, maximize=(mx.maximize, my.maximize))


def pareto_data(
    spec: CampaignSpec,
    store: ResultStore,
    x: str = "cycles",
    y: str = "energy",
) -> list[dict[str, Any]]:
    """JSON-able Pareto front rows over two named metrics."""
    router = StoreRouter(store)
    return [
        {
            "key": point.key(),
            "config": point.config_label,
            "network": point.network,
            "backend": point.backend,
            "arch": point.arch,
            **_provenance(router.record(point)),
            x: vx,
            y: vy,
        }
        for vx, vy, point in campaign_pareto(spec, store, x, y)
    ]


def pareto_table(
    spec: CampaignSpec,
    store: ResultStore,
    x: str = "cycles",
    y: str = "energy",
) -> str:
    mx, my = resolve_metric(x), resolve_metric(y)
    front = campaign_pareto(spec, store, x, y)
    rows = [
        [point.config_label, point.network, vx, vy]
        for vx, vy, point in front
    ]
    sense = tuple("max" if m.maximize else "min" for m in (mx, my))
    return format_table(
        ["config", "network", f"{mx.header} ({sense[0]})",
         f"{my.header} ({sense[1]})"],
        rows,
        title=(f"Campaign {spec.name} -- Pareto front over "
               f"({x}, {y}), {len(rows)} of {len(spec.points())} points"),
    )
