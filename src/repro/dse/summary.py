"""Campaign summarization: metric tables and Pareto-front extraction."""

from __future__ import annotations

from typing import Callable, NamedTuple

from repro.accelerators.base import NetworkEvaluation
from repro.core.pareto import pareto_front
from repro.dse.spec import CampaignSpec, EvalPoint
from repro.dse.store import ResultStore
from repro.utils.tables import format_table


class Metric(NamedTuple):
    extract: Callable[[NetworkEvaluation], float]
    maximize: bool
    header: str


#: Named metrics usable as summary columns and Pareto objectives.
METRICS: dict[str, Metric] = {
    "cycles": Metric(lambda ev: ev.total_cycles, False, "cycles"),
    "energy": Metric(lambda ev: ev.total_energy_pj, False, "energy (pJ)"),
    "runtime": Metric(lambda ev: ev.runtime_s, False, "runtime (s)"),
    "macs": Metric(lambda ev: float(ev.total_macs), True, "MACs"),
    "tops": Metric(lambda ev: ev.effective_tops, True, "eff. TOPS"),
    "tops_per_w": Metric(
        lambda ev: ev.efficiency_tops_per_w, True, "TOPS/W"),
}

_TABLE_COLUMNS = ("cycles", "energy", "runtime", "tops", "tops_per_w")


def resolve_metric(name: str) -> Metric:
    if name not in METRICS:
        raise ValueError(
            f"unknown metric {name!r}; one of {tuple(METRICS)}")
    return METRICS[name]


def summary_table(spec: CampaignSpec, store: ResultStore) -> str:
    """Per-point metric table; points not yet in the store show ``-``."""
    rows = []
    for point in spec.points():
        evaluation = store.evaluation(point.key())
        if evaluation is None:
            cells = ["-"] * len(_TABLE_COLUMNS) + ["missing"]
        else:
            cells = [METRICS[name].extract(evaluation)
                     for name in _TABLE_COLUMNS] + ["yes"]
        rows.append([point.config_label, point.network, *cells])
    return format_table(
        ["config", "network",
         *(METRICS[name].header for name in _TABLE_COLUMNS), "stored"],
        rows,
        title=f"Campaign {spec.name} -- {len(rows)} points",
    )


def campaign_pareto(
    spec: CampaignSpec,
    store: ResultStore,
    x: str = "cycles",
    y: str = "energy",
) -> list[tuple[float, float, EvalPoint]]:
    """Non-dominated points of the campaign under two named metrics.

    Each objective's sense comes from the metric registry (cycles and
    energy minimize; TOPS/W maximizes).  Points missing from the store
    are skipped.
    """
    mx, my = resolve_metric(x), resolve_metric(y)
    points = []
    for point in spec.points():
        evaluation = store.evaluation(point.key())
        if evaluation is None:
            continue
        points.append(
            (mx.extract(evaluation), my.extract(evaluation), point))
    return pareto_front(points, maximize=(mx.maximize, my.maximize))


def pareto_table(
    spec: CampaignSpec,
    store: ResultStore,
    x: str = "cycles",
    y: str = "energy",
) -> str:
    mx, my = resolve_metric(x), resolve_metric(y)
    front = campaign_pareto(spec, store, x, y)
    rows = [
        [point.config_label, point.network, vx, vy]
        for vx, vy, point in front
    ]
    sense = tuple("max" if m.maximize else "min" for m in (mx, my))
    return format_table(
        ["config", "network", f"{mx.header} ({sense[0]})",
         f"{my.header} ({sense[1]})"],
        rows,
        title=(f"Campaign {spec.name} -- Pareto front over "
               f"({x}, {y}), {len(rows)} of {len(spec.points())} points"),
    )
