"""Declarative campaign specifications for design-space exploration.

A campaign is the cross product the paper's headline figures are built
from -- accelerators x networks, plus the BitWave ablation ladder
(dataflow / column / bit-flip variants, which double as the sparsity
profile axis: ``+DF+SM+BF`` evaluates against the bit-flipped weight
statistics) -- optionally crossed with the evaluation *backend* axis
(:mod:`repro.eval`): the analytical model and the structural-simulator
datapaths.  Every point in the grid hashes to a stable key so results
can be persisted, shared across processes, and resumed incrementally.

Networks may be parametrized (``"bert_base@tokens=128"``), so token
sweeps are ordinary campaign points.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Protocol, Sequence, TypeVar

from repro.accelerators import (
    BITWAVE_VARIANTS,
    SOTA_ACCELERATORS,
    build_accelerator,
    build_bitwave_variant,
)
from repro.accelerators.base import Accelerator
from repro.arch import DEFAULT_ARCH, canonical_arch, parse_arch
from repro.dse.retry import RetryPolicy
from repro.eval.fingerprints import code_fingerprint  # noqa: F401  (re-export)
from repro.eval.registry import backend_names, get_backend
from repro.eval.request import MODEL_BACKEND, config_hash  # noqa: F401
from repro.eval.request import FULL_BITWAVE_VARIANT, EvalRequest
from repro.eval.result import EvalResult
from repro.obs import trace
from repro.workloads.nets import parse_network

#: Bump when the meaning of a point's fields changes (keys include it).
SPEC_VERSION = 3

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class _HasKey(Protocol):
    def key(self) -> str: ...


_KeyedT = TypeVar("_KeyedT", bound=_HasKey)


@dataclass(frozen=True)
class Shard:
    """One deterministic slice ``index/count`` of a campaign's points.

    Points are assigned to shards by their stable config-hash key, so N
    hosts (or processes) given the same spec and ``count`` evaluate
    disjoint, collectively-exhaustive slices against the same
    fingerprint namespace -- no coordination needed beyond agreeing on
    ``count``.  Adding grid axes moves no existing point between
    shards: assignment depends only on each point's own key.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index}")

    @classmethod
    def parse(cls, text: str) -> "Shard":
        """Parse the CLI spelling ``"i/N"`` (0-based index)."""
        match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
        if not match:
            raise ValueError(
                f"shard must be spelled 'i/N' (e.g. '0/2'), got {text!r}")
        return cls(index=int(match.group(1)), count=int(match.group(2)))

    def owns(self, key: str) -> bool:
        """Whether a config-hash key lands in this shard.

        Re-hashing the key keeps the split uniform and stable for any
        key format (evaluation grids and sim campaigns alike),
        independent of process and ``PYTHONHASHSEED``.
        """
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.count == self.index

    def select(self, points: Sequence[_KeyedT]) -> list[_KeyedT]:
        """The sub-list of ``points`` this shard owns (order preserved)."""
        return [point for point in points if self.owns(point.key())]

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


@dataclass(frozen=True)
class EvalPoint:
    """One (accelerator configuration, network, backend, arch) grid point.

    ``variant`` selects a rung of the BitWave ablation ladder
    (:data:`repro.accelerators.BITWAVE_VARIANTS`); when ``None`` the
    point is the fully-enabled comparison build of ``accelerator``.
    ``backend`` names a registered :class:`repro.eval.EvalBackend`
    (default: the analytical model).  ``arch`` names the hardware
    design point (:mod:`repro.arch` preset + overrides).
    """

    accelerator: str
    network: str
    variant: str | None = None
    backend: str = MODEL_BACKEND
    arch: str = DEFAULT_ARCH

    def __post_init__(self) -> None:
        # The fully-enabled ablation rung IS the SotA comparison build
        # (BitWave's constructor defaults), so both spellings
        # canonicalize to one point and share one store entry.
        if self.accelerator == "BitWave" and self.variant == FULL_BITWAVE_VARIANT:
            object.__setattr__(self, "variant", None)
        # One spelling per arch design point (no-op overrides dropped).
        try:
            object.__setattr__(self, "arch", canonical_arch(self.arch))
        except ValueError:
            pass  # left verbatim; validate() reports the real error

    def request(self) -> EvalRequest:
        """The :mod:`repro.eval` request this point names."""
        return EvalRequest(
            workload=self.network,
            accelerator=self.accelerator,
            variant=self.variant,
            backend=self.backend,
            arch=self.arch,
        )

    def validate(self) -> None:
        self.request().validate()

    @property
    def config_label(self) -> str:
        """Display label for the accelerator-configuration axis."""
        return self.request().config_label

    @property
    def label(self) -> str:
        return f"{self.config_label}/{self.network}"

    def build(self) -> Accelerator:
        """The modelled accelerator instance (model-backend points)."""
        self.validate()
        arch = parse_arch(self.arch)
        if self.variant is None:
            return build_accelerator(self.accelerator, arch)
        return build_bitwave_variant(self.variant, arch)

    def evaluate(self) -> EvalResult:
        """Compute (never cache) this point through its backend."""
        request = self.request()
        request.validate()
        with trace("eval.evaluate", backend=self.backend,
                   workload=self.network):
            return get_backend(self.backend).evaluate(request)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "accelerator": self.accelerator,
            "network": self.network,
            "variant": self.variant,
            "backend": self.backend,
            "arch": self.arch,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvalPoint":
        return cls(
            accelerator=data["accelerator"],
            network=data["network"],
            variant=data.get("variant"),
            backend=data.get("backend", MODEL_BACKEND),
            arch=data.get("arch", DEFAULT_ARCH),
        )

    def key(self) -> str:
        """Stable result-store key (shared with :mod:`repro.eval`)."""
        return self.request().key()


def _check_subset(kind: str, values: Sequence[str],
                  valid: Sequence[str] | None) -> None:
    seen: set[str] = set()
    for value in values:
        if value in seen:
            raise ValueError(f"duplicate {kind} {value!r} in campaign")
        seen.add(value)
        if valid is None:
            parse_network(value)  # networks: registry + parameters
        elif value not in valid:
            raise ValueError(
                f"unknown {kind} {value!r}; one of {tuple(valid)}")


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative evaluation grid.

    ``accelerators`` x ``networks`` gives the Fig. 14/15/17 comparison
    points; ``variants`` x ``networks`` adds the Fig. 13 BitWave
    ablation points.  Either axis may be empty (but not both).
    ``backends`` crosses the grid with evaluation backends; simulator
    backends implement the fully-enabled BitWave datapath only, so they
    expand against the BitWave accelerator column alone (ablation
    rungs and other accelerators stay model-backed).  ``archs`` crosses
    the grid with hardware design points (:mod:`repro.arch` preset
    spellings, e.g. ``"bitwave-16nm@sram_pj=0.5"``), enabling
    store-backed technology-sensitivity sweeps over both backends;
    empty means the default arch.  ``retry`` pins the campaign's
    failure-handling policy (attempts, backoff, per-point timeout,
    poison classification) so a spec JSON fully describes how the run
    self-heals; ``None`` uses the executor's defaults, and CLI flags
    layer on top either way.
    """

    name: str
    accelerators: tuple[str, ...] = ()
    networks: tuple[str, ...] = ()
    variants: tuple[str, ...] = ()
    backends: tuple[str, ...] = (MODEL_BACKEND,)
    archs: tuple[str, ...] = ()
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "accelerators", tuple(self.accelerators))
        object.__setattr__(self, "networks", tuple(self.networks))
        object.__setattr__(self, "variants", tuple(self.variants))
        object.__setattr__(self, "backends",
                           tuple(self.backends) or (MODEL_BACKEND,))
        object.__setattr__(self, "archs", tuple(self.archs))

    def validate(self) -> None:
        if not self.name or not _NAME_RE.match(self.name):
            raise ValueError(
                f"campaign name {self.name!r} must match {_NAME_RE.pattern}")
        _check_subset("network", self.networks, None)
        _check_subset("accelerator", self.accelerators, SOTA_ACCELERATORS)
        _check_subset("variant", self.variants, BITWAVE_VARIANTS)
        _check_subset("backend", self.backends, backend_names())
        seen_archs: set[str] = set()
        for arch in self.archs:
            spelling = canonical_arch(arch)  # raises on unknown/bad specs
            if spelling in seen_archs:
                raise ValueError(
                    f"duplicate arch {arch!r} in campaign "
                    f"(canonical spelling {spelling!r})")
            seen_archs.add(spelling)
        if not self.networks:
            raise ValueError("campaign needs at least one network")
        if not self.accelerators and not self.variants:
            raise ValueError(
                "campaign needs at least one accelerator or variant")

    def points(self) -> list[EvalPoint]:
        """Expand the grid, deduplicated, grouped by network.

        Grouping by network keeps the expensive per-network sparsity
        profiling local to a worker when the executor chunks the list.
        """
        self.validate()
        points: list[EvalPoint] = []
        for arch in self.archs or (DEFAULT_ARCH,):
            for backend in self.backends:
                model = backend == MODEL_BACKEND
                for network in self.networks:
                    for accelerator in self.accelerators:
                        if model or accelerator == "BitWave":
                            points.append(EvalPoint(
                                accelerator, network, backend=backend,
                                arch=arch))
                    if model:
                        for variant in self.variants:
                            points.append(EvalPoint(
                                "BitWave", network, variant=variant,
                                arch=arch))
        unique = []
        seen: set[str] = set()
        for point in points:
            key = point.key()
            if key not in seen:
                seen.add(key)
                unique.append(point)
        if not unique:
            # Reachable despite validate(): simulator backends expand
            # against BitWave only, so e.g. accelerators=(SCNN,) with
            # backends=(sim-vectorized,) filters to nothing.  A 0-point
            # campaign that "succeeds" hides that mistake.
            raise ValueError(
                f"campaign {self.name!r} expands to zero points: "
                f"simulator backends evaluate only the fully-enabled "
                f"BitWave accelerator -- add 'BitWave' to accelerators "
                f"or include the 'model' backend")
        return unique

    def to_dict(self) -> dict[str, Any]:
        data = {
            "version": SPEC_VERSION,
            "name": self.name,
            "accelerators": list(self.accelerators),
            "networks": list(self.networks),
            "variants": list(self.variants),
            "backends": list(self.backends),
            "archs": list(self.archs),
        }
        if self.retry is not None:
            # Absent unless set, so spec JSONs written before the
            # retry field existed round-trip byte-identically.
            data["retry"] = self.retry.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        retry = data.get("retry")
        return cls(
            name=data["name"],
            accelerators=tuple(data.get("accelerators", ())),
            networks=tuple(data.get("networks", ())),
            variants=tuple(data.get("variants", ())),
            backends=tuple(data.get("backends", (MODEL_BACKEND,))),
            archs=tuple(data.get("archs", ())),
            retry=RetryPolicy.from_dict(retry) if retry is not None else None,
        )

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_json(cls, path: str | Path) -> "CampaignSpec":
        spec = cls.from_dict(json.loads(Path(path).read_text()))
        spec.validate()
        return spec


def paper_grid(name: str = "paper-grid") -> CampaignSpec:
    """The full headline grid: all SotA accelerators, all networks, and
    the complete BitWave ablation ladder (Figs. 13-17)."""
    from repro.workloads.nets import NETWORKS

    return CampaignSpec(
        name=name,
        accelerators=SOTA_ACCELERATORS,
        networks=NETWORKS,
        variants=BITWAVE_VARIANTS,
    )
