"""Declarative campaign specifications for design-space exploration.

A campaign is the cross product the paper's headline figures are built
from -- accelerators x networks, plus the BitWave ablation ladder
(dataflow / column / bit-flip variants, which double as the sparsity
profile axis: ``+DF+SM+BF`` evaluates against the bit-flipped weight
statistics).  Every point in the grid hashes to a stable key so results
can be persisted, shared across processes, and resumed incrementally.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.accelerators import (
    BITWAVE_VARIANTS,
    SOTA_ACCELERATORS,
    build_accelerator,
    build_bitwave_variant,
)
from repro.accelerators.base import Accelerator, NetworkEvaluation
from repro.workloads.nets import NETWORKS

#: Bump when the meaning of a point's fields changes (keys include it).
SPEC_VERSION = 1

#: The ablation rung equal to ``BitWave()``'s constructor defaults.
FULL_BITWAVE_VARIANT = "+DF+SM+BF"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def config_hash(config: Mapping[str, Any]) -> str:
    """Stable 16-hex-char digest of a JSON-serializable config mapping.

    Canonical JSON (sorted keys, tight separators) makes the digest
    independent of dict insertion order, process, and
    ``PYTHONHASHSEED``.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the model/accelerator source feeding an evaluation.

    Persisted results are only valid for the code that produced them;
    the store namespaces its files by this fingerprint so editing the
    analytical model invalidates stale caches automatically instead of
    silently serving results from an older model.
    """
    import repro.accelerators
    import repro.core
    import repro.model
    import repro.sparsity
    import repro.workloads

    digest = hashlib.sha256()
    for package in (repro.model, repro.accelerators, repro.sparsity,
                    repro.workloads, repro.core):
        root = Path(package.__file__).parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(path.read_bytes())
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class EvalPoint:
    """One (accelerator configuration, network) evaluation in a grid.

    ``variant`` selects a rung of the BitWave ablation ladder
    (:data:`repro.accelerators.BITWAVE_VARIANTS`); when ``None`` the
    point is the fully-enabled comparison build of ``accelerator``.
    """

    accelerator: str
    network: str
    variant: str | None = None

    def __post_init__(self) -> None:
        # The fully-enabled ablation rung IS the SotA comparison build
        # (BitWave's constructor defaults), so both spellings
        # canonicalize to one point and share one store entry.
        if self.accelerator == "BitWave" and self.variant == FULL_BITWAVE_VARIANT:
            object.__setattr__(self, "variant", None)

    def validate(self) -> None:
        if self.network not in NETWORKS:
            raise ValueError(
                f"unknown network {self.network!r}; one of {NETWORKS}")
        if self.variant is None:
            if self.accelerator not in SOTA_ACCELERATORS:
                raise ValueError(
                    f"unknown accelerator {self.accelerator!r}; "
                    f"one of {SOTA_ACCELERATORS}")
        else:
            if self.accelerator != "BitWave":
                raise ValueError(
                    f"variants are BitWave ablations; got "
                    f"accelerator={self.accelerator!r}")
            if self.variant not in BITWAVE_VARIANTS:
                raise ValueError(
                    f"unknown BitWave variant {self.variant!r}; "
                    f"one of {BITWAVE_VARIANTS}")

    @property
    def config_label(self) -> str:
        """Display label for the accelerator configuration axis."""
        if self.variant is None:
            return self.accelerator
        return f"BitWave[{self.variant}]"

    @property
    def label(self) -> str:
        return f"{self.config_label}/{self.network}"

    def build(self) -> Accelerator:
        self.validate()
        if self.variant is None:
            return build_accelerator(self.accelerator)
        return build_bitwave_variant(self.variant)

    def evaluate(self) -> NetworkEvaluation:
        return self.build().evaluate_network(self.network)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "accelerator": self.accelerator,
            "network": self.network,
            "variant": self.variant,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvalPoint":
        return cls(
            accelerator=data["accelerator"],
            network=data["network"],
            variant=data.get("variant"),
        )

    def key(self) -> str:
        """Stable result-store key for this configuration."""
        return config_hash(self.to_dict())


def _check_subset(kind: str, values: Sequence[str],
                  valid: Sequence[str]) -> None:
    seen: set[str] = set()
    for value in values:
        if value in seen:
            raise ValueError(f"duplicate {kind} {value!r} in campaign")
        seen.add(value)
        if value not in valid:
            raise ValueError(
                f"unknown {kind} {value!r}; one of {tuple(valid)}")


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative evaluation grid.

    ``accelerators`` x ``networks`` gives the Fig. 14/15/17 comparison
    points; ``variants`` x ``networks`` adds the Fig. 13 BitWave
    ablation points.  Either axis may be empty (but not both).
    """

    name: str
    accelerators: tuple[str, ...] = ()
    networks: tuple[str, ...] = ()
    variants: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "accelerators", tuple(self.accelerators))
        object.__setattr__(self, "networks", tuple(self.networks))
        object.__setattr__(self, "variants", tuple(self.variants))

    def validate(self) -> None:
        if not self.name or not _NAME_RE.match(self.name):
            raise ValueError(
                f"campaign name {self.name!r} must match {_NAME_RE.pattern}")
        _check_subset("network", self.networks, NETWORKS)
        _check_subset("accelerator", self.accelerators, SOTA_ACCELERATORS)
        _check_subset("variant", self.variants, BITWAVE_VARIANTS)
        if not self.networks:
            raise ValueError("campaign needs at least one network")
        if not self.accelerators and not self.variants:
            raise ValueError(
                "campaign needs at least one accelerator or variant")

    def points(self) -> list[EvalPoint]:
        """Expand the grid, deduplicated, grouped by network.

        Grouping by network keeps the expensive per-network sparsity
        profiling local to a worker when the executor chunks the list.
        """
        self.validate()
        points: list[EvalPoint] = []
        seen: set[str] = set()
        for network in self.networks:
            for accelerator in self.accelerators:
                points.append(EvalPoint(accelerator, network))
            for variant in self.variants:
                points.append(EvalPoint("BitWave", network, variant=variant))
        unique = []
        for point in points:
            key = point.key()
            if key not in seen:
                seen.add(key)
                unique.append(point)
        return unique

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "accelerators": list(self.accelerators),
            "networks": list(self.networks),
            "variants": list(self.variants),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        return cls(
            name=data["name"],
            accelerators=tuple(data.get("accelerators", ())),
            networks=tuple(data.get("networks", ())),
            variants=tuple(data.get("variants", ())),
        )

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_json(cls, path: str | Path) -> "CampaignSpec":
        spec = cls.from_dict(json.loads(Path(path).read_text()))
        spec.validate()
        return spec


def paper_grid(name: str = "paper-grid") -> CampaignSpec:
    """The full headline grid: all SotA accelerators, all networks, and
    the complete BitWave ablation ladder (Figs. 13-17)."""
    return CampaignSpec(
        name=name,
        accelerators=SOTA_ACCELERATORS,
        networks=NETWORKS,
        variants=BITWAVE_VARIANTS,
    )
