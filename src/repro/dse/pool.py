"""A self-healing worker pool with a parent-side watchdog.

Replaces ``multiprocessing.Pool`` in the campaign executor.  The
stdlib pool cannot survive the failure modes long campaigns actually
hit: a hung worker stalls ``imap_unordered`` forever, and a worker
that dies without streaming a payload (OOM-killed, hard crash) aborts
the whole iteration.  This pool gives the parent full custody:

- one task queue **per worker**, dispatched one point at a time, so
  the parent always knows exactly which point each worker holds;
- a heartbeat thread in every worker (silenced by an injected ``hang``
  fault, exactly like a hard-frozen process), so the watchdog detects
  both deadline overruns and heartbeat silence;
- kill-and-respawn: a hung or dead worker is SIGKILLed, its in-flight
  point handed back to the outcome handler (which decides retry vs
  quarantine), and a fresh worker takes its slot;
- cooperative shutdown: a stop callable (wired to SIGINT/SIGTERM by
  the executor) halts dispatch, kills in-flight workers, and returns
  with completed results already committed.

The pool is deliberately policy-free: every outcome -- success,
worker exception, timeout, heartbeat silence, death -- is reported to
a single ``handle`` callback which returns either ``None`` (point
settled) or a backoff delay in seconds (schedule a retry).  Retry
*decisions* stay in the executor next to the bookkeeping they mutate.
"""

from __future__ import annotations

import heapq
import multiprocessing
import queue as queue_mod
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import faults
from repro.dse.retry import RetryPolicy
from repro.obs import counter

#: Worker heartbeat period; the watchdog's silence threshold is the
#: policy's ``heartbeat_timeout_s`` (many periods, so a busy box never
#: false-positives).
HEARTBEAT_INTERVAL_S = 0.5

#: Parent poll granularity: the longest the watchdog sleeps between
#: deadline checks while no results arrive.
POLL_S = 0.05

#: How long to wait for a SIGKILLed worker to be reaped.
KILL_JOIN_S = 5.0

#: ``handle(point, attempt, key, payload, elapsed_s, reason)`` returns
#: a backoff in seconds to schedule a retry, or ``None`` when settled.
#: ``reason`` is ``"ok"`` when the worker streamed ``key``/``payload``
#: back (the key is the *worker's*, which the committer trusts exactly
#: as the old pool did); else one of ``"timeout" | "heartbeat-silent" |
#: "worker-died"`` with ``key`` ``None`` and ``payload`` ``None``.
OutcomeFn = Callable[[Any, int, Any, Any, float, str], float | None]

#: ``fn(point, attempt) -> (key, payload, elapsed_s)`` -- the
#: failure-tolerant worker callable (never raises).
TaskFn = Callable[[Any, int], "tuple[str, Any, float]"]


def _worker_main(wid: int, tasks: "multiprocessing.Queue[Any]",
                 results: "multiprocessing.Queue[Any]",
                 fn: TaskFn) -> None:
    """One worker process: heartbeat thread + task loop.

    SIGINT is ignored so a terminal Ctrl-C (delivered to the whole
    foreground process group) cannot kill workers out from under the
    parent's graceful-shutdown path -- the parent owns worker death.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(HEARTBEAT_INTERVAL_S):
            if faults.hang_active():
                continue  # a hung worker is heartbeat-silent, by design
            try:
                results.put(("hb", wid))
            except Exception:  # noqa: BLE001 -- parent gone; just exit
                return

    threading.Thread(target=beat, daemon=True).start()
    try:
        while True:
            task = tasks.get()
            if task is None:
                break
            point, attempt = task
            key, payload, elapsed = fn(point, attempt)
            results.put(("done", wid, key, payload, elapsed))
    finally:
        stop.set()


@dataclass
class _Worker:
    """Parent-side bookkeeping for one worker process."""

    wid: int
    process: multiprocessing.Process
    tasks: "multiprocessing.Queue[Any]"
    point: Any = None          #: in-flight point (None = idle)
    attempt: int = 0
    started_at: float = 0.0    #: monotonic stamp of the dispatch
    last_beat: float = field(default_factory=time.monotonic)


class WatchdogPool:
    """Dispatch points over supervised workers until all are settled."""

    def __init__(self, worker: TaskFn, jobs: int, policy: RetryPolicy,
                 should_stop: Callable[[], bool] | None = None) -> None:
        if jobs < 1:
            raise ValueError(f"pool needs jobs >= 1, got {jobs}")
        self.worker = worker
        self.jobs = jobs
        self.policy = policy
        self._should_stop = should_stop or (lambda: False)

    def run(self, points: list[Any], handle: OutcomeFn) -> bool:
        """Drive every point to a settled outcome; ``True`` if all
        settled, ``False`` when stopped early (interrupt)."""
        if not points:
            return True
        results: "multiprocessing.Queue[Any]" = multiprocessing.Queue()
        workers: dict[int, _Worker] = {}
        next_wid = 0
        ready: deque[tuple[Any, int]] = deque((p, 0) for p in points)
        #: min-heap of (ready_at, seq, point, attempt) retry waits.
        delayed: list[tuple[float, int, Any, int]] = []
        seq = 0
        outstanding = len(points)

        def spawn() -> _Worker:
            nonlocal next_wid
            wid = next_wid
            next_wid += 1
            tasks: "multiprocessing.Queue[Any]" = multiprocessing.Queue()
            process = multiprocessing.Process(
                target=_worker_main, args=(wid, tasks, results, self.worker),
                daemon=True)
            process.start()
            worker = _Worker(wid=wid, process=process, tasks=tasks)
            workers[wid] = worker
            return worker

        def settle(point: Any, attempt: int, key: Any, payload: Any,
                   elapsed: float, reason: str) -> None:
            nonlocal outstanding, seq
            backoff = handle(point, attempt, key, payload, elapsed, reason)
            if backoff is None:
                outstanding -= 1
            else:
                seq += 1
                heapq.heappush(
                    delayed,
                    (time.monotonic() + backoff, seq, point, attempt + 1))

        def reap(worker: _Worker, reason: str) -> None:
            """Kill a misbehaving worker, settle its point, refill."""
            point, attempt = worker.point, worker.attempt
            elapsed = time.monotonic() - worker.started_at
            del workers[worker.wid]
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(KILL_JOIN_S)
            worker.tasks.close()
            worker.tasks.cancel_join_thread()
            counter("dse.worker.killed", reason=reason,
                    exitcode=worker.process.exitcode)
            if point is not None:
                settle(point, attempt, None, None, elapsed, reason)
            if outstanding > 0 and not self._should_stop():
                spawn()

        for _ in range(max(1, min(self.jobs, len(points)))):
            spawn()

        try:
            while outstanding > 0:
                if self._should_stop():
                    return False
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, point, attempt = heapq.heappop(delayed)
                    ready.append((point, attempt))
                for worker in workers.values():
                    if worker.point is None and ready:
                        worker.point, worker.attempt = ready.popleft()
                        worker.started_at = time.monotonic()
                        worker.last_beat = worker.started_at
                        worker.tasks.put((worker.point, worker.attempt))

                messages: list[Any] = []
                try:
                    messages.append(results.get(timeout=POLL_S))
                    while True:
                        messages.append(results.get_nowait())
                except queue_mod.Empty:
                    pass
                for message in messages:
                    kind, wid = message[0], message[1]
                    worker = workers.get(wid)
                    if worker is None:
                        continue  # late message from a reaped worker
                    if kind == "hb":
                        worker.last_beat = time.monotonic()
                    elif kind == "done":
                        _, _, key, payload, elapsed = message
                        point, attempt = worker.point, worker.attempt
                        worker.point = None
                        if point is not None:
                            settle(point, attempt, key, payload,
                                   elapsed, "ok")

                now = time.monotonic()
                timeout_s = self.policy.timeout_s
                beat_timeout = self.policy.heartbeat_timeout_s
                for worker in list(workers.values()):
                    if worker.point is not None:
                        if timeout_s is not None \
                                and now - worker.started_at > timeout_s:
                            reap(worker, "timeout")
                            continue
                        if beat_timeout is not None \
                                and now - worker.last_beat > beat_timeout:
                            reap(worker, "heartbeat-silent")
                            continue
                    if not worker.process.is_alive():
                        if worker.point is not None:
                            reap(worker, "worker-died")
                        else:
                            # Died between tasks: drop it, refill only
                            # if there is still work to hand out.
                            del workers[worker.wid]
                            worker.tasks.close()
                            worker.tasks.cancel_join_thread()
                            if (ready or delayed) \
                                    and not self._should_stop():
                                spawn()
            return True
        finally:
            self._shutdown(workers)
            results.close()
            results.cancel_join_thread()

    @staticmethod
    def _shutdown(workers: dict[int, _Worker]) -> None:
        """Stop every remaining worker: sentinel for the idle, SIGKILL
        for the in-flight (their points are either settled or about to
        be retried by a fresh run -- parent state is authoritative)."""
        for worker in workers.values():
            if worker.point is None:
                try:
                    worker.tasks.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for worker in workers.values():
            worker.process.join(1.0 if worker.point is None else 0.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(KILL_JOIN_S)
            worker.tasks.close()
            worker.tasks.cancel_join_thread()
