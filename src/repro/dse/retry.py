"""Retry policies: how a campaign survives transient point failures.

A :class:`RetryPolicy` says how many times a point may be attempted,
how long to wait between attempts (exponential backoff with
*deterministic* jitter keyed by the point's config hash, so two runs
of the same campaign back off identically), which exception classes
are worth retrying versus *poison* (deterministic bugs that will fail
every attempt identically), and the wall-clock deadline past which the
parent-side watchdog declares a worker hung.

The policy rides on :class:`~repro.dse.spec.CampaignSpec` (optional
``retry`` field, JSON round-tripped) and the ``run``/``sim`` CLIs
(``--max-attempts`` / ``--timeout`` / ``--backoff``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

#: Exception type names that will fail identically on every attempt --
#: programming errors, not infrastructure weather.  Everything else
#: (OSError, MemoryError, timeouts, worker death, injected faults) is
#: presumed transient and worth the retry budget.
POISON_TYPES = (
    "AssertionError",
    "AttributeError",
    "KeyError",
    "NotImplementedError",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
)

#: Failure kinds the parent synthesizes when a worker produces no
#: payload at all; always retryable (the process, not the point's
#: code, is what failed -- until proven otherwise by the budget).
WORKER_FAILURE_KINDS = ("timeout", "heartbeat-silent", "worker-died")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and a point deadline."""

    #: Total attempts per point (1 = never retry).
    max_attempts: int = 3
    #: Per-point wall-clock deadline the watchdog enforces by killing
    #: and respawning the worker (``None`` = no deadline).
    timeout_s: float | None = None
    #: First backoff; attempt ``n`` waits ``backoff_s * factor**n``
    #: (clamped to ``max_backoff_s``) plus deterministic jitter.
    backoff_s: float = 0.1
    backoff_factor: float = 2.0
    max_backoff_s: float = 5.0
    #: Jitter fraction: the wait is scaled by a factor drawn
    #: deterministically from ``(key, attempt)`` in
    #: ``[1 - jitter, 1 + jitter]``.
    jitter: float = 0.1
    #: Kill a worker whose heartbeat has been silent this long while a
    #: point is in flight (``None`` disables; the per-point timeout is
    #: the usual guard, this one catches hard-frozen workers when no
    #: timeout is set).
    heartbeat_timeout_s: float | None = 30.0
    #: Exception type names classified as poison (never retried).
    poison: tuple[str, ...] = field(default=POISON_TYPES)

    def __post_init__(self) -> None:
        object.__setattr__(self, "poison", tuple(self.poison))
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.heartbeat_timeout_s is not None \
                and self.heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0, got "
                f"{self.heartbeat_timeout_s}")

    def is_retryable(self, etype: str, kind: str = "exception") -> bool:
        """Whether a failure is worth another attempt.

        ``kind`` is ``"exception"`` for a payload the worker streamed
        back, or one of :data:`WORKER_FAILURE_KINDS` for failures the
        parent synthesized (those are always retryable -- the process
        died, the point's code may be fine).
        """
        if kind in WORKER_FAILURE_KINDS:
            return True
        return etype not in self.poison

    def backoff_for(self, key: str, attempt: int) -> float:
        """Seconds to wait before re-dispatching ``key``'s attempt
        ``attempt + 1`` -- exponential in ``attempt``, jittered by a
        deterministic draw so shards don't thundering-herd one store
        yet every run of a campaign backs off identically."""
        base = min(self.backoff_s * self.backoff_factor ** attempt,
                   self.max_backoff_s)
        if base <= 0 or self.jitter == 0:
            return base
        digest = hashlib.sha256(
            f"backoff|{key}|{attempt}".encode("utf-8")).digest()
        u = int.from_bytes(digest[:8], "big") / 2.0 ** 64  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * u - 1.0))

    def needs_watchdog(self) -> bool:
        """Whether this policy requires parent-side worker supervision
        (and therefore process-based execution even at ``--jobs 1``)."""
        return self.timeout_s is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "timeout_s": self.timeout_s,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "max_backoff_s": self.max_backoff_s,
            "jitter": self.jitter,
            "heartbeat_timeout_s": self.heartbeat_timeout_s,
            "poison": list(self.poison),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown retry-policy fields {sorted(unknown)}; "
                f"one of {sorted(known)}")
        kwargs = dict(data)
        if "poison" in kwargs:
            kwargs["poison"] = tuple(kwargs["poison"])
        return cls(**kwargs)

    def with_overrides(self, **overrides: Any) -> "RetryPolicy":
        """A copy with any non-``None`` overrides applied (CLI flags
        layered over a spec's stored policy)."""
        applied = {name: value for name, value in overrides.items()
                   if value is not None}
        return replace(self, **applied) if applied else self
