"""Table IV: area and power of the three PE types.

Paper claims: the bit-column-serial PE costs 1.26x the bit-parallel
PE's area but 1.25x less power, while the conventional bit-serial PE
costs 4.5x area and 2.7x power.
"""

from __future__ import annotations

from repro.arch import ArchSpec, default_arch
from repro.utils.tables import format_table


def run(arch: "ArchSpec | None" = None) -> dict[str, dict[str, float]]:
    """Table IV at ``arch``'s technology point (Table IV energies x
    clock reproduce the published per-PE powers exactly)."""
    spec = arch if arch is not None else default_arch()
    table = spec.pe_type_table()
    base = table["bit_parallel"]
    for values in table.values():
        values["area_ratio"] = values["area_um2"] / base["area_um2"]
        values["power_ratio"] = values["power_mw"] / base["power_mw"]
    return table


def main() -> str:
    results = run()
    rows = [
        [name, v["power_mw"], v["area_um2"], v["area_ratio"], v["power_ratio"]]
        for name, v in results.items()
    ]
    table = format_table(
        ["PE type", "power (mW)", "area (um2)", "area ratio", "power ratio"],
        rows,
        title="Table IV -- PE type comparison (one 8x8-MAC equivalent)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
