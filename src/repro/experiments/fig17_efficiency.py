"""Fig. 17: energy efficiency vs SotA, normalized to SCNN.

Paper claims: BitWave most efficient on every benchmark -- up to 7.71x
SCNN and 2.04x HUAA on Bert-Base.
"""

from __future__ import annotations

from repro.accelerators import SOTA_ACCELERATORS
from repro.arch import DEFAULT_ARCH
from repro.eval.grids import sota_grid
from repro.utils.tables import format_table
from repro.workloads.nets import NETWORKS


def run(networks: tuple[str, ...] = NETWORKS,
        arch: str = DEFAULT_ARCH) -> dict[str, dict[str, float]]:
    """``network -> {accelerator: efficiency vs SCNN}``."""
    grid = sota_grid(networks, arch=arch)
    results: dict[str, dict[str, float]] = {}
    for net in networks:
        scnn = grid[("SCNN", net)].efficiency_tops_per_w
        results[net] = {
            acc: grid[(acc, net)].efficiency_tops_per_w / scnn
            for acc in SOTA_ACCELERATORS
        }
    return results


def main() -> str:
    results = run()
    rows = [
        [net] + [values[acc] for acc in SOTA_ACCELERATORS]
        for net, values in results.items()
    ]
    table = format_table(
        ["network"] + list(SOTA_ACCELERATORS),
        rows,
        title="Fig. 17 -- energy efficiency normalized to SCNN (higher is better)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
