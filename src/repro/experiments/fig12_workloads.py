"""Fig. 12 (left): the benchmark workload summary.

Model type, GMACs and parameter counts of the four networks, derived
entirely from the layer tables -- a consistency check that the workload
database matches the published architectures.
"""

from __future__ import annotations

from repro.utils.tables import format_table
from repro.workloads.nets import NETWORKS, network_layers

MODEL_TYPES = {
    "resnet18": "CNN (residual)",
    "mobilenetv2": "CNN (inverted residual)",
    "cnn_lstm": "CNN + LSTM",
    "bert_base": "Transformer encoder",
}


def run(networks: tuple[str, ...] = NETWORKS) -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}
    for net in networks:
        layers = network_layers(net)
        results[net] = {
            "layers": len(layers),
            "gmacs": sum(s.macs for s in layers) / 1e9,
            "mparams": sum(s.weight_count for s in layers) / 1e6,
        }
    return results


def main() -> str:
    results = run()
    rows = [
        [net, MODEL_TYPES[net], v["layers"], v["gmacs"], v["mparams"]]
        for net, v in results.items()
    ]
    table = format_table(
        ["network", "type", "layers", "GMACs", "Mparams"],
        rows,
        title="Fig. 12 (left) -- benchmark workloads",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
