"""Fig. 13: BitWave speedup breakdown (Dense -> +DF -> +SM -> +BF).

Paper claims: dataflow helps MobileNetV2 most (2.57x); SM adds 1.31x /
1.58x / 1.75x on ResNet18 / MobileNetV2 / CNN-LSTM but only 1.06x on
Bert-Base; Bit-Flip then unlocks a further ~2.7x on Bert-Base.
"""

from __future__ import annotations

from repro.arch import DEFAULT_ARCH
from repro.eval.grids import BREAKDOWN_VARIANTS, breakdown_grid
from repro.utils.tables import format_table
from repro.workloads.nets import NETWORKS


def run(networks: tuple[str, ...] = NETWORKS,
        arch: str = DEFAULT_ARCH) -> dict[str, dict[str, float]]:
    """``network -> {variant: speedup over Dense}``."""
    grid = breakdown_grid(networks, arch=arch)
    results: dict[str, dict[str, float]] = {}
    for net in networks:
        dense = grid[("Dense", net)].total_cycles
        results[net] = {
            variant: dense / grid[(variant, net)].total_cycles
            for variant in BREAKDOWN_VARIANTS
        }
    return results


def main() -> str:
    results = run()
    rows = [
        [net] + [speedups[v] for v in BREAKDOWN_VARIANTS]
        for net, speedups in results.items()
    ]
    table = format_table(
        ["network"] + list(BREAKDOWN_VARIANTS),
        rows,
        title="Fig. 13 -- BitWave speedup breakdown (vs Dense, higher is better)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
