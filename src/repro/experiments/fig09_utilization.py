"""Fig. 9: PE utilization of fixed SUs across layer-shape classes.

Evaluates XY-, CK- and XFx-parallel fixed unrollings on the four
workload cases of the paper (early layer, late layer, depthwise conv,
pointwise conv) for both the 4096-lane bit-serial array and the 512-PE
bit-parallel array.

Paper claims: no fixed SU exceeds 80% utilization on every case, and
the larger array under-utilizes more severely.
"""

from __future__ import annotations

from repro.model.mapping import SpatialUnrolling
from repro.utils.tables import format_table
from repro.workloads.spec import LayerSpec

#: The paper's four workload cases.
CASES = {
    "early (ResNet18 conv1)": LayerSpec(
        "conv1", "resnet18", "conv", k=64, c=3, ox=112, oy=112, fx=7, fy=7),
    "late (ResNet18 last conv)": LayerSpec(
        "layer4.1.conv2", "resnet18", "conv", k=512, c=512, ox=7, oy=7,
        fx=3, fy=3),
    "depthwise (MobileNetV2 dwcv1)": LayerSpec(
        "dwcv1", "mobilenetv2", "dwconv", k=32, c=1, ox=112, oy=112,
        fx=3, fy=3),
    "pointwise (MobileNetV2 pwcv1)": LayerSpec(
        "pwcv1", "mobilenetv2", "pwconv", k=16, c=32, ox=112, oy=112),
}

#: Fixed SUs per array size: XY / CK / XFx parallelism styles.
SUS_4096 = (
    SpatialUnrolling("XY-4096", {"OX": 32, "OY": 16, "K": 8}),
    SpatialUnrolling("CK-4096", {"C": 64, "K": 64}),
    SpatialUnrolling("XFx-4096", {"OX": 64, "FX": 8, "K": 8}),
)
SUS_512 = (
    SpatialUnrolling("XY-512", {"OX": 16, "OY": 8, "K": 4}),
    SpatialUnrolling("CK-512", {"C": 16, "K": 32}),
    SpatialUnrolling("XFx-512", {"OX": 16, "FX": 4, "K": 8}),
)


def run() -> dict[str, dict[str, float]]:
    """``SU name -> {case: utilization}`` for all six fixed SUs."""
    results: dict[str, dict[str, float]] = {}
    for su in SUS_4096 + SUS_512:
        results[su.name] = {
            case: su.utilization(spec) for case, spec in CASES.items()
        }
    return results


def main() -> str:
    results = run()
    rows = [
        [name] + [values[case] for case in CASES]
        for name, values in results.items()
    ]
    table = format_table(
        ["SU"] + list(CASES),
        rows,
        title="Fig. 9 -- PE utilization, fixed SUs across layer classes",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
