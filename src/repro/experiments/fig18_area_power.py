"""Fig. 18: BitWave area and power breakdown.

Paper claims: 512 KB SRAM takes 55.08% of the 1.138 mm^2 area; the PE
array takes 57.6% of the 17.56 mW power; the data dispatcher's dataflow
flexibility costs 10.8% area / 24.4% power.
"""

from __future__ import annotations

from repro.arch import ArchSpec, default_arch
from repro.utils.tables import format_table


def run(arch: "ArchSpec | None" = None) -> dict[str, dict[str, float]]:
    """Component area/power at ``arch``'s system scale (n_bce, sram_kb)."""
    spec = arch if arch is not None else default_arch()
    return {
        "area_mm2": spec.area_breakdown(),
        "power_mw": spec.power_breakdown(),
    }


def main() -> str:
    results = run()
    components = sorted(results["area_mm2"])
    rows = [
        [c, results["area_mm2"][c], results["power_mw"].get(c, 0.0)]
        for c in components
    ]
    rows.append(["TOTAL", sum(results["area_mm2"].values()),
                 sum(results["power_mw"].values())])
    table = format_table(
        ["component", "area (mm2)", "power (mW)"],
        rows,
        title="Fig. 18 -- BitWave area and power breakdown",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
