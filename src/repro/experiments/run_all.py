"""Run every experiment harness and print all tables in paper order.

Usage: python -m repro.experiments.run_all [--fast]

``--fast`` skips the inference-based Fig. 6 harnesses (the slowest
part; everything else completes in about a minute after the sparsity
profiles are cached).
"""

from __future__ import annotations

import sys

from repro.experiments import (
    ablations,
    fig01_sparsity,
    fig04_bcs_2c_vs_sm,
    fig05_compression,
    fig09_utilization,
    fig12_workloads,
    fig13_breakdown,
    fig14_speedup,
    fig15_energy,
    fig16_energy_breakdown,
    fig17_efficiency,
    fig18_area_power,
    tab3_sota,
    tab4_pe_types,
    validation_sim_vs_model,
)

FAST_MODULES = (
    fig12_workloads,
    fig01_sparsity,
    fig04_bcs_2c_vs_sm,
    fig05_compression,
    fig09_utilization,
    fig13_breakdown,
    fig14_speedup,
    fig15_energy,
    fig16_energy_breakdown,
    fig17_efficiency,
    tab3_sota,
    fig18_area_power,
    tab4_pe_types,
    validation_sim_vs_model,
)


def main(fast: bool = False) -> None:
    for module in FAST_MODULES:
        module.main()
        print()
    if not fast:
        from repro.experiments import fig06_pareto, fig06_sensitivity

        fig06_sensitivity.main("resnet18")
        print()
        fig06_pareto.main("resnet18")
        print()
    ablations.main()


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
