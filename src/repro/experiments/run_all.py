"""Run every experiment harness and print all tables in paper order.

Usage: python -m repro.experiments.run_all [--fast] [--jobs N]

``--fast`` skips the inference-based Fig. 6 harnesses (the slowest
part; everything else completes in about a minute after the sparsity
profiles are cached).  ``--jobs N`` pre-warms the Fig. 13-17 / Tab. 3
evaluation grids through the DSE pool executor before the harnesses
run; results persist in the DSE result store, so repeated invocations
are incremental.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.eval.grids import prewarm_grids
from repro.experiments import (
    ablations,
    fig01_sparsity,
    fig04_bcs_2c_vs_sm,
    fig05_compression,
    fig09_utilization,
    fig12_workloads,
    fig13_breakdown,
    fig14_speedup,
    fig15_energy,
    fig16_energy_breakdown,
    fig17_efficiency,
    fig18_area_power,
    tab3_sota,
    tab4_pe_types,
    validation_sim_vs_model,
)
from repro.utils.progress import ProgressPrinter

FAST_MODULES = (
    fig12_workloads,
    fig01_sparsity,
    fig04_bcs_2c_vs_sm,
    fig05_compression,
    fig09_utilization,
    fig13_breakdown,
    fig14_speedup,
    fig15_energy,
    fig16_energy_breakdown,
    fig17_efficiency,
    tab3_sota,
    fig18_area_power,
    tab4_pe_types,
    validation_sim_vs_model,
)


def parse_args(argv: Sequence[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all",
        description="run every experiment harness in paper order",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="skip the inference-based Fig. 6 harnesses")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="pre-warm the evaluation grids on N worker processes "
             "through the DSE executor (0 = all CPUs; default 1)")
    return parser.parse_args(argv)


def main(fast: bool = False, jobs: int = 1) -> None:
    if jobs != 1:
        prewarm_grids(jobs=jobs, progress=ProgressPrinter())
    for module in FAST_MODULES:
        module.main()
        print()
    if not fast:
        from repro.experiments import fig06_pareto, fig06_sensitivity

        fig06_sensitivity.main("resnet18")
        print()
        fig06_pareto.main("resnet18")
        print()
    ablations.main()


if __name__ == "__main__":
    args = parse_args()
    main(fast=args.fast, jobs=args.jobs)
