"""Fig. 4: bit-column sparsity, 2's complement vs sign-magnitude.

Paper claim (ResNet18 conv2, groups of 4 consecutive input channels):
~20% value zeros yield only 17% zero columns in 2C, but switching to SM
lifts column sparsity to 59% -- a ~3.4x improvement.
"""

from __future__ import annotations

from repro.core.bitcolumn import column_sparsity, value_sparsity
from repro.utils.tables import format_table
from repro.workloads.nets import network_layers
from repro.workloads.synthetic import synthetic_weights

CONV2_LAYER = "layer1.0.conv1"  # ResNet18's second conv ("conv2")
GROUP_SIZE = 4


def run(layer_name: str = CONV2_LAYER,
        group_size: int = GROUP_SIZE) -> dict[str, float]:
    spec = next(s for s in network_layers("resnet18")
                if s.name == layer_name)
    weights = synthetic_weights(spec)
    cs_2c = column_sparsity(weights, group_size, "2c")
    cs_sm = column_sparsity(weights, group_size, "sm")
    return {
        "value_sparsity": value_sparsity(weights),
        "column_sparsity_2c": cs_2c,
        "column_sparsity_sm": cs_sm,
        "improvement": cs_sm / cs_2c if cs_2c else float("inf"),
    }


def main() -> str:
    result = run()
    table = format_table(
        ["metric", "value"],
        [[k, v] for k, v in result.items()],
        title=f"Fig. 4 -- ResNet18 {CONV2_LAYER}, G={GROUP_SIZE}",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
