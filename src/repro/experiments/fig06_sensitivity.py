"""Fig. 6(a)-(d): layer-wise weight-flipping sensitivity.

For each layer of a benchmark model, flip that layer alone to 1..7 zero
columns and measure the fidelity proxy against the untouched model.
Paper claims: most layers tolerate < 4 zero columns with negligible
degradation; early (weight-light) layers are more sensitive than late
(weight-heavy) layers.

Runs on the ``tiny`` model presets (inference-based experiment;
substitution documented in DESIGN.md §2).
"""

from __future__ import annotations

from repro.core.bitflip import flip_layer
from repro.models import BUILDERS
from repro.models.fidelity import make_evaluator

ZERO_COLUMN_RANGE = tuple(range(1, 8))


def run(
    network: str = "resnet18",
    group_size: int = 16,
    zero_columns: tuple[int, ...] = ZERO_COLUMN_RANGE,
    batch: int = 8,
    layers: list[str] | None = None,
) -> dict[str, dict[int, float]]:
    """``layer -> {zero_columns: fidelity}`` sensitivity curves."""
    model = BUILDERS[network]("tiny")
    inputs = model.sample_inputs(batch)
    evaluate = make_evaluator(model, inputs)
    base_weights = model.weights_int8()
    selected = layers if layers is not None else list(base_weights)

    curves: dict[str, dict[int, float]] = {}
    for name in selected:
        curves[name] = {}
        for z in zero_columns:
            candidate = dict(base_weights)
            candidate[name] = flip_layer(
                base_weights[name], z, group_size).weights
            curves[name][z] = evaluate(candidate)
    return curves


def main(network: str = "resnet18") -> str:
    from repro.utils.tables import format_table

    curves = run(network)
    rows = [
        [layer] + [scores[z] for z in ZERO_COLUMN_RANGE]
        for layer, scores in curves.items()
    ]
    table = format_table(
        ["layer"] + [f"z={z}" for z in ZERO_COLUMN_RANGE],
        rows,
        title=f"Fig. 6 -- {network} layer-wise flip sensitivity (tiny preset)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
