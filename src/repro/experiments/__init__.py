"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run()`` returning structured results and
``main()`` printing the same rows/series the paper reports.  The
benchmark suite under ``benchmarks/`` wraps these harnesses with
pytest-benchmark; EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments import common

__all__ = ["common"]
