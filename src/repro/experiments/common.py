"""Deprecated shared-evaluation helpers (shims over :mod:`repro.eval`).

The Fig. 13-17 harnesses now consume :mod:`repro.eval.grids` directly;
these wrappers keep the historical ``experiments.common`` signatures
working -- same :class:`NetworkEvaluation` return type, same
memo-identity semantics -- while emitting ``DeprecationWarning``.  Each
call round-trips the same store-backed cache as the new API (the shim
test pins the outputs equal), so mixing old and new callers stays
incremental.
"""

from __future__ import annotations

import warnings
from typing import Callable

from repro.accelerators import SOTA_ACCELERATORS
from repro.accelerators.base import NetworkEvaluation
from repro.dse.executor import CampaignRun
from repro.dse.spec import EvalPoint
from repro.dse.store import ResultStore
from repro.eval import api as _eval_api
from repro.eval import grids as _grids
from repro.eval.registry import get_backend
from repro.eval.result import to_network_evaluation
from repro.workloads.nets import NETWORKS

#: The Fig. 13 ablation ladder, in presentation order.
BREAKDOWN_VARIANTS = _grids.BREAKDOWN_VARIANTS

#: Per-process memo (config-hash key -> legacy evaluation object),
#: preserving the old object-identity guarantee across calls.
_MEMO: dict[str, NetworkEvaluation] = {}


def _deprecated(replacement: str) -> None:
    warnings.warn(
        f"repro.experiments.common is deprecated; use {replacement}",
        DeprecationWarning, stacklevel=3)


def default_store() -> ResultStore | None:
    """The process-wide result store, or ``None`` if it is unusable
    (e.g. a read-only filesystem -- evaluation then simply skips
    persistence)."""
    return _eval_api.default_store(get_backend("model"))


def reset_cache() -> None:
    """Drop the per-process memo and store handle (used by tests)."""
    _MEMO.clear()
    _eval_api.reset_cache()


def cached_evaluation(point: EvalPoint) -> NetworkEvaluation:
    """Deprecated: evaluate ``point`` through :func:`repro.eval.evaluate`."""
    _deprecated("repro.eval.evaluate(point.request())")
    return _legacy(point)


def _legacy(point: EvalPoint) -> NetworkEvaluation:
    """Memoized legacy view of the canonical cached result."""
    key = point.key()
    if key not in _MEMO:
        _MEMO[key] = to_network_evaluation(_eval_api.evaluate(point.request()))
    return _MEMO[key]


def sota_evaluation(accelerator: str, network: str) -> NetworkEvaluation:
    _deprecated("repro.eval.grids.evaluation(network, accelerator)")
    return _legacy(EvalPoint(accelerator, network))


def breakdown_evaluation(variant: str, network: str) -> NetworkEvaluation:
    _deprecated("repro.eval.grids.evaluation(network, 'BitWave', variant)")
    return _legacy(EvalPoint("BitWave", network, variant=variant))


def prewarm_grids(
    networks: tuple[str, ...] = NETWORKS,
    jobs: int = 1,
    progress: Callable[..., None] | None = None,
) -> CampaignRun | None:
    """Deprecated: see :func:`repro.eval.grids.prewarm_grids`."""
    _deprecated("repro.eval.grids.prewarm_grids(...)")
    return _grids.prewarm_grids(networks=networks, jobs=jobs,
                                progress=progress)


def sota_grid(
    networks: tuple[str, ...] = NETWORKS,
    accelerators: tuple[str, ...] | None = None,
) -> dict[tuple[str, str], NetworkEvaluation]:
    """Deprecated: see :func:`repro.eval.grids.sota_grid`."""
    _deprecated("repro.eval.grids.sota_grid(...)")
    accelerators = SOTA_ACCELERATORS if accelerators is None else accelerators
    return {
        (acc, net): _legacy(EvalPoint(acc, net))
        for net in networks
        for acc in accelerators
    }


def breakdown_grid(
    networks: tuple[str, ...] = NETWORKS,
    variants: tuple[str, ...] = BREAKDOWN_VARIANTS,
) -> dict[tuple[str, str], NetworkEvaluation]:
    """Deprecated: see :func:`repro.eval.grids.breakdown_grid`."""
    _deprecated("repro.eval.grids.breakdown_grid(...)")
    return {
        (variant, net): _legacy(EvalPoint("BitWave", net, variant=variant))
        for net in networks
        for variant in variants
    }


def all_sota_evaluations() -> dict[tuple[str, str], NetworkEvaluation]:
    _deprecated("repro.eval.grids.sota_grid()")
    return {
        (acc, net): _legacy(EvalPoint(acc, net))
        for net in NETWORKS
        for acc in SOTA_ACCELERATORS
    }
