"""Shared, cached accelerator evaluations for the experiment harnesses.

The Fig. 13-17 harnesses all consume the same 6 accelerators x 4
networks evaluation grid; computing it once per process keeps the
benchmark suite affordable.
"""

from __future__ import annotations

from functools import lru_cache

from repro.accelerators import SOTA_ACCELERATORS, build_accelerator
from repro.accelerators.base import NetworkEvaluation
from repro.accelerators.bitwave import BitWave
from repro.workloads.nets import NETWORKS

#: The Fig. 13 ablation ladder, in presentation order.
BREAKDOWN_VARIANTS = ("Dense", "+DF", "+DF+SM", "+DF+SM+BF")


@lru_cache(maxsize=None)
def sota_evaluation(accelerator: str, network: str) -> NetworkEvaluation:
    return build_accelerator(accelerator).evaluate_network(network)


@lru_cache(maxsize=None)
def _breakdown_accelerator(variant: str) -> BitWave:
    configs = {
        "Dense": ("fixed", "dense", False),
        "+DF": ("dynamic", "dense", False),
        "+DF+SM": ("dynamic", "sm", False),
        "+DF+SM+BF": ("dynamic", "sm", True),
    }
    dataflow, columns, bitflip = configs[variant]
    return BitWave(dataflow, columns, bitflip)


@lru_cache(maxsize=None)
def breakdown_evaluation(variant: str, network: str) -> NetworkEvaluation:
    return _breakdown_accelerator(variant).evaluate_network(network)


def all_sota_evaluations() -> dict[tuple[str, str], NetworkEvaluation]:
    return {
        (acc, net): sota_evaluation(acc, net)
        for acc in SOTA_ACCELERATORS
        for net in NETWORKS
    }
