"""Shared accelerator evaluations for the experiment harnesses.

The Fig. 13-17 harnesses all consume the same 6 accelerators x 4
networks evaluation grid (plus the Fig. 13 BitWave ablation ladder).
Grids are sourced from the :mod:`repro.dse` engine: every evaluation
round-trips the persistent result store, so repeated harness runs --
including across processes -- are incremental, and ``--jobs N`` can
pre-warm the grid on a process pool.  A per-process memo on top keeps
object identity and avoids repeated deserialization.
"""

from __future__ import annotations

from repro.accelerators import BITWAVE_VARIANTS, SOTA_ACCELERATORS
from repro.accelerators.base import NetworkEvaluation
from repro.dse.executor import CampaignRun, evaluate_point, run_campaign
from repro.dse.records import make_record
from repro.dse.spec import CampaignSpec, EvalPoint
from repro.dse.store import ResultStore
from repro.workloads.nets import NETWORKS

#: The Fig. 13 ablation ladder, in presentation order.
BREAKDOWN_VARIANTS = BITWAVE_VARIANTS

#: Per-process memo (config-hash key -> evaluation).
_MEMO: dict[str, NetworkEvaluation] = {}
_STORE: ResultStore | None = None
_STORE_BROKEN = False


def default_store() -> ResultStore | None:
    """The process-wide result store, or ``None`` if it is unusable
    (e.g. a read-only filesystem -- evaluation then simply skips
    persistence)."""
    global _STORE, _STORE_BROKEN
    if _STORE_BROKEN:
        return None
    if _STORE is None:
        _STORE = ResultStore()
    return _STORE


def reset_cache() -> None:
    """Drop the per-process memo and store handle (used by tests)."""
    global _STORE, _STORE_BROKEN
    _MEMO.clear()
    _STORE = None
    _STORE_BROKEN = False


def cached_evaluation(point: EvalPoint) -> NetworkEvaluation:
    """Evaluate ``point`` through memo -> store -> compute."""
    global _STORE_BROKEN
    key = point.key()
    if key in _MEMO:
        return _MEMO[key]
    store = default_store()
    evaluation = store.evaluation(key) if store is not None else None
    if evaluation is None:
        evaluation = evaluate_point(point)
        if store is not None:
            try:
                store.put(key, make_record(point, evaluation))
            except OSError:
                _STORE_BROKEN = True
    _MEMO[key] = evaluation
    return evaluation


def sota_evaluation(accelerator: str, network: str) -> NetworkEvaluation:
    return cached_evaluation(EvalPoint(accelerator, network))


def breakdown_evaluation(variant: str, network: str) -> NetworkEvaluation:
    return cached_evaluation(EvalPoint("BitWave", network, variant=variant))


def prewarm_grids(
    networks: tuple[str, ...] = NETWORKS,
    jobs: int = 1,
    progress=None,
) -> CampaignRun | None:
    """Populate store + memo for the full Fig. 13-17 grids, optionally
    in parallel.  Returns ``None`` when no store is available (parallel
    results could not be handed back to this process's memo cheaply, so
    the harnesses would recompute serially anyway)."""
    store = default_store()
    if store is None:
        return None
    spec = CampaignSpec(
        name="experiments-grid",
        accelerators=SOTA_ACCELERATORS,
        networks=networks,
        variants=BREAKDOWN_VARIANTS,
    )
    run = run_campaign(spec, store, jobs=jobs, progress=progress)
    _MEMO.update(run.results)
    return run


def sota_grid(
    networks: tuple[str, ...] = NETWORKS,
    accelerators: tuple[str, ...] | None = None,
) -> dict[tuple[str, str], NetworkEvaluation]:
    """``(accelerator, network) -> evaluation`` for a sub-grid."""
    accelerators = SOTA_ACCELERATORS if accelerators is None else accelerators
    return {
        (acc, net): sota_evaluation(acc, net)
        for net in networks
        for acc in accelerators
    }


def breakdown_grid(
    networks: tuple[str, ...] = NETWORKS,
    variants: tuple[str, ...] = BREAKDOWN_VARIANTS,
) -> dict[tuple[str, str], NetworkEvaluation]:
    """``(variant, network) -> evaluation`` for the ablation ladder."""
    return {
        (variant, net): breakdown_evaluation(variant, net)
        for net in networks
        for variant in variants
    }


def all_sota_evaluations() -> dict[tuple[str, str], NetworkEvaluation]:
    return sota_grid()
