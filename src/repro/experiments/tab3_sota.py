"""Table III: state-of-the-art specification comparison.

Reports BitWave's system point from the calibrated area/power model
next to the published specifications of the compared accelerators.
Paper claims for the BitWave column: 16 nm, 250 MHz, 0.8 V, 17.56 mW,
215.6 GOPS peak, 12.21 TOPS/W, 1.138 mm^2.
"""

from __future__ import annotations

from repro.model.area import TABLE_III_ROWS, system_specs
from repro.utils.tables import format_table


def run() -> dict[str, dict[str, object]]:
    specs = system_specs()
    rows: dict[str, dict[str, object]] = {
        name: dict(values) for name, values in TABLE_III_ROWS.items()
    }
    rows["BitWave"] = {
        "tech_nm": specs.technology_nm,
        "area_mm2": specs.area_mm2,
        "power_w": specs.power_mw / 1000.0,
        "sparsity": "W. bit",
        "frequency_mhz": specs.frequency_mhz,
        "peak_gops": specs.peak_gops,
        "tops_per_w": specs.energy_efficiency_tops_w,
        "area_efficiency": specs.area_efficiency_gops_w_mm2,
    }
    return rows


def main() -> str:
    rows = run()
    table_rows = []
    for name, values in rows.items():
        table_rows.append([
            name,
            values.get("tech_nm", "-"),
            values.get("area_mm2", "-"),
            values.get("power_w") if values.get("power_w") is not None else "-",
            values.get("sparsity", "-"),
            values.get("peak_gops", "-"),
            values.get("tops_per_w", "-"),
        ])
    table = format_table(
        ["design", "tech (nm)", "area (mm2)", "power (W)",
         "sparsity", "peak GOPS", "TOPS/W"],
        table_rows,
        title="Table III -- SotA specification comparison",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
