"""Ablation studies for the design choices DESIGN.md calls out.

Beyond the paper's own figures, these sweeps isolate the sensitivity of
BitWave's gains to its main design parameters:

- **group size** -- the CR/skipping trade-off behind Table I's
  layer-wise tunable column sizes;
- **sync domain** -- how many column groups advance in lockstep; the
  load-imbalance mechanism Bit-Flip exists to neutralize;
- **DRAM bandwidth** -- where each network crosses from memory- to
  compute-bound (why Bit-Flip is BERT's lever but not ResNet18's);
- **Bit-Flip depth** -- speedup and compression vs weight distortion;
- **BERT token size** -- how the BitWave-vs-HUAA gap evolves as the
  workload gains arithmetic intensity;
- **dense-mode precision** -- the ZCIP dense mode's precision scaling
  (Stripes-style scaling on the BitWave array).
"""

from __future__ import annotations

from repro.accelerators.bitwave import BitWave
from repro.accelerators.huaa import HUAA
from repro.arch import DEFAULT_ARCH, parse_arch
from repro.eval.backends import model_network_evaluation
from repro.sparsity.profiles import network_weight_stats
from repro.sparsity.stats import LayerWeightStats
from repro.workloads.nets import bert_base_layers, network_layers


def group_size_ablation(network: str = "resnet18") -> dict[int, dict[str, float]]:
    """Weight-count-weighted CR and mean cycles/group per group size."""
    stats = network_weight_stats(network)
    total = sum(s.weight_count for s in stats.values())
    results: dict[int, dict[str, float]] = {}
    for g in (8, 16, 32):
        cr = sum(s.bcs_cr[g] * s.weight_count for s in stats.values()) / total
        cycles = sum(
            s.mean_nz_columns(g) * s.weight_count for s in stats.values()
        ) / total
        results[g] = {"cr": cr, "mean_cycles_per_group": cycles}
    return results


def sync_domain_ablation(
    network: str = "resnet18",
    domains: tuple[int, ...] = (1, 2, 8, 32, 128),
    group_size: int = 8,
) -> dict[int, float]:
    """Effective cycles/group vs lockstep-domain size (weighted mean).

    Domain 1 is the skew-free ideal (mean non-zero columns); larger
    domains converge to the worst group in every fetch -- the imbalance
    Bit-Flip's equal-zero-column constraint removes.
    """
    stats = network_weight_stats(network)
    total = sum(s.weight_count for s in stats.values())
    results: dict[int, float] = {}
    for m in domains:
        results[m] = sum(
            s.expected_max_nz_columns(group_size, m) * s.weight_count
            for s in stats.values()
        ) / total
    return results


def dram_bandwidth_ablation(
    network: str = "bert_base",
    widths: tuple[int, ...] = (64, 128, 256, 512, 1024, 2048),
) -> dict[int, dict[str, float]]:
    """Total cycles and the compute-bound layer fraction vs DRAM width."""
    results: dict[int, dict[str, float]] = {}
    for bits in widths:
        arch = parse_arch(f"{DEFAULT_ARCH}@dram_bits={bits}")
        evaluation = model_network_evaluation(BitWave(arch=arch), network)
        dram = sum(layer.latency.dram_cycles for layer in evaluation.layers)
        results[bits] = {
            "total_cycles": evaluation.total_cycles,
            "dram_fraction": dram / evaluation.total_cycles,
        }
    return results


def bitflip_depth_ablation(
    network: str = "bert_base",
    targets: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6),
    group_size: int = 16,
) -> dict[int, dict[str, float]]:
    """Speedup (vs unflipped), network CR and cycle cap vs flip depth."""
    base_stats = network_weight_stats(network)
    specs = network_layers(network)

    def evaluate(stats_map: dict[str, LayerWeightStats]) -> float:
        acc = BitWave(bitflip=False)  # strategy applied via stats_map
        return acc.evaluate_workload(specs, stats_map, network).total_cycles

    base_cycles = evaluate(base_stats)
    total_weights = sum(s.weight_count for s in base_stats.values())
    results: dict[int, dict[str, float]] = {}
    for z in targets:
        flipped = {name: s.with_bitflip(z) for name, s in base_stats.items()}
        cycles = evaluate(flipped)
        cr = sum(s.bcs_cr[group_size] * s.weight_count
                 for s in flipped.values()) / total_weights
        results[z] = {"speedup": base_cycles / cycles, "cr": cr}
    return results


def bert_token_ablation(
    tokens: tuple[int, ...] = (4, 16, 64, 256),
) -> dict[int, dict[str, float]]:
    """BitWave vs HUAA on BERT-Base as token count grows.

    At token size 4 the workload is weight-traffic bound and BitWave's
    compression dominates; with more tokens arithmetic intensity rises
    and the gap settles toward the pure compute advantage.
    """
    stats = network_weight_stats("bert_base")
    results: dict[int, dict[str, float]] = {}
    for t in tokens:
        specs = bert_base_layers(tokens=t)
        bitwave = BitWave().evaluate_workload(
            specs, BitWave().layer_stats("bert_base"), f"bert@{t}")
        huaa = HUAA().evaluate_workload(specs, stats, f"bert@{t}")
        results[t] = {
            "bitwave_cycles": bitwave.total_cycles,
            "huaa_cycles": huaa.total_cycles,
            "speedup_vs_huaa": huaa.total_cycles / bitwave.total_cycles,
        }
    return results


def dense_precision_ablation(
    network: str = "resnet18",
    precisions: tuple[int, ...] = (8, 6, 4, 2),
) -> dict[int, float]:
    """ZCIP dense-mode precision scaling: speedup vs 8-bit dense."""
    base = model_network_evaluation(
        BitWave(columns="dense", bitflip=False), network)
    results: dict[int, float] = {}
    for bits in precisions:
        acc = BitWave(columns="dense", bitflip=False, dense_precision=bits)
        results[bits] = base.total_cycles / \
            model_network_evaluation(acc, network).total_cycles
    return results


def main() -> None:
    from repro.utils.tables import format_table

    print(format_table(
        ["G", "network CR", "mean cycles/group"],
        [[g, v["cr"], v["mean_cycles_per_group"]]
         for g, v in group_size_ablation().items()],
        title="Ablation: group size (ResNet18)"))
    print()
    print(format_table(
        ["sync domain", "effective cycles/group"],
        list(sync_domain_ablation().items()),
        title="Ablation: lockstep sync-domain size (ResNet18, G=8)"))
    print()
    print(format_table(
        ["DRAM bits/cycle", "Mcycles", "DRAM cycle share"],
        [[w, v["total_cycles"] / 1e6, v["dram_fraction"]]
         for w, v in dram_bandwidth_ablation().items()],
        title="Ablation: DRAM bandwidth (BERT-Base)"))
    print()
    print(format_table(
        ["zero-column target", "speedup", "network CR"],
        [[z, v["speedup"], v["cr"]]
         for z, v in bitflip_depth_ablation().items()],
        title="Ablation: Bit-Flip depth (BERT-Base)"))
    print()
    print(format_table(
        ["tokens", "BitWave Mcycles", "HUAA Mcycles", "speedup"],
        [[t, v["bitwave_cycles"] / 1e6, v["huaa_cycles"] / 1e6,
          v["speedup_vs_huaa"]]
         for t, v in bert_token_ablation().items()],
        title="Ablation: BERT token size (BitWave vs HUAA)"))
    print()
    print(format_table(
        ["precision (bits)", "speedup vs 8b dense"],
        list(dense_precision_ablation().items()),
        title="Ablation: ZCIP dense-mode precision scaling (ResNet18)"))


if __name__ == "__main__":
    main()
