"""Fig. 6(e)-(h): compression ratio vs accuracy -- PTQ vs SM vs SM+Bit-Flip.

Reproduces the three curves the paper compares per network:

- **Int8+PTQ**: quantize every layer to fewer bits (CR = 8/bits);
- **Int8+SM**: lossless BCS compression of the unmodified weights
  (a single point: CR at fidelity 1.0);
- **Int8+SM+BF**: Bit-Flip the paper's target layers to increasing
  zero-column counts and measure CR and fidelity.

Paper claims: the lossless SM point beats PTQ at equal CR, and SM+BF
dominates PTQ across the curve (e.g. ResNet18 reaches CR ~2x within
0.5% accuracy drop).

Runs on the ``tiny`` model presets.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitflip import flip_layer
from repro.core.compression import bcs_compress
from repro.models import BUILDERS
from repro.models.fidelity import make_evaluator
from repro.quant.qtensor import QTensor
from repro.quant.quantizer import ptq_reduce_bits

GROUP_SIZE = 16

#: Flip-sensitive layers spared by the Bit-Flip curve, mirroring the
#: paper's layer-aware strategies (first convs stay untouched).
SENSITIVE_LAYERS = {
    "resnet18": ("conv1",),
    "mobilenetv2": ("L.0",),
    "cnn_lstm": (),
    "bert_base": (),
}


def _network_cr(weights: dict[str, np.ndarray], group_size: int) -> float:
    total_orig = 0
    total_comp = 0
    for tensor in weights.values():
        compressed = bcs_compress(tensor, group_size)
        total_orig += compressed.original_bits
        total_comp += compressed.compressed_bits
    return total_orig / total_comp


def run(
    network: str = "resnet18",
    batch: int = 8,
    zero_columns: tuple[int, ...] = (2, 3, 4, 5, 6),
    ptq_bits: tuple[int, ...] = (7, 6, 5, 4, 3),
) -> dict[str, list[tuple[float, float]]]:
    """Three labelled ``(CR, fidelity)`` series."""
    model = BUILDERS[network]("tiny")
    inputs = model.sample_inputs(batch)
    evaluate = make_evaluator(model, inputs)
    base = model.weights_int8()

    series: dict[str, list[tuple[float, float]]] = {
        "Int8+PTQ": [], "Int8+SM": [], "Int8+SM+BF": [],
    }

    # Lossless SM point.
    series["Int8+SM"].append((_network_cr(base, GROUP_SIZE), evaluate(base)))

    # PTQ curve: uniform bit reduction; packed CR is exactly 8/bits.
    for bits in ptq_bits:
        candidate = {
            name: ptq_reduce_bits(QTensor(w, 1.0), bits).values
            for name, w in base.items()
        }
        series["Int8+PTQ"].append((8.0 / bits, evaluate(candidate)))

    # Bit-Flip curve: flip everything except the sensitive layers.
    spared = set(SENSITIVE_LAYERS.get(network, ()))
    for z in zero_columns:
        candidate = {
            name: w if name in spared else flip_layer(w, z, GROUP_SIZE).weights
            for name, w in base.items()
        }
        series["Int8+SM+BF"].append(
            (_network_cr(candidate, GROUP_SIZE), evaluate(candidate)))
    return series


def main(network: str = "resnet18") -> str:
    from repro.utils.tables import format_table

    series = run(network)
    rows = []
    for label, points in series.items():
        for cr, fidelity in points:
            rows.append([label, cr, fidelity])
    table = format_table(
        ["series", "CR", "fidelity"],
        rows,
        title=f"Fig. 6(e)-(h) -- {network} CR vs accuracy (tiny preset)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
