"""Section V-B validation: analytical model vs datapath simulator.

The paper validates its analytical performance model against BitWave's
RTL at <6% deviation.  We reproduce the methodology with the structural
simulator standing in for RTL: run a suite of fully-connected layers
through :class:`repro.sim.BitWaveNPU` and compare the measured compute
cycles against the analytical cycle model.
"""

from __future__ import annotations

import numpy as np

from repro.sim.npu import BitWaveNPU, SEGMENT_KERNELS
from repro.sparsity.stats import compute_layer_stats
from repro.utils.rng import seeded_rng
from repro.utils.tables import format_table

#: (K, C, contexts) suite; kept small because the simulator is
#: structural, not vectorized for throughput.
VALIDATION_SUITE = (
    (32, 64, 16),
    (64, 128, 16),
    (16, 256, 8),
    (64, 64, 32),
    (128, 96, 16),
)


def _weights(k: int, c: int) -> np.ndarray:
    rng = seeded_rng("validation", k, c)
    return np.clip(np.round(rng.laplace(0, 11, (k, c))), -127, 127).astype(
        np.int8)


def run(group_size: int = 8, ku: int = 32, oxu: int = 16) -> list[dict]:
    results = []
    for k, c, n in VALIDATION_SUITE:
        weights = _weights(k, c)
        acts = seeded_rng("validation-acts", k, c).integers(
            -128, 128, (n, c)).astype(np.int32)
        run_ = BitWaveNPU(group_size=group_size, ku=ku, oxu=oxu).run_fc(
            weights, acts)

        stats = compute_layer_stats(weights)
        sync_domain = max(64 // group_size, 1)
        cpm = stats.expected_max_nz_columns(group_size, sync_domain)
        n_segments = -(-k // SEGMENT_KERNELS) * -(-c // group_size)
        contexts = -(-n // oxu)
        streams = max(ku // SEGMENT_KERNELS, 1)
        analytic = n_segments * cpm / streams * contexts

        deviation = abs(run_.compute_cycles - analytic) / run_.compute_cycles
        results.append({
            "layer": f"K{k}xC{c}xN{n}",
            "simulated_cycles": run_.compute_cycles,
            "analytic_cycles": analytic,
            "deviation": deviation,
        })
    return results


def main() -> str:
    results = run()
    rows = [
        [r["layer"], r["simulated_cycles"], r["analytic_cycles"],
         f"{100 * r['deviation']:.2f}%"]
        for r in results
    ]
    table = format_table(
        ["layer", "simulated", "analytic", "deviation"],
        rows,
        title="Model-vs-simulator validation (paper: <6% vs RTL)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
