"""Section V-B validation: a thin model-vs-sim backend diff.

The paper validates its analytical performance model against BitWave's
RTL at <6% deviation.  We reproduce the methodology with the structural
simulator standing in for RTL: run a suite of fully-connected *and*
convolution layers through :class:`repro.sim.BitWaveNPU` and compare
the measured compute cycles against the analytical cycle model.

Both halves of the comparison live in :mod:`repro.eval` now -- the
simulator lowering and the matched analytical formula are
:func:`repro.eval.lowering.analytic_compute_cycles` /
:func:`repro.eval.lowering.model_vs_sim_deviation`, the same code every
``sim-*`` backend result reports its per-layer deviation with -- so
this harness only owns the suite definition (cases, weights) and the
diff table.

The suite mixes synthetic FC shapes with layers drawn from the real
workload spec tables (:mod:`repro.workloads.nets`): the FC heads of
ResNet18/MobileNetV2, a BERT-Base attention projection, and two
convolutions whose kernel geometry (K, C, FY, FX) comes straight from
the ResNet18/MobileNetV2 layer tables (run at a reduced spatial extent
so the whole suite stays interactive on the vectorized backend).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.lowering import analytic_compute_cycles, model_vs_sim_deviation
from repro.sim.npu import BitWaveNPU
from repro.sparsity.stats import compute_layer_stats
from repro.utils.rng import seeded_rng
from repro.utils.tables import format_table
from repro.workloads.nets import network_layers
from repro.workloads.spec import LayerSpec


@dataclass(frozen=True)
class ValidationCase:
    """One suite entry: an FC matmul or an im2col'd convolution."""

    name: str
    kind: str  # "fc" | "conv"
    k: int
    c: int  #: input channels (conv) / reduction width (fc)
    contexts: int  #: fc batch rows, or conv input spatial extent (H = W)
    fy: int = 1
    fx: int = 1
    stride: int = 1
    padding: int = 0


def _spec_case(network: str, layer: str, contexts: int,
               padding: int = 0) -> ValidationCase:
    """Build a case from a real workload spec's kernel geometry."""
    spec: LayerSpec = next(
        s for s in network_layers(network) if s.name == layer)
    kind = "fc" if spec.kind == "fc" else "conv"
    return ValidationCase(
        name=f"{network}/{layer}", kind=kind, k=spec.k, c=spec.c,
        contexts=contexts, fy=spec.fy, fx=spec.fx, padding=padding)


def _suite() -> tuple[ValidationCase, ...]:
    synthetic = (
        ValidationCase("fc-32x64", "fc", 32, 64, 16),
        ValidationCase("fc-64x128", "fc", 64, 128, 16),
        ValidationCase("fc-16x256", "fc", 16, 256, 8),
        ValidationCase("fc-64x64", "fc", 64, 64, 32),
        ValidationCase("fc-128x96", "fc", 128, 96, 16),
    )
    from_specs = (
        _spec_case("resnet18", "fc", contexts=8),
        _spec_case("mobilenetv2", "fc", contexts=4),
        _spec_case("bert_base", "Layer.0.attention.query", contexts=4),
        # Convs at the papers' kernel geometry, reduced spatial extent.
        _spec_case("resnet18", "layer2.0.conv1", contexts=14, padding=1),
        _spec_case("mobilenetv2", "L.3", contexts=12),
    )
    return synthetic + from_specs


#: Validation suite; grown from five toy FC layers once the vectorized
#: backend made realistic shapes (and convolutions) cheap to simulate.
VALIDATION_SUITE = _suite()


def _weights(case: ValidationCase) -> np.ndarray:
    rng = seeded_rng("validation", case.k, case.c * case.fy * case.fx)
    shape = ((case.k, case.c) if case.kind == "fc"
             else (case.k, case.c, case.fy, case.fx))
    return np.clip(np.round(rng.laplace(0, 11, shape)), -127, 127).astype(
        np.int8)


def _activations(case: ValidationCase) -> np.ndarray:
    rng = seeded_rng("validation-acts", case.k, case.c * case.fy * case.fx)
    if case.kind == "fc":
        return rng.integers(-128, 128, (case.contexts, case.c)).astype(
            np.int32)
    return rng.integers(
        -128, 128, (1, case.c, case.contexts, case.contexts)).astype(
            np.int32)


def _im2col_weights(case: ValidationCase, weights: np.ndarray) -> np.ndarray:
    """The (K, FY*FX*C) matrix the conv path actually streams."""
    if case.kind == "fc":
        return weights
    return np.ascontiguousarray(weights.transpose(0, 2, 3, 1)).reshape(
        case.k, case.fy * case.fx * case.c)


def _output_rows(case: ValidationCase) -> int:
    """Output contexts the simulator serializes over OXu."""
    if case.kind == "fc":
        return case.contexts
    span = case.contexts + 2 * case.padding
    out_y = (span - case.fy) // case.stride + 1
    out_x = (span - case.fx) // case.stride + 1
    return out_y * out_x


def simulate_case(case: ValidationCase, group_size: int = 8, ku: int = 32,
                  oxu: int = 16, backend: str = "vectorized"):
    """Run one suite case through the structural simulator.

    This is the datapath half of the validation (what the benchmark
    times); :func:`run` adds the analytical-model half on top.
    """
    npu = BitWaveNPU(group_size=group_size, ku=ku, oxu=oxu, backend=backend)
    if case.kind == "fc":
        return npu.run_fc(_weights(case), _activations(case))
    return npu.run_conv(_weights(case), _activations(case),
                        stride=case.stride, padding=case.padding)


def run(group_size: int = 8, ku: int = 32, oxu: int = 16,
        backend: str = "vectorized") -> list[dict]:
    results = []
    for case in VALIDATION_SUITE:
        weights = _weights(case)
        run_ = simulate_case(case, group_size=group_size, ku=ku, oxu=oxu,
                             backend=backend)

        stats = compute_layer_stats(_im2col_weights(case, weights),
                                    group_sizes=(group_size,))
        analytic = analytic_compute_cycles(
            stats,
            k=case.k,
            reduction=case.c * case.fy * case.fx,
            rows=_output_rows(case),
            group_size=group_size,
            ku=ku,
            oxu=oxu,
        )
        deviation = model_vs_sim_deviation(run_.compute_cycles, analytic)
        results.append({
            "layer": case.name,
            "kind": case.kind,
            "simulated_cycles": int(run_.compute_cycles),
            "analytic_cycles": float(analytic),
            "deviation": float(deviation),
        })
    return results


def main() -> str:
    results = run()
    rows = [
        [r["layer"], r["kind"], r["simulated_cycles"],
         f"{r['analytic_cycles']:.1f}", f"{100 * r['deviation']:.2f}%"]
        for r in results
    ]
    table = format_table(
        ["layer", "kind", "simulated", "analytic", "deviation"],
        rows,
        title="Model-vs-simulator validation (paper: <6% vs RTL)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
