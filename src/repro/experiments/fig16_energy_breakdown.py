"""Fig. 16: BitWave's overall energy breakdown including off-chip DRAM.

Paper claim: DRAM energy dominates, especially for weight-intensive
networks where all weights must be loaded on chip at least once.
"""

from __future__ import annotations

from repro.arch import DEFAULT_ARCH
from repro.eval.grids import sota_grid
from repro.utils.tables import format_table
from repro.workloads.nets import NETWORKS

COMPONENTS = ("dram", "sram", "reg", "compute")


def run(networks: tuple[str, ...] = NETWORKS,
        arch: str = DEFAULT_ARCH) -> dict[str, dict[str, float]]:
    """``network -> component energy shares`` for BitWave."""
    grid = sota_grid(networks, accelerators=("BitWave",), arch=arch)
    return {
        net: grid[("BitWave", net)].energy_shares()
        for net in networks
    }


def main() -> str:
    results = run()
    rows = [
        [net] + [shares[c] for c in COMPONENTS]
        for net, shares in results.items()
    ]
    table = format_table(
        ["network"] + list(COMPONENTS),
        rows,
        title="Fig. 16 -- BitWave energy breakdown (shares)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
