"""Fig. 14: speedup vs SotA accelerators, normalized to SCNN.

Paper claims: BitWave fastest on every benchmark; 10.1x / 13.25x vs
SCNN on CNN-LSTM / Bert-Base; >2x vs Bitlet.
"""

from __future__ import annotations

from repro.accelerators import SOTA_ACCELERATORS
from repro.arch import DEFAULT_ARCH
from repro.eval.grids import sota_grid
from repro.utils.tables import format_table
from repro.workloads.nets import NETWORKS


def run(networks: tuple[str, ...] = NETWORKS,
        arch: str = DEFAULT_ARCH) -> dict[str, dict[str, float]]:
    """``network -> {accelerator: speedup vs SCNN}``."""
    grid = sota_grid(networks, arch=arch)
    results: dict[str, dict[str, float]] = {}
    for net in networks:
        scnn = grid[("SCNN", net)].total_cycles
        results[net] = {
            acc: scnn / grid[(acc, net)].total_cycles
            for acc in SOTA_ACCELERATORS
        }
    return results


def main() -> str:
    results = run()
    rows = [
        [net] + [speedups[acc] for acc in SOTA_ACCELERATORS]
        for net, speedups in results.items()
    ]
    table = format_table(
        ["network"] + list(SOTA_ACCELERATORS),
        rows,
        title="Fig. 14 -- speedup normalized to SCNN (higher is better)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
