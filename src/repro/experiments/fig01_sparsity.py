"""Fig. 1: weight value sparsity vs bit sparsity across Int8 networks.

Paper claim: bit sparsity in 2's complement is about an order of
magnitude above value sparsity (SR 5.67x-32.5x), and sign-magnitude
raises the ratio further (8.73x-47.5x).
"""

from __future__ import annotations

from repro.sparsity.profiles import sparsity_summary
from repro.utils.tables import format_table
from repro.workloads.nets import NETWORKS


def run(networks: tuple[str, ...] = NETWORKS) -> dict[str, dict[str, float]]:
    return {net: sparsity_summary(net) for net in networks}


def main() -> str:
    results = run()
    rows = [
        [net, s["value_sparsity"], s["bit_sparsity_2c"],
         s["bit_sparsity_sm"], s["sr_2c"], s["sr_sm"]]
        for net, s in results.items()
    ]
    table = format_table(
        ["network", "value Sw", "bit Sw (2C)", "bit Sw (SM)",
         "SR (2C)", "SR (SM)"],
        rows,
        title="Fig. 1 -- value vs bit sparsity of Int8 weights",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
