"""Fig. 5: compression ratio vs group size, BCS vs ZRE vs CSR.

Paper claims, on ResNet18's last four conv layers (>=50% of weights):

- ideal CR is highest at G=1 but index overhead destroys the real CR;
- real CR peaks at moderate group sizes and declines as G grows;
- BCS-compression beats the value-sparsity formats (ZRE, CSR) at the
  low value sparsity of unmodified Int8 networks.
"""

from __future__ import annotations

import numpy as np

from repro.core.compression import (
    bcs_compression_ratio,
    csr_compression_ratio,
    zre_compression_ratio,
)
from repro.utils.tables import format_table
from repro.workloads.nets import network_layers
from repro.workloads.synthetic import synthetic_weights

GROUP_SIZES = (1, 2, 4, 8, 16, 32, 64)
#: ResNet18's last four conv layers (layer4 block convs).
LAST4 = ("layer4.0.conv1", "layer4.0.conv2",
         "layer4.1.conv1", "layer4.1.conv2")


def _last4_weights() -> np.ndarray:
    specs = {s.name: s for s in network_layers("resnet18")}
    return np.concatenate(
        [synthetic_weights(specs[name]).reshape(-1) for name in LAST4])


def run() -> dict[str, object]:
    weights = _last4_weights()
    bcs = {
        g: {
            "ideal": bcs_compression_ratio(weights, g, ideal=True),
            "real": bcs_compression_ratio(weights, g),
        }
        for g in GROUP_SIZES
    }
    return {
        "bcs": bcs,
        "zre": {"ideal": zre_compression_ratio(weights, ideal=True),
                "real": zre_compression_ratio(weights)},
        "csr": {"ideal": csr_compression_ratio(weights, ideal=True),
                "real": csr_compression_ratio(weights)},
    }


def main() -> str:
    results = run()
    rows = [[f"BCS G={g}", v["ideal"], v["real"]]
            for g, v in results["bcs"].items()]
    rows.append(["ZRE", results["zre"]["ideal"], results["zre"]["real"]])
    rows.append(["CSR", results["csr"]["ideal"], results["csr"]["real"]])
    table = format_table(
        ["scheme", "ideal CR", "real CR"],
        rows,
        title="Fig. 5 -- compression ratio, ResNet18 last 4 conv layers",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
