"""Fig. 15: energy consumption vs SotA, normalized to BitWave.

Paper claims: BitWave lowest everywhere; SCNN worst on weight-intensive
networks (Bert-Base costs it 13.23x BitWave's energy); the fixed-
dataflow designs pay 4-5x on MobileNetV2.
"""

from __future__ import annotations

from repro.accelerators import SOTA_ACCELERATORS
from repro.arch import DEFAULT_ARCH
from repro.eval.grids import sota_grid
from repro.utils.tables import format_table
from repro.workloads.nets import NETWORKS


def run(networks: tuple[str, ...] = NETWORKS,
        arch: str = DEFAULT_ARCH) -> dict[str, dict[str, float]]:
    """``network -> {accelerator: energy normalized to BitWave}``."""
    grid = sota_grid(networks, arch=arch)
    results: dict[str, dict[str, float]] = {}
    for net in networks:
        bitwave = grid[("BitWave", net)].total_energy_pj
        results[net] = {
            acc: grid[(acc, net)].total_energy_pj / bitwave
            for acc in SOTA_ACCELERATORS
        }
    return results


def main() -> str:
    results = run()
    rows = [
        [net] + [values[acc] for acc in SOTA_ACCELERATORS]
        for net, values in results.items()
    ]
    table = format_table(
        ["network"] + list(SOTA_ACCELERATORS),
        rows,
        title="Fig. 15 -- energy normalized to BitWave (lower is better)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
