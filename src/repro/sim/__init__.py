"""Cycle-approximate simulator of the BitWave datapath (Section IV).

The simulator executes real BCS-compressed weight streams through
structural models of the paper's blocks -- the Zero-Column Index Parser
(Fig. 7), the sign-magnitude bit-serial multiplier and BCE pipeline
(Fig. 8), banked SRAM, and the fetcher/dispatcher pair -- producing
bit-exact outputs (checked against NumPy matmuls/convolutions in the
tests) *and* cycle counts.  The analytical model of
:mod:`repro.accelerators` is validated against these cycle counts the
same way the paper validates its model against RTL (<6% deviation,
Section V-B).
"""

from repro.sim.bce import BitColumnEngine, BitPlaneEngine
from repro.sim.memory import DramStream, SramBank
from repro.sim.npu import BACKENDS, BitWaveNPU, LayerRun
from repro.sim.zcip import ParsedIndex, ParsedIndexArray, ZeroColumnIndexParser

__all__ = [
    "BACKENDS",
    "BitColumnEngine",
    "BitPlaneEngine",
    "BitWaveNPU",
    "DramStream",
    "LayerRun",
    "ParsedIndex",
    "ParsedIndexArray",
    "SramBank",
    "ZeroColumnIndexParser",
]
