"""Zero-Column Index Parser (paper Fig. 7).

Each 8-bit weight index is split into its MSB (the sign column request)
and the remaining 7 bits marking non-zero magnitude columns.  The parser
emits the shift amount for every non-zero column in stream order and the
``Sync.ctr`` cycle count the compute engine will spend on the group.

In *dense mode* the parser generates the shift schedule locally from a
precision configuration -- all columns down to the configured LSB --
so deeply-quantized dense weights skip the index overhead entirely.

Because the index byte only has 256 values, the whole parse is
precomputed into module-level lookup tables; :meth:`parse_array` decodes
an arbitrary ``(K, n_groups)`` index array with a handful of
fancy-indexing operations, which is what the vectorized NPU datapath
runs on.  :meth:`parse` remains the scalar reference decoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bit-plane layout of one parsed byte, MSB first: column 0 is the sign
#: request, columns 1..7 are the magnitude planes (significance 6..0).
_BYTE_BITS = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1)

#: ``PLANE_SELECT_LUT[byte, plane]`` -- does ``byte`` stream ``plane``?
#: Plane indices follow :mod:`repro.core.signmag`: 0 = sign plane,
#: plane ``p`` in 1..7 carries significance ``7 - p``.
PLANE_SELECT_LUT = _BYTE_BITS.astype(bool)
PLANE_SELECT_LUT.setflags(write=False)

#: ``SIGN_REQUEST_LUT[byte]`` -- MSB of the index byte.
SIGN_REQUEST_LUT = PLANE_SELECT_LUT[:, 0].copy()
SIGN_REQUEST_LUT.setflags(write=False)

#: ``MAGNITUDE_COLUMNS_LUT[byte]`` -- number of non-zero magnitude
#: columns (``len(parse(byte).shifts)``).
MAGNITUDE_COLUMNS_LUT = _BYTE_BITS[:, 1:].sum(axis=1).astype(np.int64)
MAGNITUDE_COLUMNS_LUT.setflags(write=False)

#: ``SYNC_COUNTER_LUT[byte]`` -- ``Sync.ctr`` cycles for the group
#: (magnitude columns plus the sign column when requested).
SYNC_COUNTER_LUT = _BYTE_BITS.sum(axis=1).astype(np.int64)
SYNC_COUNTER_LUT.setflags(write=False)


def dense_plane_select(precision: int) -> np.ndarray:
    """Dense-mode schedule: which planes stream at ``precision`` bits.

    The sign plane plus the ``precision - 1`` least significant
    magnitude planes (the parser truncates higher significances away).
    """
    select = np.zeros(8, dtype=bool)
    select[0] = True
    if precision > 1:
        select[8 - (precision - 1):] = True
    return select


@dataclass(frozen=True)
class ParsedIndex:
    """Decoded control for one column group.

    ``shifts`` lists the bit significance (0 = LSB) of every non-zero
    magnitude column in streaming order (MSB first), matching the
    single-shift alignment applied after the BCE adder stage.
    """

    sign_request: bool
    shifts: tuple[int, ...]
    sync_counter: int

    @property
    def nonzero_columns(self) -> int:
        return self.sync_counter


@dataclass(frozen=True)
class ParsedIndexArray:
    """Vectorized :class:`ParsedIndex` over a whole index-byte array.

    All fields are aligned with the input array's shape; the decoded
    per-column shift list is replaced by the equivalent plane-select
    mask (``shape + (8,)``) since the batch datapath consumes planes,
    not streamed columns.
    """

    sign_requests: np.ndarray
    plane_select: np.ndarray
    magnitude_columns: np.ndarray
    sync_counters: np.ndarray

    @property
    def streamed_planes(self) -> np.ndarray:
        """(8,) mask of planes streamed by *any* group in the batch."""
        return self.plane_select.reshape(-1, 8).any(axis=0)


class ZeroColumnIndexParser:
    """One of BitWave's 128 8-bit index parsers."""

    def __init__(self, dense_precision: int | None = None) -> None:
        """``dense_precision`` switches the parser to dense mode with the
        given weight bit-width (1..8, sign included)."""
        if dense_precision is not None and not 1 <= dense_precision <= 8:
            raise ValueError(
                f"dense precision must be in [1, 8], got {dense_precision}")
        self.dense_precision = dense_precision

    @property
    def dense_mode(self) -> bool:
        return self.dense_precision is not None

    def parse(self, index_byte: int) -> ParsedIndex:
        """Decode one weight-index byte (ignored in dense mode)."""
        if self.dense_mode:
            magnitude_columns = self.dense_precision - 1
            shifts = tuple(range(magnitude_columns - 1, -1, -1))
            return ParsedIndex(
                sign_request=True,
                shifts=shifts,
                sync_counter=self.dense_precision,
            )
        if not 0 <= index_byte <= 0xFF:
            raise ValueError(f"index byte out of range: {index_byte}")
        sign_request = bool(index_byte & 0x80)
        shifts = tuple(
            significance
            for significance in range(6, -1, -1)
            if index_byte & (1 << significance)
        )
        sync = len(shifts) + (1 if sign_request else 0)
        return ParsedIndex(
            sign_request=sign_request, shifts=shifts, sync_counter=sync)

    def parse_array(self, index_bytes: np.ndarray) -> ParsedIndexArray:
        """Decode a whole index array through the lookup tables.

        Equivalent to calling :meth:`parse` element-wise (the tables are
        pinned to the scalar decoder by tests) but costs four
        fancy-indexing ops regardless of array size.
        """
        index_bytes = np.asarray(index_bytes)
        if index_bytes.dtype != np.uint8:
            if (index_bytes.size
                    and not (0 <= int(index_bytes.min())
                             and int(index_bytes.max()) <= 0xFF)):
                raise ValueError("index bytes out of range")
            index_bytes = index_bytes.astype(np.uint8)
        if self.dense_mode:
            shape = index_bytes.shape
            precision = self.dense_precision
            return ParsedIndexArray(
                sign_requests=np.ones(shape, dtype=bool),
                plane_select=np.broadcast_to(
                    dense_plane_select(precision), shape + (8,)),
                magnitude_columns=np.full(shape, precision - 1,
                                          dtype=np.int64),
                sync_counters=np.full(shape, precision, dtype=np.int64),
            )
        return ParsedIndexArray(
            sign_requests=SIGN_REQUEST_LUT[index_bytes],
            plane_select=PLANE_SELECT_LUT[index_bytes],
            magnitude_columns=MAGNITUDE_COLUMNS_LUT[index_bytes],
            sync_counters=SYNC_COUNTER_LUT[index_bytes],
        )
