"""Zero-Column Index Parser (paper Fig. 7).

Each 8-bit weight index is split into its MSB (the sign column request)
and the remaining 7 bits marking non-zero magnitude columns.  The parser
emits the shift amount for every non-zero column in stream order and the
``Sync.ctr`` cycle count the compute engine will spend on the group.

In *dense mode* the parser generates the shift schedule locally from a
precision configuration -- all columns down to the configured LSB --
so deeply-quantized dense weights skip the index overhead entirely.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParsedIndex:
    """Decoded control for one column group.

    ``shifts`` lists the bit significance (0 = LSB) of every non-zero
    magnitude column in streaming order (MSB first), matching the
    single-shift alignment applied after the BCE adder stage.
    """

    sign_request: bool
    shifts: tuple[int, ...]
    sync_counter: int

    @property
    def nonzero_columns(self) -> int:
        return self.sync_counter


class ZeroColumnIndexParser:
    """One of BitWave's 128 8-bit index parsers."""

    def __init__(self, dense_precision: int | None = None) -> None:
        """``dense_precision`` switches the parser to dense mode with the
        given weight bit-width (1..8, sign included)."""
        if dense_precision is not None and not 1 <= dense_precision <= 8:
            raise ValueError(
                f"dense precision must be in [1, 8], got {dense_precision}")
        self.dense_precision = dense_precision

    @property
    def dense_mode(self) -> bool:
        return self.dense_precision is not None

    def parse(self, index_byte: int) -> ParsedIndex:
        """Decode one weight-index byte (ignored in dense mode)."""
        if self.dense_mode:
            magnitude_columns = self.dense_precision - 1
            shifts = tuple(range(magnitude_columns - 1, -1, -1))
            return ParsedIndex(
                sign_request=True,
                shifts=shifts,
                sync_counter=self.dense_precision,
            )
        if not 0 <= index_byte <= 0xFF:
            raise ValueError(f"index byte out of range: {index_byte}")
        sign_request = bool(index_byte & 0x80)
        shifts = tuple(
            significance
            for significance in range(6, -1, -1)
            if index_byte & (1 << significance)
        )
        sync = len(shifts) + (1 if sign_request else 0)
        return ParsedIndex(
            sign_request=sign_request, shifts=shifts, sync_counter=sync)
