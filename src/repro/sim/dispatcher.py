"""Data dispatcher (paper Fig. 11): SU-programmable casting.

The dispatcher routes fetched weight segments and activation words to
BCE rows/columns using the casting strategy of the active SU: weights
unicast per BCE row, activations unicast per row and broadcast across
the kernel (K) columns -- "each plane of 8x16 BCEs receives the same
1024-bit inputs, uni-casting a 64-bit input segment to each BCE row"
(Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CastPlan:
    """How one operand spreads over the BCE array under an SU."""

    unicast_targets: int
    broadcast_factor: int

    @property
    def total_destinations(self) -> int:
        return self.unicast_targets * self.broadcast_factor


class DataDispatcher:
    """Derives casting plans and counts dispatched words."""

    def __init__(self) -> None:
        self.weight_words = 0
        self.act_words = 0

    def weight_plan(self, cu: int, ku: int) -> CastPlan:
        """Weights: one stream per (C-slice, kernel) pair, no broadcast."""
        return CastPlan(unicast_targets=max((cu * ku) // 8, 1),
                        broadcast_factor=1)

    def activation_plan(self, cu: int, oxu: int, ku: int) -> CastPlan:
        """Activations: unicast per output-pixel row, broadcast across K."""
        return CastPlan(unicast_targets=max(oxu * max(cu // 8, 1), 1),
                        broadcast_factor=max(ku, 1))

    def dispatch_weights(self, words: int) -> None:
        self.weight_words += words

    def dispatch_activations(self, words: int) -> None:
        self.act_words += words
