"""Top-level BitWave NPU simulator (paper Fig. 11).

Executes fully-connected and convolution layers through the structural
datapath -- ZCIP parsing of real BCS index bytes, BCE column processing,
fetcher traffic at Table I bandwidths -- producing bit-exact integer
outputs plus a cycle/traffic report.

Two backends implement the datapath:

- ``"vectorized"`` (default) decodes the whole ``(K, n_groups)`` index
  array through the ZCIP lookup tables and computes the outputs as one
  batched GEMM per streamed bit plane
  (:class:`repro.sim.bce.BitPlaneEngine`) -- orders of magnitude faster
  on realistic layers;
- ``"reference"`` streams every group column-by-column through a
  :class:`repro.sim.bce.BitColumnEngine`, one ZCIP parse per group --
  the structural gold model.

Both produce bit-identical outputs and identical cycle/traffic/column
counts (pinned by the backend-equivalence tests).

Cycle semantics match the analytical model of
:mod:`repro.accelerators.bitwave`:

- groups inside one 64-bit weight segment (8 adjacent kernels at the
  same channel slice) advance in lockstep, so a segment context costs
  the *maximum* sync counter of its groups;
- the ``Ku / 8`` segments of a kernel tile stream through parallel
  banks (pipelined, no cross-segment sync);
- output contexts beyond the spatial ``OXu`` unroll serialize.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.arch import ArchSpec, default_arch
from repro.arch.spec import SEGMENT_KERNELS  # noqa: F401  (canonical home)
from repro.core.signmag import sm_bitplanes
from repro.obs import counter, trace
from repro.sim.bce import BitColumnEngine, BitPlaneEngine
from repro.sim.dispatcher import DataDispatcher
from repro.sim.energy import SimEnergyBreakdown, price_matmul
from repro.sim.fetcher import DataFetcher
from repro.sim.zcip import ZeroColumnIndexParser

#: Datapath implementations selectable on :class:`BitWaveNPU`.
BACKENDS = ("vectorized", "reference")


@dataclass
class LayerRun:
    """Result of simulating one layer.

    ``energy`` prices this run's structural counters with the NPU's
    :class:`repro.arch.TechSpec` (every tensor moved on/off chip once);
    whole-network evaluations re-price the rescaled full-layer counters
    through :mod:`repro.eval.lowering` instead.
    """

    outputs: np.ndarray
    compute_cycles: int
    fetch_cycles: int
    column_ops: int
    weight_bits_fetched: int
    dense_weight_bits: int
    energy: SimEnergyBreakdown

    @property
    def total_cycles(self) -> int:
        """Compute and fetch overlap; the longer stream dominates."""
        return max(self.compute_cycles, self.fetch_cycles)

    @property
    def compression_ratio(self) -> float:
        fetched = self.weight_bits_fetched
        return self.dense_weight_bits / fetched if fetched else float("inf")

    @property
    def energy_pj(self) -> float:
        """Total priced energy of this run."""
        return self.energy.total_pj


class BitWaveNPU:
    """Structural simulator of the 512-BCE array.

    The PE-array geometry -- BCS group size, kernel/spatial unrolls,
    fetch bandwidths -- and the technology point pricing the energy
    epilog come from one :class:`repro.arch.ArchSpec` (the same typed
    hardware description the analytical model consumes).  The legacy
    keyword spellings remain accepted and are folded into a spec, so
    every construction path gets the spec's validation (e.g. ``ku``
    must sit on the 8-kernel weight-segment grid).
    """

    def __init__(
        self,
        group_size: int | None = None,
        ku: int | None = None,
        oxu: int | None = None,
        weight_bw_bits: int | None = None,
        act_bw_bits: int | None = None,
        dense_mode_precision: int | None = None,
        backend: str = "vectorized",
        arch: ArchSpec | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; one of {BACKENDS}")
        base = arch if arch is not None else default_arch()
        overrides = {
            name: value for name, value in (
                ("group_size", group_size), ("ku", ku), ("oxu", oxu),
                ("weight_bw_bits", weight_bw_bits),
                ("act_bw_bits", act_bw_bits),
            ) if value is not None
        }
        if overrides:
            base = replace(base, **overrides)
        self.arch = base
        self.tech = base.technology()
        self.group_size = base.group_size
        self.ku = base.ku
        self.oxu = base.oxu
        self.backend = backend
        # The spec's precision/columns mode engages the ZCIP dense
        # schedule; the legacy kwarg stays as an explicit override.
        if dense_mode_precision is None and base.columns == "dense":
            dense_mode_precision = base.dense_precision
        self.parser = ZeroColumnIndexParser(dense_mode_precision)
        self.fetcher = DataFetcher(base.weight_bw_bits, base.act_bw_bits)
        self.dispatcher = DataDispatcher()

    # ------------------------------------------------------------------
    def _encode_groups(
        self, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group each kernel row and extract SM planes.

        ``weights`` is ``(K, C)`` int8; returns ``(planes, signs, index)``
        with planes ``(K, n_groups, 8, G)``, signs ``(K, n_groups, G)``
        and index bytes ``(K, n_groups)`` exactly as BCS compression
        would store them.
        """
        k, c = weights.shape
        g = self.group_size
        pad = (-c) % g
        if pad:
            weights = np.concatenate(
                [weights, np.zeros((k, pad), dtype=np.int8)], axis=1)
        groups = weights.reshape(k, -1, g)
        planes = sm_bitplanes(groups, saturate=True)  # (K, ng, G, 8)
        planes = planes.transpose(0, 1, 3, 2)  # (K, ng, 8, G)
        signs = planes[:, :, 0, :]
        nz_mask = planes.any(axis=3)  # (K, ng, 8)
        bit_weights = (1 << np.arange(7, -1, -1)).astype(np.uint16)
        index = (nz_mask * bit_weights).sum(axis=2).astype(np.uint8)
        return planes, signs, index

    # -- datapath backends ---------------------------------------------
    def _compute_reference(
        self,
        acts: np.ndarray,
        planes: np.ndarray,
        signs: np.ndarray,
        index_bytes: np.ndarray,
    ) -> tuple[np.ndarray, int, int, np.ndarray]:
        """Column-serial gold datapath: one ZCIP parse per group, one
        :class:`BitColumnEngine` pass per (kernel, group) pair.

        Returns ``(outputs, column_ops, payload_bits, sync)`` with
        ``sync`` the ``(K, n_groups)`` per-group sync counters.
        """
        k, n_groups = index_bytes.shape
        n = acts.shape[0]
        g = self.group_size
        outputs = np.zeros((n, k), dtype=np.int64)
        sync = np.zeros((k, n_groups), dtype=np.int64)
        column_ops = 0
        payload_bits = 0
        engine = BitColumnEngine(g)
        for ki in range(k):
            for gi in range(n_groups):
                parsed = self.parser.parse(int(index_bytes[ki, gi]))
                # Plane index of each streamed column (MSB-first
                # magnitude order); dense mode streams every column of
                # the configured precision.
                selected = [7 - s for s in parsed.shifts]
                columns = planes[ki, gi, selected, :]
                outputs[:, ki] += engine.process_group(
                    acts[:, gi, :], columns, signs[ki, gi], parsed)
                column_ops += len(parsed.shifts)
                payload_bits += (len(parsed.shifts)
                                 + (1 if parsed.sign_request else 0)) * g
                sync[ki, gi] = parsed.sync_counter
        return outputs, column_ops, payload_bits, sync

    def _compute_vectorized(
        self,
        acts: np.ndarray,
        planes: np.ndarray,
        signs: np.ndarray,
        index_bytes: np.ndarray,
    ) -> tuple[np.ndarray, int, int, np.ndarray]:
        """Plane-level batch datapath: LUT index decode + per-plane GEMMs.

        Same contract as :meth:`_compute_reference`.
        """
        with trace("sim.decode", backend="vectorized"):
            parsed = self.parser.parse_array(index_bytes)
        engine = BitPlaneEngine(self.group_size)
        outputs = engine.process_layer(
            acts, planes, signs, parsed.streamed_planes)
        column_ops = int(parsed.magnitude_columns.sum())
        # Each group's payload is its magnitude columns plus the sign
        # column when requested -- exactly the sync counter -- times G.
        payload_bits = int(parsed.sync_counters.sum()) * self.group_size
        return outputs, column_ops, payload_bits, parsed.sync_counters

    def run_fc(self, weights: np.ndarray, activations: np.ndarray) -> LayerRun:
        """Fully-connected layer: ``out[n, k] = sum_c a[n, c] * w[k, c]``.

        ``weights`` is int8 ``(K, C)``; ``activations`` integer ``(N, C)``.
        """
        weights = np.asarray(weights, dtype=np.int8)
        activations = np.asarray(activations)
        if not np.issubdtype(activations.dtype, np.integer):
            raise TypeError("simulator activations must be integers")
        k, c = weights.shape
        n = activations.shape[0]
        if activations.shape[1] != c:
            raise ValueError(
                f"activation width {activations.shape[1]} != weight C {c}")

        g = self.group_size
        pad = (-c) % g
        acts = activations.astype(np.int64)
        if pad:
            acts = np.concatenate(
                [acts, np.zeros((n, pad), dtype=np.int64)], axis=1)
        acts = acts.reshape(n, -1, g)  # (N, ng, G)

        with trace("sim.encode", kernels=k, reduction=c):
            planes, signs, index_bytes = self._encode_groups(weights)
        n_groups = planes.shape[1]

        compute = (self._compute_vectorized if self.backend == "vectorized"
                   else self._compute_reference)
        with trace("sim.compute", backend=self.backend, kernels=k,
                   contexts=n):
            outputs, column_ops, payload_bits, sync = compute(
                acts, planes, signs, index_bytes)
        counter("sim.kernel_dispatch", backend=self.backend)
        counter("sim.column_ops", n=int(column_ops), backend=self.backend)

        # Segment-level lockstep: kernels in blocks of 8 share the parser
        # schedule, so a segment context costs the max sync counter.
        context_repeats = -(-n // self.oxu)
        parallel_streams = max(self.ku // SEGMENT_KERNELS, 1)
        pad_k = (-k) % SEGMENT_KERNELS
        if pad_k:
            sync = np.concatenate(
                [sync, np.zeros((pad_k, n_groups), dtype=np.int64)], axis=0)
        segment_sync = sync.reshape(-1, SEGMENT_KERNELS, n_groups).max(axis=1)
        stream_cycles = int(segment_sync.sum())
        compute_cycles = -(-stream_cycles // parallel_streams) * context_repeats

        fetch_cycles = self.fetcher.fetch_weight_columns(payload_bits + 8 * k
                                                         * n_groups)
        fetch_cycles += self.fetcher.fetch_activations(n * c)
        self.dispatcher.dispatch_weights(payload_bits // 8)
        self.dispatcher.dispatch_activations(n * c)

        # Energy epilog: price this run's counters with the spec's
        # technology.  Each streamed column engages the group's G lanes
        # once per output context (payload_bits == sync-counter total
        # times G); every tensor crosses DRAM/SRAM once at this level
        # (whole-network fusion rules live in repro.eval.lowering).
        with trace("sim.energy_epilog"):
            energy = self._price_fc(payload_bits, n, c, k, n_groups)

        return LayerRun(
            outputs=outputs,
            compute_cycles=int(compute_cycles),
            fetch_cycles=int(fetch_cycles),
            column_ops=column_ops,
            weight_bits_fetched=payload_bits + 8 * k * n_groups,
            dense_weight_bits=k * c * 8,
            energy=energy,
        )

    def _price_fc(self, payload_bits: int, n: int, c: int, k: int,
                  n_groups: int) -> SimEnergyBreakdown:
        return price_matmul(
            self.tech,
            lane_cycles=float(payload_bits) * n,
            weight_stream_bytes=(payload_bits + 8 * k * n_groups) / 8.0,
            dram_act_in_elems=float(n * c),
            dram_act_out_elems=float(n * k),
            act_elems=float(n * c),
            out_elems=float(n * k),
            n_mac=float(n) * k * c,
        )

    def run_conv(
        self,
        weights: np.ndarray,
        activations: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> LayerRun:
        """Convolution via im2col onto the FC path.

        ``weights`` int8 ``(K, C, FY, FX)``; ``activations`` integer
        ``(B, C, H, W)``.  Outputs come back as ``(B, K, OH, OW)``.
        """
        weights = np.asarray(weights, dtype=np.int8)
        activations = np.asarray(activations)
        k, c, fy, fx = weights.shape
        b = activations.shape[0]
        if padding:
            activations = np.pad(
                activations,
                ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        _, _, h, w = activations.shape
        oh = (h - fy) // stride + 1
        ow = (w - fx) // stride + 1
        sb, sc, sh, sw = activations.strides
        view = np.lib.stride_tricks.as_strided(
            activations,
            shape=(b, c, fy, fx, oh, ow),
            strides=(sb, sc, sh, sw, sh * stride, sw * stride),
            writeable=False,
        )
        # Group axis = consecutive input channels of one kernel: order
        # the reduction as (fy, fx, c).
        cols = np.ascontiguousarray(
            view.transpose(0, 4, 5, 2, 3, 1)).reshape(
                b * oh * ow, fy * fx * c)
        w_mat = np.ascontiguousarray(
            weights.transpose(0, 2, 3, 1)).reshape(k, fy * fx * c)
        run = self.run_fc(w_mat, cols)
        outputs = run.outputs.reshape(b, oh, ow, k).transpose(0, 3, 1, 2)
        return replace(run, outputs=outputs)
