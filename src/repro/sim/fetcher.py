"""Activation/weight fetcher (paper Fig. 11).

The fetcher moves packed 64-bit compressed-weight segments and
activation words from the SRAM banks to the data dispatcher at the
bandwidths of the layer's configured SU (Table I).  It never decodes
the compressed stream -- BitWave's point is that the packed segments
feed the array directly.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Segment granularity of the weight SRAM layout (Fig. 10).
SEGMENT_BITS = 64


@dataclass
class FetchReport:
    """Traffic moved for one layer execution."""

    weight_segments: int = 0
    act_words: int = 0

    @property
    def weight_bits(self) -> int:
        return self.weight_segments * SEGMENT_BITS


class DataFetcher:
    """Counts fetch traffic under a given SU's bandwidth configuration."""

    def __init__(self, weight_bw_bits: int, act_bw_bits: int) -> None:
        if weight_bw_bits % SEGMENT_BITS:
            raise ValueError(
                f"weight bandwidth must be a multiple of {SEGMENT_BITS} bits")
        self.weight_bw_bits = weight_bw_bits
        self.act_bw_bits = act_bw_bits
        self.report = FetchReport()

    def fetch_weight_columns(self, total_column_bits: int) -> int:
        """Fetch compressed column payload; returns fetch cycles."""
        segments = -(-total_column_bits // SEGMENT_BITS)
        self.report.weight_segments += segments
        segments_per_cycle = self.weight_bw_bits // SEGMENT_BITS
        return -(-segments // segments_per_cycle)

    def fetch_activations(self, n_words: int) -> int:
        """Fetch 8-bit activation words; returns fetch cycles."""
        self.report.act_words += n_words
        words_per_cycle = max(self.act_bw_bits // 8, 1)
        return -(-n_words // words_per_cycle)
