"""BitWave Compute Engine (paper Fig. 8).

A BCE multiplies one bit-column of grouped weights with the group's
activations each cycle, following the five steps of Fig. 8:

1. *Input loading* -- G activations, a Gx1b weight column, sign bits;
2. *SMM* -- per-lane 1b x 8b sign-magnitude multiplication;
3. *Partial sum accumulation* -- adder tree over the column's lanes;
4. *Single shift* -- one shift for the whole column (the
   "add-then-shift" structure that beats per-lane shifters);
5. *Output generation* -- accumulate into the local output register.

The BCE holds activations and signs in registers across the non-zero
columns of the same weight group; only the weight bits change per cycle.
"""

from __future__ import annotations

import numpy as np

from repro import faults
from repro.core.signmag import MAGNITUDE_PLANES, PLANE_SIGNIFICANCE
from repro.obs import trace
from repro.sim.smm import smm_column_sum, smm_plane_gemm
from repro.sim.zcip import ParsedIndex


class BitColumnEngine:
    """One BCE lane-group; processes one column group at a time."""

    def __init__(self, group_size: int = 8) -> None:
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.group_size = group_size
        self.cycles = 0
        self.column_ops = 0

    def process_group(
        self,
        activations: np.ndarray,
        columns: np.ndarray,
        signs: np.ndarray,
        parsed: ParsedIndex,
    ) -> np.ndarray:
        """Run one group against a batch of activation contexts.

        Parameters
        ----------
        activations:
            ``(..., G)`` int activations; leading axes are independent
            output contexts served by spatially-parallel BCEs (they do
            not add cycles -- the weight column is broadcast).
        columns:
            ``(n_nonzero_columns, G)`` magnitude column bits in streaming
            order (matching ``parsed.shifts``).
        signs:
            ``(G,)`` sign bits of the grouped weights.
        parsed:
            ZCIP output carrying the shift schedule.

        Returns
        -------
        numpy.ndarray
            Partial sums, shape ``activations.shape[:-1]`` (int64).
        """
        activations = np.asarray(activations, dtype=np.int64)
        if activations.shape[-1] != self.group_size:
            raise ValueError(
                f"expected {self.group_size} activations, got "
                f"{activations.shape[-1]}")
        if columns.shape[0] != len(parsed.shifts):
            raise ValueError(
                f"{columns.shape[0]} columns but {len(parsed.shifts)} shifts")
        accumulator = np.zeros(activations.shape[:-1], dtype=np.int64)
        for column_bits, shift in zip(columns, parsed.shifts):
            partial = smm_column_sum(activations, column_bits, signs)
            accumulator += partial << np.int64(shift)
            self.cycles += 1
            self.column_ops += 1
        if parsed.sign_request:
            # Sign-column fetch occupies the pipe for one cycle.
            self.cycles += 1
        return accumulator


class BitPlaneEngine:
    """Plane-level batch view of the whole BCE array.

    Where :class:`BitColumnEngine` streams one bit column of one weight
    group per call, the plane engine multiplies *every* group of *every*
    kernel against one shared-significance bit plane in a single GEMM
    (:func:`repro.sim.smm.smm_plane_gemm`) and applies the plane's
    single shift to the whole partial-sum matrix.  Zero columns carry
    all-zero plane bits and contribute nothing to the GEMM, so the
    accumulated outputs are bit-identical to the column-serial engine
    (int64 addition is exact and order-independent); only the cycle
    accounting moves out of the datapath, into the ZCIP lookup tables.
    """

    def __init__(self, group_size: int = 8) -> None:
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.group_size = group_size

    def process_layer(
        self,
        activations: np.ndarray,
        planes: np.ndarray,
        signs: np.ndarray,
        streamed_planes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Run the whole layer, one GEMM per streamed magnitude plane.

        Parameters
        ----------
        activations:
            ``(N, n_groups, G)`` integer activation contexts.
        planes:
            ``(K, n_groups, 8, G)`` sign-magnitude bit planes (plane 0 is
            the sign plane).
        signs:
            ``(K, n_groups, G)`` sign bits of the grouped weights.
        streamed_planes:
            Optional ``(8,)`` mask of planes the parser schedules; dense
            mode truncates high significances away.  ``None`` streams
            every magnitude plane (sparse mode: unselected planes are
            all-zero and contribute nothing anyway).

        Returns
        -------
        numpy.ndarray
            ``(N, K)`` int64 partial sums.
        """
        activations = np.asarray(activations, dtype=np.int64)
        if activations.shape[-1] != self.group_size:
            raise ValueError(
                f"expected {self.group_size} activations, got "
                f"{activations.shape[-1]}")
        n, k = activations.shape[0], planes.shape[0]
        outputs = np.zeros((n, k), dtype=np.int64)
        for plane in MAGNITUDE_PLANES:
            if streamed_planes is not None and not streamed_planes[plane]:
                continue
            bits = planes[:, :, plane, :]
            if not bits.any():
                continue  # empty plane: no column anywhere streams it
            # One span per dispatched plane GEMM: both the dispatch
            # count and where the datapath's wall-clock goes.  The
            # fault hook lets chaos tests stall or kill a worker
            # *mid*-evaluation -- deep inside the datapath, where a
            # real OOM or freeze actually lands -- rather than only at
            # the tidy evaluation boundary.
            faults.fire("gemm")
            with trace("sim.plane_gemm", plane=int(plane)):
                outputs += smm_plane_gemm(activations, bits, signs) \
                    << np.int64(PLANE_SIGNIFICANCE[plane])
        return outputs
