"""Banked SRAM and DRAM stream models with access accounting.

The simulator's memory models are deliberately simple -- byte-addressed
stores with per-port access counters -- because the quantities the
validation needs are the access counts and the stall cycles implied by
port widths, not timing-accurate DRAM behaviour.
"""

from __future__ import annotations

import numpy as np


class SramBank:
    """One single-port SRAM bank of fixed word width."""

    def __init__(self, size_bytes: int, word_bits: int = 64) -> None:
        if word_bits % 8:
            raise ValueError("word width must be a whole number of bytes")
        self.size_bytes = size_bytes
        self.word_bytes = word_bits // 8
        self.data = np.zeros(size_bytes, dtype=np.uint8)
        self.reads = 0
        self.writes = 0

    def _check(self, address: int, length: int) -> None:
        if address < 0 or address + length > self.size_bytes:
            raise IndexError(
                f"access [{address}, {address + length}) outside bank of "
                f"{self.size_bytes} bytes")

    def write(self, address: int, payload: np.ndarray) -> None:
        payload = np.asarray(payload, dtype=np.uint8).reshape(-1)
        self._check(address, payload.size)
        self.data[address:address + payload.size] = payload
        self.writes += -(-payload.size // self.word_bytes)

    def read(self, address: int, length: int) -> np.ndarray:
        self._check(address, length)
        self.reads += -(-length // self.word_bytes)
        return self.data[address:address + length].copy()


class BankedSram:
    """N-bank SRAM; consecutive words interleave across banks."""

    def __init__(self, banks: int, bank_bytes: int, word_bits: int = 64) -> None:
        self.banks = [SramBank(bank_bytes, word_bits) for _ in range(banks)]

    @property
    def total_reads(self) -> int:
        return sum(bank.reads for bank in self.banks)

    @property
    def total_writes(self) -> int:
        return sum(bank.writes for bank in self.banks)

    def bank_for(self, index: int) -> SramBank:
        return self.banks[index % len(self.banks)]


class DramStream:
    """Off-chip stream counting bytes in/out."""

    def __init__(self, bits_per_cycle: int = 512) -> None:
        self.bytes_per_cycle = bits_per_cycle / 8.0
        self.bytes_read = 0
        self.bytes_written = 0

    def read(self, n_bytes: int) -> None:
        self.bytes_read += int(n_bytes)

    def write(self, n_bytes: int) -> None:
        self.bytes_written += int(n_bytes)

    @property
    def transfer_cycles(self) -> float:
        return (self.bytes_read + self.bytes_written) / self.bytes_per_cycle
