"""Energy epilog of the structural simulator (closing the sim-energy gap).

The datapath produces exact structural counters -- ZCIP-parsed column
payloads, BCE lane-cycles, fetcher traffic -- and this module prices
them with a :class:`repro.arch.TechSpec`'s Table IV unit energies, the
same eq. (4) structure the analytical model uses:

- **compute**: every streamed bit column engages the group's ``G`` SMM
  lanes for one cycle per output context; idle sync-stall cycles are
  clock-gated (exactly the analytical model's assumption), so compute
  energy is ``column lane-cycles x bce_column_cycle_pj``;
- **DRAM**: the compressed weight stream (payload + index bytes)
  crosses the off-chip interface once per activation tile pass;
  activations cross only when they exceed the on-chip fusion capacity
  (the mapper's layer-to-layer forwarding rule);
- **SRAM**: the compressed weight stream plus the full activation and
  output streams move through the on-chip ports once;
- **register**: two operand reads and one accumulator write per MAC.

The matched analytical half of each quantity (statistics-derived
instead of counter-derived) lives in
:func:`repro.eval.lowering.analytic_energy_pj`; the per-layer deviation
between the two is reported next to the established compute-cycle
deviation and stays within the same Section V-B bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.technology import Technology
from repro.model.zigzag import (  # noqa: F401  (re-exported: one rule home)
    fused_dram_elems,
    weight_stream_passes,
)

#: Elements (8-bit words) per MAC touched in the register file: two
#: operand reads plus one accumulator write (the mapper's rule).
REG_ELEMS_PER_MAC = 3.0


@dataclass(frozen=True)
class SimEnergyBreakdown:
    """Picojoules per component (the Fig. 16 categories)."""

    dram_pj: float
    sram_pj: float
    reg_pj: float
    compute_pj: float

    @property
    def total_pj(self) -> float:
        return self.dram_pj + self.sram_pj + self.reg_pj + self.compute_pj

    def components(self) -> dict[str, float]:
        """Keyed like :data:`repro.eval.result.ENERGY_COMPONENTS`."""
        return {
            "dram": self.dram_pj,
            "sram": self.sram_pj,
            "reg": self.reg_pj,
            "compute": self.compute_pj,
        }


def price_matmul(
    tech: Technology,
    *,
    lane_cycles: float,
    weight_stream_bytes: float,
    dram_act_in_elems: float,
    dram_act_out_elems: float,
    act_elems: float,
    out_elems: float,
    n_mac: float,
    weight_passes: int = 1,
) -> SimEnergyBreakdown:
    """Price one lowered matmul's structural counters (eq. (4)).

    ``weight_stream_bytes`` is the *compressed* stream, index bytes
    included -- BitWave's stored format is the wire format, so DRAM,
    SRAM and the fetcher all move the same bytes.
    """
    dram_elems = (weight_stream_bytes * weight_passes
                  + dram_act_in_elems + dram_act_out_elems)
    sram_elems = weight_stream_bytes + act_elems + out_elems
    return SimEnergyBreakdown(
        dram_pj=dram_elems * tech.dram_pj_per_element,
        sram_pj=sram_elems * tech.sram_pj_per_element,
        reg_pj=REG_ELEMS_PER_MAC * n_mac * tech.reg_pj_per_element,
        compute_pj=lane_cycles * tech.bce_column_cycle_pj,
    )
